//! # ReFloat — low-cost floating-point processing in ReRAM for iterative linear solvers
//!
//! A from-scratch Rust reproduction of *ReFloat: Low-Cost Floating-Point Processing in
//! ReRAM for Accelerating Iterative Linear Solvers* (Song, Chen, Qian, Li, Chen —
//! SC 2023).  This umbrella crate re-exports the workspace members:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`sparse`] (`refloat-sparse`) | COO/CSR/blocked sparse matrices, Matrix Market I/O, SpMV and vector kernels |
//! | [`matgen`] (`refloat-matgen`) | synthetic analogues of the 12 SuiteSparse workloads of Table V |
//! | [`solvers`] (`refloat-solvers`) | CG and BiCGSTAB over a pluggable [`solvers::LinearOperator`] |
//! | [`core`](mod@core) (`refloat-core`) | the ReFloat format, per-block exponent bases, quantized operators, baselines |
//! | [`sim`] (`reram-sim`) | crossbar pipeline, Eq. 2/Eq. 3 cost models, accelerator + GPU timing, RTN noise |
//! | [`runtime`] (`refloat-runtime`) | persistent multi-tenant solve service: validated `SolvePlan`s, `SolveClient` tickets, QoS scheduler, worker pool of simulated accelerators, encoded-matrix cache, telemetry |
//!
//! ## Quick start
//!
//! ```
//! use refloat::prelude::*;
//!
//! // A small SPD system (2-D Poisson with a diagonal shift).
//! let a = refloat::matgen::generators::laplacian_2d(16, 16, 0.3).to_csr();
//! let b = vec![1.0; a.nrows()];
//!
//! // Solve in full double precision...
//! let exact = cg(&mut a.clone(), &b, &SolverConfig::relative(1e-8));
//!
//! // ...and under the paper's default ReFloat(b, 3, 3)(3, 8) format.
//! let mut quantized = ReFloatMatrix::from_csr(&a, ReFloatConfig::new(4, 3, 3, 3, 8));
//! let refloat = cg(&mut quantized, &b, &SolverConfig::relative(1e-8));
//!
//! assert!(exact.converged() && refloat.converged());
//! // The reduced-precision solve pays only a modest iteration overhead.
//! assert!(refloat.iterations <= 3 * exact.iterations + 10);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench/src/bin/` for the
//! binaries that regenerate every table and figure of the paper (the index is in
//! `DESIGN.md`; measured-vs-paper numbers are in `EXPERIMENTS.md`).

#![forbid(unsafe_code)]

pub use refloat_core as core;
pub use refloat_matgen as matgen;
pub use refloat_runtime as runtime;
pub use refloat_solvers as solvers;
pub use refloat_sparse as sparse;
pub use reram_sim as sim;

/// The most commonly used types and functions, for glob import in examples and tests.
pub mod prelude {
    pub use refloat_core::{
        AutotuneConfig, EscalationPolicy, FormatPlan, ReFloatConfig, ReFloatMatrix, RoundingMode,
        UnderflowMode,
    };
    pub use refloat_matgen::{SolveStep, TransientChain, TransientSpec, Workload, WorkloadSpec};
    pub use refloat_runtime::{
        AdmissionConfig, AutoFormatSpec, ClusterConfig, ClusterRuntime, FaultPolicy, MatrixHandle,
        PlanError, Priority, RefinementSpec, RuntimeConfig, RuntimeReport, SchedulerPolicy,
        SolveClient, SolvePlan, SolveRuntime, SolveSequence, SolveTicket, TicketOutcome,
    };
    pub use refloat_solvers::{
        bicgstab, cg, refine, LinearOperator, OperatorLadder, PrecisionLadder, RefinementConfig,
        RefinementResult, SolveResult, SolverConfig,
    };
    pub use refloat_sparse::{BlockedMatrix, CooMatrix, CsrMatrix};
    pub use reram_sim::{AcceleratorConfig, GpuModel, SolverKind};
}

/// Convenience: solve `A x = b` with CG under the given ReFloat format, returning the
/// result together with the quantized operator (for inspection of the stored blocks).
///
/// This is the "one call" entry point a downstream user needs to try the format on
/// their own matrix; for anything more elaborate use the pieces directly.
pub fn solve_cg_refloat(
    a: &refloat_sparse::CsrMatrix,
    b: &[f64],
    format: refloat_core::ReFloatConfig,
    config: &refloat_solvers::SolverConfig,
) -> (refloat_solvers::SolveResult, refloat_core::ReFloatMatrix) {
    let mut op = refloat_core::ReFloatMatrix::from_csr(a, format);
    let result = refloat_solvers::cg(&mut op, b, config);
    (result, op)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn umbrella_reexports_work_together() {
        let a = crate::matgen::generators::laplacian_2d(12, 12, 0.4).to_csr();
        let b = vec![1.0; a.nrows()];
        let (result, op) = crate::solve_cg_refloat(
            &a,
            &b,
            ReFloatConfig::new(4, 3, 8, 3, 8),
            &SolverConfig::relative(1e-8),
        );
        assert!(result.converged());
        assert!(op.num_blocks() > 0);
    }
}
