//! Domain scenario: map a Table V workload onto the ReFloat accelerator and the
//! Feinberg baseline, and walk through the §VI.B capacity arithmetic — clusters
//! required, clusters available, write/invoke rounds, per-SpMV and per-solve time.
//!
//! Run with: `cargo run --release --example accelerator_mapping [workload-name]`
//! (default workload: crystm03)

use refloat::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "crystm03".to_string());
    let workload = Workload::from_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}', using crystm03 (try e.g. wathen100, thermomech_TC)");
        Workload::Crystm03
    });
    let spec = workload.spec();
    println!(
        "workload {} (id {}), paper: {} rows / {} nnz\n",
        spec.name, spec.id, spec.nrows, spec.nnz
    );

    // Generate and block at the crossbar size.
    let a = workload.generate_csr(2023);
    let blocked = BlockedMatrix::from_csr(&a, 7).unwrap();
    println!(
        "generated analogue: {} rows, {} nnz, {} non-empty 128x128 blocks ({:.1} nnz/block)\n",
        a.nrows(),
        a.nnz(),
        blocked.num_blocks(),
        blocked.avg_nnz_per_block()
    );

    // Solve once in FP64 and once in ReFloat to get the iteration counts.
    let b = vec![1.0; a.nrows()];
    let cfg = SolverConfig::relative(1e-8);
    let double = cg(&mut a.clone(), &b, &cfg);
    let format = refloat::core::formats::table_vii(7, spec.refloat_fv == 16);
    let mut rf = ReFloatMatrix::from_csr(&a, format);
    let refloat = cg(&mut rf, &b, &cfg);
    println!(
        "iterations to 1e-8: double {} | refloat {}\n",
        double.iterations_label(),
        refloat.iterations_label()
    );

    // Capacity arithmetic and timing for both accelerators plus the GPU model.
    let blocks = blocked.num_blocks() as u64;
    for (label, hw, iters) in [
        (
            "ReFloat accelerator",
            AcceleratorConfig::refloat(&format),
            refloat.iterations as u64,
        ),
        (
            "Feinberg [ISCA'18] (fc)",
            AcceleratorConfig::feinberg(),
            double.iterations as u64,
        ),
    ] {
        let t = hw.solver_time(blocks, iters, SolverKind::Cg);
        println!("{label}:");
        println!(
            "  crossbars/cluster {:>4}   clusters available {:>6}   rounds per SpMV {:>4}",
            hw.crossbars_per_cluster, t.clusters_available, t.rounds_per_spmv
        );
        println!(
            "  SpMV {:>10.3} us (compute {:.3} us + writes {:.3} us)   solve {:>10.3} ms",
            t.spmv_total_s * 1e6,
            t.spmv_compute_s * 1e6,
            t.spmv_write_s * 1e6,
            t.solver_total_s * 1e3
        );
    }
    let gpu = GpuModel::v100();
    let gpu_t = gpu.solver_time_s(
        a.nnz() as u64,
        a.nrows() as u64,
        double.iterations as u64,
        SolverKind::Cg,
    );
    println!("GPU (modelled V100): solve {:.3} ms", gpu_t * 1e3);

    let rf_t = AcceleratorConfig::refloat(&format)
        .solver_time(blocks, refloat.iterations as u64, SolverKind::Cg)
        .solver_total_s;
    let fc_t = AcceleratorConfig::feinberg()
        .solver_time(blocks, double.iterations as u64, SolverKind::Cg)
        .solver_total_s;
    println!(
        "\nspeedups: ReFloat vs GPU {:.2}x, ReFloat vs Feinberg-fc {:.2}x",
        gpu_t / rf_t,
        fc_t / rf_t
    );
}
