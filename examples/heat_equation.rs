//! Domain scenario: steady-state heat conduction (a Poisson problem), the archetypal
//! PDE → `Ax = b` → iterative-solver workflow the paper's introduction motivates.
//!
//! A plate is discretized on an `n × n` grid with a heterogeneous conductivity field;
//! the resulting SPD system is solved with CG under (a) full FP64 and (b) the ReFloat
//! format, and the recovered temperature fields are compared.
//!
//! Run with: `cargo run --release --example heat_equation`

use refloat::prelude::*;
use refloat::sparse::vecops;

/// Assembles the 5-point finite-difference operator for `-∇·(k ∇T) = q` with Dirichlet
/// boundaries, where the conductivity `k` jumps by 100x in a central inclusion — the
/// kind of coefficient contrast that widens the matrix's exponent range.
fn assemble(n: usize) -> (CsrMatrix, Vec<f64>) {
    let idx = |i: usize, j: usize| i * n + j;
    let conductivity = |i: usize, j: usize| -> f64 {
        let (x, y) = (i as f64 / n as f64, j as f64 / n as f64);
        if (0.35..0.65).contains(&x) && (0.35..0.65).contains(&y) {
            100.0
        } else {
            1.0
        }
    };
    let mut coo = CooMatrix::new(n * n, n * n);
    let mut heat_source = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let r = idx(i, j);
            let k_here = conductivity(i, j);
            let mut diag = 0.0;
            let couple = |ii: isize, jj: isize, coo: &mut CooMatrix, diag: &mut f64| {
                if ii < 0 || jj < 0 || ii as usize >= n || jj as usize >= n {
                    *diag += k_here; // Dirichlet boundary contribution stays on the diagonal
                    return;
                }
                let k_face = 0.5 * (k_here + conductivity(ii as usize, jj as usize));
                coo.push(r, idx(ii as usize, jj as usize), -k_face);
                *diag += k_face;
            };
            couple(i as isize - 1, j as isize, &mut coo, &mut diag);
            couple(i as isize + 1, j as isize, &mut coo, &mut diag);
            couple(i as isize, j as isize - 1, &mut coo, &mut diag);
            couple(i as isize, j as isize + 1, &mut coo, &mut diag);
            coo.push(r, r, diag);
            // A hot spot near one corner drives the temperature field.
            let (x, y) = (i as f64 / n as f64, j as f64 / n as f64);
            heat_source[r] = (-((x - 0.2).powi(2) + (y - 0.2).powi(2)) / 0.01).exp();
        }
    }
    (coo.to_csr(), heat_source)
}

fn main() {
    let n = 96;
    let (a, q) = assemble(n);
    println!(
        "heat-conduction system: {} unknowns, {} non-zeros, conductivity contrast 100x\n",
        a.nrows(),
        a.nnz()
    );
    let cfg = SolverConfig::relative(1e-8).with_max_iterations(20_000);

    // Reference temperature field in double precision.
    let exact = cg(&mut a.clone(), &q, &cfg);
    println!(
        "FP64    CG: {:>5} iterations (residual {:.2e})",
        exact.iterations_label(),
        exact.final_residual
    );

    // ReFloat temperature field.
    let format = ReFloatConfig::new(5, 3, 3, 3, 8);
    let mut rf = ReFloatMatrix::from_csr(&a, format);
    let approx = cg(&mut rf, &q, &cfg);
    println!(
        "ReFloat CG: {:>5} iterations (residual {:.2e})   [{}]",
        approx.iterations_label(),
        approx.final_residual,
        format
    );

    // How close is the reduced-precision temperature field to the FP64 one?
    let err = vecops::rel_err(&approx.x, &exact.x);
    let peak_exact = exact.x.iter().cloned().fold(0.0f64, f64::max);
    let peak_approx = approx.x.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\ntemperature field: relative difference {:.2e}; peak temperature {:.4} (FP64) vs {:.4} (ReFloat)",
        err, peak_exact, peak_approx
    );
    println!(
        "the quantized operator solves a nearby system ({}-bit matrix fractions), so the fields\n\
         agree to a few percent while the solver still drives its residual below 1e-8.",
        format.f
    );
    assert!(exact.converged() && approx.converged());
}
