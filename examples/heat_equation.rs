//! Domain scenario: transient heat conduction, the archetypal PDE → `Ax = b` →
//! iterative-solver workflow the paper's introduction motivates — here as the *time
//! stepping* loop a real simulation runs, not a single steady solve.
//!
//! A plate is discretized on an `n × n` grid with a heterogeneous conductivity field;
//! implicit time integration then yields one SPD solve per step, where consecutive
//! operators differ only by slow coefficient drift (and the mass/Δt term) and the
//! source phase advances a little each step.  The chain is solved twice through the
//! ReFloat runtime, to the same true-fp64 residual target via mixed-precision
//! refinement:
//!
//! 1. cold — every step is an independent job: full re-quantization, full crossbar
//!    reprogramming, refinement from zero;
//! 2. as a [`SolveSequence`] — each step re-encodes only the blocks its drift touched
//!    and warm-starts refinement from the previous temperature field.
//!
//! Run with: `cargo run --release --example heat_equation`

use std::sync::Arc;

use refloat::prelude::*;

/// Assembles the 5-point finite-difference operator for `-∇·(k ∇T) = q` with Dirichlet
/// boundaries, where the conductivity `k` jumps by 100x in a central inclusion — the
/// kind of coefficient contrast that widens the matrix's exponent range.
fn assemble(n: usize) -> CooMatrix {
    let idx = |i: usize, j: usize| i * n + j;
    let conductivity = |i: usize, j: usize| -> f64 {
        let (x, y) = (i as f64 / n as f64, j as f64 / n as f64);
        if (0.35..0.65).contains(&x) && (0.35..0.65).contains(&y) {
            100.0
        } else {
            1.0
        }
    };
    let mut coo = CooMatrix::new(n * n, n * n);
    for i in 0..n {
        for j in 0..n {
            let r = idx(i, j);
            let k_here = conductivity(i, j);
            let mut diag = 0.0;
            let couple = |ii: isize, jj: isize, coo: &mut CooMatrix, diag: &mut f64| {
                if ii < 0 || jj < 0 || ii as usize >= n || jj as usize >= n {
                    *diag += k_here; // Dirichlet boundary contribution stays on the diagonal
                    return;
                }
                let k_face = 0.5 * (k_here + conductivity(ii as usize, jj as usize));
                coo.push(r, idx(ii as usize, jj as usize), -k_face);
                *diag += k_face;
            };
            couple(i as isize - 1, j as isize, &mut coo, &mut diag);
            couple(i as isize + 1, j as isize, &mut coo, &mut diag);
            couple(i as isize, j as isize - 1, &mut coo, &mut diag);
            couple(i as isize, j as isize + 1, &mut coo, &mut diag);
            coo.push(r, r, diag);
        }
    }
    coo
}

const TOLERANCE: f64 = 1e-8;

fn plan(step: &SolveStep, arm: &str) -> SolvePlan {
    SolvePlan::new(
        "sim",
        MatrixHandle::new(format!("{arm}-{}", step.index), step.matrix.clone()),
        ReFloatConfig::new(4, 3, 8, 3, 8),
    )
    .rhs(Arc::new(step.rhs.clone()))
    .refinement(RefinementSpec::to_target(TOLERANCE))
    .build()
    .expect("valid plan")
}

fn runtime() -> SolveClient {
    SolveRuntime::start(RuntimeConfig {
        workers: 1,
        cache_capacity: 8,
        ..RuntimeConfig::default()
    })
}

fn main() {
    let n = 24;
    let steps: Vec<SolveStep> = TransientChain::new(
        assemble(n),
        TransientSpec::default()
            .with_steps(12)
            .with_seed(2023)
            // Implicit stepping: a mass/Δt diagonal term, slow per-step conductivity
            // drift in a window of the domain, and a source whose phase advances.
            .with_mass(0.5, 0.0)
            .with_drift(1e-7, 0.25)
            .with_rhs_phase(1e-6),
    )
    .collect();
    println!(
        "transient heat conduction: {} unknowns, {} implicit time steps, conductivity contrast 100x\n",
        steps[0].matrix.nrows(),
        steps.len()
    );

    // Arm 1: every time step pays the full model cycle (encode + program + cold solve).
    let cold = runtime();
    let mut cold_x = Vec::new();
    for step in &steps {
        let outcome = cold
            .submit(plan(step, "cold"))
            .expect("accepting")
            .wait()
            .completed()
            .expect("cold steps complete");
        assert!(outcome.result.converged());
        cold_x.push(outcome.result.x);
    }
    let cold_report = cold.shutdown();

    // Arm 2: the same chain as a solve sequence — incremental re-encode plus a
    // warm-started refinement outer loop.
    let warm = runtime();
    let mut seq = warm.sequence();
    let mut warm_x = Vec::new();
    for step in &steps {
        let outcome = seq
            .step(plan(step, "seq"))
            .expect("accepting")
            .completed()
            .expect("sequence steps complete");
        assert!(outcome.result.converged());
        warm_x.push(outcome.result.x);
    }
    drop(seq);
    let warm_report = warm.shutdown();

    // Both arms hit the same *true* fp64 residual target on every step.
    let worst = |xs: &[Vec<f64>]| {
        steps
            .iter()
            .zip(xs)
            .map(|(s, x)| s.matrix.relative_residual(&s.rhs, x))
            .fold(0.0, f64::max)
    };
    let (cold_worst, warm_worst) = (worst(&cold_x), worst(&warm_x));
    println!(
        "cold arm: worst true residual {cold_worst:.2e} over {} steps",
        steps.len()
    );
    println!(
        "sequence: worst true residual {warm_worst:.2e}, {} warm-start hits, \
         {} blocks re-encoded / {} reused",
        warm_report.warm_start_hits, warm_report.blocks_reencoded, warm_report.blocks_reused
    );
    assert!(cold_worst <= TOLERANCE && warm_worst <= TOLERANCE);
    assert_eq!(warm_report.warm_start_hits, steps.len() as u64 - 1);

    let reduction = cold_report.simulated_total_s / warm_report.simulated_total_s;
    println!(
        "\nmodel cycle: {:.3e}s cold vs {:.3e}s warm — {reduction:.1}x less simulated \
         accelerator time for the same temperatures",
        cold_report.simulated_total_s, warm_report.simulated_total_s
    );
    assert!(reduction > 1.0, "the sequence arm must be cheaper");
}
