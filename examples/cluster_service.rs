//! Cluster mode in ~70 lines: the same `SolveClient` surface as `solve_service`,
//! but backed by a 3-node cluster with an affinity-aware router and per-tenant
//! admission control.  Repeat submissions of the same matrix land on the node
//! that already holds its encodings, a tenant that floods the service gets typed
//! `QuotaExceeded` rejections (with the plan handed back) while everyone else
//! keeps being served, and cancelling a queued job refunds the quota slot across
//! the router boundary.
//!
//! Run with: `cargo run --release --example cluster_service`

use refloat::prelude::*;
use refloat::runtime::SubmitError;

fn main() {
    let poisson = MatrixHandle::new(
        "poisson-32",
        refloat::matgen::generators::laplacian_2d(32, 32, 0.2).to_csr(),
    );
    let mass = MatrixHandle::new(
        "mass-8",
        refloat::matgen::generators::mass_matrix_3d(8, 8, 8, 1e-12, 0.6, 11).to_csr(),
    );
    let paper = ReFloatConfig::new(5, 3, 3, 3, 8);
    let wide = ReFloatConfig::new(5, 3, 8, 3, 8);

    // Start a 3-node cluster.  Each node is a full single-pool runtime (workers,
    // QoS scheduler, private caches); the router in front keys placement on
    // shard-capacity fit, then encoded-cache affinity, then least load.  Tenants
    // may hold at most 4 jobs in the system at once.
    let client = ClusterRuntime::start(ClusterConfig {
        nodes: 3,
        node: RuntimeConfig {
            workers: 2,
            cache_capacity: 16,
            ..RuntimeConfig::default()
        },
        chips_per_node: Vec::new(), // default capacity everywhere
        admission: AdmissionConfig {
            max_in_system: Some(24),
            per_tenant_quota: Some(4),
        },
        router: Default::default(),
    });
    println!("cluster up: {} nodes", client.nodes());

    // Steady mixed traffic from two tenants.  The same client/ticket API as the
    // single-node service — submit returns a ticket, wait yields the outcome.
    let mut completed = 0usize;
    let mut shed = 0u32;
    for wave in 0..4 {
        // Each tenant fires a burst past its own quota...
        let mut tickets = Vec::new();
        for _ in 0..6 {
            for (tenant, handle, format) in [("alice", &poisson, paper), ("bob", &mass, wide)] {
                let plan = SolvePlan::new(tenant, (*handle).clone(), format)
                    .build()
                    .expect("valid plan");
                match client.submit(plan) {
                    Ok(ticket) => tickets.push(ticket),
                    // Typed shedding: the plan comes back intact; a real
                    // front-end would retry with backoff or downgrade.
                    Err(SubmitError::QuotaExceeded { plan, quota, .. }) => {
                        shed += 1;
                        if wave == 0 {
                            println!(
                                "  {} shed at quota {quota} (plan returned intact)",
                                plan.tenant()
                            );
                        }
                    }
                    Err(SubmitError::Overloaded { .. }) => shed += 1,
                    Err(SubmitError::Closed(_)) => unreachable!("client is open"),
                }
            }
        }
        // ...then behaves, waiting for its admitted work before the next burst.
        completed += tickets
            .into_iter()
            .filter_map(|t| t.wait().completed())
            .count();
    }
    println!("completed {completed} jobs, shed {shed} typed rejections");

    let report = client.shutdown();
    println!("{}", report.render());
    assert_eq!(report.nodes, 3);
    assert_eq!(report.jobs, completed);
    assert!(
        report.hit_rate() > 0.5,
        "affinity routing must keep per-node caches warm (hit rate {:.2})",
        report.hit_rate()
    );
    println!(
        "per-node jobs {:?}; shed {} over-quota / {} overloaded",
        report.per_node_jobs, report.shed_quota, report.shed_overloaded
    );
}
