//! Ablation scenario: sweep the ReFloat bit budget on one workload and print the
//! convergence / hardware-cost trade-off — the design-space exploration behind the
//! paper's choice of `e = f = 3`, `fv = 8` (Table VII).
//!
//! Run with: `cargo run --release --example format_explorer`

use refloat::prelude::*;
use refloat::sim::cost;

fn main() {
    // A crystm-like mass matrix: tiny entries, strong block exponent locality.
    let a = refloat::matgen::generators::mass_matrix_3d(12, 12, 12, 1e-12, 0.8, 7).to_csr();
    let b = vec![1.0; a.nrows()];
    let cfg = SolverConfig::relative(1e-8)
        .with_max_iterations(5_000)
        .with_trace(false);
    let reference = cg(&mut a.clone(), &b, &cfg);
    println!(
        "workload: {} rows, {} nnz; FP64 CG converges in {} iterations\n",
        a.nrows(),
        a.nnz(),
        reference.iterations_label()
    );

    println!(
        "{:>3} {:>3} {:>4} {:>4}  {:>11} {:>14} {:>13} {:>12}",
        "e", "f", "ev", "fv", "iterations", "xbars/cluster", "cycles/block", "mem ratio"
    );
    for &(e, f, ev, fv) in &[
        (1u32, 1u32, 1u32, 4u32),
        (2, 2, 2, 6),
        (3, 3, 3, 8),  // the paper's default
        (3, 3, 3, 16), // the wide-vector variant used for wathen100 / Dubcova2
        (3, 8, 3, 8),
        (4, 8, 4, 16),
        (5, 16, 5, 24),
    ] {
        let format = ReFloatConfig::new(5, e, f, ev, fv);
        let mut op = ReFloatMatrix::from_csr(&a, format);
        let result = cg(&mut op, &b, &cfg);
        let blocked = BlockedMatrix::from_csr(&a, 5).unwrap();
        let ratio = refloat::core::memory::memory_overhead_ratio(&blocked, &format);
        println!(
            "{:>3} {:>3} {:>4} {:>4}  {:>11} {:>14} {:>13} {:>12.3}",
            e,
            f,
            ev,
            fv,
            result.iterations_label(),
            cost::crossbars_per_cluster(e, f),
            cost::cycle_count_eq3(e, f, ev, fv),
            ratio
        );
    }
    println!(
        "\nreading the table: more bits always cost more crossbars/cycles/memory but only help\n\
         convergence up to a point — the paper's (3, 3)(3, 8) sits at the knee, which is why it\n\
         wins the Fig. 8 comparison by such a margin."
    );
}
