//! Multi-tenant serving in ~40 lines: three tenants share two matrices at different
//! precisions; the runtime schedules their jobs over a pool of simulated accelerators
//! and the encoded-matrix cache deduplicates quantization work.
//!
//! Run with: `cargo run --release --example solve_service`

use refloat::prelude::*;

fn main() {
    // Two matrices the tenants care about.
    let poisson = MatrixHandle::new(
        "poisson-32",
        refloat::matgen::generators::laplacian_2d(32, 32, 0.2).to_csr(),
    );
    let mass = MatrixHandle::new(
        "mass-8",
        refloat::matgen::generators::mass_matrix_3d(8, 8, 8, 1e-12, 0.6, 11).to_csr(),
    );

    // Tenants pick their own precision: paper bits for the stencil, a wider matrix
    // fraction for the badly-scaled mass matrix (the EXPERIMENTS E10 effect).
    let paper = ReFloatConfig::new(5, 3, 3, 3, 8);
    let wide = ReFloatConfig::new(5, 3, 8, 3, 8);

    let mut jobs = Vec::new();
    for round in 0..12 {
        jobs.push(SolveJob::new("alice", poisson.clone(), paper));
        jobs.push(SolveJob::new("bob", mass.clone(), wide));
        if round % 3 == 0 {
            jobs.push(SolveJob::new("carol", poisson.clone(), wide));
        }
    }

    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 4,
        queue_capacity: 8,
        cache_capacity: 16,
        chip_crossbars: None,
    });
    let outcome = runtime.run_batch(jobs);

    println!("{}", outcome.report.render());
    for job in outcome.jobs.iter().take(3) {
        println!(
            "job {}: tenant {} on {} -> {} iterations, {:?} cache, {} sim cycles",
            job.job_id,
            job.telemetry.tenant,
            job.telemetry.matrix,
            job.result.iterations,
            job.telemetry.cache,
            job.telemetry.simulated.cycles,
        );
    }

    assert!(outcome.jobs.iter().all(|j| j.result.converged()));
    // 3 distinct (matrix, format) pairs -> 3 encodes for 28 jobs.
    assert_eq!(outcome.report.cache.misses, 3);
}
