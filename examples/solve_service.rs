//! Service mode in ~60 lines: a long-lived `SolveClient` serving three tenants who
//! share two matrices at different precisions and urgencies.  Interactive traffic
//! jumps the queue, a batch job rides along without starving, a queued job is
//! cancelled before it starts, and the shared encoded-matrix cache deduplicates
//! quantization work across all of it.  Mid-traffic, the live metrics registry is
//! polled without draining anything.
//!
//! Run with: `cargo run --release --example solve_service`

use refloat::prelude::*;

fn main() {
    // Two matrices the tenants care about.
    let poisson = MatrixHandle::new(
        "poisson-32",
        refloat::matgen::generators::laplacian_2d(32, 32, 0.2).to_csr(),
    );
    let mass = MatrixHandle::new(
        "mass-8",
        refloat::matgen::generators::mass_matrix_3d(8, 8, 8, 1e-12, 0.6, 11).to_csr(),
    );

    // Tenants pick their own precision: paper bits for the stencil, a wider matrix
    // fraction for the badly-scaled mass matrix (the EXPERIMENTS E10 effect).
    let paper = ReFloatConfig::new(5, 3, 3, 3, 8);
    let wide = ReFloatConfig::new(5, 3, 8, 3, 8);

    // Start the service: a persistent worker pool behind a QoS scheduler.
    let client = SolveRuntime::start(RuntimeConfig {
        workers: 4,
        queue_capacity: 64,
        cache_capacity: 16,
        ..RuntimeConfig::default()
    });

    // A background batch sweep from carol rides at batch priority...
    let carol: Vec<SolveTicket> = (0..4)
        .map(|round| {
            let plan = SolvePlan::new(format!("carol-{round}"), poisson.clone(), wide)
                .priority(Priority::Batch)
                .build()
                .expect("valid plan");
            client.submit(plan).expect("service is accepting")
        })
        .collect();

    // ...while alice and bob submit interactive traffic that overtakes it.
    let mut tickets = Vec::new();
    for round in 0..12 {
        for (tenant, handle, format) in [("alice", &poisson, paper), ("bob", &mass, wide)] {
            let plan = SolvePlan::new(format!("{tenant}-{round}"), handle.clone(), format)
                .priority(Priority::Interactive)
                .build()
                .expect("valid plan");
            tickets.push(client.submit(plan).expect("service is accepting"));
        }
    }

    // One more batch job — submitted and then cancelled before any worker takes it.
    let doomed = client
        .submit(
            SolvePlan::new("carol-cancelled", poisson.clone(), wide)
                .priority(Priority::Batch)
                .build()
                .expect("valid plan"),
        )
        .expect("service is accepting");
    if doomed.cancel() {
        println!("cancelled carol's extra sweep before it touched a chip");
        assert!(doomed.wait().is_cancelled());
    } else {
        // A worker grabbed it first on a fast machine; in-flight jobs finish.
        assert!(doomed.wait().completed().is_some());
    }

    // Collect the interactive results as they land; the batch sweep afterwards.
    for ticket in tickets.into_iter().chain(carol) {
        let outcome = ticket.wait().completed().expect("ran to completion");
        assert!(outcome.result.converged());
    }

    // Live observability: poll the metrics registry mid-traffic.  No drain, no
    // shutdown — the snapshot is a lock-free read of the same counters the final
    // report aggregates, and the full vocabulary exists even for idle metrics.
    let live = client.metrics_snapshot();
    let done = live
        .counter(refloat::runtime::metric_names::JOBS_COMPLETED)
        .expect("registered at startup");
    let hits = live
        .counter(refloat::runtime::metric_names::CACHE_HITS)
        .expect("registered at startup");
    println!("live snapshot: {done} jobs completed, {hits} cache hits so far\n");
    assert!(done >= 28, "all collected jobs are visible live");

    // An invalid plan is a typed error listing every conflict — never a panic.
    let err = SolvePlan::new("mallory", poisson.clone(), wide)
        .refinement(RefinementSpec::to_target(1e-12))
        .sharding(4)
        .auto_format(-3.0)
        .build()
        .unwrap_err();
    println!("rejected mallory's plan:\n{err}\n");

    let report = client.shutdown();
    println!("{}", report.render());

    // 3 distinct (matrix, format) pairs -> 3 encodes for 28 completed jobs.
    assert_eq!(report.cache.misses, 3);
    assert_eq!(report.converged, report.jobs);
}
