//! Downstream-user scenario: solve *your own* matrix in ReFloat format.
//!
//! Reads a Matrix Market file (e.g. a real SuiteSparse download such as `crystm03.mtx`),
//! solves `A x = 1` with CG under FP64 and under ReFloat, and prints the comparison the
//! paper's Table VI makes — so the reproduction can be validated against the actual
//! SuiteSparse matrices when they are available.
//!
//! Usage: `cargo run --release --example matrix_market_solve -- path/to/matrix.mtx [e f ev fv]`
//!
//! Without an argument it writes a small demo matrix to a temporary file first, so the
//! example is runnable out of the box.

use refloat::prelude::*;
use refloat::sparse::mm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.first() {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // No input given: generate a small Wathen matrix and write it as .mtx.
            let demo = refloat::matgen::generators::wathen(12, 12, 7);
            let path = std::env::temp_dir().join("refloat_demo_wathen12.mtx");
            mm::write_coo(&path, &demo, "demo matrix written by matrix_market_solve").unwrap();
            println!(
                "no input file given; wrote and using demo matrix {}\n",
                path.display()
            );
            path
        }
    };
    let bits: Vec<u32> = args.iter().skip(1).filter_map(|a| a.parse().ok()).collect();
    let (e, f, ev, fv) = match bits.as_slice() {
        [e, f, ev, fv, ..] => (*e, *f, *ev, *fv),
        _ => (3, 3, 3, 8),
    };

    let a = match mm::read_coo(&path) {
        Ok(coo) => coo.to_csr(),
        Err(err) => {
            eprintln!("could not read {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    println!(
        "matrix: {} rows x {} cols, {} non-zeros, symmetric: {}",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.is_symmetric(1e-12 * a.max_abs())
    );
    if a.nrows() != a.ncols() {
        eprintln!("need a square matrix for the iterative solvers");
        std::process::exit(1);
    }

    let b = vec![1.0; a.nrows()];
    let cfg = SolverConfig::relative(1e-8).with_max_iterations(50_000);

    let exact = cg(&mut a.clone(), &b, &cfg);
    println!(
        "\nFP64    CG: {:>6} iterations, final residual {:.2e}",
        exact.iterations_label(),
        exact.final_residual
    );

    let format = ReFloatConfig::new(7, e, f, ev, fv);
    let (quant, op) = refloat::solve_cg_refloat(&a, &b, format, &cfg);
    println!(
        "ReFloat CG: {:>6} iterations, final residual {:.2e}   [{} — {} blocks, {:.3}x memory]",
        quant.iterations_label(),
        quant.final_residual,
        format,
        op.num_blocks(),
        op.storage_bits() as f64 / refloat::core::memory::double_storage_bits(a.nnz()) as f64
    );

    if exact.converged() && quant.converged() {
        println!(
            "\niteration overhead of the reduced-precision solve: {:+} iterations",
            quant.iterations as i64 - exact.iterations as i64
        );
    } else {
        println!(
            "\none of the solves did not converge — try more fraction bits (e.g. `-- {} 8 3 16`)",
            path.display()
        );
    }
}
