//! Quickstart: solve one linear system three ways and compare.
//!
//! Builds a small shifted-Poisson system, solves it with (1) exact FP64 CG, (2) CG over
//! the ReFloat-quantized operator with the paper's default bit budget, and (3) CG over
//! the Feinberg exponent-truncation baseline, then reports iterations, residuals,
//! storage footprint and the modelled accelerator time.
//!
//! Run with: `cargo run --release --example quickstart`

use refloat::core::feinberg::FeinbergOperator;
use refloat::core::memory;
use refloat::prelude::*;

fn main() {
    // --- Problem setup: 64x64 grid Poisson with a small shift (SPD, kappa ~ 1e2).
    let a = refloat::matgen::generators::laplacian_2d(64, 64, 0.05).to_csr();
    let b = vec![1.0; a.nrows()];
    let cfg = SolverConfig::relative(1e-8);
    println!("system: {} rows, {} non-zeros\n", a.nrows(), a.nnz());

    // --- (1) Exact double precision.
    let exact = cg(&mut a.clone(), &b, &cfg);
    println!(
        "FP64      CG: {:>5} iterations, final residual {:.2e}",
        exact.iterations_label(),
        exact.final_residual
    );

    // --- (2) ReFloat(5, 3, 3)(3, 8): 32x32 blocks, 3-bit exponent offsets, 3-bit
    //         matrix fractions, 8-bit vector fractions.
    let format = ReFloatConfig::new(5, 3, 3, 3, 8);
    let mut refloat_op = ReFloatMatrix::from_csr(&a, format);
    let refloat = cg(&mut refloat_op, &b, &cfg);
    println!(
        "ReFloat   CG: {:>5} iterations, final residual {:.2e}   [{}]",
        refloat.iterations_label(),
        refloat.final_residual,
        format
    );

    // --- (3) The Feinberg baseline (exact fractions, fixed 6-bit exponent window).
    let mut feinberg_op = FeinbergOperator::new(a.clone());
    let feinberg = cg(
        &mut feinberg_op,
        &b,
        &cfg.clone().with_max_iterations(2_000),
    );
    println!(
        "Feinberg  CG: {:>5} iterations, final residual {:.2e}\n",
        feinberg.iterations_label(),
        feinberg.final_residual
    );

    // --- Storage: ReFloat block storage vs 32+32+64-bit COO (Fig. 4 / Table VIII).
    let blocked = BlockedMatrix::from_csr(&a, format.b).unwrap();
    let ratio = memory::memory_overhead_ratio(&blocked, &format);
    println!(
        "matrix storage: {:.1} KiB in refloat vs {:.1} KiB in double ({}x reduction)",
        memory::refloat_storage_bits(&blocked, &format) as f64 / 8.0 / 1024.0,
        memory::double_storage_bits(blocked.nnz()) as f64 / 8.0 / 1024.0,
        (1.0 / ratio).round() as u64
    );

    // --- Modelled accelerator time versus the GPU baseline.
    let hw = AcceleratorConfig::refloat(&ReFloatConfig::new(7, 3, 3, 3, 8));
    let blocked128 = BlockedMatrix::from_csr(&a, 7).unwrap();
    let accel = hw.solver_time(
        blocked128.num_blocks() as u64,
        refloat.iterations as u64,
        SolverKind::Cg,
    );
    let gpu = GpuModel::v100().solver_time_s(
        a.nnz() as u64,
        a.nrows() as u64,
        exact.iterations as u64,
        SolverKind::Cg,
    );
    println!(
        "modelled solver time: GPU {:.3} ms, ReFloat accelerator {:.3} ms ({:.1}x speedup)",
        gpu * 1e3,
        accel.solver_total_s * 1e3,
        gpu / accel.solver_total_s
    );
}
