//! The reusable serving unit a cluster is built from.
//!
//! Everything that used to *be* "the runtime" — the QoS scheduler, the worker pool
//! of simulated accelerators, the LRU encoded-matrix cache, the format-decision
//! cache, and the per-pool telemetry log — lives in one [`Node`].  A single-node
//! [`SolveClient`](crate::SolveClient) wraps exactly one of them (bitwise-identical
//! to the pre-cluster runtime), and a
//! [`ClusterRuntime`](crate::cluster::ClusterRuntime) fans submissions out over
//! several through the affinity-aware router of [`crate::cluster`].
//!
//! A node's caches are deliberately **not** shared across the cluster: cache
//! affinity only pays off because each node keeps its own working set hot, and the
//! router's fingerprint stickiness is what keeps repeat traffic landing on the node
//! that already holds its encodings.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use refloat_telemetry::{Clock, Counter, MetricsRegistry, TraceSink, WallClock};

use crate::cache::EncodedMatrixCache;
use crate::client::QueuedTicket;
use crate::decision::FormatDecisionCache;
use crate::health::{FaultPolicy, HealthTracker};
use crate::sched::JobScheduler;
use crate::telemetry::{metric_names, JobMetricHandles, JobTelemetry};
use crate::worker;
use crate::RuntimeConfig;

/// State shared between a node's handle, its worker threads, and every ticket it
/// issued (tickets keep the core alive so `cancel` works after the handle moves).
pub(crate) struct NodeCore {
    /// This node's index in its cluster (0 for a single-node runtime).
    pub node_id: usize,
    /// Global id of this node's first worker: worker `w` of node `n` executes as
    /// fleet-wide worker `worker_id_base + w`, so per-worker report attribution
    /// stays collision-free across nodes.
    pub worker_id_base: usize,
    pub sched: JobScheduler<QueuedTicket>,
    pub cache: Arc<EncodedMatrixCache>,
    pub decisions: Arc<FormatDecisionCache>,
    pub chip_crossbars: Option<u64>,
    pub workers: usize,
    pub next_id: AtomicU64,
    /// Telemetry of every completed job, in completion order (the report source).
    pub completed: Mutex<Vec<JobTelemetry>>,
    pub cancelled: AtomicU64,
    /// The live metrics registry: workers stream job completions into it, so it is
    /// pollable mid-traffic without draining.  A cluster's nodes all share one
    /// registry (per-node dimensions are separate counter names).
    pub metrics: Arc<MetricsRegistry>,
    /// This node's completion counter (`node<i>_jobs_completed`), pre-fetched so
    /// the per-job hot path stays atomic-increments-only.
    pub node_jobs: Arc<Counter>,
    /// The trace sink, when the runtime was configured with one.
    pub trace: Option<Arc<TraceSink>>,
    /// The fault-injection policy, when the runtime was configured with one.
    pub fault: Option<FaultPolicy>,
    /// The fleet health ledger (shared across every node of a cluster).
    pub health: Arc<HealthTracker>,
    /// The clock every wall-time telemetry field is read from.  Sourced from the
    /// trace sink when tracing is configured (so a `ManualClock` sink pins *all*
    /// host-time fields, not just trace timestamps), else a fresh [`WallClock`].
    pub clock: Arc<dyn Clock>,
}

/// One serving unit: a worker pool over its own scheduler, caches, and telemetry.
///
/// Constructed by [`SolveClient`](crate::SolveClient) (one node) or
/// [`ClusterRuntime`](crate::cluster::ClusterRuntime) (several).  Dropping a node
/// closes its scheduler and joins its workers.
pub struct Node {
    core: Arc<NodeCore>,
    handles: Vec<JoinHandle<()>>,
}

impl Node {
    /// Spawns the node's worker pool.  `metrics` is shared (a cluster passes one
    /// registry to every node); the caller is responsible for the pool-level
    /// gauges (`workers`, `nodes`) since only it knows the fleet shape.
    pub(crate) fn spawn(
        node_id: usize,
        worker_id_base: usize,
        config: &RuntimeConfig,
        cache: Arc<EncodedMatrixCache>,
        decisions: Arc<FormatDecisionCache>,
        metrics: Arc<MetricsRegistry>,
        health: Arc<HealthTracker>,
    ) -> Self {
        assert!(config.workers >= 1, "a node needs at least one worker");
        assert!(
            config.queue_capacity >= 1,
            "queue capacity must be at least 1"
        );
        // Registering up front creates the full metric vocabulary, so a snapshot
        // taken before the first job completes already carries every (zero) counter.
        let _ = JobMetricHandles::register(&metrics);
        let node_jobs = metrics.counter(&metric_names::node_jobs_completed(node_id));
        let clock: Arc<dyn Clock> = match &config.trace {
            Some(sink) => sink.clock(),
            None => Arc::new(WallClock::new()),
        };
        let core = Arc::new(NodeCore {
            node_id,
            worker_id_base,
            sched: JobScheduler::new(config.queue_capacity, config.scheduler),
            cache,
            decisions,
            chip_crossbars: config.chip_crossbars,
            workers: config.workers,
            next_id: AtomicU64::new(0),
            completed: Mutex::new(Vec::new()),
            cancelled: AtomicU64::new(0),
            metrics,
            node_jobs,
            trace: config.trace.clone(),
            fault: config.fault,
            health,
            clock,
        });
        let handles = (0..config.workers)
            .map(|local| {
                let worker_id = worker_id_base + local;
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("refloat-worker-{worker_id}"))
                    .spawn(move || worker::worker_loop(worker_id, &core))
                    // refloat-analysis: allow(panic-in-service-path) — thread-spawn
                    // failure at startup is unrecoverable for the pool; nothing is
                    // in flight yet, so failing fast is correct.
                    .expect("spawn worker thread")
            })
            .collect();
        Node { core, handles }
    }

    /// The shared core (scheduler, caches, telemetry).
    pub(crate) fn core(&self) -> &Arc<NodeCore> {
        &self.core
    }

    /// This node's index in its cluster (0 for a single-node runtime).
    pub fn id(&self) -> usize {
        self.core.node_id
    }

    /// Jobs currently queued on or running inside this node — the load signal the
    /// cluster router balances on.
    pub fn load(&self) -> usize {
        self.core.sched.load()
    }

    /// Stops admission into this node's scheduler (pending jobs still drain).
    pub(crate) fn close(&self) {
        self.core.sched.close();
    }

    /// Blocks until nothing is pending or in flight on this node.
    pub(crate) fn wait_idle(&self) {
        self.core.sched.wait_idle();
    }

    /// Joins the worker threads (call after [`close`](Self::close); idempotent).
    pub(crate) fn join_workers(&mut self) {
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.core.sched.close();
        self.join_workers();
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("node_id", &self.core.node_id)
            .field("workers", &self.core.workers)
            .field("worker_id_base", &self.core.worker_id_base)
            .finish()
    }
}
