//! The QoS-aware job scheduler: priority classes, soft deadlines, age-based
//! anti-starvation promotion, and deterministic tie-breaking.
//!
//! This replaces the FIFO consumption path of [`BoundedQueue`](crate::BoundedQueue)
//! for the service: submission still blocks when the pending set is at capacity
//! (backpressure is unchanged), but workers no longer dequeue in arrival order —
//! they dequeue the *most urgent* admissible job.
//!
//! # Scheduling order
//!
//! Each pending job carries a [`Priority`] class and an optional soft deadline.
//! When a worker asks for work, the scheduler picks the minimum of the key
//!
//! ```text
//! (effective class, seniority band, deadline, submission id)
//! ```
//!
//! where
//!
//! 1. **effective class** is the job's class rank (interactive `0`, standard `1`,
//!    batch `2`) minus its age-based promotions (below), saturating at `0`;
//! 2. **seniority band** splits one effective class into *senior* jobs — those that
//!    have already waited at least [`promote_every`](SchedulerPolicy::promote_every)
//!    dequeues — ahead of fresh jobs with a soft deadline, ahead of fresh
//!    deadline-free jobs.  Seniors run in submission order; the band is what keeps a
//!    sustained deadline-carrying flood from starving an old deadline-free job;
//! 3. **deadline** orders the fresh-deadline band earliest-deadline-first (a soft
//!    deadline lets a job overtake *fresh* deadline-free peers of its class, never a
//!    senior);
//! 4. **submission id** breaks every remaining tie.
//!
//! # Anti-starvation promotion
//!
//! A waiting job is promoted one class for every
//! [`promote_every`](SchedulerPolicy::promote_every) jobs the scheduler dequeues
//! while it waits (and, independently of class, enters the senior band of its
//! current effective class at the first promotion interval).  Age is measured in
//! *dequeues*, not wall-clock time, which makes the promotion point — and therefore
//! the whole dequeue order — a deterministic function of the submission sequence.
//! A batch-class job can be overtaken by at most `2 × promote_every` later arrivals
//! (two classes to climb; by then it is also senior, so neither fresher ids *nor
//! fresher deadlines* outrank it) plus the better-ranked jobs that were already
//! pending when it was submitted.  The same bound holds against deadline-carrying
//! floods: a deadline never jumps a senior job.
//!
//! # Determinism guarantees
//!
//! * **Job numerics never depend on the scheduler.**  Every job is a pure function
//!   of its matrix, right-hand side(s) and configuration, so reordering affects
//!   wall-clock telemetry only (see the crate-level *Determinism* section).
//! * **Equal-priority traffic keeps today's FIFO order.**  Ties inside one
//!   effective class (no deadlines) break by submission id, so a trace submitted at
//!   a single priority dequeues in exactly the order the old `BoundedQueue` path
//!   used — byte-for-byte the same telemetry attribution and the same
//!   bitwise-deterministic result digest.
//! * **The dequeue order itself is deterministic** given the interleaving of
//!   submissions and dequeues, because promotion ages in dequeue counts: no
//!   wall-clock reading participates in the ordering unless soft deadlines are
//!   used (deadlines are resolved to clock seconds at submission and compared as
//!   plain values, so two runs submitting the same deadlines in the same order
//!   still agree — and a `ManualClock` pins them exactly).

use std::sync::{Condvar, Mutex};

use refloat_telemetry::sync;

/// The service class of a job: how urgently the scheduler should run it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic; always scheduled first.
    Interactive,
    /// The default class.
    #[default]
    Standard,
    /// Throughput traffic that tolerates waiting (but is never starved: see the
    /// module docs on anti-starvation promotion).
    Batch,
}

impl Priority {
    /// Every class, in rank order (most to least urgent).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// The class rank the scheduler orders by (0 = most urgent).
    pub fn rank(self) -> u8 {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }

    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which dequeue order the scheduler uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingMode {
    /// Strict arrival order (the pre-service behaviour); priorities and deadlines
    /// are recorded in telemetry but ignored for ordering.
    Fifo,
    /// Priority classes with deadline ordering and anti-starvation promotion (the
    /// default; see the module docs).
    Priority,
}

/// Scheduler knobs of a [`RuntimeConfig`](crate::RuntimeConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerPolicy {
    /// Dequeue order.
    pub mode: SchedulingMode,
    /// A waiting job is promoted one class per this many dequeues (0 disables
    /// promotion, which can starve batch traffic under sustained interactive
    /// load).  Ignored in [`SchedulingMode::Fifo`].
    pub promote_every: u64,
}

impl SchedulerPolicy {
    /// Strict FIFO (the pre-service behaviour).
    pub fn fifo() -> Self {
        SchedulerPolicy {
            mode: SchedulingMode::Fifo,
            promote_every: 0,
        }
    }

    /// Priority scheduling with the given promotion age (in dequeues per class).
    pub fn priority(promote_every: u64) -> Self {
        SchedulerPolicy {
            mode: SchedulingMode::Priority,
            promote_every,
        }
    }
}

impl Default for SchedulerPolicy {
    fn default() -> Self {
        SchedulerPolicy::priority(32)
    }
}

/// Counters the scheduler exposes to the runtime report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Most jobs ever pending at once (the high-water mark of queue depth).
    pub peak_depth: usize,
    /// Jobs dequeued so far (the promotion clock).
    pub dequeues: u64,
}

/// One pending job, as the scheduler holds it.
struct Pending<T> {
    id: u64,
    priority: Priority,
    /// Soft deadline, in the runtime clock's seconds (see `telemetry::clock`).
    deadline: Option<f64>,
    /// Value of the dequeue counter when this job was submitted (ages the job for
    /// anti-starvation promotion).
    enqueued_at_dequeue: u64,
    payload: T,
}

struct SchedState<T> {
    pending: Vec<Pending<T>>,
    closed: bool,
    /// Jobs dequeued so far — the promotion clock.
    dequeues: u64,
    /// Jobs popped but not yet reported finished (drain accounting).
    inflight: usize,
    peak_depth: usize,
}

/// A job handed to a worker.
pub struct Popped<T> {
    /// The job's submission id.
    pub id: u64,
    /// The QoS class it was scheduled under.
    pub priority: Priority,
    /// The queued payload.
    pub payload: T,
}

/// A bounded, priority-aware MPMC job scheduler (`Mutex` + `Condvar`, no async
/// runtime).  See the module docs for the ordering and determinism contract.
///
/// Public so simulation harnesses (e.g. the `fig_cluster` discrete-event driver)
/// can schedule their own payload type with the *exact* production policy; the
/// service itself instantiates it with an in-crate payload.
pub struct JobScheduler<T> {
    state: Mutex<SchedState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    idle: Condvar,
    capacity: usize,
    policy: SchedulerPolicy,
}

impl<T> JobScheduler<T> {
    /// A scheduler admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize, policy: SchedulerPolicy) -> Self {
        assert!(capacity >= 1, "scheduler capacity must be at least 1");
        JobScheduler {
            state: Mutex::new(SchedState {
                pending: Vec::with_capacity(capacity),
                closed: false,
                dequeues: 0,
                inflight: 0,
                peak_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            idle: Condvar::new(),
            capacity,
            policy,
        }
    }

    /// Jobs currently pending (excludes in-flight jobs).
    #[cfg(test)]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        sync::lock(&self.state).pending.len()
    }

    /// Submits a job, blocking while the pending set is at capacity
    /// (backpressure).  Returns the payload back if the scheduler has been closed.
    pub fn push(
        &self,
        id: u64,
        priority: Priority,
        deadline: Option<f64>,
        payload: T,
    ) -> Result<(), T> {
        let mut state = sync::lock(&self.state);
        while state.pending.len() >= self.capacity && !state.closed {
            state = sync::wait(&self.not_full, state);
        }
        if state.closed {
            return Err(payload);
        }
        let enqueued_at_dequeue = state.dequeues;
        state.pending.push(Pending {
            id,
            priority,
            deadline,
            enqueued_at_dequeue,
            payload,
        });
        state.peak_depth = state.peak_depth.max(state.pending.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Effective class rank of a pending job under the promotion clock.
    fn effective_rank(&self, job: &Pending<T>, dequeues: u64) -> u8 {
        let base = job.priority.rank();
        if self.policy.promote_every == 0 {
            return base;
        }
        let waited = dequeues.saturating_sub(job.enqueued_at_dequeue);
        let promotions = (waited / self.policy.promote_every).min(u64::from(base));
        base - promotions as u8
    }

    /// Seniority band within an effective class: `0` for senior jobs (waited at
    /// least one promotion interval — a deadline never jumps these), `1` for fresh
    /// jobs with a soft deadline (EDF among themselves), `2` for fresh
    /// deadline-free jobs.
    fn band(&self, job: &Pending<T>, dequeues: u64) -> u8 {
        let promote_every = self.policy.promote_every;
        if promote_every > 0 && dequeues.saturating_sub(job.enqueued_at_dequeue) >= promote_every {
            0
        } else if job.deadline.is_some() {
            1
        } else {
            2
        }
    }

    /// Index of the job the policy dequeues next.  `pending` must be non-empty.
    fn select(&self, state: &SchedState<T>) -> usize {
        let mut best = 0usize;
        for i in 1..state.pending.len() {
            if self.orders_before(&state.pending[i], &state.pending[best], state.dequeues) {
                best = i;
            }
        }
        best
    }

    /// Whether `a` dequeues before `b` under the policy.  The comparison realises
    /// the key `(effective class, seniority band, deadline, id)` — a per-job key
    /// function, so the order is total (ids are unique) and transitive.
    fn orders_before(&self, a: &Pending<T>, b: &Pending<T>, dequeues: u64) -> bool {
        if self.policy.mode == SchedulingMode::Fifo {
            return a.id < b.id;
        }
        let (ra, rb) = (
            self.effective_rank(a, dequeues),
            self.effective_rank(b, dequeues),
        );
        if ra != rb {
            return ra < rb;
        }
        let (ba, bb) = (self.band(a, dequeues), self.band(b, dequeues));
        if ba != bb {
            return ba < bb;
        }
        if ba == 1 {
            // Both fresh with deadlines: earliest-deadline-first (total_cmp keeps
            // the order total even for pathological NaN deadlines).
            if let (Some(da), Some(db)) = (a.deadline, b.deadline) {
                match da.total_cmp(&db) {
                    std::cmp::Ordering::Less => return true,
                    std::cmp::Ordering::Greater => return false,
                    std::cmp::Ordering::Equal => {}
                }
            }
        }
        a.id < b.id
    }

    /// Dequeues the most urgent job, blocking while the pending set is empty and
    /// the scheduler is open.  Returns `None` once the scheduler is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<Popped<T>> {
        let mut state = sync::lock(&self.state);
        loop {
            if !state.pending.is_empty() {
                let idx = self.select(&state);
                let job = state.pending.remove(idx);
                state.dequeues += 1;
                state.inflight += 1;
                drop(state);
                self.not_full.notify_one();
                return Some(Popped {
                    id: job.id,
                    priority: job.priority,
                    payload: job.payload,
                });
            }
            if state.closed {
                return None;
            }
            state = sync::wait(&self.not_empty, state);
        }
    }

    /// Dequeues the most urgent job if one is pending, without blocking.  Unlike
    /// [`pop`](Self::pop) this never waits: an empty pending set returns `None`
    /// whether or not the scheduler is closed.  Event-driven dispatchers (the
    /// virtual-time cluster bench) pull work with this while thread pools block on
    /// `pop`.
    pub fn try_pop(&self) -> Option<Popped<T>> {
        let mut state = sync::lock(&self.state);
        if state.pending.is_empty() {
            return None;
        }
        let idx = self.select(&state);
        let job = state.pending.remove(idx);
        state.dequeues += 1;
        state.inflight += 1;
        drop(state);
        self.not_full.notify_one();
        Some(Popped {
            id: job.id,
            priority: job.priority,
            payload: job.payload,
        })
    }

    /// Jobs currently in the system: pending in the queue plus popped-but-unfinished.
    /// The cluster router reads this as a node's instantaneous load.
    pub fn load(&self) -> usize {
        let state = sync::lock(&self.state);
        state.pending.len() + state.inflight
    }

    /// Removes a not-yet-dequeued job, returning its payload; `None` when the job
    /// already started (or finished, or never existed) — in-flight jobs cannot be
    /// recalled.
    pub fn cancel(&self, id: u64) -> Option<T> {
        let mut state = sync::lock(&self.state);
        let idx = state.pending.iter().position(|p| p.id == id)?;
        let job = state.pending.remove(idx);
        drop(state);
        self.not_full.notify_one();
        self.idle.notify_all();
        Some(job.payload)
    }

    /// Marks one popped job finished (drain accounting).
    pub fn finish_one(&self) {
        let mut state = sync::lock(&self.state);
        debug_assert!(state.inflight > 0, "finish_one without a matching pop");
        state.inflight = state.inflight.saturating_sub(1);
        if state.inflight == 0 && state.pending.is_empty() {
            drop(state);
            self.idle.notify_all();
        }
    }

    /// Closes the scheduler: workers drain what is pending, new submissions fail
    /// fast with their payload handed back.
    pub fn close(&self) {
        sync::lock(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
        self.idle.notify_all();
    }

    /// Blocks until no job is pending or in flight.
    pub fn wait_idle(&self) {
        let mut state = sync::lock(&self.state);
        while !(state.pending.is_empty() && state.inflight == 0) {
            state = sync::wait(&self.idle, state);
        }
    }

    /// Counter snapshot for the runtime report.
    pub fn stats(&self) -> SchedulerStats {
        let state = sync::lock(&self.state);
        SchedulerStats {
            peak_depth: state.peak_depth,
            dequeues: state.dequeues,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn drain_ids<T>(s: &JobScheduler<T>) -> Vec<u64> {
        s.close();
        let mut ids = Vec::new();
        while let Some(p) = s.pop() {
            ids.push(p.id);
            s.finish_one();
        }
        ids
    }

    #[test]
    fn equal_priority_traffic_dequeues_in_submission_order() {
        let s = JobScheduler::new(16, SchedulerPolicy::default());
        for id in 0..8 {
            s.push(id, Priority::Standard, None, id).unwrap();
        }
        assert_eq!(drain_ids(&s), (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn fifo_mode_ignores_priorities() {
        let s = JobScheduler::new(16, SchedulerPolicy::fifo());
        s.push(0, Priority::Batch, None, ()).unwrap();
        s.push(1, Priority::Interactive, None, ()).unwrap();
        s.push(2, Priority::Standard, None, ()).unwrap();
        assert_eq!(drain_ids(&s), vec![0, 1, 2]);
    }

    #[test]
    fn interactive_jobs_overtake_standard_and_batch() {
        let s = JobScheduler::new(16, SchedulerPolicy::default());
        s.push(0, Priority::Batch, None, ()).unwrap();
        s.push(1, Priority::Standard, None, ()).unwrap();
        s.push(2, Priority::Interactive, None, ()).unwrap();
        s.push(3, Priority::Interactive, None, ()).unwrap();
        assert_eq!(drain_ids(&s), vec![2, 3, 1, 0]);
    }

    #[test]
    fn soft_deadlines_run_edf_within_a_class() {
        let s = JobScheduler::new(16, SchedulerPolicy::default());
        s.push(0, Priority::Standard, None, ()).unwrap();
        s.push(1, Priority::Standard, Some(60.0), ()).unwrap();
        s.push(2, Priority::Standard, Some(5.0), ()).unwrap();
        // Deadline jobs run EDF ahead of deadline-free peers; a higher class still
        // outranks any deadline.
        s.push(3, Priority::Interactive, None, ()).unwrap();
        assert_eq!(drain_ids(&s), vec![3, 2, 1, 0]);
    }

    #[test]
    fn age_promotion_bounds_batch_wait_under_interactive_flood() {
        // A batch job submitted into a sustained interactive flood must be promoted
        // to the front after at most 2 * promote_every dequeues (two classes to
        // climb), even though fresher interactive jobs keep arriving.
        let promote_every = 4u64;
        let s = JobScheduler::new(64, SchedulerPolicy::priority(promote_every));
        s.push(0, Priority::Batch, None, "batch").unwrap();
        for id in 1..=40 {
            s.push(id, Priority::Interactive, None, "interactive")
                .unwrap();
        }
        let order = drain_ids(&s);
        let batch_position = order.iter().position(|&id| id == 0).unwrap();
        // Exactly 2 * promote_every interactive jobs dequeue first; on the next
        // dequeue the batch job ranks interactive and its older id wins the tie.
        assert_eq!(
            batch_position as u64,
            2 * promote_every,
            "dequeue order {order:?}"
        );
    }

    #[test]
    fn deadline_carrying_floods_cannot_starve_senior_jobs() {
        // Regression: a deadline used to outrank *any* deadline-free peer of the
        // same effective class, so a sustained flood of deadline-carrying
        // interactive jobs starved a promoted batch job forever.  Seniority must
        // win: the batch job still dequeues after exactly 2 * promote_every flood
        // jobs.
        let promote_every = 4u64;
        let s = JobScheduler::new(64, SchedulerPolicy::priority(promote_every));
        s.push(0, Priority::Batch, None, ()).unwrap();
        for id in 1..=40 {
            s.push(id, Priority::Interactive, Some(id as f64 * 1e-3), ())
                .unwrap();
        }
        let order = drain_ids(&s);
        let batch_position = order.iter().position(|&id| id == 0).unwrap();
        assert_eq!(
            batch_position as u64,
            2 * promote_every,
            "dequeue order {order:?}"
        );
    }

    #[test]
    fn promotion_disabled_starves_batch_under_flood() {
        // The contrast case documenting why promote_every = 0 is dangerous.
        let s = JobScheduler::new(64, SchedulerPolicy::priority(0));
        s.push(0, Priority::Batch, None, ()).unwrap();
        for id in 1..=10 {
            s.push(id, Priority::Interactive, None, ()).unwrap();
        }
        let order = drain_ids(&s);
        assert_eq!(*order.last().unwrap(), 0, "batch runs dead last: {order:?}");
    }

    #[test]
    fn cancel_removes_pending_jobs_but_not_inflight_ones() {
        let s = JobScheduler::new(16, SchedulerPolicy::default());
        s.push(0, Priority::Standard, None, "a").unwrap();
        s.push(1, Priority::Standard, None, "b").unwrap();
        let popped = s.pop().unwrap();
        assert_eq!(popped.id, 0);
        // Job 0 is in flight: cancel must refuse.
        assert!(s.cancel(0).is_none());
        // Job 1 is pending: cancel recalls it.
        assert_eq!(s.cancel(1), Some("b"));
        assert!(s.cancel(1).is_none(), "double cancel finds nothing");
        assert_eq!(s.len(), 0);
        s.finish_one();
        s.close();
        assert!(s.pop().is_none());
    }

    #[test]
    fn push_after_close_returns_the_payload() {
        let s = JobScheduler::new(4, SchedulerPolicy::default());
        s.close();
        assert_eq!(s.push(0, Priority::Standard, None, 7), Err(7));
    }

    #[test]
    fn capacity_applies_backpressure_and_close_wakes_blocked_producers() {
        let s = JobScheduler::new(2, SchedulerPolicy::default());
        s.push(0, Priority::Standard, None, 0).unwrap();
        s.push(1, Priority::Standard, None, 1).unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| s.push(2, Priority::Standard, None, 2));
            std::thread::sleep(Duration::from_millis(30));
            // Producer is blocked on the full scheduler; a pop frees a slot.
            let popped = s.pop().unwrap();
            assert_eq!(popped.id, 0);
            assert!(handle.join().unwrap().is_ok());
            s.finish_one();
        });
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| s.push(3, Priority::Standard, None, 3));
            std::thread::sleep(Duration::from_millis(30));
            s.close();
            // The blocked producer wakes with its payload handed back.
            assert_eq!(handle.join().unwrap(), Err(3));
        });
    }

    #[test]
    fn wait_idle_covers_pending_and_inflight_jobs() {
        let s = std::sync::Arc::new(JobScheduler::new(8, SchedulerPolicy::default()));
        s.push(0, Priority::Standard, None, ()).unwrap();
        let worker = {
            let s = std::sync::Arc::clone(&s);
            std::thread::spawn(move || {
                let popped = s.pop().unwrap();
                std::thread::sleep(Duration::from_millis(30));
                s.finish_one();
                popped.id
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        s.wait_idle();
        // wait_idle returned only after the in-flight job finished.
        assert_eq!(worker.join().unwrap(), 0);
        assert_eq!(s.stats().dequeues, 1);
    }

    #[test]
    fn peak_depth_tracks_the_high_water_mark() {
        let s = JobScheduler::new(16, SchedulerPolicy::default());
        for id in 0..5 {
            s.push(id, Priority::Standard, None, ()).unwrap();
        }
        for _ in 0..3 {
            s.pop().unwrap();
            s.finish_one();
        }
        s.push(5, Priority::Standard, None, ()).unwrap();
        assert_eq!(s.stats().peak_depth, 5);
    }
}
