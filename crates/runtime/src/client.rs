//! The service-mode API: a long-lived [`SolveClient`] whose non-blocking
//! [`submit`](SolveClient::submit) returns a [`SolveTicket`], plus graceful
//! [`drain`](SolveClient::drain)/[`shutdown`](SolveClient::shutdown).
//!
//! The client owns a worker pool (one simulated accelerator per worker) fed by the
//! priority scheduler of [`crate::sched`].  Submission applies backpressure when
//! the pending set is at capacity, exactly like the old batch path; everything
//! else is asynchronous: the caller keeps the ticket and collects the outcome
//! whenever it likes, with [`wait`](SolveTicket::wait),
//! [`try_get`](SolveTicket::try_get), [`wait_timeout`](SolveTicket::wait_timeout)
//! or [`cancel`](SolveTicket::cancel).
//!
//! Cancellation is *dequeue-only*: a job that no worker has started is removed
//! from the scheduler and its ticket resolves to [`TicketOutcome::Cancelled`]
//! without ever touching a chip (no simulated cycles, no cache traffic); a job
//! already in flight runs to completion and `cancel` reports `false`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use refloat_telemetry::{sync, Clock, MetricsRegistry, MetricsSnapshot, TraceSink, WallClock};

use crate::cache::{CacheStats, EncodedMatrixCache};
use crate::decision::{DecisionStats, FormatDecisionCache};
use crate::job::JobOutcome;
use crate::plan::SolvePlan;
use crate::sched::JobScheduler;
use crate::telemetry::{metric_names, JobMetricHandles, JobTelemetry, RuntimeReport};
use crate::worker;
use crate::RuntimeConfig;

/// Why a submission was not admitted.
#[derive(Debug)]
pub enum SubmitError {
    /// The client is draining or shut down.  The plan is handed back intact —
    /// nothing is ever silently dropped.
    Closed(Box<SolvePlan>),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed(plan) => write!(
                f,
                "solve client is closed; plan from tenant {:?} was not admitted",
                plan.tenant()
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How a ticket resolved.
#[derive(Debug)]
pub enum TicketOutcome {
    /// The job ran; the full per-job outcome (solution, telemetry).
    Completed(Box<JobOutcome>),
    /// The job was cancelled before any worker started it.  It never touched a
    /// chip: no simulated cycles, no cache traffic, no telemetry row.
    Cancelled,
    /// The job panicked inside the worker.  The panic is contained so the service
    /// stays alive (the worker keeps serving, drain/shutdown still complete);
    /// failed jobs carry no telemetry row.  The payload is the panic message.
    Failed(String),
}

impl TicketOutcome {
    /// The job outcome, if the job ran to completion.
    pub fn completed(self) -> Option<JobOutcome> {
        match self {
            TicketOutcome::Completed(outcome) => Some(*outcome),
            TicketOutcome::Cancelled | TicketOutcome::Failed(_) => None,
        }
    }

    /// Whether the job was cancelled before starting.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, TicketOutcome::Cancelled)
    }
}

enum TicketSlot {
    Pending,
    Ready(TicketOutcome),
}

/// The completion cell a ticket and its worker share.
pub(crate) struct TicketShared {
    slot: Mutex<TicketSlot>,
    ready: Condvar,
}

impl TicketShared {
    fn new() -> Self {
        TicketShared {
            slot: Mutex::new(TicketSlot::Pending),
            ready: Condvar::new(),
        }
    }

    pub(crate) fn complete(&self, outcome: TicketOutcome) {
        let mut slot = sync::lock(&self.slot);
        debug_assert!(
            matches!(*slot, TicketSlot::Pending),
            "a ticket resolves exactly once"
        );
        *slot = TicketSlot::Ready(outcome);
        drop(slot);
        self.ready.notify_all();
    }

    fn take_ready(slot: &mut TicketSlot) -> Option<TicketOutcome> {
        match std::mem::replace(slot, TicketSlot::Pending) {
            TicketSlot::Ready(outcome) => Some(outcome),
            TicketSlot::Pending => None,
        }
    }
}

/// A submitted job's payload while it waits in the scheduler.
pub(crate) struct QueuedTicket {
    pub plan: SolvePlan,
    /// Submission time in the runtime clock's seconds (see `telemetry::clock`).
    pub submitted_at_s: f64,
    pub ticket: Arc<TicketShared>,
}

/// State shared between the client handle and its worker threads.
pub(crate) struct ClientCore {
    pub sched: JobScheduler<QueuedTicket>,
    pub cache: Arc<EncodedMatrixCache>,
    pub decisions: Arc<FormatDecisionCache>,
    pub chip_crossbars: Option<u64>,
    pub workers: usize,
    next_id: AtomicU64,
    /// Telemetry of every completed job, in completion order (the report source).
    pub completed: Mutex<Vec<JobTelemetry>>,
    cancelled: AtomicU64,
    /// The live metrics registry: workers stream job completions into it, so it is
    /// pollable mid-traffic without draining (see
    /// [`SolveClient::metrics_snapshot`]).
    pub metrics: Arc<MetricsRegistry>,
    /// The trace sink, when the runtime was configured with one.
    pub trace: Option<Arc<TraceSink>>,
    /// The clock every wall-time telemetry field is read from.  Sourced from the
    /// trace sink when tracing is configured (so a `ManualClock` sink pins *all*
    /// host-time fields, not just trace timestamps), else a fresh [`WallClock`].
    pub clock: Arc<dyn Clock>,
}

/// The handle on one queued (or running, or finished) job.
///
/// Obtained from [`SolveClient::submit`].  Dropping a ticket does not cancel the
/// job — it merely discards the outcome.
pub struct SolveTicket {
    id: u64,
    shared: Arc<TicketShared>,
    core: Arc<ClientCore>,
}

impl SolveTicket {
    /// The job's submission id (its position in submission order; equal-priority
    /// traffic is also dequeued in this order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the job completes (or resolves as cancelled).
    pub fn wait(self) -> TicketOutcome {
        let mut slot = sync::lock(&self.shared.slot);
        loop {
            if let Some(outcome) = TicketShared::take_ready(&mut slot) {
                return outcome;
            }
            slot = sync::wait(&self.shared.ready, slot);
        }
    }

    /// Returns the outcome if the job already resolved, or hands the ticket back.
    pub fn try_get(self) -> Result<TicketOutcome, SolveTicket> {
        let taken = {
            let mut slot = sync::lock(&self.shared.slot);
            TicketShared::take_ready(&mut slot)
        };
        taken.ok_or(self)
    }

    /// Blocks up to `timeout` for the outcome, or hands the ticket back.
    pub fn wait_timeout(self, timeout: Duration) -> Result<TicketOutcome, SolveTicket> {
        // A blocking timeout is a host-side liveness bound, not telemetry: it must
        // track real time even under a ManualClock (which would never advance here).
        // refloat-analysis: allow(wall-clock-in-deterministic-path)
        let deadline = Instant::now() + timeout;
        let taken = {
            let mut slot = sync::lock(&self.shared.slot);
            loop {
                if let Some(outcome) = TicketShared::take_ready(&mut slot) {
                    break Some(outcome);
                }
                // refloat-analysis: allow(wall-clock-in-deterministic-path)
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break None;
                }
                let (guard, _timed_out) = sync::wait_timeout(&self.shared.ready, slot, remaining);
                slot = guard;
            }
        };
        taken.ok_or(self)
    }

    /// Attempts to dequeue the job before any worker starts it.
    ///
    /// Returns `true` when the job was still pending: it is removed from the
    /// scheduler, the ticket resolves to [`TicketOutcome::Cancelled`], and the
    /// job is refunded entirely — no simulated cycles, no cache traffic, no
    /// telemetry row.  Returns `false` when a worker already picked the job up
    /// (it will run to completion) or it already resolved.
    pub fn cancel(&self) -> bool {
        match self.core.sched.cancel(self.id) {
            Some(queued) => {
                self.core.cancelled.fetch_add(1, Ordering::Relaxed);
                self.core
                    .metrics
                    .counter(metric_names::JOBS_CANCELLED)
                    .inc();
                queued.ticket.complete(TicketOutcome::Cancelled);
                true
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for SolveTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveTicket").field("id", &self.id).finish()
    }
}

/// A long-lived handle on a running solve service: a worker pool, the shared
/// caches, and the QoS scheduler in front of them.
///
/// Created by [`SolveRuntime::start`](crate::SolveRuntime::start) (owning) or
/// [`SolveRuntime::client`](crate::SolveRuntime::client) (sharing the runtime's
/// caches).  Dropping the client shuts it down gracefully: admission closes,
/// accepted jobs finish, workers join.
pub struct SolveClient {
    core: Arc<ClientCore>,
    handles: Vec<JoinHandle<()>>,
    /// Start time in the runtime clock's seconds (for report wall-time deltas).
    started_s: f64,
    cache_baseline: CacheStats,
    decision_baseline: DecisionStats,
}

impl SolveClient {
    pub(crate) fn spawn(
        config: &RuntimeConfig,
        cache: Arc<EncodedMatrixCache>,
        decisions: Arc<FormatDecisionCache>,
    ) -> Self {
        assert!(config.workers >= 1, "runtime needs at least one worker");
        assert!(
            config.queue_capacity >= 1,
            "queue capacity must be at least 1"
        );
        let cache_baseline = cache.stats();
        let decision_baseline = decisions.stats();
        let metrics = Arc::new(MetricsRegistry::new());
        // Registering up front creates the full metric vocabulary, so a snapshot
        // taken before the first job completes already carries every (zero) counter.
        let _ = JobMetricHandles::register(&metrics);
        metrics
            .gauge(metric_names::WORKERS)
            .set(config.workers as f64);
        let clock: Arc<dyn Clock> = match &config.trace {
            Some(sink) => sink.clock(),
            None => Arc::new(WallClock::new()),
        };
        let core = Arc::new(ClientCore {
            sched: JobScheduler::new(config.queue_capacity, config.scheduler),
            cache,
            decisions,
            chip_crossbars: config.chip_crossbars,
            workers: config.workers,
            next_id: AtomicU64::new(0),
            completed: Mutex::new(Vec::new()),
            cancelled: AtomicU64::new(0),
            metrics,
            trace: config.trace.clone(),
            clock,
        });
        let handles = (0..config.workers)
            .map(|worker_id| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("refloat-worker-{worker_id}"))
                    .spawn(move || worker::worker_loop(worker_id, &core))
                    // refloat-analysis: allow(panic-in-service-path) — thread-spawn
                    // failure at startup is unrecoverable for the pool; nothing is
                    // in flight yet, so failing fast is correct.
                    .expect("spawn worker thread")
            })
            .collect();
        let started_s = core.clock.now_s();
        SolveClient {
            core,
            handles,
            started_s,
            cache_baseline,
            decision_baseline,
        }
    }

    /// Submits a plan without blocking on its execution (submission itself blocks
    /// only while the pending set is at capacity — backpressure).  Returns the
    /// job's ticket, or [`SubmitError::Closed`] with the plan handed back when
    /// the client is draining or shut down.
    pub fn submit(&self, plan: SolvePlan) -> Result<SolveTicket, SubmitError> {
        let id = self.core.next_id.fetch_add(1, Ordering::Relaxed);
        let priority = plan.priority;
        let submitted_at_s = self.core.clock.now_s();
        let deadline = plan.deadline.map(|d| submitted_at_s + d.as_secs_f64());
        let shared = Arc::new(TicketShared::new());
        let queued = QueuedTicket {
            plan,
            submitted_at_s,
            ticket: Arc::clone(&shared),
        };
        match self.core.sched.push(id, priority, deadline, queued) {
            Ok(()) => Ok(SolveTicket {
                id,
                shared,
                core: Arc::clone(&self.core),
            }),
            Err(queued) => Err(SubmitError::Closed(Box::new(queued.plan))),
        }
    }

    /// Jobs submitted so far (admitted or not).
    pub fn submitted(&self) -> u64 {
        self.core.next_id.load(Ordering::Relaxed)
    }

    /// Jobs cancelled before a worker started them.
    pub fn cancelled(&self) -> u64 {
        self.core.cancelled.load(Ordering::Relaxed)
    }

    /// A point-in-time view of the live metrics registry.
    ///
    /// Unlike [`report`](Self::report) this does not lock the telemetry log —
    /// workers stream completions into the registry with atomic operations, so the
    /// snapshot is cheap and safe to poll **mid-traffic** on an undrained client.
    /// The vocabulary (see [`metric_names`]) is registered at
    /// startup, so every counter is present (zero-valued) from the first call.
    ///
    /// ```
    /// use refloat_runtime::{metric_names, RuntimeConfig, SolvePlan, SolveRuntime};
    ///
    /// let a = refloat_matgen::generators::laplacian_2d(8, 8, 0.3).to_csr();
    /// let handle = refloat_runtime::MatrixHandle::new("m", a);
    /// let format = refloat_core::ReFloatConfig::new(4, 3, 8, 3, 8);
    /// let client = SolveRuntime::start(RuntimeConfig { workers: 1, ..Default::default() });
    ///
    /// let ticket = client
    ///     .submit(SolvePlan::new("tenant", handle, format).build().unwrap())
    ///     .unwrap();
    /// assert!(ticket.wait().completed().is_some());
    ///
    /// // The client is still live (no drain/shutdown) and already serves counters.
    /// let snapshot = client.metrics_snapshot();
    /// assert_eq!(snapshot.counter(metric_names::JOBS_COMPLETED), Some(1));
    /// assert_eq!(snapshot.counter(metric_names::JOBS_CANCELLED), Some(0));
    /// assert!(snapshot.histogram(metric_names::LATENCY_S).unwrap().count >= 1);
    /// client.shutdown();
    /// ```
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        // The queue-depth high-water mark lives in the scheduler; refresh the gauge
        // so polls see the current peak.
        self.core
            .metrics
            .gauge(metric_names::QUEUE_DEPTH_PEAK)
            .set(self.core.sched.stats().peak_depth as f64);
        self.core.metrics.snapshot()
    }

    /// The trace sink this client records spans into, when tracing is enabled.
    pub fn trace(&self) -> Option<&Arc<TraceSink>> {
        self.core.trace.as_ref()
    }

    /// Stops admission and blocks until every accepted job has resolved its
    /// ticket.
    ///
    /// Draining is terminal: once the backlog empties each worker exits its loop,
    /// so the client can afterwards only hand out tickets/reports — further
    /// submissions fail with [`SubmitError::Closed`], and the only remaining
    /// lifecycle step is [`shutdown`](Self::shutdown) (or `Drop`), which joins the
    /// worker threads.
    pub fn drain(&self) {
        self.core.sched.close();
        self.core.sched.wait_idle();
    }

    /// Drains and joins the worker pool, returning the final report.
    pub fn shutdown(mut self) -> RuntimeReport {
        self.drain();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.report()
    }

    /// A report over everything completed so far (cache/decision counters are
    /// deltas since this client started).
    pub fn report(&self) -> RuntimeReport {
        let completed = sync::lock(&self.core.completed);
        let sched = self.core.sched.stats();
        RuntimeReport::aggregate(
            &completed,
            (self.core.clock.now_s() - self.started_s).max(0.0),
            self.core.cache.stats().delta_since(&self.cache_baseline),
            self.core
                .decisions
                .stats()
                .delta_since(&self.decision_baseline),
            self.core.workers,
            sched.peak_depth,
            self.core.cancelled.load(Ordering::Relaxed) as usize,
        )
    }
}

impl Drop for SolveClient {
    fn drop(&mut self) {
        self.core.sched.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SolvePlan;
    use crate::MatrixHandle;
    use refloat_core::ReFloatConfig;

    #[test]
    fn a_panicking_job_fails_its_ticket_without_hanging_the_service() {
        // Regression: a panic inside a worker used to skip both finish_one and the
        // ticket resolution, deadlocking drain/shutdown and the waiter forever.
        // Force a panic the validator cannot catch by corrupting an already-built
        // plan in-crate (a wrong-length RHS trips the solver's dimension assert).
        let a = refloat_matgen::generators::laplacian_2d(8, 8, 0.3).to_csr();
        let handle = MatrixHandle::new("p8", a);
        let format = ReFloatConfig::new(4, 3, 8, 3, 8);
        let mut poisoned = SolvePlan::new("poisoned", handle.clone(), format)
            .build()
            .unwrap();
        poisoned.job.rhs = Some(std::sync::Arc::new(vec![1.0; 3]));

        let client = crate::SolveRuntime::start(crate::RuntimeConfig {
            workers: 1,
            ..Default::default()
        });
        let bad = client.submit(poisoned).unwrap();
        match bad.wait() {
            TicketOutcome::Failed(message) => {
                assert!(
                    message.contains("must match rhs length"),
                    "unexpected message {message:?}"
                )
            }
            other => panic!("poisoned job must fail its ticket, got {other:?}"),
        }
        // The worker survived the panic and keeps serving.
        let good = client
            .submit(SolvePlan::new("good", handle, format).build().unwrap())
            .unwrap();
        assert!(good.wait().completed().expect("runs").result.converged());
        // drain/shutdown complete instead of hanging on the lost in-flight count.
        let report = client.shutdown();
        assert_eq!(report.jobs, 1, "failed jobs carry no telemetry row");
        assert_eq!(report.converged, 1);
    }
}
