//! The service-mode API: a long-lived [`SolveClient`] whose non-blocking
//! [`submit`](SolveClient::submit) returns a [`SolveTicket`], plus graceful
//! [`drain`](SolveClient::drain)/[`shutdown`](SolveClient::shutdown).
//!
//! A client fronts either a single [`crate::node::Node`] (the worker pool,
//! QoS scheduler, and caches of [`crate::node`]) or a whole
//! [`ClusterRuntime`](crate::cluster::ClusterRuntime) of them — the ticket surface
//! (`wait`/`try_get`/`wait_timeout`/`cancel`) and the lifecycle
//! (`drain`/`shutdown`) are identical either way.  Submission applies
//! backpressure when a single node's pending set is at capacity; a cluster
//! instead *sheds* over-capacity traffic with the typed
//! [`SubmitError::Overloaded`]/[`SubmitError::QuotaExceeded`] (see
//! [`crate::cluster::admission`]).
//!
//! Cancellation is *dequeue-only*: a job that no worker has started is removed
//! from its node's scheduler and its ticket resolves to
//! [`TicketOutcome::Cancelled`] without ever touching a chip (no simulated
//! cycles, no cache traffic); a job already in flight runs to completion and
//! `cancel` reports `false`.  On a cluster the cancel refund crosses the router
//! boundary exactly like the in-node path: the scheduler hands the queued payload
//! back and dropping it releases the tenant's admission permit.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use refloat_telemetry::{sync, MetricsRegistry, MetricsSnapshot, TraceSink};

use crate::cache::{CacheStats, EncodedMatrixCache};
use crate::cluster::admission::AdmissionPermit;
use crate::cluster::ClusterBackend;
use crate::decision::{DecisionStats, FormatDecisionCache};
use crate::health::HealthTracker;
use crate::job::JobOutcome;
use crate::node::{Node, NodeCore};
use crate::plan::SolvePlan;
use crate::telemetry::{metric_names, AggregateContext, RuntimeReport};
use crate::RuntimeConfig;

/// Why a submission was not admitted.  Every variant hands the plan back intact —
/// nothing is ever silently dropped.
#[derive(Debug)]
pub enum SubmitError {
    /// The client is draining or shut down.
    Closed(Box<SolvePlan>),
    /// Cluster admission control shed the job: the cluster-wide in-system bound
    /// was already full.  Shedding is deliberate — a typed rejection the caller
    /// can retry against, instead of an unbounded queue collapsing every
    /// tenant's latency at once.
    Overloaded {
        /// The rejected plan, handed back intact.
        plan: Box<SolvePlan>,
        /// Jobs admitted and unfinished when the submission arrived.
        in_system: usize,
        /// The configured cluster-wide bound.
        capacity: usize,
    },
    /// Cluster admission control shed the job: this tenant's fair-share quota of
    /// in-system jobs was already full (other tenants are unaffected).
    QuotaExceeded {
        /// The rejected plan, handed back intact.
        plan: Box<SolvePlan>,
        /// This tenant's admitted-and-unfinished jobs at submission time.
        in_system: usize,
        /// The configured per-tenant bound.
        quota: usize,
    },
}

impl SubmitError {
    /// Recovers the rejected plan (every variant carries it back).
    pub fn into_plan(self) -> SolvePlan {
        match self {
            SubmitError::Closed(plan)
            | SubmitError::Overloaded { plan, .. }
            | SubmitError::QuotaExceeded { plan, .. } => *plan,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed(plan) => write!(
                f,
                "solve client is closed; plan from tenant {:?} was not admitted",
                plan.tenant()
            ),
            SubmitError::Overloaded {
                plan,
                in_system,
                capacity,
            } => write!(
                f,
                "cluster overloaded ({in_system}/{capacity} jobs in system); plan from \
                 tenant {:?} was shed",
                plan.tenant()
            ),
            SubmitError::QuotaExceeded {
                plan,
                in_system,
                quota,
            } => write!(
                f,
                "tenant {:?} is over its fair-share quota ({in_system}/{quota} jobs in \
                 system); plan was shed",
                plan.tenant()
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a job resolved as [`TicketOutcome::Degraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// The worker's chip was killed and no live worker remained on the node to
    /// re-route to.
    ChipKilled,
    /// ABFT kept detecting corruption after exhausting the re-encode retry
    /// budget; the attached outcome is the best-effort solve on the faulty chip.
    AbftUnresolved,
}

/// A job that could not complete cleanly but was never lost: the typed payload
/// of [`TicketOutcome::Degraded`].
#[derive(Debug)]
pub struct DegradedJob {
    /// The job's submission id.
    pub job_id: u64,
    /// The submitting tenant.
    pub tenant: String,
    /// Why the job degraded.
    pub reason: DegradedReason,
    /// Best-effort outcome when the job still ran (always present for
    /// [`DegradedReason::AbftUnresolved`]; `None` when the chip died before the
    /// solve could run anywhere).
    pub outcome: Option<JobOutcome>,
}

/// How a ticket resolved.
#[derive(Debug)]
pub enum TicketOutcome {
    /// The job ran; the full per-job outcome (solution, telemetry).
    Completed(Box<JobOutcome>),
    /// The job was cancelled before any worker started it.  It never touched a
    /// chip: no simulated cycles, no cache traffic, no telemetry row.
    Cancelled,
    /// The job panicked inside the worker.  The panic is contained so the service
    /// stays alive (the worker keeps serving, drain/shutdown still complete);
    /// failed jobs carry no telemetry row.  The payload is the panic message.
    Failed(String),
    /// The job could not complete cleanly under the fault policy — its chip was
    /// killed with nowhere to re-route, or ABFT detections survived every
    /// re-encode retry.  The payload says which and carries any best-effort
    /// result; like cancelled/failed jobs, degraded jobs have no telemetry row.
    Degraded(Box<DegradedJob>),
}

impl TicketOutcome {
    /// The job outcome, if the job ran to completion.
    pub fn completed(self) -> Option<JobOutcome> {
        match self {
            TicketOutcome::Completed(outcome) => Some(*outcome),
            TicketOutcome::Cancelled | TicketOutcome::Failed(_) | TicketOutcome::Degraded(_) => {
                None
            }
        }
    }

    /// Whether the job was cancelled before starting.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, TicketOutcome::Cancelled)
    }

    /// Whether the job resolved as degraded under the fault policy.
    pub fn is_degraded(&self) -> bool {
        matches!(self, TicketOutcome::Degraded(_))
    }
}

enum TicketSlot {
    Pending,
    Ready(TicketOutcome),
}

/// The completion cell a ticket and its worker share.
pub(crate) struct TicketShared {
    slot: Mutex<TicketSlot>,
    ready: Condvar,
}

impl TicketShared {
    pub(crate) fn new() -> Self {
        TicketShared {
            slot: Mutex::new(TicketSlot::Pending),
            ready: Condvar::new(),
        }
    }

    pub(crate) fn complete(&self, outcome: TicketOutcome) {
        let mut slot = sync::lock(&self.slot);
        debug_assert!(
            matches!(*slot, TicketSlot::Pending),
            "a ticket resolves exactly once"
        );
        *slot = TicketSlot::Ready(outcome);
        drop(slot);
        self.ready.notify_all();
    }

    fn take_ready(slot: &mut TicketSlot) -> Option<TicketOutcome> {
        match std::mem::replace(slot, TicketSlot::Pending) {
            TicketSlot::Ready(outcome) => Some(outcome),
            TicketSlot::Pending => None,
        }
    }
}

/// A submitted job's payload while it waits in a node's scheduler.
pub(crate) struct QueuedTicket {
    pub plan: SolvePlan,
    /// Submission time in the runtime clock's seconds (see `telemetry::clock`).
    pub submitted_at_s: f64,
    pub ticket: Arc<TicketShared>,
    /// The tenant's admission permit when the job was routed by a cluster
    /// (`None` on the single-node path).  Dropping the payload — on completion,
    /// cancellation, or a panicked worker — refunds the quota exactly once.
    pub permit: Option<AdmissionPermit>,
    /// First trace `seq` the worker may use for this job (a cluster reserves the
    /// leading slots for its admit/route events; 0 on the single-node path).
    pub trace_seq_base: u32,
}

/// The handle on one queued (or running, or finished) job.
///
/// Obtained from [`SolveClient::submit`].  Dropping a ticket does not cancel the
/// job — it merely discards the outcome.
pub struct SolveTicket {
    id: u64,
    shared: Arc<TicketShared>,
    /// The node the job was placed on — cancel goes straight to its scheduler,
    /// so the refund path is identical for single-node and routed submissions.
    node: Arc<NodeCore>,
}

impl SolveTicket {
    pub(crate) fn new(id: u64, shared: Arc<TicketShared>, node: Arc<NodeCore>) -> Self {
        SolveTicket { id, shared, node }
    }

    /// The job's submission id (its position in submission order; equal-priority
    /// traffic is also dequeued in this order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the job completes (or resolves as cancelled).
    pub fn wait(self) -> TicketOutcome {
        let mut slot = sync::lock(&self.shared.slot);
        loop {
            if let Some(outcome) = TicketShared::take_ready(&mut slot) {
                return outcome;
            }
            slot = sync::wait(&self.shared.ready, slot);
        }
    }

    /// Returns the outcome if the job already resolved, or hands the ticket back.
    pub fn try_get(self) -> Result<TicketOutcome, SolveTicket> {
        let taken = {
            let mut slot = sync::lock(&self.shared.slot);
            TicketShared::take_ready(&mut slot)
        };
        taken.ok_or(self)
    }

    /// Blocks up to `timeout` for the outcome, or hands the ticket back.
    pub fn wait_timeout(self, timeout: Duration) -> Result<TicketOutcome, SolveTicket> {
        // A blocking timeout is a host-side liveness bound, not telemetry: it must
        // track real time even under a ManualClock (which would never advance here).
        // refloat-analysis: allow(wall-clock-in-deterministic-path)
        let deadline = Instant::now() + timeout;
        let taken = {
            let mut slot = sync::lock(&self.shared.slot);
            loop {
                if let Some(outcome) = TicketShared::take_ready(&mut slot) {
                    break Some(outcome);
                }
                // refloat-analysis: allow(wall-clock-in-deterministic-path)
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break None;
                }
                let (guard, _timed_out) = sync::wait_timeout(&self.shared.ready, slot, remaining);
                slot = guard;
            }
        };
        taken.ok_or(self)
    }

    /// Attempts to dequeue the job before any worker starts it.
    ///
    /// Returns `true` when the job was still pending: it is removed from its
    /// node's scheduler, the ticket resolves to [`TicketOutcome::Cancelled`], and
    /// the job is refunded entirely — no simulated cycles, no cache traffic, no
    /// telemetry row, and (on a cluster) the tenant's admission quota slot is
    /// released.  Returns `false` when a worker already picked the job up (it
    /// will run to completion) or it already resolved.
    pub fn cancel(&self) -> bool {
        match self.node.sched.cancel(self.id) {
            Some(queued) => {
                self.node.cancelled.fetch_add(1, Ordering::Relaxed);
                self.node
                    .metrics
                    .counter(metric_names::JOBS_CANCELLED)
                    .inc();
                queued.ticket.complete(TicketOutcome::Cancelled);
                // Dropping the payload here releases the admission permit of a
                // routed job — the cross-router refund mirrors the in-node one.
                drop(queued);
                true
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for SolveTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveTicket").field("id", &self.id).finish()
    }
}

/// What a client fronts: one node, or a routed cluster of them.
enum Backend {
    Single {
        node: Node,
        cache_baseline: CacheStats,
        decision_baseline: DecisionStats,
    },
    Cluster(ClusterBackend),
}

/// A long-lived handle on a running solve service: one worker pool (plus shared
/// caches and the QoS scheduler in front of it), or a whole routed cluster —
/// same submit/wait/cancel/drain/shutdown surface either way.
///
/// Created by [`SolveRuntime::start`](crate::SolveRuntime::start) (one node),
/// [`SolveRuntime::client`](crate::SolveRuntime::client) (one node, sharing the
/// runtime's caches) or [`ClusterRuntime::start`](crate::cluster::ClusterRuntime::start)
/// (N nodes behind the router).  Dropping the client shuts it down gracefully:
/// admission closes, accepted jobs finish, workers join.
pub struct SolveClient {
    backend: Backend,
    /// Start time in the runtime clock's seconds (for report wall-time deltas).
    started_s: f64,
}

impl SolveClient {
    pub(crate) fn spawn(
        config: &RuntimeConfig,
        cache: Arc<EncodedMatrixCache>,
        decisions: Arc<FormatDecisionCache>,
    ) -> Self {
        let cache_baseline = cache.stats();
        let decision_baseline = decisions.stats();
        let metrics = Arc::new(MetricsRegistry::new());
        metrics
            .gauge(metric_names::WORKERS)
            .set(config.workers as f64);
        metrics.gauge(metric_names::NODES).set(1.0);
        let health = Arc::new(HealthTracker::new());
        let node = Node::spawn(0, 0, config, cache, decisions, metrics, health);
        let started_s = node.core().clock.now_s();
        SolveClient {
            backend: Backend::Single {
                node,
                cache_baseline,
                decision_baseline,
            },
            started_s,
        }
    }

    pub(crate) fn from_cluster(cluster: ClusterBackend) -> Self {
        let started_s = cluster.clock.now_s();
        SolveClient {
            backend: Backend::Cluster(cluster),
            started_s,
        }
    }

    /// Submits a plan without blocking on its execution.  On a single node,
    /// submission blocks only while the pending set is at capacity
    /// (backpressure); a cluster never queues past its admission bound and
    /// instead sheds with [`SubmitError::Overloaded`] /
    /// [`SubmitError::QuotaExceeded`].  Returns the job's ticket, or
    /// [`SubmitError::Closed`] with the plan handed back when the client is
    /// draining or shut down.
    pub fn submit(&self, plan: SolvePlan) -> Result<SolveTicket, SubmitError> {
        match &self.backend {
            Backend::Single { node, .. } => {
                let core = node.core();
                let id = core.next_id.fetch_add(1, Ordering::Relaxed);
                let priority = plan.priority;
                let submitted_at_s = core.clock.now_s();
                let deadline = plan.deadline.map(|d| submitted_at_s + d.as_secs_f64());
                let shared = Arc::new(TicketShared::new());
                let queued = QueuedTicket {
                    plan,
                    submitted_at_s,
                    ticket: Arc::clone(&shared),
                    permit: None,
                    trace_seq_base: 0,
                };
                match core.sched.push(id, priority, deadline, queued) {
                    Ok(()) => Ok(SolveTicket::new(id, shared, Arc::clone(core))),
                    Err(queued) => Err(SubmitError::Closed(Box::new(queued.plan))),
                }
            }
            Backend::Cluster(cluster) => cluster.submit(plan),
        }
    }

    /// Jobs submitted so far (admitted or not — shed and closed submissions
    /// consume an id too).
    pub fn submitted(&self) -> u64 {
        match &self.backend {
            Backend::Single { node, .. } => node.core().next_id.load(Ordering::Relaxed),
            Backend::Cluster(cluster) => cluster.submitted(),
        }
    }

    /// Jobs cancelled before a worker started them.
    pub fn cancelled(&self) -> u64 {
        match &self.backend {
            Backend::Single { node, .. } => node.core().cancelled.load(Ordering::Relaxed),
            Backend::Cluster(cluster) => cluster.cancelled(),
        }
    }

    /// Nodes serving this client (1 unless it fronts a cluster).
    pub fn nodes(&self) -> usize {
        match &self.backend {
            Backend::Single { .. } => 1,
            Backend::Cluster(cluster) => cluster.nodes.len(),
        }
    }

    /// A point-in-time view of the live metrics registry.
    ///
    /// Unlike [`report`](Self::report) this does not lock the telemetry log —
    /// workers stream completions into the registry with atomic operations, so the
    /// snapshot is cheap and safe to poll **mid-traffic** on an undrained client.
    /// The vocabulary (see [`metric_names`]) is registered at
    /// startup, so every counter is present (zero-valued) from the first call; a
    /// cluster client additionally carries the routing/shedding counters and
    /// per-node completion counters.
    ///
    /// ```
    /// use refloat_runtime::{metric_names, RuntimeConfig, SolvePlan, SolveRuntime};
    ///
    /// let a = refloat_matgen::generators::laplacian_2d(8, 8, 0.3).to_csr();
    /// let handle = refloat_runtime::MatrixHandle::new("m", a);
    /// let format = refloat_core::ReFloatConfig::new(4, 3, 8, 3, 8);
    /// let client = SolveRuntime::start(RuntimeConfig { workers: 1, ..Default::default() });
    ///
    /// let ticket = client
    ///     .submit(SolvePlan::new("tenant", handle, format).build().unwrap())
    ///     .unwrap();
    /// assert!(ticket.wait().completed().is_some());
    ///
    /// // The client is still live (no drain/shutdown) and already serves counters.
    /// let snapshot = client.metrics_snapshot();
    /// assert_eq!(snapshot.counter(metric_names::JOBS_COMPLETED), Some(1));
    /// assert_eq!(snapshot.counter(metric_names::JOBS_CANCELLED), Some(0));
    /// assert!(snapshot.histogram(metric_names::LATENCY_S).unwrap().count >= 1);
    /// client.shutdown();
    /// ```
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        // The queue-depth high-water mark lives in the scheduler(s); refresh the
        // gauge so polls see the current peak (a cluster reports its worst node).
        match &self.backend {
            Backend::Single { node, .. } => {
                let core = node.core();
                core.metrics
                    .gauge(metric_names::QUEUE_DEPTH_PEAK)
                    .set(core.sched.stats().peak_depth as f64);
                core.metrics.snapshot()
            }
            Backend::Cluster(cluster) => {
                let peak = cluster
                    .nodes
                    .iter()
                    .map(|n| n.core().sched.stats().peak_depth)
                    .max()
                    .unwrap_or(0);
                cluster
                    .metrics
                    .gauge(metric_names::QUEUE_DEPTH_PEAK)
                    .set(peak as f64);
                cluster.metrics.snapshot()
            }
        }
    }

    /// The trace sink this client records spans into, when tracing is enabled.
    pub fn trace(&self) -> Option<&Arc<TraceSink>> {
        match &self.backend {
            Backend::Single { node, .. } => node.core().trace.as_ref(),
            Backend::Cluster(cluster) => cluster.trace.as_ref(),
        }
    }

    /// The fleet health ledger (shared across every node on a cluster).  Always
    /// present; without a fault policy it simply stays pristine.
    pub fn health(&self) -> &Arc<HealthTracker> {
        match &self.backend {
            Backend::Single { node, .. } => &node.core().health,
            Backend::Cluster(cluster) => &cluster.health,
        }
    }

    /// Administratively kills one worker's chip (pool-global worker id).
    ///
    /// Idempotent; returns `true` on the first kill.  A killed chip never loses
    /// or corrupts a job: in-flight and queued work re-routes to surviving
    /// workers, or resolves with the typed [`TicketOutcome::Degraded`] when the
    /// whole node is dead (see [`crate::health`]).
    pub fn kill_chip(&self, worker: usize) -> bool {
        let newly = self.health().kill_chip(worker);
        if newly {
            let metrics = match &self.backend {
                Backend::Single { node, .. } => &node.core().metrics,
                Backend::Cluster(cluster) => &cluster.metrics,
            };
            metrics.counter(metric_names::CHIPS_KILLED).inc();
        }
        newly
    }

    /// Stops admission and blocks until every accepted job has resolved its
    /// ticket.
    ///
    /// Draining is terminal: once the backlog empties each worker exits its loop,
    /// so the client can afterwards only hand out tickets/reports — further
    /// submissions fail with [`SubmitError::Closed`], and the only remaining
    /// lifecycle step is [`shutdown`](Self::shutdown) (or `Drop`), which joins the
    /// worker threads.
    pub fn drain(&self) {
        match &self.backend {
            Backend::Single { node, .. } => {
                node.close();
                node.wait_idle();
            }
            Backend::Cluster(cluster) => {
                // Close every node first so the whole fleet stops admitting at
                // once, then wait for each backlog to empty.
                for node in &cluster.nodes {
                    node.close();
                }
                for node in &cluster.nodes {
                    node.wait_idle();
                }
            }
        }
    }

    /// Drains and joins the worker pool(s), returning the final report.
    pub fn shutdown(mut self) -> RuntimeReport {
        self.drain();
        match &mut self.backend {
            Backend::Single { node, .. } => node.join_workers(),
            Backend::Cluster(cluster) => {
                for node in &mut cluster.nodes {
                    node.join_workers();
                }
            }
        }
        self.report()
    }

    /// A report over everything completed so far (cache/decision counters are
    /// deltas since this client started; a cluster sums them over its nodes and
    /// carries the shed counts).
    pub fn report(&self) -> RuntimeReport {
        match &self.backend {
            Backend::Single {
                node,
                cache_baseline,
                decision_baseline,
            } => {
                let core = node.core();
                let completed = sync::lock(&core.completed);
                let sched = core.sched.stats();
                // The live counters include the adds from degraded jobs, which
                // carry no telemetry row; only that rowless share goes into the
                // context, or the aggregate replay would double-count.
                let row_faults: u64 = completed.iter().map(|j| j.faults_detected).sum();
                let row_retries: u64 = completed.iter().map(|j| j.fault_retries).sum();
                RuntimeReport::aggregate(
                    &completed,
                    AggregateContext {
                        wall_s: (core.clock.now_s() - self.started_s).max(0.0),
                        cache: core.cache.stats().delta_since(cache_baseline),
                        decisions: core.decisions.stats().delta_since(decision_baseline),
                        workers: core.workers,
                        nodes: 1,
                        queue_depth_peak: sched.peak_depth,
                        cancelled_jobs: core.cancelled.load(Ordering::Relaxed) as usize,
                        shed_overloaded: 0,
                        shed_quota: 0,
                        degraded_jobs: core.metrics.counter(metric_names::JOBS_DEGRADED).get(),
                        rerouted_jobs: core.metrics.counter(metric_names::JOBS_REROUTED).get(),
                        chips_killed: core.metrics.counter(metric_names::CHIPS_KILLED).get(),
                        degraded_faults_detected: core
                            .metrics
                            .counter(metric_names::FAULTS_DETECTED)
                            .get()
                            .saturating_sub(row_faults),
                        degraded_fault_retries: core
                            .metrics
                            .counter(metric_names::FAULT_RETRIES)
                            .get()
                            .saturating_sub(row_retries),
                    },
                )
            }
            Backend::Cluster(cluster) => cluster.report(self.started_s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SolvePlan;
    use crate::MatrixHandle;
    use refloat_core::ReFloatConfig;

    #[test]
    fn a_panicking_job_fails_its_ticket_without_hanging_the_service() {
        // Regression: a panic inside a worker used to skip both finish_one and the
        // ticket resolution, deadlocking drain/shutdown and the waiter forever.
        // Force a panic the validator cannot catch by corrupting an already-built
        // plan in-crate (a wrong-length RHS trips the solver's dimension assert).
        let a = refloat_matgen::generators::laplacian_2d(8, 8, 0.3).to_csr();
        let handle = MatrixHandle::new("p8", a);
        let format = ReFloatConfig::new(4, 3, 8, 3, 8);
        let mut poisoned = SolvePlan::new("poisoned", handle.clone(), format)
            .build()
            .unwrap();
        poisoned.job.rhs = Some(std::sync::Arc::new(vec![1.0; 3]));

        let client = crate::SolveRuntime::start(crate::RuntimeConfig {
            workers: 1,
            ..Default::default()
        });
        let bad = client.submit(poisoned).unwrap();
        match bad.wait() {
            TicketOutcome::Failed(message) => {
                assert!(
                    message.contains("must match rhs length"),
                    "unexpected message {message:?}"
                )
            }
            other => panic!("poisoned job must fail its ticket, got {other:?}"),
        }
        // The worker survived the panic and keeps serving.
        let good = client
            .submit(SolvePlan::new("good", handle, format).build().unwrap())
            .unwrap();
        assert!(good.wait().completed().expect("runs").result.converged());
        // drain/shutdown complete instead of hanging on the lost in-flight count.
        let report = client.shutdown();
        assert_eq!(report.jobs, 1, "failed jobs carry no telemetry row");
        assert_eq!(report.converged, 1);
    }
}
