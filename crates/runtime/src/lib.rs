//! `refloat-runtime` — a persistent, multi-tenant solve service over a pool of
//! simulated ReFloat accelerators.
//!
//! The rest of the workspace drives *one* matrix through *one* solver on *one*
//! simulated chip at a time.  This crate adds the serving layer the ROADMAP's
//! production north-star asks for, in the spirit of the distributed in-memory-computing
//! line of work (Vo et al.) and the mixed-precision offload model of Le Gallo et al.:
//! many independent solves, admitted and scheduled against accelerator capacity by a
//! long-lived service, with per-job precision (the `ReFloatConfig`) and urgency (the
//! [`Priority`] class) chosen by the tenant.
//!
//! The moving parts:
//!
//! * [`SolvePlan`] / [`MatrixHandle`] (`plan`, `job`) — the submission API: a shared
//!   matrix handle, right-hand side(s), a ReFloat format, a solver, a QoS class and
//!   an optional soft deadline, validated *as a whole* by
//!   [`SolvePlanBuilder::build`] into either an immutable plan or a typed
//!   [`PlanError`] listing **every** conflicting selection (no panicking builder
//!   paths);
//! * [`SolveClient`] / [`SolveTicket`] (`client`) — the service handle:
//!   [`SolveClient::submit`] is non-blocking (modulo capacity backpressure) and
//!   returns a ticket with `wait`/`try_get`/`wait_timeout`/`cancel`; `drain` and
//!   `shutdown` finish gracefully;
//! * [`sched`] — the QoS scheduler: priority classes, earliest-deadline-first within
//!   a class, age-based anti-starvation promotion, deterministic tie-breaking by
//!   submission id (see the module docs for the determinism contract);
//! * [`BoundedQueue`] (`queue`) — the original blocking bounded MPMC queue, kept as
//!   a standalone primitive (the service path now schedules by priority instead of
//!   consuming FIFO);
//! * [`EncodedMatrixCache`] (`cache`) — an LRU cache of encoded
//!   [`ReFloatMatrix`](refloat_core::ReFloatMatrix) operators keyed by
//!   (matrix fingerprint, shard, format), with in-flight deduplication so concurrent
//!   jobs on the same matrix encode it once;
//! * [`SimulatedAccelerator`] (`accel`) — the per-worker chip model accounting
//!   simulated cycles/seconds (Eq. 2/3 via `reram-sim`) next to wall-clock time,
//!   including crossbar re-programming when a worker switches matrices;
//! * [`JobTelemetry`] / [`RuntimeReport`] (`telemetry`) — per-job measurements (queue
//!   wait, encode time, solve time, iterations, simulated cycles, cache outcome,
//!   priority class) and their aggregation (throughput, p50/p99 latency, p50/p99
//!   queue wait, peak queue depth, per-priority wait lanes, cache hit rate), backed
//!   by a `refloat-telemetry` [`MetricsRegistry`]: workers stream every completion
//!   into shared counters/histograms, so
//!   [`SolveClient::metrics_snapshot`] observes a *live* (undrained) service and
//!   [`RuntimeReport::aggregate`] derives its totals from the same recording path;
//! * span tracing — set [`RuntimeConfig::trace`] to a shared
//!   [`TraceSink`] and every job emits queue-wait / dequeue / cache-lookup / encode /
//!   execute / per-shard / refinement-pass / autotune-analysis / host-fp64 /
//!   chip-phase events, exportable as JSON-lines (see the `trace` module of
//!   `refloat-telemetry` and its deterministic-clock contract);
//! * [`RefinementSpec`] / [`AutoFormatSpec`] (`job`) — opt-in mixed-precision
//!   refinement and per-matrix format auto-tuning, both resolved through the shared
//!   caches;
//! * [`SolveSequence`] (`sequence`) — transient solve chains: each step reuses the
//!   previous step's cached encoding (incremental re-encode, charged only for the
//!   touched crossbar fraction), solution (residual-guarded warm start) and format
//!   decision, while jobs submitted outside a sequence stay bit-identical to the
//!   pre-sequence runtime;
//! * [`SolveRuntime`] (here) — the factory owning the caches; [`SolveRuntime::start`]
//!   (or [`SolveRuntime::client`]) spawns the worker pool and returns the client,
//!   while [`run_batch`](SolveRuntime::run_batch)/[`run_with`](SolveRuntime::run_with)
//!   survive as thin deterministic wrappers over it;
//! * [`Node`] (`node`) — the reusable serving unit everything above runs on: one
//!   worker pool plus its QoS scheduler, caches, and telemetry log.  A single-node
//!   client wraps exactly one; a cluster wraps several;
//! * [`ClusterRuntime`] / [`ClusterConfig`] (`cluster`) — N nodes behind an
//!   affinity-aware router with typed admission control: repeat fingerprints land
//!   on the node already holding their encodings, sharded jobs go where they fit,
//!   and under overload the cluster *sheds* with
//!   [`SubmitError::Overloaded`]/[`SubmitError::QuotaExceeded`] instead of
//!   queueing toward collapse — same client/ticket surface, same numerics.
//!
//! # Service mode
//!
//! ```
//! use refloat_core::ReFloatConfig;
//! use refloat_runtime::{MatrixHandle, Priority, RuntimeConfig, SolvePlan, SolveRuntime};
//!
//! let a = refloat_matgen::generators::laplacian_2d(16, 16, 0.3).to_csr();
//! let handle = MatrixHandle::new("poisson-16", a);
//!
//! let client = SolveRuntime::start(RuntimeConfig { workers: 2, ..RuntimeConfig::default() });
//! let urgent = client
//!     .submit(
//!         SolvePlan::new("alice", handle.clone(), ReFloatConfig::paper_default())
//!             .priority(Priority::Interactive)
//!             .build()
//!             .expect("valid plan"),
//!     )
//!     .expect("client accepts while open");
//! let background = client
//!     .submit(
//!         SolvePlan::new("bob", handle, ReFloatConfig::paper_default())
//!             .priority(Priority::Batch)
//!             .build()
//!             .expect("valid plan"),
//!     )
//!     .expect("client accepts while open");
//!
//! let outcome = urgent.wait().completed().expect("ran, not cancelled");
//! assert!(outcome.result.converged());
//! background.wait();
//! let report = client.shutdown();
//! assert_eq!(report.jobs, 2);
//! ```
//!
//! # The shard → chip → reduction pipeline
//!
//! A plan built with [`SolvePlanBuilder::sharding`]`(c)` spans `c` chips of a
//! simulated multi-chip accelerator instead of streaming an oversized matrix through
//! one chip:
//!
//! 1. **shard** — the matrix is partitioned into `c` nnz-balanced bands on `2^b`
//!    block-row boundaries (`refloat_sparse::shard`, reusing `balance_by_weight`), so
//!    every band re-blocks into exactly the blocks the unsharded matrix produces;
//! 2. **chip** — each band is encoded through the shared LRU cache under its own
//!    [`ShardId`] key `(fingerprint, shard, format)` and programmed onto its own chip;
//!    per SpMV the chips run in parallel, so the simulated cost is the *makespan* (the
//!    slowest shard), not the sum (`reram_sim::multichip`);
//! 3. **reduction** — each SpMV ends with a fixed-order gather of the disjoint
//!    per-chip output bands to the host, charged as link latency + bandwidth.
//!
//! Batched **multi-RHS** plans ([`SolvePlanBuilder::rhs_batch`]) push `k` right-hand
//! sides through the same pipeline: the chips are programmed once and every column
//! solve amortizes that programming (and the cache traffic) across the batch.
//!
//! # Determinism
//!
//! Every job is a pure function of its matrix, right-hand side(s) and configuration:
//! the encoded operator a worker solves with is (a clone of) the same `ReFloatMatrix`
//! the serial path would build, so **numeric results are bit-identical to serial
//! execution regardless of worker count, scheduling policy, or cache state**.  Only
//! wall-clock telemetry varies between runs.  The QoS scheduler reorders *when* jobs
//! run, never *what* they compute; equal-priority traffic additionally keeps the
//! submission-id dequeue order of the old FIFO path (see [`sched`]).
//!
//! The contract extends across **shard counts**: a sharded solve is bitwise identical
//! to the unsharded solve for every `c`, because shard cuts never split a block, each
//! shard's vector converter re-encodes the full input identically, every output row is
//! accumulated by exactly one shard in the unsharded block order, and the inter-shard
//! "reduction" is a gather of disjoint bands — no floating-point operation is
//! reordered.  (The level-1 kernels underneath — `vecops::dot`/`norm2` — use pairwise
//! summation whose split points depend only on vector length, so residual tests and
//! stopping decisions are also independent of sharding and stable at large `n`.)
//!
//! # Batch wrappers
//!
//! ```
//! use refloat_core::ReFloatConfig;
//! use refloat_runtime::{MatrixHandle, RuntimeConfig, SolvePlan, SolveRuntime};
//!
//! let a = refloat_matgen::generators::laplacian_2d(16, 16, 0.3).to_csr();
//! let handle = MatrixHandle::new("poisson-16", a);
//! let plans: Vec<SolvePlan> = (0..8)
//!     .map(|t| {
//!         SolvePlan::new(format!("tenant-{t}"), handle.clone(), ReFloatConfig::paper_default())
//!             .build()
//!             .expect("valid plan")
//!     })
//!     .collect();
//!
//! let runtime = SolveRuntime::new(RuntimeConfig { workers: 4, ..RuntimeConfig::default() });
//! let outcome = runtime.run_batch(plans);
//! assert_eq!(outcome.jobs.len(), 8);
//! assert!(outcome.jobs.iter().all(|j| j.result.converged()));
//! // 8 jobs on one matrix+format: a single encode, 7 cache hits.
//! assert!(outcome.report.cache.hits + outcome.report.cache.coalesced >= 7);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accel;
pub mod cache;
pub mod client;
pub mod cluster;
pub mod decision;
pub mod fingerprint;
pub mod health;
pub mod job;
pub mod node;
pub mod plan;
pub mod queue;
pub mod sched;
pub mod sequence;
pub mod telemetry;
mod trace_job;
mod worker;

pub use accel::{AcceleratorUsage, RefinedPassCost, SimulatedAccelerator, SimulatedRun};
pub use cache::{CacheKey, CacheOutcome, CacheStats, EncodedMatrixCache, ShardId};
pub use client::{
    DegradedJob, DegradedReason, SolveClient, SolveTicket, SubmitError, TicketOutcome,
};
pub use cluster::{
    AdmissionConfig, ClusterConfig, ClusterRuntime, Placement, RouteKind, Router, RouterPolicy,
};
pub use decision::{DecisionKey, DecisionOutcome, DecisionStats, FormatDecisionCache};
pub use fingerprint::fingerprint_csr;
pub use health::{ChipHealthRecord, FaultPolicy, HealthTracker, NodeHealthSignal};
pub use job::{AutoFormatSpec, JobOutcome, MatrixHandle, RefinementSpec};
pub use node::Node;
pub use plan::{PlanError, PlanViolation, SolvePlan, SolvePlanBuilder};
pub use queue::BoundedQueue;
pub use sched::{JobScheduler, Popped, Priority, SchedulerPolicy, SchedulerStats, SchedulingMode};
pub use sequence::SolveSequence;
pub use telemetry::{
    metric_names, AggregateContext, AutotuneTelemetry, CacheOutcomeKind, JobMetricHandles,
    JobTelemetry, PriorityLane, RefinementTelemetry, RuntimeReport, SequenceTelemetry,
};
// Re-export the observability vocabulary so service users need only this crate.
pub use refloat_telemetry::{
    parse_jsonl, Clock, ManualClock, MetricsRegistry, MetricsSnapshot, SpanKind, TraceEvent,
    TraceSink, WallClock,
};

use std::cell::RefCell;
use std::sync::Arc;

/// Sizing and scheduling knobs for a [`SolveRuntime`] / [`SolveClient`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads; each owns one simulated accelerator (pool).
    pub workers: usize,
    /// Pending-job capacity (submission blocks when full — backpressure).
    pub queue_capacity: usize,
    /// Encoded-matrix cache capacity, in entries.
    pub cache_capacity: usize,
    /// Crossbars per simulated chip (`None` = the Table IV 2^18).  Smaller chips push
    /// matrices past the single-chip budget, the regime where sharded plans
    /// ([`SolvePlanBuilder::sharding`]) pay off.
    pub chip_crossbars: Option<u64>,
    /// Dequeue policy: priority scheduling with anti-starvation promotion by
    /// default; [`SchedulerPolicy::fifo`] restores strict arrival order.
    pub scheduler: SchedulerPolicy,
    /// Optional span-trace sink.  `None` (the default) disables tracing entirely —
    /// workers skip event construction, so the hot path pays nothing.  With a sink
    /// every job flushes its events in one batch; solve numerics are unaffected
    /// either way (tracing only observes wall-clock time, see the
    /// deterministic-clock contract in `refloat-telemetry`).
    pub trace: Option<Arc<TraceSink>>,
    /// Optional device fault injection ([`FaultPolicy`]): every worker chip gets a
    /// persistent stuck-cell/drift/wear model, plain unsharded solves run through
    /// the faulty operator with spare remapping and (optionally) ABFT detection
    /// plus re-encode retries.  `None` — the default — leaves every execution
    /// path bit-identical to the fault-free runtime.
    pub fault: Option<FaultPolicy>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 32,
            chip_crossbars: None,
            scheduler: SchedulerPolicy::default(),
            trace: None,
            fault: None,
        }
    }
}

/// Everything a finished batch reports: per-job outcomes (in submission order) and the
/// aggregated [`RuntimeReport`].
#[derive(Debug)]
pub struct RuntimeOutcome {
    /// One outcome per submitted job, sorted by submission order.
    pub jobs: Vec<JobOutcome>,
    /// Aggregated batch statistics.
    pub report: RuntimeReport,
}

/// Handed to the producer closure of [`SolveRuntime::run_with`]; submits plans into
/// the service (blocking while the pending set is at capacity) and keeps their
/// tickets so the wrapper can collect results in submission order.
pub struct JobSubmitter<'a> {
    client: &'a SolveClient,
    tickets: RefCell<Vec<SolveTicket>>,
}

impl JobSubmitter<'_> {
    /// Enqueues a plan, blocking while the pending set is at capacity.  Returns the
    /// job id (its position in submission order), or the typed
    /// [`SubmitError::Closed`] — with the plan handed back — if the service stopped
    /// admitting (it never silently drops a job).
    pub fn submit(&self, plan: SolvePlan) -> Result<u64, SubmitError> {
        let ticket = self.client.submit(plan)?;
        let id = ticket.id();
        self.tickets.borrow_mut().push(ticket);
        Ok(id)
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.client.submitted()
    }
}

/// The multi-tenant solve service factory.
///
/// Owns the encoded-matrix and format-decision caches, which persist across every
/// client and batch it serves — a tenant resubmitting the same matrix + format later
/// skips quantization entirely.
pub struct SolveRuntime {
    config: RuntimeConfig,
    cache: Arc<EncodedMatrixCache>,
    decisions: Arc<FormatDecisionCache>,
}

impl SolveRuntime {
    /// Creates a runtime; workers are spawned per client (or per batch), the caches
    /// are created once here.  The format-decision cache shares the encode cache's
    /// capacity (decisions are tiny; the capacity only bounds distinct
    /// matrix × tolerance × chip combinations remembered).
    pub fn new(config: RuntimeConfig) -> Self {
        assert!(config.workers >= 1, "runtime needs at least one worker");
        assert!(
            config.queue_capacity >= 1,
            "queue capacity must be at least 1"
        );
        let cache = Arc::new(EncodedMatrixCache::new(config.cache_capacity));
        let decisions = Arc::new(FormatDecisionCache::new(config.cache_capacity));
        SolveRuntime {
            config,
            cache,
            decisions,
        }
    }

    /// Starts a self-contained service: spawns the worker pool and returns the
    /// long-lived [`SolveClient`] handle (the one-call entry point for service
    /// mode).  The caches live as long as the client.
    pub fn start(config: RuntimeConfig) -> SolveClient {
        SolveRuntime::new(config).client()
    }

    /// Spawns a worker pool sharing this runtime's caches and returns its client.
    ///
    /// Several sequential clients of one runtime share encoded matrices and format
    /// decisions; each client's report covers its own jobs (cache counters are
    /// deltas since the client started).
    pub fn client(&self) -> SolveClient {
        SolveClient::spawn(
            &self.config,
            Arc::clone(&self.cache),
            Arc::clone(&self.decisions),
        )
    }

    /// The runtime's sizing configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The shared encoded-matrix cache.
    pub fn cache(&self) -> &EncodedMatrixCache {
        &self.cache
    }

    /// The shared format-decision cache (auto-format jobs).
    pub fn decisions(&self) -> &FormatDecisionCache {
        &self.decisions
    }

    /// Convenience: submit a pre-built batch and wait for all results.
    ///
    /// A thin deterministic wrapper over [`client`](Self::client): outcomes come
    /// back in submission order whatever the scheduler did.
    pub fn run_batch(&self, plans: Vec<SolvePlan>) -> RuntimeOutcome {
        self.run_with(|submitter| {
            for plan in plans {
                submitter
                    .submit(plan)
                    .expect("the batch client admits until the producer returns");
            }
        })
    }

    /// Runs a streaming batch: spawns a worker pool, calls `produce` with a
    /// [`JobSubmitter`] (on the calling thread, so submission observes queue
    /// backpressure), and returns once every submitted job has completed — a thin
    /// deterministic wrapper over the service client.
    pub fn run_with<F>(&self, produce: F) -> RuntimeOutcome
    where
        F: FnOnce(&JobSubmitter<'_>),
    {
        let client = self.client();
        let submitter = JobSubmitter {
            client: &client,
            tickets: RefCell::new(Vec::new()),
        };
        produce(&submitter);
        let tickets = submitter.tickets.into_inner();
        // Tickets are waited in submission order; nothing can cancel them (the
        // submitter never exposes them), so every one completes or failed.  A
        // failed (panicked) job re-panics here, preserving the propagate-to-caller
        // semantics of the old scoped-thread batch pool.
        let jobs: Vec<JobOutcome> = tickets
            .into_iter()
            .filter_map(|t| match t.wait() {
                TicketOutcome::Completed(outcome) => Some(*outcome),
                TicketOutcome::Cancelled => None,
                TicketOutcome::Failed(message) => {
                    panic!("runtime job panicked: {message}")
                }
                TicketOutcome::Degraded(degraded) => {
                    panic!(
                        "runtime job {} degraded ({:?}); batch wrappers expect clean \
                         completions — use the service client to receive typed \
                         Degraded outcomes",
                        degraded.job_id, degraded.reason
                    )
                }
            })
            .collect();
        let report = client.shutdown();
        RuntimeOutcome { jobs, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_core::ReFloatConfig;

    fn poisson_handle(n: usize, name: &str) -> MatrixHandle {
        MatrixHandle::new(
            name,
            refloat_matgen::generators::laplacian_2d(n, n, 0.3).to_csr(),
        )
    }

    fn plan(tenant: &str, handle: &MatrixHandle, format: ReFloatConfig) -> SolvePlan {
        SolvePlan::new(tenant, handle.clone(), format)
            .build()
            .expect("valid plan")
    }

    #[test]
    fn batch_results_arrive_in_submission_order() {
        let handle = poisson_handle(8, "p8");
        let plans: Vec<SolvePlan> = (0..10)
            .map(|i| plan(&format!("t{i}"), &handle, ReFloatConfig::new(4, 3, 8, 3, 8)))
            .collect();
        let runtime = SolveRuntime::new(RuntimeConfig {
            workers: 3,
            ..Default::default()
        });
        let outcome = runtime.run_batch(plans);
        let ids: Vec<u64> = outcome.jobs.iter().map(|j| j.job_id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u64>>());
        for (i, job) in outcome.jobs.iter().enumerate() {
            assert_eq!(job.telemetry.tenant, format!("t{i}"));
            assert!(job.result.converged());
        }
    }

    #[test]
    fn cache_persists_across_batches() {
        let handle = poisson_handle(8, "p8");
        let format = ReFloatConfig::new(4, 3, 8, 3, 8);
        let runtime = SolveRuntime::new(RuntimeConfig {
            workers: 2,
            ..Default::default()
        });

        let first = runtime.run_batch(vec![plan("a", &handle, format)]);
        assert_eq!(first.report.cache.misses, 1);

        let second = runtime.run_batch(vec![plan("b", &handle, format)]);
        assert_eq!(second.report.cache.misses, 0);
        assert_eq!(second.report.cache.hits, 1);
        assert_eq!(second.jobs[0].telemetry.encode_s, 0.0);
    }

    #[test]
    fn streaming_submission_observes_backpressure_and_completes() {
        let handle = poisson_handle(6, "p6");
        let format = ReFloatConfig::new(3, 3, 8, 3, 8);
        let runtime = SolveRuntime::new(RuntimeConfig {
            workers: 2,
            queue_capacity: 2,
            cache_capacity: 4,
            ..Default::default()
        });
        let outcome = runtime.run_with(|submitter| {
            for i in 0..24 {
                submitter
                    .submit(plan(&format!("t{i}"), &handle, format))
                    .expect("open during produce");
            }
            assert_eq!(submitter.submitted(), 24);
        });
        assert_eq!(outcome.jobs.len(), 24);
        assert!(outcome.report.throughput_jobs_per_s > 0.0);
        assert!(outcome.report.queue_depth_peak >= 1);
        assert!(outcome.report.queue_depth_peak <= 2);
    }
}
