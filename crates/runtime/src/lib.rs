//! `refloat-runtime` — a batched, multi-tenant solve service over a pool of simulated
//! ReFloat accelerators.
//!
//! The rest of the workspace drives *one* matrix through *one* solver on *one*
//! simulated chip at a time.  This crate adds the serving layer the ROADMAP's
//! production north-star asks for, in the spirit of the distributed in-memory-computing
//! line of work (Vo et al.) and the mixed-precision offload model of Le Gallo et al.:
//! many independent solves, scheduled across a worker pool where **each worker owns one
//! simulated accelerator**, with per-job precision (the `ReFloatConfig`) chosen by the
//! tenant.
//!
//! The moving parts:
//!
//! * [`SolveJob`] / [`MatrixHandle`] (`job`) — the submission API: a shared matrix
//!   handle, a right-hand side, a ReFloat format, a solver kind and a tolerance;
//! * [`BoundedQueue`] (`queue`) — a blocking bounded MPMC queue providing submission
//!   backpressure, built on `Mutex` + `Condvar` (no async runtime, matching the
//!   scoped-thread idioms of `refloat_sparse::parallel`);
//! * [`EncodedMatrixCache`] (`cache`) — an LRU cache of encoded
//!   [`ReFloatMatrix`](refloat_core::ReFloatMatrix) operators keyed by
//!   (matrix fingerprint, shard, format), with in-flight deduplication so concurrent
//!   jobs on the same matrix encode it once;
//! * [`SimulatedAccelerator`] (`accel`) — the per-worker chip model accounting
//!   simulated cycles/seconds (Eq. 2/3 via `reram-sim`) next to wall-clock time,
//!   including crossbar re-programming when a worker switches matrices;
//! * [`JobTelemetry`] / [`RuntimeReport`] (`telemetry`) — per-job measurements (queue
//!   wait, encode time, solve time, iterations, simulated cycles, cache outcome) and
//!   their aggregation (throughput, p50/p99 latency, cache hit rate);
//! * [`RefinementSpec`] (`job`) — opt-in **mixed-precision refinement**: the job runs
//!   the outer fp64 defect-correction loop of `refloat_solvers::refinement`, drawing
//!   inner correction solves from a precision ladder whose quantized rungs resolve
//!   through the same encoded-matrix cache (so escalation re-uses encodings), with
//!   per-pass chip re-programming and host-side fp64 work charged by the accelerator
//!   model;
//! * [`SolveRuntime`] (here) — the service itself: spawns the worker pool on scoped
//!   threads, feeds it from a producer closure, and collects deterministic,
//!   submission-ordered results.
//!
//! # The shard → chip → reduction pipeline
//!
//! A job built with [`SolveJob::with_sharding`]`(c)` spans `c` chips of a simulated
//! multi-chip accelerator instead of streaming an oversized matrix through one chip:
//!
//! 1. **shard** — the matrix is partitioned into `c` nnz-balanced bands on `2^b`
//!    block-row boundaries (`refloat_sparse::shard`, reusing `balance_by_weight`), so
//!    every band re-blocks into exactly the blocks the unsharded matrix produces;
//! 2. **chip** — each band is encoded through the shared LRU cache under its own
//!    [`ShardId`] key `(fingerprint, shard, format)` and programmed onto its own chip;
//!    per SpMV the chips run in parallel, so the simulated cost is the *makespan* (the
//!    slowest shard), not the sum (`reram_sim::multichip`);
//! 3. **reduction** — each SpMV ends with a fixed-order gather of the disjoint
//!    per-chip output bands to the host, charged as link latency + bandwidth.
//!
//! Batched **multi-RHS** jobs ([`SolveJob::with_rhs_batch`]) push `k` right-hand sides
//! through the same pipeline: the chips are programmed once and every column solve
//! amortizes that programming (and the cache traffic) across the batch.
//!
//! # Determinism
//!
//! Every job is a pure function of its matrix, right-hand side(s) and configuration:
//! the encoded operator a worker solves with is (a clone of) the same `ReFloatMatrix`
//! the serial path would build, so **numeric results are bit-identical to serial
//! execution regardless of worker count, scheduling, or cache state**.  Only
//! wall-clock telemetry varies between runs.
//!
//! The contract extends across **shard counts**: a sharded solve is bitwise identical
//! to the unsharded solve for every `c`, because shard cuts never split a block, each
//! shard's vector converter re-encodes the full input identically, every output row is
//! accumulated by exactly one shard in the unsharded block order, and the inter-shard
//! "reduction" is a gather of disjoint bands — no floating-point operation is
//! reordered.  (The level-1 kernels underneath — `vecops::dot`/`norm2` — use pairwise
//! summation whose split points depend only on vector length, so residual tests and
//! stopping decisions are also independent of sharding and stable at large `n`.)
//!
//! # Example
//!
//! ```
//! use refloat_core::ReFloatConfig;
//! use refloat_runtime::{MatrixHandle, RuntimeConfig, SolveJob, SolveRuntime};
//!
//! let a = refloat_matgen::generators::laplacian_2d(16, 16, 0.3).to_csr();
//! let handle = MatrixHandle::new("poisson-16", a);
//! let jobs: Vec<SolveJob> = (0..8)
//!     .map(|t| {
//!         SolveJob::new(format!("tenant-{t}"), handle.clone(), ReFloatConfig::paper_default())
//!     })
//!     .collect();
//!
//! let runtime = SolveRuntime::new(RuntimeConfig { workers: 4, ..RuntimeConfig::default() });
//! let outcome = runtime.run_batch(jobs);
//! assert_eq!(outcome.jobs.len(), 8);
//! assert!(outcome.jobs.iter().all(|j| j.result.converged()));
//! // 8 jobs on one matrix+format: a single encode, 7 cache hits.
//! assert!(outcome.report.cache.hits + outcome.report.cache.coalesced >= 7);
//! ```

#![warn(missing_docs)]

pub mod accel;
pub mod cache;
pub mod decision;
pub mod fingerprint;
pub mod job;
pub mod queue;
pub mod telemetry;
mod worker;

pub use accel::{AcceleratorUsage, RefinedPassCost, SimulatedAccelerator, SimulatedRun};
pub use cache::{CacheKey, CacheOutcome, CacheStats, EncodedMatrixCache, ShardId};
pub use decision::{DecisionKey, DecisionOutcome, DecisionStats, FormatDecisionCache};
pub use fingerprint::fingerprint_csr;
pub use job::{AutoFormatSpec, JobOutcome, MatrixHandle, RefinementSpec, SolveJob};
pub use queue::BoundedQueue;
pub use telemetry::{
    AutotuneTelemetry, CacheOutcomeKind, JobTelemetry, RefinementTelemetry, RuntimeReport,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use job::QueuedJob;

/// Sizing knobs for a [`SolveRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads; each owns one simulated accelerator (pool).
    pub workers: usize,
    /// Bounded job-queue capacity (submission blocks when full — backpressure).
    pub queue_capacity: usize,
    /// Encoded-matrix cache capacity, in entries.
    pub cache_capacity: usize,
    /// Crossbars per simulated chip (`None` = the Table IV 2^18).  Smaller chips push
    /// matrices past the single-chip budget, the regime where sharded jobs
    /// ([`SolveJob::with_sharding`]) pay off.
    pub chip_crossbars: Option<u64>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 32,
            chip_crossbars: None,
        }
    }
}

/// Everything a finished batch reports: per-job outcomes (in submission order) and the
/// aggregated [`RuntimeReport`].
#[derive(Debug)]
pub struct RuntimeOutcome {
    /// One outcome per submitted job, sorted by submission order.
    pub jobs: Vec<JobOutcome>,
    /// Aggregated batch statistics.
    pub report: RuntimeReport,
}

/// Handed to the producer closure of [`SolveRuntime::run_with`]; submits jobs into the
/// bounded queue (blocking when the queue is full).
pub struct JobSubmitter<'a> {
    queue: &'a BoundedQueue<QueuedJob>,
    next_id: AtomicU64,
}

impl JobSubmitter<'_> {
    /// Enqueues a job, blocking while the queue is at capacity.  Returns the job id
    /// (its position in submission order).
    pub fn submit(&self, job: SolveJob) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let queued = QueuedJob {
            id,
            job,
            submitted_at: Instant::now(),
        };
        if self.queue.push(queued).is_err() {
            unreachable!("runtime queue closes only after the producer returns");
        }
        id
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }
}

/// The batched multi-tenant solve service.
///
/// The encoded-matrix cache lives on the runtime and persists across batches, so a
/// tenant resubmitting the same matrix + format later skips quantization entirely.
pub struct SolveRuntime {
    config: RuntimeConfig,
    cache: Arc<EncodedMatrixCache>,
    decisions: Arc<FormatDecisionCache>,
}

impl SolveRuntime {
    /// Creates a runtime; workers are spawned per batch (scoped threads), the caches
    /// are created once here.  The format-decision cache shares the encode cache's
    /// capacity (decisions are tiny; the capacity only bounds distinct
    /// matrix × tolerance × chip combinations remembered).
    pub fn new(config: RuntimeConfig) -> Self {
        assert!(config.workers >= 1, "runtime needs at least one worker");
        assert!(
            config.queue_capacity >= 1,
            "queue capacity must be at least 1"
        );
        let cache = Arc::new(EncodedMatrixCache::new(config.cache_capacity));
        let decisions = Arc::new(FormatDecisionCache::new(config.cache_capacity));
        SolveRuntime {
            config,
            cache,
            decisions,
        }
    }

    /// The runtime's sizing configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The shared encoded-matrix cache.
    pub fn cache(&self) -> &EncodedMatrixCache {
        &self.cache
    }

    /// The shared format-decision cache (auto-format jobs).
    pub fn decisions(&self) -> &FormatDecisionCache {
        &self.decisions
    }

    /// Convenience: submit a pre-built batch and wait for all results.
    pub fn run_batch(&self, jobs: Vec<SolveJob>) -> RuntimeOutcome {
        self.run_with(|submitter| {
            for job in jobs {
                submitter.submit(job);
            }
        })
    }

    /// Runs a streaming batch: spawns the worker pool, calls `produce` with a
    /// [`JobSubmitter`] (on the calling thread, so submission observes queue
    /// backpressure), and returns once every submitted job has completed.
    pub fn run_with<F>(&self, produce: F) -> RuntimeOutcome
    where
        F: FnOnce(&JobSubmitter<'_>),
    {
        let queue = BoundedQueue::new(self.config.queue_capacity);
        let (results_tx, results_rx) = mpsc::channel::<JobOutcome>();
        let started = Instant::now();
        let cache_before = self.cache.stats();
        let decisions_before = self.decisions.stats();

        std::thread::scope(|scope| {
            for worker_id in 0..self.config.workers {
                let queue = &queue;
                let cache = Arc::clone(&self.cache);
                let decisions = Arc::clone(&self.decisions);
                let results = results_tx.clone();
                let chip_crossbars = self.config.chip_crossbars;
                scope.spawn(move || {
                    worker::worker_loop(
                        worker_id,
                        queue,
                        &cache,
                        &decisions,
                        chip_crossbars,
                        results,
                    )
                });
            }
            let submitter = JobSubmitter {
                queue: &queue,
                next_id: AtomicU64::new(0),
            };
            produce(&submitter);
            queue.close();
        });
        drop(results_tx);

        let mut jobs: Vec<JobOutcome> = results_rx.into_iter().collect();
        jobs.sort_by_key(|j| j.job_id);
        let wall_s = started.elapsed().as_secs_f64();
        let cache_stats = self.cache.stats().delta_since(&cache_before);
        let decision_stats = self.decisions.stats().delta_since(&decisions_before);
        let report = RuntimeReport::aggregate(
            &jobs,
            wall_s,
            cache_stats,
            decision_stats,
            self.config.workers,
        );
        RuntimeOutcome { jobs, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_core::ReFloatConfig;

    fn poisson_handle(n: usize, name: &str) -> MatrixHandle {
        MatrixHandle::new(
            name,
            refloat_matgen::generators::laplacian_2d(n, n, 0.3).to_csr(),
        )
    }

    #[test]
    fn batch_results_arrive_in_submission_order() {
        let handle = poisson_handle(8, "p8");
        let jobs: Vec<SolveJob> = (0..10)
            .map(|i| {
                SolveJob::new(
                    format!("t{i}"),
                    handle.clone(),
                    ReFloatConfig::new(4, 3, 8, 3, 8),
                )
            })
            .collect();
        let runtime = SolveRuntime::new(RuntimeConfig {
            workers: 3,
            ..Default::default()
        });
        let outcome = runtime.run_batch(jobs);
        let ids: Vec<u64> = outcome.jobs.iter().map(|j| j.job_id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u64>>());
        for (i, job) in outcome.jobs.iter().enumerate() {
            assert_eq!(job.telemetry.tenant, format!("t{i}"));
            assert!(job.result.converged());
        }
    }

    #[test]
    fn cache_persists_across_batches() {
        let handle = poisson_handle(8, "p8");
        let format = ReFloatConfig::new(4, 3, 8, 3, 8);
        let runtime = SolveRuntime::new(RuntimeConfig {
            workers: 2,
            ..Default::default()
        });

        let first = runtime.run_batch(vec![SolveJob::new("a", handle.clone(), format)]);
        assert_eq!(first.report.cache.misses, 1);

        let second = runtime.run_batch(vec![SolveJob::new("b", handle, format)]);
        assert_eq!(second.report.cache.misses, 0);
        assert_eq!(second.report.cache.hits, 1);
        assert_eq!(second.jobs[0].telemetry.encode_s, 0.0);
    }

    #[test]
    fn streaming_submission_observes_backpressure_and_completes() {
        let handle = poisson_handle(6, "p6");
        let format = ReFloatConfig::new(3, 3, 8, 3, 8);
        let runtime = SolveRuntime::new(RuntimeConfig {
            workers: 2,
            queue_capacity: 2,
            cache_capacity: 4,
            chip_crossbars: None,
        });
        let outcome = runtime.run_with(|submitter| {
            for i in 0..24 {
                submitter.submit(SolveJob::new(format!("t{i}"), handle.clone(), format));
            }
            assert_eq!(submitter.submitted(), 24);
        });
        assert_eq!(outcome.jobs.len(), 24);
        assert!(outcome.report.throughput_jobs_per_s > 0.0);
    }
}
