//! Content fingerprinting for matrices (the cache key's matrix half).

use refloat_sparse::CsrMatrix;

/// The FNV-1a 64-bit offset basis (the hash accumulator's initial value).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Folds one 64-bit word (little-endian bytes) into an FNV-1a hash accumulator.
/// Shared by the matrix fingerprint here and the result digests of the trace drivers,
/// so the two hashing conventions cannot drift apart.
#[inline]
pub fn fnv1a_u64(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A 64-bit FNV-1a fingerprint over a CSR matrix's dimensions, structure and value
/// bits.  One linear pass; equal matrices (same structure, bit-equal values) hash
/// equal, and any structural or value change — including `0.0` vs `-0.0` — changes the
/// fingerprint with overwhelming probability.
pub fn fingerprint_csr(a: &CsrMatrix) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a_u64(h, a.nrows() as u64);
    h = fnv1a_u64(h, a.ncols() as u64);
    h = fnv1a_u64(h, a.nnz() as u64);
    for &p in a.row_ptr() {
        h = fnv1a_u64(h, p as u64);
    }
    for &c in a.col_idx() {
        h = fnv1a_u64(h, c as u64);
    }
    for &v in a.values() {
        h = fnv1a_u64(h, v.to_bits());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::generators;

    #[test]
    fn fingerprint_is_stable_and_value_sensitive() {
        let a = generators::wathen(4, 4, 9).to_csr();
        let b = generators::wathen(4, 4, 9).to_csr();
        assert_eq!(fingerprint_csr(&a), fingerprint_csr(&b));

        let mut c = a.clone();
        let mid = c.values().len() / 2;
        c.values_mut()[mid] *= 1.0 + 1e-15;
        assert_ne!(fingerprint_csr(&a), fingerprint_csr(&c));
    }

    #[test]
    fn fingerprint_distinguishes_structure_at_equal_nnz() {
        // Same dimensions and nnz, different positions.
        let a = generators::sphere_ring_3regular(16, 1.0, 0.2).to_csr();
        let mut coo = a.to_coo();
        // Shift one off-diagonal entry to a different column by rebuilding triplets.
        let rows = coo.row_indices().to_vec();
        let mut cols = coo.col_indices().to_vec();
        let vals = coo.values().to_vec();
        let swap = rows
            .iter()
            .zip(cols.iter())
            .position(|(&r, &c)| r != c)
            .unwrap();
        cols[swap] = (cols[swap] + 1) % 16;
        coo = refloat_sparse::CooMatrix::from_triplets(16, 16, rows, cols, vals).unwrap();
        let b = coo.to_csr();
        assert_eq!(a.nnz(), b.nnz());
        assert_ne!(fingerprint_csr(&a), fingerprint_csr(&b));
    }

    #[test]
    fn signed_zero_changes_the_fingerprint() {
        let a = generators::logspace_diagonal(4, 1.0, 2.0).to_csr();
        let mut b = a.clone();
        b.values_mut()[0] = 0.0;
        let mut c = a.clone();
        c.values_mut()[0] = -0.0;
        assert_ne!(fingerprint_csr(&b), fingerprint_csr(&c));
    }
}
