//! The per-worker simulated accelerator: translates each completed solve into the
//! chip-time it would have cost on the Table IV ReFloat accelerator, and accounts
//! crossbar re-programming when a worker switches to a different matrix.

use std::sync::Arc;

use refloat_core::ReFloatConfig;
use reram_sim::cost::ABFT_CHECK_CYCLES_PER_BLOCK;
use reram_sim::{
    AcceleratorConfig, ChipFaultState, ChipPhase, CycleEvent, CycleHook, DeviceHealth,
    FaultModelConfig, GpuModel, HealthSummary, MultiChipAccelerator, MultiChipConfig, SolverKind,
};

use crate::cache::CacheKey;

/// What one job cost on the simulated chip (or chip pool).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedRun {
    /// Crossbar pipeline cycles across the whole solve (Eq. 3 cycles × rounds × SpMVs;
    /// for sharded jobs, the makespan chip's cycles).
    pub cycles: u64,
    /// Seconds of crossbar compute.
    pub compute_s: f64,
    /// Seconds of mid-solve cell re-writes (streaming rounds of oversized matrices).
    pub stream_write_s: f64,
    /// Seconds re-programming the chip because it held a different matrix (or nothing).
    pub program_s: f64,
    /// Seconds gathering per-chip output bands to the host (sharded jobs only; the
    /// fixed-order inter-chip reduction of each SpMV).
    pub reduction_s: f64,
    /// Seconds of host-side fp64 work (the GPU model): the outer-loop residual
    /// evaluations and any fp64-fallback inner solves of a refined job.  Zero for
    /// plain jobs.
    pub host_fp64_s: f64,
    /// Total simulated seconds for the job (compute + writes + programming + gather +
    /// host fp64 + the per-iteration digital overhead folded into the solver-time
    /// model).
    pub total_s: f64,
    /// Whether this job had to re-program the chip.
    pub remapped: bool,
}

impl SimulatedRun {
    /// A run that cost nothing (the identity of [`absorb`](Self::absorb)).
    pub fn zero() -> Self {
        SimulatedRun {
            cycles: 0,
            compute_s: 0.0,
            stream_write_s: 0.0,
            program_s: 0.0,
            reduction_s: 0.0,
            host_fp64_s: 0.0,
            total_s: 0.0,
            remapped: false,
        }
    }

    /// Folds another run's cost into this one (used when one job spans several
    /// execution phases, e.g. an auto-format job whose plain attempt stalled and fell
    /// back to a refined solve on the same chip).
    pub fn absorb(&mut self, other: &SimulatedRun) {
        self.cycles += other.cycles;
        self.compute_s += other.compute_s;
        self.stream_write_s += other.stream_write_s;
        self.program_s += other.program_s;
        self.reduction_s += other.reduction_s;
        self.host_fp64_s += other.host_fp64_s;
        self.total_s += other.total_s;
        self.remapped |= other.remapped;
    }

    /// The run's per-phase attribution as [`CycleEvent`]s, skipping zero-cost phases.
    ///
    /// Pipeline cycles are all crossbar compute, so the total cycle count rides on the
    /// [`ChipPhase::Compute`] event; host-side phases are modelled in seconds only.
    /// Everything here is **simulated** time — deterministic and digest-safe.
    pub fn cycle_events(&self) -> Vec<CycleEvent> {
        let attributions = [
            (ChipPhase::Program, 0u64, self.program_s),
            (ChipPhase::Compute, self.cycles, self.compute_s),
            (ChipPhase::StreamWrite, 0, self.stream_write_s),
            (ChipPhase::Reduction, 0, self.reduction_s),
            (ChipPhase::HostFp64, 0, self.host_fp64_s),
        ];
        attributions
            .into_iter()
            .filter(|&(_, cycles, seconds)| cycles > 0 || seconds > 0.0)
            .map(|(phase, cycles, seconds)| CycleEvent {
                phase,
                cycles,
                seconds,
            })
            .collect()
    }
}

/// One inner pass of a refined job, as the accelerator model accounts it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefinedPassCost {
    /// A correction solve on the simulated chip in some quantized format.
    Quantized {
        /// Cache key of the encoded matrix this pass programmed.
        key: CacheKey,
        /// The rung's format (determines cycles and crossbars per cluster).
        format: ReFloatConfig,
        /// Non-empty blocks of the encoded matrix (= clusters per SpMV).
        num_blocks: u64,
        /// Inner solver iterations of the pass.
        iterations: u64,
    },
    /// A fall-back correction solve in fp64 on the host (the GPU model).
    HostFp64 {
        /// Inner solver iterations of the pass.
        iterations: u64,
    },
}

/// Lifetime counters for one simulated accelerator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AcceleratorUsage {
    /// Jobs executed.
    pub jobs: u64,
    /// Total simulated pipeline cycles.
    pub cycles: u64,
    /// Total simulated busy seconds (sum of [`SimulatedRun::total_s`]).
    pub busy_s: f64,
    /// Times the chip was re-programmed for a different matrix.
    pub remaps: u64,
}

/// One simulated chip, owned by one worker thread.
///
/// The chip remembers which (matrix, format) its crossbars currently hold: consecutive
/// jobs on the same matrix skip the programming phase, which is what makes tenant
/// locality visible in the simulated numbers even though the functional solve runs on
/// the CPU.
#[derive(Debug, Clone)]
pub struct SimulatedAccelerator {
    worker_id: usize,
    programmed: Option<CacheKey>,
    usage: AcceleratorUsage,
    /// The host platform that prices fp64 offload work of refined jobs.
    host: GpuModel,
    /// Override of each chip's crossbar pool size (None = the Table IV 2^18).  Smaller
    /// chips force oversized matrices into streaming rounds — the regime where
    /// sharding across a pool pays off.
    chip_crossbars: Option<u64>,
    /// Optional observer of per-run phase attributions (None = no observation cost
    /// beyond an `is_some` check per run).
    hook: Option<Arc<dyn CycleHook>>,
    /// Persistent fault state of this chip (None = pristine hardware, the default —
    /// execution and digests are unchanged).
    fault: Option<ChipFaultState>,
    /// Whether the ABFT checksum row is programmed alongside every block (costs
    /// [`ABFT_CHECK_CYCLES_PER_BLOCK`] extra cycles per block-MVM).
    abft: bool,
}

impl SimulatedAccelerator {
    /// A freshly powered-on chip (nothing programmed), with the Table IV V100 as the
    /// fp64 host.
    pub fn new(worker_id: usize) -> Self {
        SimulatedAccelerator {
            worker_id,
            programmed: None,
            usage: AcceleratorUsage::default(),
            host: GpuModel::v100(),
            chip_crossbars: None,
            hook: None,
            fault: None,
            abft: false,
        }
    }

    /// Builder: attach a persistent fault model (stuck cells, drift, wear) to this
    /// chip, with `grid × grid` crossbars keyed on the worker id, and optionally
    /// program the ABFT checksum row alongside every block.
    pub fn with_fault_model(mut self, model: FaultModelConfig, grid: usize, abft: bool) -> Self {
        self.fault = Some(ChipFaultState::new(model, self.worker_id, grid));
        self.abft = abft;
        self
    }

    /// The chip's persistent fault state, if a fault model is attached.
    pub fn fault_state(&self) -> Option<&ChipFaultState> {
        self.fault.as_ref()
    }

    /// Forgets what the crossbars hold, forcing the next execution to re-program the
    /// chip (and wear it).  This is how a detected-corruption retry charges its
    /// re-encode onto spare resources.
    pub fn force_remap(&mut self) {
        self.programmed = None;
    }

    /// Builder: price host-side fp64 work (refined jobs) on a different GPU model.
    pub fn with_host_gpu(mut self, host: GpuModel) -> Self {
        self.host = host;
        self
    }

    /// Builder: observe every run's per-phase cycle attribution through a
    /// [`CycleHook`].
    pub fn with_cycle_hook(mut self, hook: Arc<dyn CycleHook>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Fires the run's phase attributions at the hook, if one is installed.
    fn notify(&self, run: &SimulatedRun) {
        if let Some(hook) = &self.hook {
            for event in run.cycle_events() {
                hook.on_event(&event);
            }
        }
    }

    /// Builder: simulate chips with a smaller (or larger) crossbar pool than Table IV.
    pub fn with_chip_crossbars(mut self, crossbars: Option<u64>) -> Self {
        self.chip_crossbars = crossbars;
        self
    }

    /// The per-chip hardware model for a format, with the crossbar-pool override
    /// applied.
    fn chip(&self, format: &ReFloatConfig) -> AcceleratorConfig {
        let mut hw = AcceleratorConfig::refloat(format);
        if let Some(crossbars) = self.chip_crossbars {
            hw.total_crossbars = crossbars;
        }
        if self.abft {
            hw.cycles_per_block_mvm += ABFT_CHECK_CYCLES_PER_BLOCK;
        }
        hw
    }

    /// The owning worker's id.
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// Seconds one exact fp64 SpMV costs on the host GPU — prices the true-residual
    /// check an auto-format job performs before deciding whether to fall back.
    pub fn host_spmv_time_s(&self, nnz: u64, nrows: u64) -> f64 {
        self.host.spmv_time_s(nnz, nrows)
    }

    /// Lifetime usage counters.
    pub fn usage(&self) -> AcceleratorUsage {
        self.usage
    }

    /// Accounts one completed solve (`iterations` iterations of `solver` over a matrix
    /// with `num_blocks` non-empty blocks, encoded as `format`) and returns its
    /// simulated cost.
    pub fn execute(
        &mut self,
        key: CacheKey,
        format: &ReFloatConfig,
        num_blocks: u64,
        iterations: u64,
        solver: SolverKind,
    ) -> SimulatedRun {
        self.execute_batch(key, format, num_blocks, &[iterations], solver)
    }

    /// Accounts one completed *batched* solve: one solve per right-hand side
    /// (`iterations[k]` iterations for RHS `k`), all against the same programmed
    /// operator, so the chip is programmed at most once for the whole batch.
    pub fn execute_batch(
        &mut self,
        key: CacheKey,
        format: &ReFloatConfig,
        num_blocks: u64,
        iterations: &[u64],
        solver: SolverKind,
    ) -> SimulatedRun {
        assert!(!iterations.is_empty(), "a batch needs at least one RHS");
        let hw = self.chip(format);
        let remapped = self.programmed != Some(key);
        if remapped {
            if let Some(fault) = &mut self.fault {
                fault.record_programming(num_blocks);
            }
        }
        let program_s = if remapped {
            hw.cluster_write_time_s()
        } else {
            0.0
        };
        let mut run = SimulatedRun {
            program_s,
            remapped,
            total_s: program_s,
            ..SimulatedRun::zero()
        };
        for &iters in iterations {
            let breakdown = hw.solver_time(num_blocks, iters, solver);
            let spmv_count = iters * solver.spmv_per_iteration();
            run.cycles += spmv_count * breakdown.rounds_per_spmv * hw.cycles_per_block_mvm;
            run.compute_s += spmv_count as f64 * breakdown.spmv_compute_s;
            run.stream_write_s += spmv_count as f64 * breakdown.spmv_write_s;
            run.total_s += breakdown.solver_total_s;
        }
        self.programmed = Some(key);
        self.usage.jobs += 1;
        self.usage.cycles += run.cycles;
        self.usage.busy_s += run.total_s;
        self.usage.remaps += u64::from(remapped);
        self.notify(&run);
        run
    }

    /// Like [`execute_batch`](Self::execute_batch), but for a sequence step whose
    /// encoding came from an incremental re-encode against the operator the chip
    /// currently holds (`predecessor`): instead of a full cluster rewrite, only the
    /// touched fraction of the crossbar ranges is reprogrammed — charged as
    /// `reprogram_fraction` of the cluster write time — and only the `touched_blocks`
    /// re-encoded blocks age the fault model.  When the chip holds anything else the
    /// delta does not apply and this falls back to the full [`execute_batch`](Self::execute_batch) charge.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_batch_delta(
        &mut self,
        key: CacheKey,
        predecessor: CacheKey,
        reprogram_fraction: f64,
        touched_blocks: u64,
        format: &ReFloatConfig,
        num_blocks: u64,
        iterations: &[u64],
        solver: SolverKind,
    ) -> SimulatedRun {
        if self.programmed != Some(predecessor) {
            return self.execute_batch(key, format, num_blocks, iterations, solver);
        }
        assert!(!iterations.is_empty(), "a batch needs at least one RHS");
        let hw = self.chip(format);
        let fraction = reprogram_fraction.clamp(0.0, 1.0);
        let remapped = touched_blocks > 0;
        if remapped {
            if let Some(fault) = &mut self.fault {
                fault.record_programming(touched_blocks);
            }
        }
        let program_s = hw.cluster_write_time_s() * fraction;
        let mut run = SimulatedRun {
            program_s,
            remapped,
            total_s: program_s,
            ..SimulatedRun::zero()
        };
        for &iters in iterations {
            let breakdown = hw.solver_time(num_blocks, iters, solver);
            let spmv_count = iters * solver.spmv_per_iteration();
            run.cycles += spmv_count * breakdown.rounds_per_spmv * hw.cycles_per_block_mvm;
            run.compute_s += spmv_count as f64 * breakdown.spmv_compute_s;
            run.stream_write_s += spmv_count as f64 * breakdown.spmv_write_s;
            run.total_s += breakdown.solver_total_s;
        }
        self.programmed = Some(key);
        self.usage.jobs += 1;
        self.usage.cycles += run.cycles;
        self.usage.busy_s += run.total_s;
        self.usage.remaps += u64::from(remapped);
        self.notify(&run);
        run
    }

    /// Accounts one completed *sharded* solve on a pool of `keys.len()` chips: shards
    /// execute in parallel (each SpMV costs the slowest shard, the makespan), every
    /// SpMV pays the fixed-order inter-chip gather, and the whole pool is programmed
    /// at most once — also across all right-hand sides of a batched job.
    ///
    /// `keys[i]` / `shard_blocks[i]` / `shard_rows[i]` describe chip `i`'s shard; the
    /// pool is considered programmed when it holds the first shard's key (the shard
    /// set is a pure function of that key).
    ///
    /// # Panics
    /// Panics if the per-shard slices disagree or `iterations` is empty.
    pub fn execute_sharded(
        &mut self,
        keys: &[CacheKey],
        format: &ReFloatConfig,
        shard_blocks: &[u64],
        shard_rows: &[u64],
        iterations: &[u64],
        solver: SolverKind,
    ) -> SimulatedRun {
        assert_eq!(keys.len(), shard_blocks.len(), "one key per shard");
        assert!(!keys.is_empty(), "a sharded job needs at least one shard");
        assert!(!iterations.is_empty(), "a batch needs at least one RHS");
        let pool =
            MultiChipAccelerator::new(MultiChipConfig::homogeneous(keys.len(), self.chip(format)));
        let chip = &pool.config().chip;
        let remapped = self.programmed != Some(keys[0]);
        if remapped {
            if let Some(fault) = &mut self.fault {
                fault.record_programming(shard_blocks.iter().sum());
            }
        }
        let program_s = if remapped { pool.program_time_s() } else { 0.0 };
        let spmv = pool.spmv_time(shard_blocks, shard_rows);
        let mut run = SimulatedRun {
            program_s,
            remapped,
            total_s: program_s,
            ..SimulatedRun::zero()
        };
        for &iters in iterations {
            let spmv_count = iters * solver.spmv_per_iteration();
            // The makespan chip's pipeline cycles: its streaming rounds × Eq. 3 cycles.
            run.cycles += spmv_count * spmv.max_rounds * chip.cycles_per_block_mvm;
            run.compute_s += spmv_count as f64 * spmv.makespan_s;
            run.reduction_s += spmv_count as f64 * spmv.reduction_s;
            run.total_s += spmv_count as f64 * spmv.spmv_total_s
                + iters as f64 * chip.iteration_overhead_ns * 1e-9;
        }
        self.programmed = Some(keys[0]);
        self.usage.jobs += 1;
        self.usage.cycles += run.cycles;
        self.usage.busy_s += run.total_s;
        self.usage.remaps += u64::from(remapped);
        self.notify(&run);
        run
    }

    /// Accounts one completed *refined* solve: a sequence of inner correction passes
    /// (each on its own format, possibly the fp64 host fallback), plus
    /// `fp64_residual_spmvs` exact residual evaluations on the host.
    ///
    /// Every switch to a differently-keyed quantized rung re-programs the chip (the
    /// per-pass re-encode the refinement loop pays in hardware), exactly like
    /// consecutive plain jobs on different matrices would; host-side fp64 work is
    /// charged through the [`GpuModel`] — the offload split of the mixed-precision
    /// in-memory-computing model.
    pub fn execute_refined(
        &mut self,
        passes: &[RefinedPassCost],
        fp64_residual_spmvs: u64,
        nnz: u64,
        nrows: u64,
        solver: SolverKind,
    ) -> SimulatedRun {
        let host = self.host.clone();
        let mut run = SimulatedRun::zero();
        for pass in passes {
            match *pass {
                RefinedPassCost::Quantized {
                    key,
                    format,
                    num_blocks,
                    iterations,
                } => {
                    let hw = self.chip(&format);
                    if self.programmed != Some(key) {
                        run.program_s += hw.cluster_write_time_s();
                        run.remapped = true;
                        self.usage.remaps += 1;
                        self.programmed = Some(key);
                        if let Some(fault) = &mut self.fault {
                            fault.record_programming(num_blocks);
                        }
                    }
                    let breakdown = hw.solver_time(num_blocks, iterations, solver);
                    let spmv_count = iterations * solver.spmv_per_iteration();
                    run.cycles += spmv_count * breakdown.rounds_per_spmv * hw.cycles_per_block_mvm;
                    run.compute_s += spmv_count as f64 * breakdown.spmv_compute_s;
                    run.stream_write_s += spmv_count as f64 * breakdown.spmv_write_s;
                    run.total_s += breakdown.solver_total_s;
                }
                RefinedPassCost::HostFp64 { iterations } => {
                    run.host_fp64_s += host.solver_time_s(nnz, nrows, iterations, solver);
                }
            }
        }
        run.host_fp64_s += fp64_residual_spmvs as f64 * host.spmv_time_s(nnz, nrows);
        run.total_s += run.program_s + run.host_fp64_s;
        self.usage.jobs += 1;
        self.usage.cycles += run.cycles;
        self.usage.busy_s += run.total_s;
        self.notify(&run);
        run
    }
}

impl DeviceHealth for SimulatedAccelerator {
    /// The chip's health summary.  Without an attached fault model the chip is
    /// pristine by definition: all-zero counters keyed on the worker id.
    fn health(&self) -> HealthSummary {
        match &self.fault {
            Some(fault) => fault.health(),
            None => HealthSummary {
                chip: self.worker_id,
                programmings: 0,
                wear_writes: 0,
                stuck_low: 0,
                stuck_high: 0,
                drift_sigma_effective: 0.0,
                degradation: 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u64) -> CacheKey {
        CacheKey::whole(tag, ReFloatConfig::paper_default())
    }

    #[test]
    fn repeat_jobs_on_one_matrix_skip_reprogramming() {
        let format = ReFloatConfig::paper_default();
        let mut chip = SimulatedAccelerator::new(0);
        let first = chip.execute(key(1), &format, 2_000, 100, SolverKind::Cg);
        assert!(first.remapped);
        assert!(first.program_s > 0.0);
        let second = chip.execute(key(1), &format, 2_000, 100, SolverKind::Cg);
        assert!(!second.remapped);
        assert_eq!(second.program_s, 0.0);
        let third = chip.execute(key(2), &format, 2_000, 100, SolverKind::Cg);
        assert!(third.remapped);
        assert_eq!(chip.usage().remaps, 2);
        assert_eq!(chip.usage().jobs, 3);
    }

    #[test]
    fn cycles_follow_the_eq3_model() {
        // paper_default: 28 cycles per block MVM; a fitting matrix is 1 round per SpMV,
        // CG is 1 SpMV per iteration.
        let format = ReFloatConfig::paper_default();
        let mut chip = SimulatedAccelerator::new(0);
        let run = chip.execute(key(1), &format, 2_000, 100, SolverKind::Cg);
        assert_eq!(run.cycles, 100 * 28);
        assert_eq!(run.stream_write_s, 0.0);
        let bicg = chip.execute(key(1), &format, 2_000, 100, SolverKind::BiCgStab);
        assert_eq!(bicg.cycles, 2 * 100 * 28);
    }

    #[test]
    fn refined_runs_charge_reprogramming_per_format_switch_and_host_fp64() {
        let base = ReFloatConfig::new(7, 3, 3, 3, 8);
        let wide = ReFloatConfig::new(7, 4, 11, 4, 16);
        let fp = 42u64;
        let mut chip = SimulatedAccelerator::new(0);
        let passes = [
            // Two passes on the base rung: one remap, then the chip is warm.
            RefinedPassCost::Quantized {
                key: CacheKey::whole(fp, base),
                format: base,
                num_blocks: 2_000,
                iterations: 50,
            },
            RefinedPassCost::Quantized {
                key: CacheKey::whole(fp, base),
                format: base,
                num_blocks: 2_000,
                iterations: 50,
            },
            // Escalation to the widened rung: a second remap (the per-pass re-encode
            // charged in hardware).
            RefinedPassCost::Quantized {
                key: CacheKey::whole(fp, wide),
                format: wide,
                num_blocks: 2_000,
                iterations: 30,
            },
            // fp64 fallback pass runs on the host.
            RefinedPassCost::HostFp64 { iterations: 10 },
        ];
        let run = chip.execute_refined(&passes, 4, 50_000, 5_000, SolverKind::Cg);
        assert!(run.remapped);
        assert_eq!(chip.usage().remaps, 2);
        let one_remap = AcceleratorConfig::refloat(&base).cluster_write_time_s();
        assert!((run.program_s - 2.0 * one_remap).abs() < 1e-15);
        // Cycles follow Eq. 3 per rung: base is 28 cycles/MVM, wide is
        // (2^4+16+1) + (2^4+11+1) − 1 = 60.
        assert_eq!(run.cycles, 100 * 28 + 30 * 60);
        // Host fp64 work: 10 fallback CG iterations + 4 residual SpMVs.
        let host = GpuModel::v100();
        let expected_host = host.solver_time_s(50_000, 5_000, 10, SolverKind::Cg)
            + 4.0 * host.spmv_time_s(50_000, 5_000);
        assert!((run.host_fp64_s - expected_host).abs() < 1e-12);
        assert!(run.total_s >= run.compute_s + run.program_s + run.host_fp64_s - 1e-15);

        // A follow-up plain job on the widened rung finds the chip already programmed.
        let follow = chip.execute(CacheKey::whole(fp, wide), &wide, 2_000, 10, SolverKind::Cg);
        assert!(!follow.remapped);
    }

    #[test]
    fn refined_run_with_no_passes_costs_only_the_residual_checks() {
        let mut chip = SimulatedAccelerator::new(1);
        let run = chip.execute_refined(&[], 0, 1_000, 100, SolverKind::Cg);
        assert_eq!(run.cycles, 0);
        assert_eq!(run.total_s, 0.0);
        assert!(!run.remapped);
    }

    #[test]
    fn cycle_events_attribute_every_nonzero_phase() {
        let run = SimulatedRun {
            cycles: 2800,
            compute_s: 1e-5,
            stream_write_s: 0.0,
            program_s: 2e-6,
            reduction_s: 0.0,
            host_fp64_s: 3e-7,
            total_s: 1.23e-5,
            remapped: true,
        };
        let events = run.cycle_events();
        let phases: Vec<ChipPhase> = events.iter().map(|e| e.phase).collect();
        assert_eq!(
            phases,
            vec![ChipPhase::Program, ChipPhase::Compute, ChipPhase::HostFp64]
        );
        assert_eq!(events[1].cycles, 2800);
        assert_eq!(events[1].seconds, 1e-5);
        assert!(SimulatedRun::zero().cycle_events().is_empty());
    }

    #[test]
    fn cycle_hook_sees_each_run_once() {
        let hook = Arc::new(reram_sim::CollectingHook::new());
        let format = ReFloatConfig::paper_default();
        let mut chip =
            SimulatedAccelerator::new(0).with_cycle_hook(Arc::clone(&hook) as Arc<dyn CycleHook>);
        let run = chip.execute(key(1), &format, 2_000, 100, SolverKind::Cg);
        let events = hook.snapshot();
        assert!(!events.is_empty());
        assert_eq!(hook.seconds_in(ChipPhase::Compute), run.compute_s);
        assert_eq!(hook.seconds_in(ChipPhase::Program), run.program_s);
        let total_cycles: u64 = events.iter().map(|e| e.cycles).sum();
        assert_eq!(total_cycles, run.cycles);
    }

    #[test]
    fn abft_charges_one_extra_cycle_per_block_mvm() {
        let format = ReFloatConfig::paper_default();
        let mut plain = SimulatedAccelerator::new(0);
        let mut checked = SimulatedAccelerator::new(1).with_fault_model(
            FaultModelConfig::pristine(3),
            format.block_size(),
            true,
        );
        let base = plain.execute(key(1), &format, 2_000, 100, SolverKind::Cg);
        let abft = checked.execute(key(1), &format, 2_000, 100, SolverKind::Cg);
        // paper_default is 28 cycles per block-MVM; ABFT makes it 29.
        assert_eq!(base.cycles, 100 * 28);
        assert_eq!(abft.cycles, 100 * 29);
        assert!(abft.compute_s > base.compute_s);
    }

    #[test]
    fn health_reports_pristine_without_a_fault_model_and_wear_with_one() {
        let format = ReFloatConfig::paper_default();
        let plain = SimulatedAccelerator::new(7);
        let pristine = plain.health();
        assert_eq!(pristine.chip, 7);
        assert_eq!(pristine.degradation, 0.0);

        let mut chip = SimulatedAccelerator::new(2).with_fault_model(
            FaultModelConfig::realistic(5),
            format.block_size(),
            false,
        );
        chip.execute(key(1), &format, 2_000, 10, SolverKind::Cg);
        chip.execute(key(2), &format, 3_000, 10, SolverKind::Cg);
        // Warm repeat: no programming, no extra wear.
        chip.execute(key(2), &format, 3_000, 10, SolverKind::Cg);
        let health = chip.health();
        assert_eq!(health.programmings, 2);
        assert_eq!(health.wear_writes, 5_000);
        // A forced remap (the retry re-encode path) wears the chip again.
        chip.force_remap();
        chip.execute(key(2), &format, 3_000, 10, SolverKind::Cg);
        assert_eq!(chip.health().programmings, 3);
    }

    #[test]
    fn oversized_matrices_pay_streaming_writes() {
        let format = ReFloatConfig::paper_default();
        let mut chip = SimulatedAccelerator::new(0);
        // 21845 clusters fit; ask for 10x that.
        let run = chip.execute(key(1), &format, 218_450, 10, SolverKind::Cg);
        assert!(run.stream_write_s > 0.0);
        assert!(run.total_s > run.compute_s);
    }

    #[test]
    fn batched_rhs_amortize_programming_across_the_batch() {
        let format = ReFloatConfig::paper_default();
        let mut batched_chip = SimulatedAccelerator::new(0);
        let batched =
            batched_chip.execute_batch(key(1), &format, 2_000, &[100, 100, 100], SolverKind::Cg);
        // Three separate single-RHS jobs on a *cold* chip each pay programming.
        let mut serial_chip = SimulatedAccelerator::new(1);
        let mut serial_total = 0.0;
        for _ in 0..3 {
            serial_total += serial_chip
                .execute(key(2), &format, 2_000, 100, SolverKind::Cg)
                .total_s;
            serial_chip.programmed = None; // force a cold chip per job
        }
        assert!(batched.remapped);
        assert_eq!(batched.cycles, 3 * 100 * 28);
        let one_program = AcceleratorConfig::refloat(&format).cluster_write_time_s();
        assert!((serial_total - batched.total_s - 2.0 * one_program).abs() < 1e-12);
        assert_eq!(batched_chip.usage().remaps, 1);
    }

    #[test]
    fn sharded_jobs_charge_makespan_and_reduction() {
        let format = ReFloatConfig::paper_default();
        // Small chips: 2^10 crossbars -> 1024/12 = 85 clusters per chip.
        let mut chip = SimulatedAccelerator::new(0).with_chip_crossbars(Some(1 << 10));
        let keys: Vec<CacheKey> = (0..4)
            .map(|i| CacheKey::sharded(9, crate::cache::ShardId::of(i, 4), format))
            .collect();
        // 170 blocks per shard = 2 streaming rounds per chip per SpMV.
        let run =
            chip.execute_sharded(&keys, &format, &[170; 4], &[2048; 4], &[50], SolverKind::Cg);
        assert!(run.remapped);
        assert!(run.reduction_s > 0.0);
        assert_eq!(run.cycles, 50 * 2 * 28);
        assert!(run.total_s >= run.compute_s + run.reduction_s + run.program_s - 1e-15);

        // Same shard set again: the pool stays programmed.
        let again =
            chip.execute_sharded(&keys, &format, &[170; 4], &[2048; 4], &[50], SolverKind::Cg);
        assert!(!again.remapped);
        assert_eq!(again.program_s, 0.0);

        // The sharded pool beats one equally-small chip streaming all 680 blocks.
        let mut single = SimulatedAccelerator::new(1).with_chip_crossbars(Some(1 << 10));
        let whole = single.execute(key(9), &format, 680, 50, SolverKind::Cg);
        assert!(
            whole.total_s > 1.5 * run.total_s,
            "sharding should win: single {:.3e}s vs sharded {:.3e}s",
            whole.total_s,
            run.total_s
        );
    }
}
