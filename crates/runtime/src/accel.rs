//! The per-worker simulated accelerator: translates each completed solve into the
//! chip-time it would have cost on the Table IV ReFloat accelerator, and accounts
//! crossbar re-programming when a worker switches to a different matrix.

use refloat_core::ReFloatConfig;
use reram_sim::{AcceleratorConfig, GpuModel, SolverKind};

use crate::cache::CacheKey;

/// What one job cost on the simulated chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedRun {
    /// Crossbar pipeline cycles across the whole solve (Eq. 3 cycles × rounds × SpMVs).
    pub cycles: u64,
    /// Seconds of crossbar compute.
    pub compute_s: f64,
    /// Seconds of mid-solve cell re-writes (streaming rounds of oversized matrices).
    pub stream_write_s: f64,
    /// Seconds re-programming the chip because it held a different matrix (or nothing).
    pub program_s: f64,
    /// Seconds of host-side fp64 work (the GPU model): the outer-loop residual
    /// evaluations and any fp64-fallback inner solves of a refined job.  Zero for
    /// plain jobs.
    pub host_fp64_s: f64,
    /// Total simulated seconds for the job (compute + writes + programming + host
    /// fp64 + the per-iteration digital overhead folded into the solver-time model).
    pub total_s: f64,
    /// Whether this job had to re-program the chip.
    pub remapped: bool,
}

/// One inner pass of a refined job, as the accelerator model accounts it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefinedPassCost {
    /// A correction solve on the simulated chip in some quantized format.
    Quantized {
        /// Cache key of the encoded matrix this pass programmed.
        key: CacheKey,
        /// The rung's format (determines cycles and crossbars per cluster).
        format: ReFloatConfig,
        /// Non-empty blocks of the encoded matrix (= clusters per SpMV).
        num_blocks: u64,
        /// Inner solver iterations of the pass.
        iterations: u64,
    },
    /// A fall-back correction solve in fp64 on the host (the GPU model).
    HostFp64 {
        /// Inner solver iterations of the pass.
        iterations: u64,
    },
}

/// Lifetime counters for one simulated accelerator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AcceleratorUsage {
    /// Jobs executed.
    pub jobs: u64,
    /// Total simulated pipeline cycles.
    pub cycles: u64,
    /// Total simulated busy seconds (sum of [`SimulatedRun::total_s`]).
    pub busy_s: f64,
    /// Times the chip was re-programmed for a different matrix.
    pub remaps: u64,
}

/// One simulated chip, owned by one worker thread.
///
/// The chip remembers which (matrix, format) its crossbars currently hold: consecutive
/// jobs on the same matrix skip the programming phase, which is what makes tenant
/// locality visible in the simulated numbers even though the functional solve runs on
/// the CPU.
#[derive(Debug, Clone)]
pub struct SimulatedAccelerator {
    worker_id: usize,
    programmed: Option<CacheKey>,
    usage: AcceleratorUsage,
    /// The host platform that prices fp64 offload work of refined jobs.
    host: GpuModel,
}

impl SimulatedAccelerator {
    /// A freshly powered-on chip (nothing programmed), with the Table IV V100 as the
    /// fp64 host.
    pub fn new(worker_id: usize) -> Self {
        SimulatedAccelerator {
            worker_id,
            programmed: None,
            usage: AcceleratorUsage::default(),
            host: GpuModel::v100(),
        }
    }

    /// Builder: price host-side fp64 work (refined jobs) on a different GPU model.
    pub fn with_host_gpu(mut self, host: GpuModel) -> Self {
        self.host = host;
        self
    }

    /// The owning worker's id.
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// Lifetime usage counters.
    pub fn usage(&self) -> AcceleratorUsage {
        self.usage
    }

    /// Accounts one completed solve (`iterations` iterations of `solver` over a matrix
    /// with `num_blocks` non-empty blocks, encoded as `format`) and returns its
    /// simulated cost.
    pub fn execute(
        &mut self,
        key: CacheKey,
        format: &ReFloatConfig,
        num_blocks: u64,
        iterations: u64,
        solver: SolverKind,
    ) -> SimulatedRun {
        let hw = AcceleratorConfig::refloat(format);
        let breakdown = hw.solver_time(num_blocks, iterations, solver);
        let remapped = self.programmed != Some(key);
        let program_s = if remapped {
            hw.cluster_write_time_s()
        } else {
            0.0
        };
        let spmv_count = iterations * solver.spmv_per_iteration();
        let cycles = spmv_count * breakdown.rounds_per_spmv * hw.cycles_per_block_mvm;
        let stream_write_s = spmv_count as f64 * breakdown.spmv_write_s;
        let run = SimulatedRun {
            cycles,
            compute_s: spmv_count as f64 * breakdown.spmv_compute_s,
            stream_write_s,
            program_s,
            host_fp64_s: 0.0,
            total_s: breakdown.solver_total_s + program_s,
            remapped,
        };
        self.programmed = Some(key);
        self.usage.jobs += 1;
        self.usage.cycles += cycles;
        self.usage.busy_s += run.total_s;
        self.usage.remaps += u64::from(remapped);
        run
    }

    /// Accounts one completed *refined* solve: a sequence of inner correction passes
    /// (each on its own format, possibly the fp64 host fallback), plus
    /// `fp64_residual_spmvs` exact residual evaluations on the host.
    ///
    /// Every switch to a differently-keyed quantized rung re-programs the chip (the
    /// per-pass re-encode the refinement loop pays in hardware), exactly like
    /// consecutive plain jobs on different matrices would; host-side fp64 work is
    /// charged through the [`GpuModel`] — the offload split of the mixed-precision
    /// in-memory-computing model.
    pub fn execute_refined(
        &mut self,
        passes: &[RefinedPassCost],
        fp64_residual_spmvs: u64,
        nnz: u64,
        nrows: u64,
        solver: SolverKind,
    ) -> SimulatedRun {
        let host = self.host.clone();
        let mut run = SimulatedRun {
            cycles: 0,
            compute_s: 0.0,
            stream_write_s: 0.0,
            program_s: 0.0,
            host_fp64_s: 0.0,
            total_s: 0.0,
            remapped: false,
        };
        for pass in passes {
            match *pass {
                RefinedPassCost::Quantized {
                    key,
                    format,
                    num_blocks,
                    iterations,
                } => {
                    let hw = AcceleratorConfig::refloat(&format);
                    if self.programmed != Some(key) {
                        run.program_s += hw.cluster_write_time_s();
                        run.remapped = true;
                        self.usage.remaps += 1;
                        self.programmed = Some(key);
                    }
                    let breakdown = hw.solver_time(num_blocks, iterations, solver);
                    let spmv_count = iterations * solver.spmv_per_iteration();
                    run.cycles += spmv_count * breakdown.rounds_per_spmv * hw.cycles_per_block_mvm;
                    run.compute_s += spmv_count as f64 * breakdown.spmv_compute_s;
                    run.stream_write_s += spmv_count as f64 * breakdown.spmv_write_s;
                    run.total_s += breakdown.solver_total_s;
                }
                RefinedPassCost::HostFp64 { iterations } => {
                    run.host_fp64_s += host.solver_time_s(nnz, nrows, iterations, solver);
                }
            }
        }
        run.host_fp64_s += fp64_residual_spmvs as f64 * host.spmv_time_s(nnz, nrows);
        run.total_s += run.program_s + run.host_fp64_s;
        self.usage.jobs += 1;
        self.usage.cycles += run.cycles;
        self.usage.busy_s += run.total_s;
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u64) -> CacheKey {
        (tag, ReFloatConfig::paper_default())
    }

    #[test]
    fn repeat_jobs_on_one_matrix_skip_reprogramming() {
        let format = ReFloatConfig::paper_default();
        let mut chip = SimulatedAccelerator::new(0);
        let first = chip.execute(key(1), &format, 2_000, 100, SolverKind::Cg);
        assert!(first.remapped);
        assert!(first.program_s > 0.0);
        let second = chip.execute(key(1), &format, 2_000, 100, SolverKind::Cg);
        assert!(!second.remapped);
        assert_eq!(second.program_s, 0.0);
        let third = chip.execute(key(2), &format, 2_000, 100, SolverKind::Cg);
        assert!(third.remapped);
        assert_eq!(chip.usage().remaps, 2);
        assert_eq!(chip.usage().jobs, 3);
    }

    #[test]
    fn cycles_follow_the_eq3_model() {
        // paper_default: 28 cycles per block MVM; a fitting matrix is 1 round per SpMV,
        // CG is 1 SpMV per iteration.
        let format = ReFloatConfig::paper_default();
        let mut chip = SimulatedAccelerator::new(0);
        let run = chip.execute(key(1), &format, 2_000, 100, SolverKind::Cg);
        assert_eq!(run.cycles, 100 * 28);
        assert_eq!(run.stream_write_s, 0.0);
        let bicg = chip.execute(key(1), &format, 2_000, 100, SolverKind::BiCgStab);
        assert_eq!(bicg.cycles, 2 * 100 * 28);
    }

    #[test]
    fn refined_runs_charge_reprogramming_per_format_switch_and_host_fp64() {
        let base = ReFloatConfig::new(7, 3, 3, 3, 8);
        let wide = ReFloatConfig::new(7, 4, 11, 4, 16);
        let fp = 42u64;
        let mut chip = SimulatedAccelerator::new(0);
        let passes = [
            // Two passes on the base rung: one remap, then the chip is warm.
            RefinedPassCost::Quantized {
                key: (fp, base),
                format: base,
                num_blocks: 2_000,
                iterations: 50,
            },
            RefinedPassCost::Quantized {
                key: (fp, base),
                format: base,
                num_blocks: 2_000,
                iterations: 50,
            },
            // Escalation to the widened rung: a second remap (the per-pass re-encode
            // charged in hardware).
            RefinedPassCost::Quantized {
                key: (fp, wide),
                format: wide,
                num_blocks: 2_000,
                iterations: 30,
            },
            // fp64 fallback pass runs on the host.
            RefinedPassCost::HostFp64 { iterations: 10 },
        ];
        let run = chip.execute_refined(&passes, 4, 50_000, 5_000, SolverKind::Cg);
        assert!(run.remapped);
        assert_eq!(chip.usage().remaps, 2);
        let one_remap = AcceleratorConfig::refloat(&base).cluster_write_time_s();
        assert!((run.program_s - 2.0 * one_remap).abs() < 1e-15);
        // Cycles follow Eq. 3 per rung: base is 28 cycles/MVM, wide is
        // (2^4+16+1) + (2^4+11+1) − 1 = 60.
        assert_eq!(run.cycles, 100 * 28 + 30 * 60);
        // Host fp64 work: 10 fallback CG iterations + 4 residual SpMVs.
        let host = GpuModel::v100();
        let expected_host = host.solver_time_s(50_000, 5_000, 10, SolverKind::Cg)
            + 4.0 * host.spmv_time_s(50_000, 5_000);
        assert!((run.host_fp64_s - expected_host).abs() < 1e-12);
        assert!(run.total_s >= run.compute_s + run.program_s + run.host_fp64_s - 1e-15);

        // A follow-up plain job on the widened rung finds the chip already programmed.
        let follow = chip.execute((fp, wide), &wide, 2_000, 10, SolverKind::Cg);
        assert!(!follow.remapped);
    }

    #[test]
    fn refined_run_with_no_passes_costs_only_the_residual_checks() {
        let mut chip = SimulatedAccelerator::new(1);
        let run = chip.execute_refined(&[], 0, 1_000, 100, SolverKind::Cg);
        assert_eq!(run.cycles, 0);
        assert_eq!(run.total_s, 0.0);
        assert!(!run.remapped);
    }

    #[test]
    fn oversized_matrices_pay_streaming_writes() {
        let format = ReFloatConfig::paper_default();
        let mut chip = SimulatedAccelerator::new(0);
        // 21845 clusters fit; ask for 10x that.
        let run = chip.execute(key(1), &format, 218_450, 10, SolverKind::Cg);
        assert!(run.stream_write_s > 0.0);
        assert!(run.total_s > run.compute_s);
    }
}
