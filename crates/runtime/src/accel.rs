//! The per-worker simulated accelerator: translates each completed solve into the
//! chip-time it would have cost on the Table IV ReFloat accelerator, and accounts
//! crossbar re-programming when a worker switches to a different matrix.

use refloat_core::ReFloatConfig;
use reram_sim::{AcceleratorConfig, SolverKind};

use crate::cache::CacheKey;

/// What one job cost on the simulated chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedRun {
    /// Crossbar pipeline cycles across the whole solve (Eq. 3 cycles × rounds × SpMVs).
    pub cycles: u64,
    /// Seconds of crossbar compute.
    pub compute_s: f64,
    /// Seconds of mid-solve cell re-writes (streaming rounds of oversized matrices).
    pub stream_write_s: f64,
    /// Seconds re-programming the chip because it held a different matrix (or nothing).
    pub program_s: f64,
    /// Total simulated seconds for the job (compute + writes + programming + the
    /// per-iteration digital overhead folded into the solver-time model).
    pub total_s: f64,
    /// Whether this job had to re-program the chip.
    pub remapped: bool,
}

/// Lifetime counters for one simulated accelerator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AcceleratorUsage {
    /// Jobs executed.
    pub jobs: u64,
    /// Total simulated pipeline cycles.
    pub cycles: u64,
    /// Total simulated busy seconds (sum of [`SimulatedRun::total_s`]).
    pub busy_s: f64,
    /// Times the chip was re-programmed for a different matrix.
    pub remaps: u64,
}

/// One simulated chip, owned by one worker thread.
///
/// The chip remembers which (matrix, format) its crossbars currently hold: consecutive
/// jobs on the same matrix skip the programming phase, which is what makes tenant
/// locality visible in the simulated numbers even though the functional solve runs on
/// the CPU.
#[derive(Debug, Clone)]
pub struct SimulatedAccelerator {
    worker_id: usize,
    programmed: Option<CacheKey>,
    usage: AcceleratorUsage,
}

impl SimulatedAccelerator {
    /// A freshly powered-on chip (nothing programmed).
    pub fn new(worker_id: usize) -> Self {
        SimulatedAccelerator {
            worker_id,
            programmed: None,
            usage: AcceleratorUsage::default(),
        }
    }

    /// The owning worker's id.
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// Lifetime usage counters.
    pub fn usage(&self) -> AcceleratorUsage {
        self.usage
    }

    /// Accounts one completed solve (`iterations` iterations of `solver` over a matrix
    /// with `num_blocks` non-empty blocks, encoded as `format`) and returns its
    /// simulated cost.
    pub fn execute(
        &mut self,
        key: CacheKey,
        format: &ReFloatConfig,
        num_blocks: u64,
        iterations: u64,
        solver: SolverKind,
    ) -> SimulatedRun {
        let hw = AcceleratorConfig::refloat(format);
        let breakdown = hw.solver_time(num_blocks, iterations, solver);
        let remapped = self.programmed != Some(key);
        let program_s = if remapped {
            hw.cluster_write_time_s()
        } else {
            0.0
        };
        let spmv_count = iterations * solver.spmv_per_iteration();
        let cycles = spmv_count * breakdown.rounds_per_spmv * hw.cycles_per_block_mvm;
        let stream_write_s = spmv_count as f64 * breakdown.spmv_write_s;
        let run = SimulatedRun {
            cycles,
            compute_s: spmv_count as f64 * breakdown.spmv_compute_s,
            stream_write_s,
            program_s,
            total_s: breakdown.solver_total_s + program_s,
            remapped,
        };
        self.programmed = Some(key);
        self.usage.jobs += 1;
        self.usage.cycles += cycles;
        self.usage.busy_s += run.total_s;
        self.usage.remaps += u64::from(remapped);
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u64) -> CacheKey {
        (tag, ReFloatConfig::paper_default())
    }

    #[test]
    fn repeat_jobs_on_one_matrix_skip_reprogramming() {
        let format = ReFloatConfig::paper_default();
        let mut chip = SimulatedAccelerator::new(0);
        let first = chip.execute(key(1), &format, 2_000, 100, SolverKind::Cg);
        assert!(first.remapped);
        assert!(first.program_s > 0.0);
        let second = chip.execute(key(1), &format, 2_000, 100, SolverKind::Cg);
        assert!(!second.remapped);
        assert_eq!(second.program_s, 0.0);
        let third = chip.execute(key(2), &format, 2_000, 100, SolverKind::Cg);
        assert!(third.remapped);
        assert_eq!(chip.usage().remaps, 2);
        assert_eq!(chip.usage().jobs, 3);
    }

    #[test]
    fn cycles_follow_the_eq3_model() {
        // paper_default: 28 cycles per block MVM; a fitting matrix is 1 round per SpMV,
        // CG is 1 SpMV per iteration.
        let format = ReFloatConfig::paper_default();
        let mut chip = SimulatedAccelerator::new(0);
        let run = chip.execute(key(1), &format, 2_000, 100, SolverKind::Cg);
        assert_eq!(run.cycles, 100 * 28);
        assert_eq!(run.stream_write_s, 0.0);
        let bicg = chip.execute(key(1), &format, 2_000, 100, SolverKind::BiCgStab);
        assert_eq!(bicg.cycles, 2 * 100 * 28);
    }

    #[test]
    fn oversized_matrices_pay_streaming_writes() {
        let format = ReFloatConfig::paper_default();
        let mut chip = SimulatedAccelerator::new(0);
        // 21845 clusters fit; ask for 10x that.
        let run = chip.execute(key(1), &format, 218_450, 10, SolverKind::Cg);
        assert!(run.stream_write_s > 0.0);
        assert!(run.total_s > run.compute_s);
    }
}
