//! Shared matrix handles, job specs (the internal execution record behind a
//! validated [`SolvePlan`](crate::SolvePlan)), and per-job outcomes.

use std::sync::Arc;

use refloat_core::{EscalationPolicy, ReFloatConfig};
use refloat_solvers::{RefinementConfig, SolveResult, SolverConfig};
use refloat_sparse::CsrMatrix;
use reram_sim::SolverKind;

use crate::fingerprint::fingerprint_csr;
use crate::sched::Priority;
use crate::telemetry::JobTelemetry;

/// A cheaply-cloneable reference to a matrix a tenant wants solves against.
///
/// The fingerprint (content hash of structure + values) is computed once at
/// construction; together with the per-job [`ReFloatConfig`] it keys the
/// encoded-matrix cache, so two handles wrapping equal matrices share cache entries.
#[derive(Debug, Clone)]
pub struct MatrixHandle {
    name: Arc<str>,
    csr: Arc<CsrMatrix>,
    fingerprint: u64,
}

impl MatrixHandle {
    /// Wraps a matrix, computing its fingerprint (one pass over the CSR arrays).
    pub fn new(name: impl Into<String>, csr: CsrMatrix) -> Self {
        Self::from_arc(name, Arc::new(csr))
    }

    /// Wraps an already-shared matrix.
    pub fn from_arc(name: impl Into<String>, csr: Arc<CsrMatrix>) -> Self {
        let fingerprint = fingerprint_csr(&csr);
        MatrixHandle {
            name: name.into().into(),
            csr,
            fingerprint,
        }
    }

    /// Human-readable matrix name (used in telemetry).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying matrix.
    pub fn csr(&self) -> &CsrMatrix {
        &self.csr
    }

    /// The content fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The shared matrix itself (sequence steps keep it as the next step's
    /// predecessor source without copying the CSR arrays).
    pub(crate) fn csr_arc(&self) -> Arc<CsrMatrix> {
        Arc::clone(&self.csr)
    }
}

/// The previous step of a solve sequence, as seen by the worker: enough to attempt an
/// incremental re-encode of the current matrix against the predecessor's cached
/// encoding (the raw CSR is needed because encoded blocks store only quantized
/// values).
#[derive(Debug, Clone)]
pub(crate) struct SequencePredecessor {
    /// Fingerprint of the previous step's matrix (keys its cache entries).
    pub fingerprint: u64,
    /// The previous step's raw matrix.
    pub csr: Arc<CsrMatrix>,
}

/// Sequence context a [`SolveSequence`](crate::SolveSequence) attaches to a job.
/// Jobs without it (`SolveJob::sequence == None`) run the exact pre-sequence code
/// paths, bit for bit.
#[derive(Debug, Clone, Default)]
pub(crate) struct SequenceSpec {
    /// The previous step, when its encoding/decision may be reusable.
    pub predecessor: Option<SequencePredecessor>,
    /// Warm-start guess: the previous step's solution (residual-guarded by the
    /// worker, so a stale guess can only cost one SpMV, never accuracy).
    pub initial_guess: Option<Arc<Vec<f64>>>,
}

/// Mixed-precision refinement settings for a plan (see
/// [`SolvePlanBuilder::refinement`](crate::SolvePlanBuilder::refinement)).
///
/// A refined job wraps its inner solver (CG/BiCGSTAB at the job's base format) in the
/// outer fp64 defect-correction loop of `refloat_solvers::refinement`: exact residuals
/// on the host, low-precision correction solves on the simulated chip, and a
/// format-escalation ladder for inner formats that stall.  All the encoded rungs flow
/// through the runtime's encoded-matrix cache, so escalation re-uses encodings across
/// jobs and tenants.
#[derive(Debug, Clone, Default)]
pub struct RefinementSpec {
    /// The outer-loop knobs (target, pass cap, inner solve settings, stall
    /// threshold), shared verbatim with `refloat_solvers::refinement`.
    pub config: RefinementConfig,
    /// How stalled formats widen (and whether fp64 is the final rung).
    pub escalation: EscalationPolicy,
}

impl RefinementSpec {
    /// A spec targeting the given outer relative residual, with the default
    /// escalation policy.
    pub fn to_target(target: f64) -> Self {
        RefinementSpec {
            config: RefinementConfig::to_target(target),
            ..RefinementSpec::default()
        }
    }

    /// Builder: override the escalation policy.
    pub fn with_escalation(mut self, escalation: EscalationPolicy) -> Self {
        self.escalation = escalation;
        self
    }

    /// Builder: override the inner solve settings.
    pub fn with_inner(mut self, inner: SolverConfig) -> Self {
        self.config.inner = inner;
        self
    }

    /// The solver-side [`RefinementConfig`] this spec drives.  Pass recording is
    /// forced on: the worker prices each pass on the simulated chip from the pass
    /// log, so a spec must not be able to turn it off.
    pub fn refinement_config(&self) -> RefinementConfig {
        RefinementConfig {
            record_passes: true,
            ..self.config.clone()
        }
    }
}

/// Auto-format settings for a plan (see
/// [`SolvePlanBuilder::auto_format`](crate::SolvePlanBuilder::auto_format)).
///
/// The worker resolves the job's format through `refloat_core::autotune` — memoized in
/// the runtime's [`FormatDecisionCache`](crate::decision::FormatDecisionCache) under
/// the matrix fingerprint, so repeat tenants skip the analysis — and, when the chosen
/// format still stalls above `tolerance` in *true* residual, falls back to the
/// mixed-precision refinement ladder described by `fallback`.
#[derive(Debug, Clone)]
pub struct AutoFormatSpec {
    /// Target true relative residual `‖b − A·x‖₂ / ‖b‖₂` the solve must reach.
    /// Must be positive and finite — validated by
    /// [`SolvePlanBuilder::build`](crate::SolvePlanBuilder::build), which reports
    /// [`PlanViolation::InvalidTolerance`](crate::PlanViolation::InvalidTolerance)
    /// otherwise.
    pub tolerance: f64,
    /// The refinement ladder armed when the auto-tuned format stalls (its outer
    /// target is `tolerance`; the escalation policy defaults to
    /// [`EscalationPolicy::widen_then_fp64`]).
    pub fallback: RefinementSpec,
}

impl AutoFormatSpec {
    /// A spec targeting `tolerance` with the default escalation fallback.  The
    /// tolerance is validated when the plan is built, not here.
    pub fn to_target(tolerance: f64) -> Self {
        AutoFormatSpec {
            tolerance,
            fallback: RefinementSpec::to_target(tolerance),
        }
    }

    /// Builder: override the fallback escalation policy.
    pub fn with_escalation(mut self, escalation: EscalationPolicy) -> Self {
        self.fallback.escalation = escalation;
        self
    }
}

/// The internal, already-validated execution record of one solve request.
///
/// Constructed exclusively by
/// [`SolvePlanBuilder::build`](crate::SolvePlanBuilder::build) — every invariant
/// the worker relies on (refined jobs are single-RHS and single-chip, auto-format
/// jobs are single-RHS, RHS lengths match the matrix, `shards >= 1`) is
/// established there, as typed [`PlanError`](crate::PlanError)s rather than
/// worker-side panics.
#[derive(Debug, Clone)]
pub(crate) struct SolveJob {
    /// Who submitted the job (telemetry/reporting label).
    pub tenant: Arc<str>,
    /// The matrix to solve against.
    pub matrix: MatrixHandle,
    /// The right-hand side; `None` means the all-ones vector (the experiment-harness
    /// convention).
    pub rhs: Option<Arc<Vec<f64>>>,
    /// Additional right-hand sides of a batched multi-RHS job.  All RHS of one job
    /// share the programmed operator.
    pub extra_rhs: Vec<Arc<Vec<f64>>>,
    /// The ReFloat format to encode (or fetch) the matrix in.  For refined jobs this
    /// is the *base* rung of the escalation ladder.
    pub format: ReFloatConfig,
    /// How many accelerator chips the job spans (1 = a single chip).
    pub shards: usize,
    /// Which Krylov solver to run.
    pub solver: SolverKind,
    /// Tolerance / iteration cap for the solve (plain jobs) or for nothing at all
    /// (refined jobs override it with the inner settings of [`RefinementSpec`]).
    pub solver_config: SolverConfig,
    /// When set, run the job in mixed-precision refinement mode.
    pub refinement: Option<RefinementSpec>,
    /// When set, the worker auto-tunes the format: `format` only contributes its
    /// blocking `b`, while `(e, f)(ev, fv)` come from the memoized per-matrix
    /// analysis.
    pub auto_format: Option<AutoFormatSpec>,
    /// Sequence context attached by a [`SolveSequence`](crate::SolveSequence):
    /// predecessor (for incremental re-encode / decision reuse) and warm-start guess.
    /// `None` for every job submitted outside a sequence.
    pub sequence: Option<SequenceSpec>,
}

impl SolveJob {
    /// The cache key of this job's unsharded encoding (sharded jobs derive one key per
    /// shard from the same fingerprint + format, see the worker).
    pub fn cache_key(&self) -> crate::cache::CacheKey {
        crate::cache::CacheKey::whole(self.matrix.fingerprint(), self.format)
    }

    /// Number of right-hand sides this job solves (primary + extras).
    pub fn rhs_count(&self) -> usize {
        1 + self.extra_rhs.len()
    }
}

/// A job with its submission envelope, as handed to a worker.
#[derive(Debug)]
pub(crate) struct QueuedJob {
    pub id: u64,
    pub job: SolveJob,
    pub priority: Priority,
    /// Submission time in the runtime clock's seconds (see `telemetry::clock`).
    pub submitted_at_s: f64,
}

/// The result of one job: the raw solver outcome plus its telemetry.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Submission-order id.
    pub job_id: u64,
    /// The solver's result for the primary right-hand side (solution iterate,
    /// iterations, stop reason).
    pub result: SolveResult,
    /// Results for the extra right-hand sides of a batched job, in batch order
    /// (empty for single-RHS jobs).
    pub extra_results: Vec<SolveResult>,
    /// Per-job measurements.
    pub telemetry: JobTelemetry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SolvePlan;

    #[test]
    fn equal_matrices_share_a_fingerprint_distinct_ones_do_not() {
        let a = refloat_matgen::generators::laplacian_2d(6, 6, 0.1).to_csr();
        let b = refloat_matgen::generators::laplacian_2d(6, 6, 0.1).to_csr();
        let c = refloat_matgen::generators::laplacian_2d(6, 6, 0.2).to_csr();
        let (ha, hb, hc) = (
            MatrixHandle::new("a", a),
            MatrixHandle::new("b", b),
            MatrixHandle::new("c", c),
        );
        assert_eq!(ha.fingerprint(), hb.fingerprint());
        assert_ne!(ha.fingerprint(), hc.fingerprint());
    }

    #[test]
    fn cache_key_distinguishes_formats() {
        let a = refloat_matgen::generators::laplacian_2d(6, 6, 0.1).to_csr();
        let handle = MatrixHandle::new("a", a);
        let j1 = SolvePlan::new("t", handle.clone(), ReFloatConfig::new(4, 3, 3, 3, 8))
            .build()
            .unwrap();
        let j2 = SolvePlan::new("t", handle, ReFloatConfig::new(4, 3, 8, 3, 8))
            .build()
            .unwrap();
        assert_ne!(j1.job.cache_key(), j2.job.cache_key());
        assert_eq!(
            j1.job.cache_key().fingerprint,
            j2.job.cache_key().fingerprint
        );
    }

    #[test]
    fn rhs_batch_splits_into_primary_and_extras() {
        let a = refloat_matgen::generators::laplacian_2d(4, 4, 0.1).to_csr();
        let n = a.nrows();
        let handle = MatrixHandle::new("a", a);
        let plan = SolvePlan::new("t", handle, ReFloatConfig::new(3, 3, 8, 3, 8))
            .rhs_batch(vec![
                Arc::new(vec![1.0; n]),
                Arc::new(vec![2.0; n]),
                Arc::new(vec![3.0; n]),
            ])
            .sharding(4)
            .build()
            .unwrap();
        assert_eq!(plan.rhs_count(), 3);
        assert_eq!(plan.job.extra_rhs.len(), 2);
        assert_eq!(plan.shards(), 4);
        assert_eq!(plan.job.rhs.as_ref().unwrap()[0], 1.0);
    }
}
