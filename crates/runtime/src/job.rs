//! The job-submission API: shared matrix handles and solve requests.

use std::sync::Arc;
use std::time::Instant;

use refloat_core::{EscalationPolicy, ReFloatConfig};
use refloat_solvers::{RefinementConfig, SolveResult, SolverConfig};
use refloat_sparse::CsrMatrix;
use reram_sim::SolverKind;

use crate::fingerprint::fingerprint_csr;
use crate::telemetry::JobTelemetry;

/// A cheaply-cloneable reference to a matrix a tenant wants solves against.
///
/// The fingerprint (content hash of structure + values) is computed once at
/// construction; together with the per-job [`ReFloatConfig`] it keys the
/// encoded-matrix cache, so two handles wrapping equal matrices share cache entries.
#[derive(Debug, Clone)]
pub struct MatrixHandle {
    name: Arc<str>,
    csr: Arc<CsrMatrix>,
    fingerprint: u64,
}

impl MatrixHandle {
    /// Wraps a matrix, computing its fingerprint (one pass over the CSR arrays).
    pub fn new(name: impl Into<String>, csr: CsrMatrix) -> Self {
        Self::from_arc(name, Arc::new(csr))
    }

    /// Wraps an already-shared matrix.
    pub fn from_arc(name: impl Into<String>, csr: Arc<CsrMatrix>) -> Self {
        let fingerprint = fingerprint_csr(&csr);
        MatrixHandle {
            name: name.into().into(),
            csr,
            fingerprint,
        }
    }

    /// Human-readable matrix name (used in telemetry).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying matrix.
    pub fn csr(&self) -> &CsrMatrix {
        &self.csr
    }

    /// The content fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// Mixed-precision refinement settings for a [`SolveJob`].
///
/// A refined job wraps its inner solver (CG/BiCGSTAB at the job's base format) in the
/// outer fp64 defect-correction loop of `refloat_solvers::refinement`: exact residuals
/// on the host, low-precision correction solves on the simulated chip, and a
/// format-escalation ladder for inner formats that stall.  All the encoded rungs flow
/// through the runtime's encoded-matrix cache, so escalation re-uses encodings across
/// jobs and tenants.
#[derive(Debug, Clone, Default)]
pub struct RefinementSpec {
    /// The outer-loop knobs (target, pass cap, inner solve settings, stall
    /// threshold), shared verbatim with `refloat_solvers::refinement`.
    pub config: RefinementConfig,
    /// How stalled formats widen (and whether fp64 is the final rung).
    pub escalation: EscalationPolicy,
}

impl RefinementSpec {
    /// A spec targeting the given outer relative residual, with the default
    /// escalation policy.
    pub fn to_target(target: f64) -> Self {
        RefinementSpec {
            config: RefinementConfig::to_target(target),
            ..RefinementSpec::default()
        }
    }

    /// Builder: override the escalation policy.
    pub fn with_escalation(mut self, escalation: EscalationPolicy) -> Self {
        self.escalation = escalation;
        self
    }

    /// Builder: override the inner solve settings.
    pub fn with_inner(mut self, inner: SolverConfig) -> Self {
        self.config.inner = inner;
        self
    }

    /// The solver-side [`RefinementConfig`] this spec drives.  Pass recording is
    /// forced on: the worker prices each pass on the simulated chip from the pass
    /// log, so a spec must not be able to turn it off.
    pub fn refinement_config(&self) -> RefinementConfig {
        RefinementConfig {
            record_passes: true,
            ..self.config.clone()
        }
    }
}

/// Auto-format settings for a [`SolveJob`] (see [`SolveJob::with_auto_format`]).
///
/// The worker resolves the job's format through `refloat_core::autotune` — memoized in
/// the runtime's [`FormatDecisionCache`](crate::decision::FormatDecisionCache) under
/// the matrix fingerprint, so repeat tenants skip the analysis — and, when the chosen
/// format still stalls above `tolerance` in *true* residual, falls back to the
/// mixed-precision refinement ladder described by `fallback`.
#[derive(Debug, Clone)]
pub struct AutoFormatSpec {
    /// Target true relative residual `‖b − A·x‖₂ / ‖b‖₂` the solve must reach.
    pub tolerance: f64,
    /// The refinement ladder armed when the auto-tuned format stalls (its outer
    /// target is `tolerance`; the escalation policy defaults to
    /// [`EscalationPolicy::widen_then_fp64`]).
    pub fallback: RefinementSpec,
}

impl AutoFormatSpec {
    /// A spec targeting `tolerance` with the default escalation fallback.
    pub fn to_target(tolerance: f64) -> Self {
        assert!(
            tolerance > 0.0 && tolerance.is_finite(),
            "AutoFormatSpec: tolerance must be positive and finite, got {tolerance}"
        );
        AutoFormatSpec {
            tolerance,
            fallback: RefinementSpec::to_target(tolerance),
        }
    }

    /// Builder: override the fallback escalation policy.
    pub fn with_escalation(mut self, escalation: EscalationPolicy) -> Self {
        self.fallback.escalation = escalation;
        self
    }
}

/// One solve request: matrix handle + right-hand side(s) + format + solver + tolerance.
#[derive(Debug, Clone)]
pub struct SolveJob {
    /// Who submitted the job (telemetry/reporting label).
    pub tenant: Arc<str>,
    /// The matrix to solve against.
    pub matrix: MatrixHandle,
    /// The right-hand side; `None` means the all-ones vector (the experiment-harness
    /// convention).
    pub rhs: Option<Arc<Vec<f64>>>,
    /// Additional right-hand sides of a batched multi-RHS job.  All RHS of one job
    /// share the programmed operator: the chip is programmed once and the per-column
    /// solves (each bitwise identical to a standalone job) amortize that cost.
    pub extra_rhs: Vec<Arc<Vec<f64>>>,
    /// The ReFloat format to encode (or fetch) the matrix in.  For refined jobs this
    /// is the *base* rung of the escalation ladder.
    pub format: ReFloatConfig,
    /// How many accelerator chips the job spans (1 = a single chip).  A sharded job
    /// partitions the matrix into `shards` nnz-balanced block-row bands, encodes each
    /// through the cache under its own [`ShardId`](crate::cache::ShardId), runs the
    /// bands in parallel, and gathers the disjoint outputs — bitwise identical to the
    /// unsharded solve for every shard count.
    pub shards: usize,
    /// Which Krylov solver to run.
    pub solver: SolverKind,
    /// Tolerance / iteration cap for the solve (plain jobs) or for nothing at all
    /// (refined jobs override it with the inner settings of [`RefinementSpec`]).
    pub solver_config: SolverConfig,
    /// When set, run the job in mixed-precision refinement mode.
    pub refinement: Option<RefinementSpec>,
    /// When set, the worker auto-tunes the format: [`format`](Self::format) only
    /// contributes its blocking `b` (and conversion modes are the tuner's defaults),
    /// while `(e, f)(ev, fv)` come from the memoized per-matrix analysis.
    pub auto_format: Option<AutoFormatSpec>,
}

impl SolveJob {
    /// A CG job with the harness defaults: all-ones right-hand side, relative `1e-8`
    /// tolerance, no residual trace (traces are per-iteration allocations the serving
    /// path does not need).
    pub fn new(tenant: impl Into<String>, matrix: MatrixHandle, format: ReFloatConfig) -> Self {
        SolveJob {
            tenant: tenant.into().into(),
            matrix,
            rhs: None,
            extra_rhs: Vec::new(),
            format,
            shards: 1,
            solver: SolverKind::Cg,
            solver_config: SolverConfig::relative(1e-8).with_trace(false),
            refinement: None,
            auto_format: None,
        }
    }

    /// Builder: use BiCGSTAB (or switch back to CG).
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Builder: use an explicit right-hand side.
    pub fn with_rhs(mut self, rhs: Arc<Vec<f64>>) -> Self {
        assert_eq!(
            rhs.len(),
            self.matrix.csr().nrows(),
            "SolveJob: rhs length must match the matrix"
        );
        self.rhs = Some(rhs);
        self
    }

    /// Builder: solve against a batch of right-hand sides (the first becomes the
    /// primary [`rhs`](Self::rhs), the rest ride along in
    /// [`extra_rhs`](Self::extra_rhs)).  The chip is programmed once for the whole
    /// batch.
    ///
    /// # Panics
    /// Panics if the batch is empty, any RHS length mismatches the matrix, or the job
    /// is in refinement mode (refined jobs are single-RHS).
    pub fn with_rhs_batch(mut self, batch: Vec<Arc<Vec<f64>>>) -> Self {
        assert!(!batch.is_empty(), "SolveJob: rhs batch must be non-empty");
        assert!(
            (self.refinement.is_none() && self.auto_format.is_none()) || batch.len() == 1,
            "SolveJob: refined and auto-format jobs are single-RHS; split the batch \
             into separate jobs"
        );
        let n = self.matrix.csr().nrows();
        for rhs in &batch {
            assert_eq!(rhs.len(), n, "SolveJob: rhs length must match the matrix");
        }
        let mut batch = batch.into_iter();
        self.rhs = batch.next();
        self.extra_rhs = batch.collect();
        self
    }

    /// Builder: span the job across `shards` accelerator chips (block-row sharding).
    ///
    /// # Panics
    /// Panics if `shards` is 0, or if `shards > 1` on a job in refinement mode
    /// (refined jobs are single-chip).
    pub fn with_sharding(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "SolveJob: shards must be at least 1");
        assert!(
            self.refinement.is_none() || shards == 1,
            "SolveJob: refined jobs are single-chip; drop with_refinement or the sharding"
        );
        self.shards = shards;
        self
    }

    /// Builder: override the solver configuration.
    ///
    /// On an auto-format job only the iteration cap and trace flag survive: the
    /// worker re-couples the tolerance (relative, at the [`AutoFormatSpec`] target)
    /// when it resolves the format, so the solve criterion and the auto-format
    /// contract can never drift apart.
    pub fn with_solver_config(mut self, config: SolverConfig) -> Self {
        self.solver_config = config;
        self
    }

    /// Builder: run this job in mixed-precision refinement mode.
    ///
    /// # Panics
    /// Panics if the job is sharded, carries a RHS batch, or is in auto-format mode —
    /// refined jobs are single-RHS and single-chip, and auto-format jobs arm their own
    /// refinement fallback (rejected here so the mistake surfaces on the submitting
    /// thread, not as a worker-pool panic).
    pub fn with_refinement(mut self, spec: RefinementSpec) -> Self {
        assert!(
            self.shards == 1 && self.extra_rhs.is_empty(),
            "SolveJob: refined jobs are single-RHS and single-chip; drop the sharding \
             or RHS batch"
        );
        assert!(
            self.auto_format.is_none(),
            "SolveJob: auto-format jobs arm their own refinement fallback; drop \
             with_auto_format or with_refinement"
        );
        self.refinement = Some(spec);
        self
    }

    /// Builder: auto-tune the format for this job, targeting the given *true*
    /// relative residual.
    ///
    /// The worker scores candidate `(e, f)(ev, fv)` points with the
    /// `refloat_core::autotune` cost model (preserving this job's blocking `b`),
    /// memoizes the decision in the runtime's format-decision cache under the matrix
    /// fingerprint, and — if the chosen format still stalls above `tolerance` — falls
    /// back to the mixed-precision refinement ladder (unsharded).  The job's solver
    /// configuration is reset to the matching relative tolerance.
    ///
    /// # Panics
    /// Panics if the job is in refinement mode or carries a RHS batch (the refinement
    /// fallback is single-RHS).
    pub fn with_auto_format(self, tolerance: f64) -> Self {
        self.with_auto_format_spec(AutoFormatSpec::to_target(tolerance))
    }

    /// Builder: auto-tune the format with an explicit [`AutoFormatSpec`] (custom
    /// fallback escalation).  See [`with_auto_format`](Self::with_auto_format).
    ///
    /// # Panics
    /// Panics if the job is in refinement mode or carries a RHS batch.
    pub fn with_auto_format_spec(mut self, spec: AutoFormatSpec) -> Self {
        assert!(
            self.refinement.is_none(),
            "SolveJob: auto-format jobs arm their own refinement fallback; drop \
             with_refinement or with_auto_format"
        );
        assert!(
            self.extra_rhs.is_empty(),
            "SolveJob: auto-format jobs are single-RHS (the refinement fallback \
             cannot run batched); split the batch into separate jobs"
        );
        self.solver_config = SolverConfig::relative(spec.tolerance)
            .with_max_iterations(self.solver_config.max_iterations)
            .with_trace(false);
        self.auto_format = Some(spec);
        self
    }

    /// The cache key of this job's unsharded encoding (sharded jobs derive one key per
    /// shard from the same fingerprint + format, see the worker).
    pub fn cache_key(&self) -> crate::cache::CacheKey {
        crate::cache::CacheKey::whole(self.matrix.fingerprint(), self.format)
    }

    /// Number of right-hand sides this job solves (primary + extras).
    pub fn rhs_count(&self) -> usize {
        1 + self.extra_rhs.len()
    }
}

/// A job with its submission envelope, as carried by the queue.
#[derive(Debug)]
pub(crate) struct QueuedJob {
    pub id: u64,
    pub job: SolveJob,
    pub submitted_at: Instant,
}

/// The result of one job: the raw solver outcome plus its telemetry.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Submission-order id.
    pub job_id: u64,
    /// The solver's result for the primary right-hand side (solution iterate,
    /// iterations, stop reason).
    pub result: SolveResult,
    /// Results for the extra right-hand sides of a batched job, in batch order
    /// (empty for single-RHS jobs).
    pub extra_results: Vec<SolveResult>,
    /// Per-job measurements.
    pub telemetry: JobTelemetry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_matrices_share_a_fingerprint_distinct_ones_do_not() {
        let a = refloat_matgen::generators::laplacian_2d(6, 6, 0.1).to_csr();
        let b = refloat_matgen::generators::laplacian_2d(6, 6, 0.1).to_csr();
        let c = refloat_matgen::generators::laplacian_2d(6, 6, 0.2).to_csr();
        let (ha, hb, hc) = (
            MatrixHandle::new("a", a),
            MatrixHandle::new("b", b),
            MatrixHandle::new("c", c),
        );
        assert_eq!(ha.fingerprint(), hb.fingerprint());
        assert_ne!(ha.fingerprint(), hc.fingerprint());
    }

    #[test]
    fn cache_key_distinguishes_formats() {
        let a = refloat_matgen::generators::laplacian_2d(6, 6, 0.1).to_csr();
        let handle = MatrixHandle::new("a", a);
        let j1 = SolveJob::new("t", handle.clone(), ReFloatConfig::new(4, 3, 3, 3, 8));
        let j2 = SolveJob::new("t", handle, ReFloatConfig::new(4, 3, 8, 3, 8));
        assert_ne!(j1.cache_key(), j2.cache_key());
        assert_eq!(j1.cache_key().fingerprint, j2.cache_key().fingerprint);
    }

    #[test]
    fn rhs_batch_splits_into_primary_and_extras() {
        let a = refloat_matgen::generators::laplacian_2d(4, 4, 0.1).to_csr();
        let n = a.nrows();
        let handle = MatrixHandle::new("a", a);
        let job = SolveJob::new("t", handle, ReFloatConfig::new(3, 3, 8, 3, 8))
            .with_rhs_batch(vec![
                Arc::new(vec![1.0; n]),
                Arc::new(vec![2.0; n]),
                Arc::new(vec![3.0; n]),
            ])
            .with_sharding(4);
        assert_eq!(job.rhs_count(), 3);
        assert_eq!(job.extra_rhs.len(), 2);
        assert_eq!(job.shards, 4);
        assert_eq!(job.rhs.as_ref().unwrap()[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "shards must be at least 1")]
    fn zero_shards_is_rejected() {
        let a = refloat_matgen::generators::laplacian_2d(4, 4, 0.1).to_csr();
        let handle = MatrixHandle::new("a", a);
        let _ = SolveJob::new("t", handle, ReFloatConfig::new(3, 3, 8, 3, 8)).with_sharding(0);
    }

    #[test]
    #[should_panic(expected = "single-chip")]
    fn refinement_rejects_sharding_at_build_time() {
        let a = refloat_matgen::generators::laplacian_2d(4, 4, 0.1).to_csr();
        let handle = MatrixHandle::new("a", a);
        let _ = SolveJob::new("t", handle, ReFloatConfig::new(3, 3, 8, 3, 8))
            .with_refinement(crate::RefinementSpec::to_target(1e-10))
            .with_sharding(2);
    }

    #[test]
    #[should_panic(expected = "single-RHS")]
    fn refinement_rejects_rhs_batches_at_build_time() {
        let a = refloat_matgen::generators::laplacian_2d(4, 4, 0.1).to_csr();
        let n = a.nrows();
        let handle = MatrixHandle::new("a", a);
        let _ = SolveJob::new("t", handle, ReFloatConfig::new(3, 3, 8, 3, 8))
            .with_rhs_batch(vec![Arc::new(vec![1.0; n]), Arc::new(vec![2.0; n])])
            .with_refinement(crate::RefinementSpec::to_target(1e-10));
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn mismatched_rhs_is_rejected() {
        let a = refloat_matgen::generators::laplacian_2d(4, 4, 0.1).to_csr();
        let handle = MatrixHandle::new("a", a);
        let _ = SolveJob::new("t", handle, ReFloatConfig::new(3, 3, 8, 3, 8))
            .with_rhs(Arc::new(vec![1.0; 3]));
    }
}
