//! The worker loop: drain the queue, resolve the encoded matrix through the cache,
//! solve (plain or mixed-precision refined), and account the simulated-chip cost.

use std::sync::mpsc::Sender;
use std::time::Instant;

use refloat_core::{ReFloatConfig, ReFloatMatrix};
use refloat_solvers::{refine, LinearOperator, PrecisionLadder, SolveResult, SolverConfig};
use refloat_sparse::CsrMatrix;

use crate::accel::{RefinedPassCost, SimulatedAccelerator, SimulatedRun};
use crate::cache::{CacheOutcome, EncodedMatrixCache};
use crate::job::{JobOutcome, QueuedJob, RefinementSpec, SolveJob};
use crate::queue::BoundedQueue;
use crate::telemetry::{CacheOutcomeKind, JobTelemetry, RefinementTelemetry};

/// Runs until the queue closes and drains; one simulated accelerator per worker.
pub(crate) fn worker_loop(
    worker_id: usize,
    queue: &BoundedQueue<QueuedJob>,
    cache: &EncodedMatrixCache,
    results: Sender<JobOutcome>,
) {
    let mut accelerator = SimulatedAccelerator::new(worker_id);
    // The worker's "programmed" operator, mirroring the simulated chip state: reused
    // across consecutive jobs on the same (matrix, format) so hot traffic skips even
    // the O(nnz) clone of the cached encoding.
    let mut programmed: Option<(crate::cache::CacheKey, ReFloatMatrix)> = None;
    while let Some(queued) = queue.pop() {
        let outcome = execute_job(queued, cache, &mut accelerator, &mut programmed);
        if results.send(outcome).is_err() {
            // The collector went away; nothing left to do.
            break;
        }
    }
}

/// A by-reference fp64 operator over the shared CSR matrix (the exact ground truth the
/// refinement loop measures residuals against) — avoids cloning O(nnz) arrays per job.
struct CsrRef<'a>(&'a CsrMatrix);

impl LinearOperator for CsrRef<'_> {
    fn nrows(&self) -> usize {
        self.0.nrows()
    }

    fn ncols(&self) -> usize {
        self.0.ncols()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.0.spmv_into(x, y);
    }

    fn name(&self) -> String {
        "fp64 (exact)".to_string()
    }
}

/// The runtime's [`PrecisionLadder`]: quantized rungs resolved lazily through the
/// shared encoded-matrix cache (so escalation re-uses encodings across jobs and
/// tenants, and concurrent first touches coalesce), with the exact CSR matrix as the
/// optional final fp64 rung.
struct CachedLadder<'a> {
    cache: &'a EncodedMatrixCache,
    csr: &'a CsrMatrix,
    fingerprint: u64,
    formats: Vec<ReFloatConfig>,
    fp64_fallback: bool,
    solver: refloat_solvers::SolverKind,
    /// Programmed operators per quantized rung, fetched on first use.
    ops: Vec<Option<ReFloatMatrix>>,
    /// The worker's held operator from the previous job; adopted (no clone) by the
    /// rung whose key matches, exactly like the plain path's programmed-operator
    /// reuse.
    seed: Option<(crate::cache::CacheKey, ReFloatMatrix)>,
    /// Seconds this job spent encoding (cache misses only).
    encode_s: f64,
    /// Seconds spent obtaining rung operators in total: encoding, waiting on a
    /// concurrent encode, and cloning the cached entry.  Subtracted from `solve_s` so
    /// solver time stays solver time.
    fetch_s: f64,
    /// How the *base* rung was resolved (the job-level cache outcome).
    base_outcome: Option<CacheOutcomeKind>,
}

impl<'a> CachedLadder<'a> {
    fn new(
        cache: &'a EncodedMatrixCache,
        csr: &'a CsrMatrix,
        fingerprint: u64,
        spec: &RefinementSpec,
        base_format: ReFloatConfig,
        solver: refloat_solvers::SolverKind,
        seed: Option<(crate::cache::CacheKey, ReFloatMatrix)>,
    ) -> Self {
        let formats = spec.escalation.ladder(base_format);
        let ops = formats.iter().map(|_| None).collect();
        CachedLadder {
            cache,
            csr,
            fingerprint,
            formats,
            fp64_fallback: spec.escalation.fp64_fallback,
            solver,
            ops,
            seed,
            encode_s: 0.0,
            fetch_s: 0.0,
            base_outcome: None,
        }
    }

    /// Non-empty blocks of a fetched rung (0 for the fp64 rung or an unused rung).
    fn num_blocks(&self, level: usize) -> u64 {
        self.ops
            .get(level)
            .and_then(|op| op.as_ref())
            .map(|op| op.num_blocks() as u64)
            .unwrap_or(0)
    }

    /// Hands the base-rung operator (the one identical follow-up jobs will ask for
    /// first) back to the worker's programmed slot; falls back to the unused seed.
    fn into_programmed(mut self) -> Option<(crate::cache::CacheKey, ReFloatMatrix)> {
        if let Some(op) = self.ops.get_mut(0).and_then(Option::take) {
            return Some(((self.fingerprint, self.formats[0]), op));
        }
        self.seed
    }
}

impl PrecisionLadder for CachedLadder<'_> {
    fn levels(&self) -> usize {
        self.formats.len() + usize::from(self.fp64_fallback)
    }

    fn level_name(&self, level: usize) -> String {
        if level < self.formats.len() {
            self.formats[level].to_string()
        } else {
            "fp64 (exact)".to_string()
        }
    }

    fn solve(&mut self, level: usize, rhs: &[f64], config: &SolverConfig) -> SolveResult {
        if level < self.formats.len() {
            if self.ops[level].is_none() {
                let fetch_started = Instant::now();
                let format = self.formats[level];
                let key = (self.fingerprint, format);
                let (encoded, outcome) = self
                    .cache
                    .get_or_encode(key, || ReFloatMatrix::from_csr(self.csr, format));
                if let CacheOutcome::Miss { encode_seconds } = outcome {
                    self.encode_s += encode_seconds;
                }
                if level == 0 {
                    self.base_outcome = Some(outcome.into());
                }
                // Adopt the worker's held operator when it is this very rung (the
                // cache lookup above still records the hit); clone otherwise.
                let op = match self.seed.take() {
                    Some((held_key, op)) if held_key == key => op,
                    other => {
                        self.seed = other;
                        (*encoded).clone()
                    }
                };
                self.ops[level] = Some(op);
                self.fetch_s += fetch_started.elapsed().as_secs_f64();
            }
            let op = self.ops[level].as_mut().expect("rung fetched above");
            self.solver.solve(op, rhs, config)
        } else {
            self.solver.solve(&mut CsrRef(self.csr), rhs, config)
        }
    }
}

/// What one refined job reports back to `execute_job`.
struct RefinedOutcome {
    result: SolveResult,
    simulated: SimulatedRun,
    encode_s: f64,
    solve_s: f64,
    cache: CacheOutcomeKind,
    telemetry: RefinementTelemetry,
}

/// Runs one refined job: the outer fp64 defect-correction loop over the cache-backed
/// ladder, then charges every inner pass (and the host-side fp64 work) to the chip.
fn run_refined(
    job: &SolveJob,
    spec: &RefinementSpec,
    rhs: &[f64],
    cache: &EncodedMatrixCache,
    accelerator: &mut SimulatedAccelerator,
    programmed: &mut Option<(crate::cache::CacheKey, ReFloatMatrix)>,
) -> RefinedOutcome {
    let csr = job.matrix.csr();
    let mut ladder = CachedLadder::new(
        cache,
        csr,
        job.matrix.fingerprint(),
        spec,
        job.format,
        job.solver,
        programmed.take(),
    );
    let config = spec.refinement_config();
    let solve_started = Instant::now();
    let refined = refine(&mut CsrRef(csr), rhs, &mut ladder, &config);
    // Rung fetches (encode / coalesced wait / clone) interleave with the solve; keep
    // solver time clean of them.
    let solve_s = solve_started.elapsed().as_secs_f64() - ladder.fetch_s;

    let pass_costs: Vec<RefinedPassCost> = refined
        .passes
        .iter()
        .map(|pass| {
            if pass.level < ladder.formats.len() {
                let format = ladder.formats[pass.level];
                RefinedPassCost::Quantized {
                    key: (ladder.fingerprint, format),
                    format,
                    num_blocks: ladder.num_blocks(pass.level),
                    iterations: pass.inner_iterations as u64,
                }
            } else {
                RefinedPassCost::HostFp64 {
                    iterations: pass.inner_iterations as u64,
                }
            }
        })
        .collect();
    let simulated = accelerator.execute_refined(
        &pass_costs,
        refined.fp64_spmvs as u64,
        csr.nnz() as u64,
        csr.nrows() as u64,
        job.solver,
    );

    let telemetry = RefinementTelemetry {
        outer_iterations: refined.outer_iterations,
        inner_iterations: refined.inner_iterations,
        escalations: refined.escalations,
        final_level: ladder.level_name(refined.final_level),
        fp64_spmvs: refined.fp64_spmvs,
        final_relative_residual: refined.final_relative_residual,
        stalled: refined.stop == refloat_solvers::RefinementStop::Stalled,
    };
    let encode_s = ladder.encode_s;
    let cache = ladder.base_outcome.unwrap_or(CacheOutcomeKind::Hit);
    *programmed = ladder.into_programmed();
    RefinedOutcome {
        result: refined.into_solve_result(),
        simulated,
        encode_s,
        solve_s,
        cache,
        telemetry,
    }
}

fn execute_job(
    queued: QueuedJob,
    cache: &EncodedMatrixCache,
    accelerator: &mut SimulatedAccelerator,
    programmed: &mut Option<(crate::cache::CacheKey, ReFloatMatrix)>,
) -> JobOutcome {
    let QueuedJob {
        id,
        job,
        submitted_at,
    } = queued;
    let dequeued_at = Instant::now();
    let queue_wait_s = dequeued_at.duration_since(submitted_at).as_secs_f64();

    let ones;
    let rhs: &[f64] = match &job.rhs {
        Some(b) => b,
        None => {
            ones = vec![1.0; job.matrix.csr().nrows()];
            &ones
        }
    };

    let (result, simulated, encode_s, solve_s, cache_outcome_kind, refinement) =
        if let Some(spec) = job.refinement.clone() {
            let refined = run_refined(&job, &spec, rhs, cache, accelerator, programmed);
            (
                refined.result,
                refined.simulated,
                refined.encode_s,
                refined.solve_s,
                refined.cache,
                Some(refined.telemetry),
            )
        } else {
            let key = job.cache_key();
            let (encoded, cache_outcome) = cache.get_or_encode(key, || {
                ReFloatMatrix::from_csr(job.matrix.csr(), job.format)
            });
            let encode_s = match cache_outcome {
                CacheOutcome::Miss { encode_seconds } => encode_seconds,
                CacheOutcome::Hit | CacheOutcome::Coalesced => 0.0,
            };

            // The worker needs a mutable operator (applying it mutates the converter
            // scratch), while the cache entry is shared and immutable.  Reuse the
            // worker's programmed operator when the key matches — the encode is a pure
            // function of the key, so the content is the same — and otherwise clone the
            // cached encoding (memcpy cost, not re-encode cost).  Either way the
            // numerics are bit-identical to the serial path: same `ReFloatMatrix`, same
            // block order.
            let mut operator = match programmed.take() {
                Some((held_key, op)) if held_key == key => op,
                _ => (*encoded).clone(),
            };
            let solve_started = Instant::now();
            let result = job.solver.solve(&mut operator, rhs, &job.solver_config);
            let solve_s = solve_started.elapsed().as_secs_f64();
            let simulated = accelerator.execute(
                key,
                &job.format,
                operator.num_blocks() as u64,
                result.iterations as u64,
                job.solver,
            );
            *programmed = Some((key, operator));
            (
                result,
                simulated,
                encode_s,
                solve_s,
                cache_outcome.into(),
                None,
            )
        };

    let telemetry = JobTelemetry {
        job_id: id,
        tenant: job.tenant.to_string(),
        matrix: job.matrix.name().to_string(),
        worker: accelerator.worker_id(),
        solver: job.solver,
        cache: cache_outcome_kind,
        queue_wait_s,
        encode_s,
        solve_s,
        latency_s: submitted_at.elapsed().as_secs_f64(),
        iterations: result.iterations,
        converged: result.converged(),
        simulated,
        refinement,
    };
    JobOutcome {
        job_id: id,
        result,
        telemetry,
    }
}
