//! The worker loop: drain the queue, resolve the job's format (auto-tuned decisions
//! come through the format-decision cache) and the encoded matrix (or its per-chip
//! shards) through the encode cache, solve (plain, sharded, batched multi-RHS, or
//! mixed-precision refined), and account the simulated-chip cost.

use refloat_core::autotune::{self, AutotuneConfig};
use refloat_core::incremental::{reencode_incremental, IncrementalStats};
use refloat_core::{OperatorShard, ReFloatConfig, ReFloatMatrix, ShardedReFloatMatrix};
use refloat_solvers::{
    refine_warm, solve_warm_split, LinearOperator, PrecisionLadder, SolveResult, SolverConfig,
};
use refloat_sparse::{block_row_shards, extract_row_range, CsrMatrix};

use refloat_telemetry::{sync, Clock, SpanKind, TraceEvent, TraceSink};
use reram_sim::{DeviceHealth, FaultyReFloatOperator};

use crate::accel::{RefinedPassCost, SimulatedAccelerator, SimulatedRun};
use crate::cache::{CacheKey, CacheOutcome, EncodedMatrixCache, ShardId};
use crate::client::{DegradedJob, DegradedReason, QueuedTicket, TicketOutcome};
use crate::decision::{DecisionKey, DecisionOutcome, FormatDecisionCache};
use crate::health::{FaultPolicy, HealthTracker, CROSSBAR_GRID};
use crate::job::{JobOutcome, QueuedJob, RefinementSpec, SolveJob};
use crate::node::NodeCore;
use crate::sched::Popped;
use crate::telemetry::{
    metric_names, AutotuneTelemetry, CacheOutcomeKind, JobMetricHandles, JobTelemetry,
    RefinementTelemetry, SequenceTelemetry,
};
use crate::trace_job::JobTrace;

/// Runs until the client's scheduler closes and drains; one simulated accelerator
/// per worker.  Completed outcomes resolve the job's ticket; a telemetry copy is
/// appended to the client's report log.
///
/// A panicking job is *contained*: the ticket resolves to
/// [`TicketOutcome::Failed`] with the panic message, the scheduler's in-flight
/// accounting is balanced, and the worker keeps serving — a poisoned job can
/// neither hang `drain`/`shutdown` nor strand its waiter.  (The pre-service
/// scoped-thread pool propagated the panic to the batch caller instead; the batch
/// wrappers in `lib.rs` restore that behaviour by re-panicking on `Failed`.)
pub(crate) fn worker_loop(worker_id: usize, core: &NodeCore) {
    let build_accelerator = || {
        let accelerator =
            SimulatedAccelerator::new(worker_id).with_chip_crossbars(core.chip_crossbars);
        match &core.fault {
            Some(policy) => accelerator.with_fault_model(policy.model, CROSSBAR_GRID, policy.abft),
            None => accelerator,
        }
    };
    let mut accelerator = build_accelerator();
    // The worker's "programmed" operator, mirroring the simulated chip state: reused
    // across consecutive jobs on the same (matrix, format[, shard set]) so hot
    // traffic skips even the O(nnz) clone of the cached encoding.
    let mut programmed: Option<ProgrammedOp> = None;
    // Handles on the client's live metrics registry: per-job recording below is
    // atomic increments only, pollable mid-traffic via metrics_snapshot().
    let metric_handles = JobMetricHandles::register(&core.metrics);
    while let Some(popped) = core.sched.pop() {
        if core.health.is_killed(worker_id) {
            // A killed chip serves nothing, but it never loses what it already
            // dequeued: hand the job to a live peer or resolve it as Degraded,
            // then stop serving.  The last live worker to die also drains the
            // queue so no queued ticket is stranded.
            resolve_on_killed_chip(worker_id, core, popped);
            if core
                .health
                .live_workers_in(core.worker_id_base, core.workers)
                == 0
            {
                core.sched.close();
                while let Some(stranded) = core.sched.try_pop() {
                    degrade_on_dead_node(core, stranded.id, stranded.payload);
                    core.sched.finish_one();
                }
            }
            break;
        }
        let QueuedTicket {
            plan,
            submitted_at_s,
            ticket,
            permit,
            trace_seq_base,
        } = popped.payload;
        let queued = QueuedJob {
            id: popped.id,
            job: plan.job,
            priority: popped.priority,
            submitted_at_s,
        };
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(
                queued,
                &core.cache,
                &core.decisions,
                core.chip_crossbars,
                &mut accelerator,
                &mut programmed,
                core.fault.as_ref(),
                &core.health,
                core.trace.as_deref(),
                core.clock.as_ref(),
                trace_seq_base,
            )
        }));
        // Refund the tenant's admission quota (cluster path) only after the job's
        // full lifetime — completed, failed, or contained-panic — so the in-system
        // bound counts running work, not just queued work; but *before* resolving
        // the ticket, so a tenant that observed `wait()` return is guaranteed its
        // slot is already free for the next submit.
        drop(permit);
        match run {
            Ok((mut outcome, degraded)) => {
                outcome.telemetry.node = core.node_id;
                if degraded {
                    // Like cancelled/failed jobs, a degraded job carries no
                    // telemetry row — the report's `jobs` counts clean completions
                    // only — but its fault counters still reach the live registry.
                    core.metrics
                        .counter(metric_names::FAULTS_DETECTED)
                        .add(outcome.telemetry.faults_detected);
                    core.metrics
                        .counter(metric_names::FAULT_RETRIES)
                        .add(outcome.telemetry.fault_retries);
                    core.metrics.counter(metric_names::JOBS_DEGRADED).inc();
                    ticket.complete(TicketOutcome::Degraded(Box::new(DegradedJob {
                        job_id: outcome.job_id,
                        tenant: outcome.telemetry.tenant.clone(),
                        reason: DegradedReason::AbftUnresolved,
                        outcome: Some(outcome),
                    })));
                } else {
                    metric_handles.record(&outcome.telemetry);
                    core.node_jobs.inc();
                    sync::lock(&core.completed).push(outcome.telemetry.clone());
                    ticket.complete(TicketOutcome::Completed(Box::new(outcome)));
                }
            }
            Err(payload) => {
                // The accelerator and programmed-operator mirror may be mid-update;
                // rebuild both so subsequent jobs see a consistent (cold) chip.
                accelerator = build_accelerator();
                programmed = None;
                ticket.complete(TicketOutcome::Failed(panic_message(payload.as_ref())));
            }
        }
        if core.fault.is_some() {
            // Refresh the chip's degradation score so the cluster router's health
            // signals track accumulated wear and drift.
            core.health
                .update_degradation(worker_id, accelerator.health().degradation);
        }
        core.sched.finish_one();
    }
}

/// Disposes of a job a killed chip dequeued: re-push it for a live peer on the
/// same node (a *reroute*), or — when this worker was the node's last live one —
/// resolve the ticket with the typed `Degraded` outcome.  Either way the job is
/// accounted for and its waiter unblocked; nothing is lost or corrupted.
fn resolve_on_killed_chip(worker_id: usize, core: &NodeCore, popped: Popped<QueuedTicket>) {
    let Popped {
        id,
        priority,
        payload,
    } = popped;
    if core
        .health
        .live_workers_in(core.worker_id_base, core.workers)
        > 0
    {
        let mut payload = payload;
        if let Some(sink) = &core.trace {
            let now = core.clock.now_s();
            sink.record(TraceEvent {
                job_id: id,
                seq: payload.trace_seq_base,
                worker: Some(worker_id as u64),
                kind: SpanKind::Reroute,
                start_s: now,
                end_s: now,
                detail: format!("from_worker={worker_id}"),
            });
            // The re-executing worker starts its seqs after the reroute event.
            payload.trace_seq_base += 1;
        }
        // The pop above freed a queue slot, so this push does not block in steady
        // state; the original deadline was consumed at the first dequeue.
        match core.sched.push(id, priority, None, payload) {
            Ok(()) => core.metrics.counter(metric_names::JOBS_REROUTED).inc(),
            // The scheduler closed while we held the job (shutdown race): the
            // degraded resolution below still reaches the waiter.
            Err(payload) => degrade_on_dead_node(core, id, payload),
        }
    } else {
        degrade_on_dead_node(core, id, payload);
    }
    core.sched.finish_one();
}

/// Resolves a queued job's ticket as `Degraded(ChipKilled)` — the typed outcome of
/// a job stranded on a node with no live worker left.
fn degrade_on_dead_node(core: &NodeCore, id: u64, payload: QueuedTicket) {
    core.metrics.counter(metric_names::JOBS_DEGRADED).inc();
    let tenant = payload.plan.job.tenant.to_string();
    let ticket = std::sync::Arc::clone(&payload.ticket);
    // Dropping the payload releases the admission permit before the ticket
    // resolves, mirroring the completed-job ordering.
    drop(payload);
    ticket.complete(TicketOutcome::Degraded(Box::new(DegradedJob {
        job_id: id,
        tenant,
        reason: DegradedReason::ChipKilled,
        outcome: None,
    })));
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

/// What the worker holds "programmed" between jobs, mirroring the simulated chip
/// state: either the whole-matrix operator of an unsharded job or the assembled
/// multi-chip operator of a sharded job, keyed so only an exactly-matching follow-up
/// job may adopt it (the encode is a pure function of the key, so the content is
/// guaranteed identical).
enum ProgrammedOp {
    /// An unsharded operator and its cache key.
    Whole(crate::cache::CacheKey, ReFloatMatrix),
    /// A sharded operator and its per-shard key set, in shard order.
    Sharded(Vec<crate::cache::CacheKey>, ShardedReFloatMatrix),
}

/// A by-reference fp64 operator over the shared CSR matrix (the exact ground truth the
/// refinement loop measures residuals against) — avoids cloning O(nnz) arrays per job.
struct CsrRef<'a>(&'a CsrMatrix);

impl LinearOperator for CsrRef<'_> {
    fn nrows(&self) -> usize {
        self.0.nrows()
    }

    fn ncols(&self) -> usize {
        self.0.ncols()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.0.spmv_into(x, y);
    }

    fn name(&self) -> String {
        "fp64 (exact)".to_string()
    }
}

/// The runtime's [`PrecisionLadder`]: quantized rungs resolved lazily through the
/// shared encoded-matrix cache (so escalation re-uses encodings across jobs and
/// tenants, and concurrent first touches coalesce), with the exact CSR matrix as the
/// optional final fp64 rung.
struct CachedLadder<'a> {
    cache: &'a EncodedMatrixCache,
    /// The runtime clock rung-fetch timing is read from.
    clock: &'a dyn Clock,
    csr: &'a CsrMatrix,
    fingerprint: u64,
    formats: Vec<ReFloatConfig>,
    fp64_fallback: bool,
    solver: refloat_solvers::SolverKind,
    /// Programmed operators per quantized rung, fetched on first use.
    ops: Vec<Option<ReFloatMatrix>>,
    /// The worker's held operator from the previous job; adopted (no clone) by the
    /// rung whose key matches, exactly like the plain path's programmed-operator
    /// reuse.
    seed: Option<(crate::cache::CacheKey, ReFloatMatrix)>,
    /// Seconds this job spent encoding (cache misses only).
    encode_s: f64,
    /// Seconds spent obtaining rung operators in total: encoding, waiting on a
    /// concurrent encode, and cloning the cached entry.  Subtracted from `solve_s` so
    /// solver time stays solver time.
    fetch_s: f64,
    /// How the *base* rung was resolved (the job-level cache outcome).
    base_outcome: Option<CacheOutcomeKind>,
    /// The sequence predecessor rung misses diff against (sequence steps only).
    predecessor: Option<&'a crate::job::SequencePredecessor>,
    /// Whether any rung fetch re-encoded incrementally, and its block accounting
    /// summed across rungs (in practice only the base rung of a sequence step).
    incremental: bool,
    blocks_reencoded: u64,
    blocks_reused: u64,
}

impl<'a> CachedLadder<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cache: &'a EncodedMatrixCache,
        clock: &'a dyn Clock,
        csr: &'a CsrMatrix,
        fingerprint: u64,
        spec: &RefinementSpec,
        base_format: ReFloatConfig,
        solver: refloat_solvers::SolverKind,
        seed: Option<(crate::cache::CacheKey, ReFloatMatrix)>,
        predecessor: Option<&'a crate::job::SequencePredecessor>,
    ) -> Self {
        let formats = spec.escalation.ladder(base_format);
        let ops = formats.iter().map(|_| None).collect();
        CachedLadder {
            cache,
            clock,
            csr,
            fingerprint,
            formats,
            fp64_fallback: spec.escalation.fp64_fallback,
            solver,
            ops,
            seed,
            encode_s: 0.0,
            fetch_s: 0.0,
            base_outcome: None,
            predecessor,
            incremental: false,
            blocks_reencoded: 0,
            blocks_reused: 0,
        }
    }

    /// Non-empty blocks of a fetched rung (0 for the fp64 rung or an unused rung).
    fn num_blocks(&self, level: usize) -> u64 {
        self.ops
            .get(level)
            .and_then(|op| op.as_ref())
            .map(|op| op.num_blocks() as u64)
            .unwrap_or(0)
    }

    /// Hands the base-rung operator (the one identical follow-up jobs will ask for
    /// first) back to the worker's programmed slot; falls back to the unused seed.
    fn into_programmed(mut self) -> Option<(crate::cache::CacheKey, ReFloatMatrix)> {
        if let Some(op) = self.ops.get_mut(0).and_then(Option::take) {
            return Some((CacheKey::whole(self.fingerprint, self.formats[0]), op));
        }
        self.seed
    }
}

impl PrecisionLadder for CachedLadder<'_> {
    fn levels(&self) -> usize {
        self.formats.len() + usize::from(self.fp64_fallback)
    }

    fn level_name(&self, level: usize) -> String {
        if level < self.formats.len() {
            self.formats[level].to_string()
        } else {
            "fp64 (exact)".to_string()
        }
    }

    fn solve(&mut self, level: usize, rhs: &[f64], config: &SolverConfig) -> SolveResult {
        if level < self.formats.len() {
            if self.ops[level].is_none() {
                let fetch_started_s = self.clock.now_s();
                let format = self.formats[level];
                let key = CacheKey::whole(self.fingerprint, format);
                // A sequence step's rung miss diffs against the predecessor's cached
                // encoding at the same format, exactly like the plain path: only
                // dirty blocks re-quantize, and the result is bitwise identical to a
                // from-scratch encode.
                let (cache, csr, predecessor) = (self.cache, self.csr, self.predecessor);
                let mut inc_stats: Option<IncrementalStats> = None;
                let (encoded, outcome) = {
                    let inc_stats = &mut inc_stats;
                    cache.get_or_encode(key, self.clock, || {
                        if let Some(pred) = predecessor {
                            let pred_key = CacheKey::whole(pred.fingerprint, format);
                            if let Some(prev) = cache.peek(&pred_key) {
                                let inc = reencode_incremental(&prev, &pred.csr, csr);
                                *inc_stats = Some(inc.stats);
                                return inc.matrix;
                            }
                        }
                        ReFloatMatrix::from_csr(csr, format)
                    })
                };
                if let Some(stats) = inc_stats {
                    self.incremental = true;
                    self.blocks_reencoded += stats.blocks_reencoded() as u64;
                    self.blocks_reused += stats.blocks_reused as u64;
                }
                if let CacheOutcome::Miss { encode_seconds } = outcome {
                    self.encode_s += encode_seconds;
                }
                if level == 0 {
                    self.base_outcome = Some(outcome.into());
                }
                // Adopt the worker's held operator when it is this very rung (the
                // cache lookup above still records the hit); clone otherwise.
                let op = match self.seed.take() {
                    Some((held_key, op)) if held_key == key => op,
                    other => {
                        self.seed = other;
                        (*encoded).clone()
                    }
                };
                self.ops[level] = Some(op);
                self.fetch_s += (self.clock.now_s() - fetch_started_s).max(0.0);
            }
            // refloat-analysis: allow(panic-in-service-path) — the branch above just
            // populated this rung; absence is a construction bug, not a job state.
            let op = self.ops[level].as_mut().expect("rung fetched above");
            self.solver.solve(op, rhs, config)
        } else {
            self.solver.solve(&mut CsrRef(self.csr), rhs, config)
        }
    }
}

/// What one refined job reports back to `execute_job`.
struct RefinedOutcome {
    result: SolveResult,
    simulated: SimulatedRun,
    encode_s: f64,
    solve_s: f64,
    cache: CacheOutcomeKind,
    telemetry: RefinementTelemetry,
    /// Sequence-step details when the job carried a [`SequenceSpec`]; the
    /// decision-reuse flag is filled in by `execute_job`.
    sequence: Option<SequenceTelemetry>,
}

/// Runs one refined job: the outer fp64 defect-correction loop over the cache-backed
/// ladder, then charges every inner pass (and the host-side fp64 work) to the chip.
#[allow(clippy::too_many_arguments)]
fn run_refined(
    job: &SolveJob,
    spec: &RefinementSpec,
    rhs: &[f64],
    cache: &EncodedMatrixCache,
    accelerator: &mut SimulatedAccelerator,
    programmed: &mut Option<ProgrammedOp>,
    jt: &mut JobTrace<'_>,
    clock: &dyn Clock,
) -> RefinedOutcome {
    let csr = job.matrix.csr();
    // The ladder can only adopt a whole-matrix operator; a held sharded operator is
    // simply dropped (the chip is being re-programmed anyway).
    let seed = match programmed.take() {
        Some(ProgrammedOp::Whole(key, op)) => Some((key, op)),
        _ => None,
    };
    let seq = job.sequence.as_ref();
    let mut ladder = CachedLadder::new(
        cache,
        clock,
        csr,
        job.matrix.fingerprint(),
        spec,
        job.format,
        job.solver,
        seed,
        seq.and_then(|s| s.predecessor.as_ref()),
    );
    let config = spec.refinement_config();
    let solve_anchor = jt.now_s();
    let solve_started_s = clock.now_s();
    // A sequence step warm-starts the outer loop from the previous solution; the
    // guard residual is exact (one extra fp64 SpMV, priced below with the other
    // host-side work), so a carried-over iterate typically starts decades below
    // ‖b‖ and skips most of the cold passes.
    let guess = seq.and_then(|s| s.initial_guess.as_deref().map(Vec::as_slice));
    let refined = refine_warm(&mut CsrRef(csr), rhs, guess, &mut ladder, &config);
    // Rung fetches (encode / coalesced wait / clone) interleave with the solve; keep
    // solver time clean of them.
    let solve_s = (clock.now_s() - solve_started_s - ladder.fetch_s).max(0.0);
    jt.span(SpanKind::Execute, solve_anchor, || {
        format!(
            "refined outer={} inner={} escalations={}",
            refined.outer_iterations, refined.inner_iterations, refined.escalations
        )
    });
    jt.instant(SpanKind::CacheLookup, || {
        format!(
            "outcome={} rung=base",
            ladder.base_outcome.unwrap_or(CacheOutcomeKind::Hit).label()
        )
    });
    if ladder.encode_s > 0.0 {
        jt.span_backdated(SpanKind::Encode, ladder.encode_s, || {
            "rung-encodes".to_string()
        });
    }
    if jt.enabled() {
        for pass in &refined.passes {
            jt.instant(SpanKind::RefinementPass, || {
                format!(
                    "level={} inner_iterations={}",
                    ladder.level_name(pass.level),
                    pass.inner_iterations
                )
            });
        }
    }

    let pass_costs: Vec<RefinedPassCost> = refined
        .passes
        .iter()
        .map(|pass| {
            if pass.level < ladder.formats.len() {
                let format = ladder.formats[pass.level];
                RefinedPassCost::Quantized {
                    key: CacheKey::whole(ladder.fingerprint, format),
                    format,
                    num_blocks: ladder.num_blocks(pass.level),
                    iterations: pass.inner_iterations as u64,
                }
            } else {
                RefinedPassCost::HostFp64 {
                    iterations: pass.inner_iterations as u64,
                }
            }
        })
        .collect();
    let simulated = accelerator.execute_refined(
        &pass_costs,
        refined.fp64_spmvs as u64,
        csr.nnz() as u64,
        csr.nrows() as u64,
        job.solver,
    );

    let telemetry = RefinementTelemetry {
        outer_iterations: refined.outer_iterations,
        inner_iterations: refined.inner_iterations,
        escalations: refined.escalations,
        final_level: ladder.level_name(refined.final_level),
        fp64_spmvs: refined.fp64_spmvs,
        final_relative_residual: refined.final_relative_residual,
        stalled: refined.stop == refloat_solvers::RefinementStop::Stalled,
    };
    let sequence = seq.map(|_| SequenceTelemetry {
        warm_start_used: refined.warm_path.used(),
        initial_residual: refined.initial_residual,
        incremental: ladder.incremental,
        blocks_reencoded: ladder.blocks_reencoded,
        blocks_reused: ladder.blocks_reused,
        decision_cache_hit: false,
    });
    let encode_s = ladder.encode_s;
    let cache = ladder.base_outcome.unwrap_or(CacheOutcomeKind::Hit);
    *programmed = ladder
        .into_programmed()
        .map(|(key, op)| ProgrammedOp::Whole(key, op));
    RefinedOutcome {
        result: refined.into_solve_result(),
        simulated,
        encode_s,
        solve_s,
        cache,
        telemetry,
        sequence,
    }
}

/// What the plain (non-refined) execution paths report back to `execute_job`.
struct PlainOutcome {
    results: Vec<SolveResult>,
    simulated: SimulatedRun,
    encode_s: f64,
    solve_s: f64,
    cache: CacheOutcomeKind,
    /// Chips the job actually spanned (the partitioner may return fewer shards than
    /// requested for small matrices).
    shards: usize,
    /// Sequence-step details when the job carried a [`SequenceSpec`]; the
    /// decision-reuse flag is filled in by `execute_job` (the auto-format block runs
    /// before the plain paths).
    sequence: Option<SequenceTelemetry>,
}

/// Runs one unsharded job: resolve the whole-matrix encoding through the cache, then
/// solve every right-hand side of the batch against the same programmed operator.
fn run_plain(
    job: &SolveJob,
    rhss: &[&[f64]],
    cache: &EncodedMatrixCache,
    accelerator: &mut SimulatedAccelerator,
    programmed: &mut Option<ProgrammedOp>,
    jt: &mut JobTrace<'_>,
    clock: &dyn Clock,
) -> PlainOutcome {
    let key = job.cache_key();
    let seq = job.sequence.as_ref();
    let predecessor = seq.and_then(|s| s.predecessor.as_ref());
    // Filled by the encode closure when the encoding came from an incremental
    // re-encode against the predecessor's cached encoding (sequence steps only).
    let mut inc_stats: Option<IncrementalStats> = None;
    let lookup_anchor = jt.now_s();
    let (encoded, cache_outcome) = {
        let inc_stats = &mut inc_stats;
        // The closure runs outside the cache lock, so the nested peek cannot
        // deadlock.  A hit on `key` itself still wins outright — the closure never
        // runs and the step pays nothing.
        cache.get_or_encode(key, clock, || {
            if let Some(pred) = predecessor {
                let pred_key = CacheKey::whole(pred.fingerprint, job.format);
                if let Some(prev) = cache.peek(&pred_key) {
                    let inc = reencode_incremental(&prev, &pred.csr, job.matrix.csr());
                    *inc_stats = Some(inc.stats);
                    return inc.matrix;
                }
            }
            ReFloatMatrix::from_csr(job.matrix.csr(), job.format)
        })
    };
    let encode_s = match cache_outcome {
        CacheOutcome::Miss { encode_seconds } => encode_seconds,
        CacheOutcome::Hit | CacheOutcome::Coalesced => 0.0,
    };
    jt.span(SpanKind::CacheLookup, lookup_anchor, || {
        format!("outcome={}", CacheOutcomeKind::from(cache_outcome).label())
    });
    if encode_s > 0.0 {
        jt.span_backdated(SpanKind::Encode, encode_s, || {
            format!("blocks={}", encoded.num_blocks())
        });
    }

    // The worker needs a mutable operator (applying it mutates the converter
    // scratch), while the cache entry is shared and immutable.  Reuse the
    // worker's programmed operator when the key matches — the encode is a pure
    // function of the key, so the content is the same — and otherwise clone the
    // cached encoding (memcpy cost, not re-encode cost).  Either way the
    // numerics are bit-identical to the serial path: same `ReFloatMatrix`, same
    // block order.
    let mut operator = match programmed.take() {
        Some(ProgrammedOp::Whole(held_key, op)) if held_key == key => op,
        _ => (*encoded).clone(),
    };
    let solve_anchor = jt.now_s();
    let solve_started_s = clock.now_s();
    // A sequence step warm-starts its primary right-hand side from the previous
    // solution.  The guess residual is measured on the host's fp64 matrix
    // (solve_warm_split): through the quantized operator a good guess drowns in
    // the format's noise floor, while the fp64 residual stays small and smooth so
    // the correction solve genuinely starts decades ahead.  The guard falls back
    // to the plain zero-start solve (bit for bit) when the guess does not help.
    // Jobs without a sequence take the exact pre-sequence path.
    let guess = seq.and_then(|s| s.initial_guess.as_deref());
    let (results, warm_used, initial_residual) = match guess {
        Some(x0) => {
            let warm = solve_warm_split(
                job.solver,
                &mut operator,
                &mut job.matrix.csr(),
                rhss[0],
                Some(x0),
                &job.solver_config,
            );
            let mut results = vec![warm.result];
            if rhss.len() > 1 {
                results.extend(job.solver.solve_batch(
                    &mut operator,
                    &rhss[1..],
                    &job.solver_config,
                ));
            }
            (results, warm.path.used(), warm.initial_residual)
        }
        None => (
            job.solver
                .solve_batch(&mut operator, rhss, &job.solver_config),
            false,
            None,
        ),
    };
    let solve_s = (clock.now_s() - solve_started_s).max(0.0);
    let iterations: Vec<u64> = results.iter().map(|r| r.iterations as u64).collect();
    jt.span(SpanKind::Execute, solve_anchor, || {
        format!("rhs={} iterations={:?}", rhss.len(), iterations)
    });
    let mut simulated = match (predecessor, inc_stats.as_ref()) {
        (Some(pred), Some(stats)) => accelerator.execute_batch_delta(
            key,
            CacheKey::whole(pred.fingerprint, job.format),
            stats.reprogram_fraction(),
            stats.blocks_reencoded() as u64,
            &job.format,
            operator.num_blocks() as u64,
            &iterations,
            job.solver,
        ),
        _ => accelerator.execute_batch(
            key,
            &job.format,
            operator.num_blocks() as u64,
            &iterations,
            job.solver,
        ),
    };
    if initial_residual.is_some() {
        // The residual-guard SpMV ran on the host fp64 matrix, not the chip.
        let csr = job.matrix.csr();
        let guard_s = accelerator.host_spmv_time_s(csr.nnz() as u64, csr.nrows() as u64);
        simulated.host_fp64_s += guard_s;
        simulated.total_s += guard_s;
    }
    let sequence = seq.map(|_| SequenceTelemetry {
        warm_start_used: warm_used,
        initial_residual,
        incremental: inc_stats.is_some(),
        blocks_reencoded: inc_stats.map_or(0, |s| s.blocks_reencoded() as u64),
        blocks_reused: inc_stats.map_or(0, |s| s.blocks_reused as u64),
        decision_cache_hit: false,
    });
    *programmed = Some(ProgrammedOp::Whole(key, operator));
    PlainOutcome {
        results,
        simulated,
        encode_s,
        solve_s,
        cache: cache_outcome.into(),
        shards: 1,
        sequence,
    }
}

/// What the fault-injected plain path reports on top of its [`PlainOutcome`].
struct FaultOutcome {
    /// ABFT checksum failures observed (probes and the committed solve).
    detections: u64,
    /// Re-encode retries paid after a detected corruption.
    retries: u64,
    /// The retry budget ran out with ABFT still detecting: the attached result is
    /// best-effort and the ticket must resolve as `Degraded`.
    degraded: bool,
}

/// Runs one unsharded job on faulty hardware: the clean encoding still comes from
/// the shared cache, but execution goes through a [`FaultyReFloatOperator`] over
/// the worker chip's persistent fault state (spare remapping, residual corruption,
/// drift, optional ABFT).
///
/// With ABFT on, each attempt starts with a one-SpMV *probe* against the first
/// RHS: deterministic corruption trips the checksum immediately, so a failing
/// attempt costs one SpMV — not a full solve — before the re-encode retry moves
/// the encoding onto a fresh crossbar range (stuck cells never heal in place, so
/// retrying the same crossbars could never succeed).  When the retry budget runs
/// out, the solve runs anyway for a best-effort answer and the job degrades.
#[allow(clippy::too_many_arguments)]
fn run_plain_faulty(
    job: &SolveJob,
    rhss: &[&[f64]],
    policy: &FaultPolicy,
    health: &HealthTracker,
    cache: &EncodedMatrixCache,
    accelerator: &mut SimulatedAccelerator,
    jt: &mut JobTrace<'_>,
    clock: &dyn Clock,
) -> (PlainOutcome, FaultOutcome) {
    let key = job.cache_key();
    let lookup_anchor = jt.now_s();
    let (encoded, cache_outcome) = cache.get_or_encode(key, clock, || {
        ReFloatMatrix::from_csr(job.matrix.csr(), job.format)
    });
    let encode_s = match cache_outcome {
        CacheOutcome::Miss { encode_seconds } => encode_seconds,
        CacheOutcome::Hit | CacheOutcome::Coalesced => 0.0,
    };
    jt.span(SpanKind::CacheLookup, lookup_anchor, || {
        format!("outcome={}", CacheOutcomeKind::from(cache_outcome).label())
    });
    if encode_s > 0.0 {
        jt.span_backdated(SpanKind::Encode, encode_s, || {
            format!("blocks={}", encoded.num_blocks())
        });
    }

    let worker = accelerator.worker_id();
    let num_blocks = encoded.num_blocks();
    let abft_threshold = policy.abft.then_some(policy.abft_threshold);
    let mut fault = FaultOutcome {
        detections: 0,
        retries: 0,
        degraded: false,
    };
    let mut simulated = SimulatedRun::zero();
    let solve_anchor = jt.now_s();
    let solve_started_s = clock.now_s();
    let mut attempt: u32 = 0;
    let results = loop {
        let state = accelerator.fault_state();
        // refloat-analysis: allow(panic-in-service-path) — the worker attached a
        // fault model to its accelerator whenever a policy is configured; absence
        // here is an in-crate construction bug.
        let state = state.expect("fault policy implies fault state");
        // Each attempt programs block i onto crossbar i + attempt·blocks: a fresh
        // draw of the same persistent fault map (defects are monotone per
        // crossbar, so in-place retries could never clear them).
        let mut operator = FaultyReFloatOperator::remapped(
            (*encoded).clone(),
            state,
            policy.spares(),
            abft_threshold,
            attempt as usize * num_blocks,
        );
        if abft_threshold.is_some() {
            let mut probe = vec![0.0; LinearOperator::nrows(&operator)];
            operator.apply(rhss[0], &mut probe);
            if operator.detections() > 0 {
                fault.detections += operator.detections();
                health.record_detections(worker, operator.detections());
                jt.instant(SpanKind::FaultDetect, || {
                    format!("attempt={attempt} worker={worker}")
                });
                // The probe still cost one SpMV's worth of chip time.
                simulated.absorb(&accelerator.execute_batch(
                    key,
                    &job.format,
                    num_blocks as u64,
                    &[1],
                    job.solver,
                ));
                if attempt < policy.max_retries {
                    fault.retries += 1;
                    health.record_re_encode(worker);
                    let re_encode_anchor = jt.now_s();
                    // Wear the chip: the next execution re-programs (and ages) it.
                    accelerator.force_remap();
                    jt.span(SpanKind::ReEncode, re_encode_anchor, || {
                        format!("attempt={} blocks={num_blocks}", attempt + 1)
                    });
                    attempt += 1;
                    continue;
                }
                // Retry budget exhausted: commit the solve anyway so the waiter
                // gets a best-effort answer inside its typed Degraded outcome.
                fault.degraded = true;
            }
        }
        let counted = operator.detections();
        let results = job
            .solver
            .solve_batch(&mut operator, rhss, &job.solver_config);
        // Mid-solve detections (corruption is input-dependent, so a clean probe
        // does not guarantee a clean iteration history) are recorded but not
        // retried — the solve already committed.
        let late = operator.detections() - counted;
        if late > 0 {
            fault.detections += late;
            health.record_detections(worker, late);
        }
        break results;
    };
    let solve_s = (clock.now_s() - solve_started_s).max(0.0);
    let iterations: Vec<u64> = results.iter().map(|r| r.iterations as u64).collect();
    jt.span(SpanKind::Execute, solve_anchor, || {
        format!(
            "rhs={} iterations={:?} detections={} retries={}",
            rhss.len(),
            iterations,
            fault.detections,
            fault.retries
        )
    });
    simulated.absorb(&accelerator.execute_batch(
        key,
        &job.format,
        num_blocks as u64,
        &iterations,
        job.solver,
    ));
    (
        PlainOutcome {
            results,
            simulated,
            encode_s,
            solve_s,
            cache: cache_outcome.into(),
            shards: 1,
            sequence: None,
        },
        fault,
    )
}

/// Runs one sharded job: resolve each block-row shard's encoding through the cache
/// (keyed by `(fingerprint, shard, format)`), assemble the multi-chip operator, solve
/// every right-hand side, and charge the pool (makespan + inter-chip gather).
fn run_sharded(
    job: &SolveJob,
    rhss: &[&[f64]],
    cache: &EncodedMatrixCache,
    accelerator: &mut SimulatedAccelerator,
    programmed: &mut Option<ProgrammedOp>,
    jt: &mut JobTrace<'_>,
    clock: &dyn Clock,
) -> PlainOutcome {
    let csr = job.matrix.csr();
    let parts = block_row_shards(csr, job.format.b, job.shards)
        // refloat-analysis: allow(panic-in-service-path) — `b` comes from a
        // ReFloatConfig the plan validator already accepted; failure here is an
        // in-crate construction bug the catch_unwind containment converts to Failed.
        .expect("valid blocking exponent from a validated ReFloatConfig");
    let count = parts.len() as u32;
    let mut keys = Vec::with_capacity(parts.len());
    let mut cached = Vec::with_capacity(parts.len());
    let mut encode_s = 0.0;
    let mut any_miss = false;
    let mut any_coalesced = false;
    let lookup_anchor = jt.now_s();
    for part in &parts {
        let key = CacheKey::sharded(
            job.matrix.fingerprint(),
            ShardId::of(part.index as u32, count),
            job.format,
        );
        // The shard CSR is only materialized on a cache miss; hits skip both the row
        // extraction and the encode.
        let (encoded, outcome) = cache.get_or_encode(key, clock, || {
            ReFloatMatrix::from_csr(&extract_row_range(csr, part.rows.clone()), job.format)
        });
        match outcome {
            CacheOutcome::Miss { encode_seconds } => {
                encode_s += encode_seconds;
                any_miss = true;
            }
            CacheOutcome::Coalesced => any_coalesced = true,
            CacheOutcome::Hit => {}
        }
        keys.push(key);
        cached.push(encoded);
    }
    jt.span(SpanKind::CacheLookup, lookup_anchor, || {
        format!(
            "shards={count} outcome={}",
            if any_miss {
                "miss"
            } else if any_coalesced {
                "coalesced"
            } else {
                "hit"
            }
        )
    });
    if encode_s > 0.0 {
        jt.span_backdated(SpanKind::Encode, encode_s, || format!("shards={count}"));
    }
    // Adopt the worker's held multi-chip operator when it is exactly this shard set
    // (the cache lookups above still record the hits); assemble from clones of the
    // cached encodings otherwise.
    let mut operator = match programmed.take() {
        Some(ProgrammedOp::Sharded(held_keys, op)) if held_keys == keys => op,
        _ => ShardedReFloatMatrix::from_parts(
            csr.nrows(),
            csr.ncols(),
            parts
                .iter()
                .zip(cached)
                .map(|(part, encoded)| OperatorShard {
                    rows: part.rows.clone(),
                    op: (*encoded).clone(),
                })
                .collect(),
        ),
    };

    let solve_anchor = jt.now_s();
    let solve_started_s = clock.now_s();
    let results = job
        .solver
        .solve_batch(&mut operator, rhss, &job.solver_config);
    let solve_s = (clock.now_s() - solve_started_s).max(0.0);
    let iterations: Vec<u64> = results.iter().map(|r| r.iterations as u64).collect();
    jt.span(SpanKind::Execute, solve_anchor, || {
        format!("rhs={} iterations={:?}", rhss.len(), iterations)
    });
    let shard_blocks = operator.shard_blocks();
    let shard_rows = operator.shard_rows();
    if jt.enabled() {
        for (index, (blocks, rows)) in shard_blocks.iter().zip(shard_rows.iter()).enumerate() {
            jt.instant(SpanKind::ShardExecute, || {
                format!("shard={index} blocks={blocks} rows={rows}")
            });
        }
    }
    let simulated = accelerator.execute_sharded(
        &keys,
        &job.format,
        &shard_blocks,
        &shard_rows,
        &iterations,
        job.solver,
    );
    let shards = keys.len();
    *programmed = Some(ProgrammedOp::Sharded(keys, operator));
    PlainOutcome {
        results,
        simulated,
        encode_s,
        solve_s,
        cache: if any_miss {
            CacheOutcomeKind::Miss
        } else if any_coalesced {
            CacheOutcomeKind::Coalesced
        } else {
            CacheOutcomeKind::Hit
        },
        shards,
        sequence: None,
    }
}

/// Executes one job end to end.  The second return value reports whether the job
/// *degraded*: ABFT kept detecting corruption after the fault policy's retry
/// budget, so the outcome is best-effort and the caller must resolve the ticket
/// as `Degraded` instead of `Completed`.
#[allow(clippy::too_many_arguments)]
fn execute_job(
    queued: QueuedJob,
    cache: &EncodedMatrixCache,
    decisions: &FormatDecisionCache,
    chip_crossbars: Option<u64>,
    accelerator: &mut SimulatedAccelerator,
    programmed: &mut Option<ProgrammedOp>,
    fault: Option<&FaultPolicy>,
    health: &HealthTracker,
    trace: Option<&TraceSink>,
    clock: &dyn Clock,
    trace_seq_base: u32,
) -> (JobOutcome, bool) {
    let QueuedJob {
        id,
        mut job,
        priority,
        submitted_at_s,
    } = queued;
    let queue_wait_s = (clock.now_s() - submitted_at_s).max(0.0);
    let mut jt = JobTrace::new(trace, id, accelerator.worker_id(), trace_seq_base);
    jt.span_backdated(SpanKind::QueueWait, queue_wait_s, || {
        format!("priority={}", priority.label())
    });
    jt.instant(SpanKind::Dequeue, || {
        format!("tenant={} matrix={}", job.tenant, job.matrix.name())
    });

    // Resolve an auto-format job's actual format before anything touches the encode
    // cache: the decision is memoized under (fingerprint, b, tolerance, chip), so
    // repeat tenants skip the analysis entirely.
    let mut autotune_tele: Option<AutotuneTelemetry> = None;
    let mut seq_decision_hit = false;
    if let Some(spec) = job.auto_format.clone() {
        // A sharded job spreads its clusters over `shards` chips, so the streaming
        // rounds the cost model charges must be computed against the pooled capacity
        // (the makespan chip holds ~1/shards of the blocks).
        let chip = chip_crossbars
            .unwrap_or(autotune::TABLE_IV_CROSSBARS)
            .saturating_mul(job.shards.max(1) as u64);
        let key = DecisionKey::new(
            job.matrix.fingerprint(),
            job.format.b,
            spec.tolerance,
            chip,
            job.solver,
        );
        // A sequence step may inherit its predecessor's decision: consecutive
        // matrices differ by a small perturbation, so the analysis verdict rarely
        // changes — and the true-residual epilogue below re-verifies the chosen
        // format against *this* matrix, falling back to refinement if the reused
        // decision no longer holds.  The inherited decision is published under this
        // step's key so the next step can chain off it.
        let predecessor_decision = job
            .sequence
            .as_ref()
            .and_then(|s| s.predecessor.as_ref())
            .and_then(|p| {
                decisions.peek(&DecisionKey::new(
                    p.fingerprint,
                    job.format.b,
                    spec.tolerance,
                    chip,
                    job.solver,
                ))
            });
        let analysis_anchor = jt.now_s();
        let (decision, outcome) =
            decisions.get_or_analyse(key, clock, || match predecessor_decision {
                Some(reused) => {
                    seq_decision_hit = true;
                    reused
                }
                None => autotune::plan_format(
                    job.matrix.csr(),
                    &AutotuneConfig::new(spec.tolerance, job.format.b)
                        .with_chip_crossbars(chip)
                        .with_solver(job.solver),
                )
                .decision(),
            });
        let analysis_s = match outcome {
            DecisionOutcome::Miss { analysis_seconds } => analysis_seconds,
            DecisionOutcome::Hit | DecisionOutcome::Coalesced => 0.0,
        };
        jt.span(SpanKind::AutotuneAnalysis, analysis_anchor, || {
            format!(
                "cached={} format={}",
                outcome.skipped_analysis(),
                decision.format
            )
        });
        job.format = decision.format;
        // Re-couple the solver criterion to the auto-format tolerance: a
        // with_solver_config applied after with_auto_format may have overwritten it,
        // and a plain attempt that stops short of the tolerance would force a
        // needless refinement fallback.
        job.solver_config.tolerance = spec.tolerance;
        job.solver_config.relative = true;
        // Cap the plain attempt near the predicted iteration count: if the chosen
        // format is going to stall anyway, burn bounded work before the refinement
        // fallback engages.
        let cap = decision
            .predicted_iterations
            .saturating_mul(4)
            .saturating_add(100)
            .min(usize::MAX as u64) as usize;
        job.solver_config.max_iterations = job.solver_config.max_iterations.min(cap);
        autotune_tele = Some(AutotuneTelemetry {
            chosen_format: decision.format,
            tolerance: spec.tolerance,
            decision_cached: outcome.skipped_analysis(),
            analysis_s,
            kappa: decision.kappa,
            degraded_confidence: decision.degraded_confidence,
            predicted_convergent: decision.predicted_convergent,
            predicted_iterations: decision.predicted_iterations,
            predicted_cycles_per_spmv: decision.predicted_cycles_per_spmv,
            achieved_iterations: 0,
            achieved_relative_residual: f64::NAN,
            fell_back: false,
        });
    }
    let job = job;

    let ones;
    let rhs: &[f64] = match &job.rhs {
        Some(b) => b,
        None => {
            ones = vec![1.0; job.matrix.csr().nrows()];
            &ones
        }
    };
    let rhss: Vec<&[f64]> = std::iter::once(rhs)
        .chain(job.extra_rhs.iter().map(|b| b.as_slice()))
        .collect();

    let mut faults_detected: u64 = 0;
    let mut fault_retries: u64 = 0;
    let mut fault_degraded = false;
    let (
        mut result,
        extra_results,
        mut simulated,
        mut encode_s,
        mut solve_s,
        cache_outcome_kind,
        mut refinement,
        shards,
        sequence_tele,
    ) = if let Some(spec) = job.refinement.clone() {
        // SolvePlanBuilder::build rejects these combinations with a typed PlanError
        // before submission; this backstop only guards in-crate construction bugs.
        debug_assert!(
            job.extra_rhs.is_empty() && job.shards == 1,
            "refined jobs are single-RHS and single-chip; the plan validator must \
             have rejected this"
        );
        let refined = run_refined(
            &job,
            &spec,
            rhs,
            cache,
            accelerator,
            programmed,
            &mut jt,
            clock,
        );
        (
            refined.result,
            Vec::new(),
            refined.simulated,
            refined.encode_s,
            refined.solve_s,
            refined.cache,
            Some(refined.telemetry),
            1,
            refined.sequence,
        )
    } else {
        // Fault injection covers the plain unsharded path only: sharded and
        // auto-format jobs always execute on clean operators (the shared cache
        // never stores a faulty encoding either way).
        let plain = if job.shards > 1 {
            run_sharded(&job, &rhss, cache, accelerator, programmed, &mut jt, clock)
        } else if let Some(policy) = fault.filter(|_| job.auto_format.is_none()) {
            let (plain, fault_outcome) = run_plain_faulty(
                &job,
                &rhss,
                policy,
                health,
                cache,
                accelerator,
                &mut jt,
                clock,
            );
            faults_detected = fault_outcome.detections;
            fault_retries = fault_outcome.retries;
            fault_degraded = fault_outcome.degraded;
            // The chip holds a faulty operator now; the clean programmed-operator
            // mirror no longer matches it, and the accelerator's own programmed
            // key must drop too — every faulty job writes a fresh (re-sampled)
            // encoding into the crossbars, so the next one re-programs and ages
            // the chip rather than riding a phantom clean residency.
            *programmed = None;
            accelerator.force_remap();
            plain
        } else {
            run_plain(&job, &rhss, cache, accelerator, programmed, &mut jt, clock)
        };
        let mut results = plain.results.into_iter();
        // refloat-analysis: allow(panic-in-service-path) — solve_batch returns one
        // result per RHS by contract; an empty batch cannot pass the plan validator.
        let result = results.next().expect("one result per RHS");
        (
            result,
            results.collect(),
            plain.simulated,
            plain.encode_s,
            plain.solve_s,
            plain.cache,
            None,
            plain.shards,
            plain.sequence,
        )
    };

    // Even a step that reused nothing (first step of a chain, sharded, or refined)
    // still counts toward the sequence metrics when the job carried a SequenceSpec.
    let sequence = match sequence_tele {
        Some(mut seq) => {
            seq.decision_cache_hit = seq_decision_hit;
            Some(seq)
        }
        None => job.sequence.as_ref().map(|_| SequenceTelemetry {
            warm_start_used: false,
            initial_residual: None,
            incremental: false,
            blocks_reencoded: 0,
            blocks_reused: 0,
            decision_cache_hit: seq_decision_hit,
        }),
    };

    // Auto-format epilogue: measure the *true* residual (one exact fp64 SpMV, charged
    // to the host), and when the chosen format stalled above the tolerance, fall back
    // to the mixed-precision refinement ladder on the same chip (unsharded).
    let mut converged_override: Option<bool> = None;
    if let (Some(tele), Some(spec)) = (autotune_tele.as_mut(), job.auto_format.as_ref()) {
        let csr = job.matrix.csr();
        tele.achieved_iterations = result.iterations as u64;
        let mut check = SimulatedRun {
            host_fp64_s: accelerator.host_spmv_time_s(csr.nnz() as u64, csr.nrows() as u64),
            ..SimulatedRun::zero()
        };
        check.total_s = check.host_fp64_s;
        simulated.absorb(&check);
        let check_anchor = jt.now_s();
        let true_rel = csr.relative_residual(rhs, &result.x);
        jt.span(SpanKind::HostFp64, check_anchor, || {
            format!("true-residual-check simulated_s={:e}", check.host_fp64_s)
        });
        if true_rel <= spec.tolerance {
            tele.achieved_relative_residual = true_rel;
            converged_override = Some(true);
        } else {
            let mut fallback_job = job.clone();
            fallback_job.shards = 1;
            let refined = run_refined(
                &fallback_job,
                &spec.fallback,
                rhs,
                cache,
                accelerator,
                programmed,
                &mut jt,
                clock,
            );
            tele.fell_back = true;
            tele.achieved_relative_residual = refined.telemetry.final_relative_residual;
            converged_override = Some(refined.result.converged());
            result = refined.result;
            simulated.absorb(&refined.simulated);
            encode_s += refined.encode_s;
            solve_s += refined.solve_s;
            refinement = Some(refined.telemetry);
        }
    }

    // The job's final simulated cost attribution, one instant per nonzero phase.
    if jt.enabled() {
        for event in simulated.cycle_events() {
            jt.instant(SpanKind::ChipPhase, || {
                format!(
                    "phase={} cycles={} simulated_s={:e}",
                    event.phase.label(),
                    event.cycles,
                    event.seconds
                )
            });
        }
    }
    jt.flush();

    let telemetry = JobTelemetry {
        job_id: id,
        tenant: job.tenant.to_string(),
        matrix: job.matrix.name().to_string(),
        worker: accelerator.worker_id(),
        // The executor is node-agnostic; worker_loop stamps the owning node's id.
        node: 0,
        solver: job.solver,
        priority,
        shards,
        rhs_count: job.rhs_count(),
        cache: cache_outcome_kind,
        queue_wait_s,
        encode_s,
        solve_s,
        latency_s: (clock.now_s() - submitted_at_s).max(0.0),
        iterations: result.iterations,
        converged: converged_override
            .unwrap_or_else(|| result.converged() && extra_results.iter().all(|r| r.converged())),
        simulated,
        refinement,
        autotune: autotune_tele,
        faults_detected,
        fault_retries,
        sequence,
    };
    (
        JobOutcome {
            job_id: id,
            result,
            extra_results,
            telemetry,
        },
        fault_degraded,
    )
}
