//! The worker loop: drain the queue, resolve the encoded matrix through the cache,
//! solve, and account the simulated-chip cost.

use std::sync::mpsc::Sender;
use std::time::Instant;

use refloat_core::ReFloatMatrix;
use refloat_solvers::{bicgstab, cg};
use reram_sim::SolverKind;

use crate::accel::SimulatedAccelerator;
use crate::cache::{CacheOutcome, EncodedMatrixCache};
use crate::job::{JobOutcome, QueuedJob};
use crate::queue::BoundedQueue;
use crate::telemetry::JobTelemetry;

/// Runs until the queue closes and drains; one simulated accelerator per worker.
pub(crate) fn worker_loop(
    worker_id: usize,
    queue: &BoundedQueue<QueuedJob>,
    cache: &EncodedMatrixCache,
    results: Sender<JobOutcome>,
) {
    let mut accelerator = SimulatedAccelerator::new(worker_id);
    // The worker's "programmed" operator, mirroring the simulated chip state: reused
    // across consecutive jobs on the same (matrix, format) so hot traffic skips even
    // the O(nnz) clone of the cached encoding.
    let mut programmed: Option<(crate::cache::CacheKey, ReFloatMatrix)> = None;
    while let Some(queued) = queue.pop() {
        let outcome = execute_job(queued, cache, &mut accelerator, &mut programmed);
        if results.send(outcome).is_err() {
            // The collector went away; nothing left to do.
            break;
        }
    }
}

fn execute_job(
    queued: QueuedJob,
    cache: &EncodedMatrixCache,
    accelerator: &mut SimulatedAccelerator,
    programmed: &mut Option<(crate::cache::CacheKey, ReFloatMatrix)>,
) -> JobOutcome {
    let QueuedJob {
        id,
        job,
        submitted_at,
    } = queued;
    let dequeued_at = Instant::now();
    let queue_wait_s = dequeued_at.duration_since(submitted_at).as_secs_f64();

    let key = job.cache_key();
    let (encoded, cache_outcome) = cache.get_or_encode(key, || {
        ReFloatMatrix::from_csr(job.matrix.csr(), job.format)
    });
    let encode_s = match cache_outcome {
        CacheOutcome::Miss { encode_seconds } => encode_seconds,
        CacheOutcome::Hit | CacheOutcome::Coalesced => 0.0,
    };

    // The worker needs a mutable operator (applying it mutates the converter scratch),
    // while the cache entry is shared and immutable.  Reuse the worker's programmed
    // operator when the key matches — the encode is a pure function of the key, so the
    // content is the same — and otherwise clone the cached encoding (memcpy cost, not
    // re-encode cost).  Either way the numerics are bit-identical to the serial path:
    // same `ReFloatMatrix`, same block order.
    let mut operator = match programmed.take() {
        Some((held_key, op)) if held_key == key => op,
        _ => (*encoded).clone(),
    };
    let ones;
    let rhs: &[f64] = match &job.rhs {
        Some(b) => b,
        None => {
            ones = vec![1.0; job.matrix.csr().nrows()];
            &ones
        }
    };

    let solve_started = Instant::now();
    let result = match job.solver {
        SolverKind::Cg => cg(&mut operator, rhs, &job.solver_config),
        SolverKind::BiCgStab => bicgstab(&mut operator, rhs, &job.solver_config),
    };
    let solve_s = solve_started.elapsed().as_secs_f64();

    let simulated = accelerator.execute(
        key,
        &job.format,
        operator.num_blocks() as u64,
        result.iterations as u64,
        job.solver,
    );
    *programmed = Some((key, operator));

    let telemetry = JobTelemetry {
        job_id: id,
        tenant: job.tenant.to_string(),
        matrix: job.matrix.name().to_string(),
        worker: accelerator.worker_id(),
        solver: job.solver,
        cache: cache_outcome.into(),
        queue_wait_s,
        encode_s,
        solve_s,
        latency_s: submitted_at.elapsed().as_secs_f64(),
        iterations: result.iterations,
        converged: result.converged(),
        simulated,
    };
    JobOutcome {
        job_id: id,
        result,
        telemetry,
    }
}
