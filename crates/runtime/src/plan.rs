//! The validated solve-request API: [`SolvePlan`], its builder, and the typed
//! [`PlanError`] every invalid combination resolves to.
//!
//! The old `SolveJob::with_*` lattice was order-dependent and panicking: each
//! builder asserted against the options set *so far*, so the same invalid
//! combination either panicked on the submitting thread or slipped through to a
//! worker depending on call order.  [`SolvePlanBuilder`] records every selection
//! without judging it and validates the *whole* plan once, in
//! [`build`](SolvePlanBuilder::build) — returning **all** conflicting selections as
//! [`PlanViolation`]s instead of panicking on the first.

use std::sync::Arc;
use std::time::Duration;

use refloat_core::ReFloatConfig;
use refloat_solvers::SolverConfig;
use reram_sim::SolverKind;

use crate::job::{AutoFormatSpec, MatrixHandle, RefinementSpec, SolveJob};
use crate::sched::Priority;

/// One invalid selection (or combination of selections) in a plan under
/// construction.  [`SolvePlanBuilder::build`] reports every violation it finds,
/// not just the first.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanViolation {
    /// `sharding(0)` — a job spans at least one chip.
    ZeroShards,
    /// Both [`rhs`](SolvePlanBuilder::rhs) and
    /// [`rhs_batch`](SolvePlanBuilder::rhs_batch) were set; a plan has exactly one
    /// source of right-hand sides.
    RhsConflict,
    /// [`rhs_batch`](SolvePlanBuilder::rhs_batch) with an empty batch.
    EmptyRhsBatch,
    /// A right-hand side whose length does not match the matrix.
    RhsLengthMismatch {
        /// Index of the offending RHS within the batch (0 for a single RHS).
        index: usize,
        /// Matrix row count.
        expected: usize,
        /// Offending RHS length.
        got: usize,
    },
    /// Refinement and auto-format together: auto-format jobs arm their own
    /// refinement fallback.
    RefinementWithAutoFormat,
    /// A refined job spanning more than one chip: refined jobs are single-chip.
    RefinedJobSharded {
        /// Requested chip span.
        shards: usize,
    },
    /// A refined job with a multi-RHS batch: refined jobs are single-RHS.
    RefinedJobBatched {
        /// Requested RHS count.
        rhs_count: usize,
    },
    /// An auto-format job with a multi-RHS batch: the refinement fallback cannot
    /// run batched.
    AutoFormatBatched {
        /// Requested RHS count.
        rhs_count: usize,
    },
    /// An auto-format tolerance that is not positive and finite.
    InvalidTolerance {
        /// The offending tolerance.
        tolerance: f64,
    },
}

impl std::fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanViolation::ZeroShards => write!(f, "shards must be at least 1"),
            PlanViolation::RhsConflict => {
                write!(f, "rhs and rhs_batch are mutually exclusive")
            }
            PlanViolation::EmptyRhsBatch => write!(f, "rhs batch must be non-empty"),
            PlanViolation::RhsLengthMismatch {
                index,
                expected,
                got,
            } => write!(f, "rhs {index} has length {got}, matrix expects {expected}"),
            PlanViolation::RefinementWithAutoFormat => write!(
                f,
                "auto-format jobs arm their own refinement fallback; drop refinement or auto_format"
            ),
            PlanViolation::RefinedJobSharded { shards } => write!(
                f,
                "refined jobs are single-chip; drop refinement or the {shards}-chip sharding"
            ),
            PlanViolation::RefinedJobBatched { rhs_count } => write!(
                f,
                "refined jobs are single-RHS; split the {rhs_count}-RHS batch into separate plans"
            ),
            PlanViolation::AutoFormatBatched { rhs_count } => write!(
                f,
                "auto-format jobs are single-RHS (the refinement fallback cannot run batched); \
                 split the {rhs_count}-RHS batch into separate plans"
            ),
            PlanViolation::InvalidTolerance { tolerance } => write!(
                f,
                "auto-format tolerance must be positive and finite, got {tolerance}"
            ),
        }
    }
}

/// Everything wrong with a plan, reported at once by
/// [`SolvePlanBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    /// Every violation found, in a fixed check order.
    pub violations: Vec<PlanViolation>,
}

impl PlanError {
    /// Whether a specific violation was reported.
    pub fn contains(&self, violation: &PlanViolation) -> bool {
        self.violations.contains(violation)
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid solve plan ({} violation{}):",
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" }
        )?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PlanError {}

/// A validated, immutable solve request: matrix + right-hand side(s) + format +
/// solver + QoS class, ready for [`SolveClient::submit`](crate::SolveClient::submit)
/// or [`SolveRuntime::run_batch`](crate::SolveRuntime::run_batch).
///
/// Built exclusively through [`SolvePlan::new`] → [`SolvePlanBuilder::build`];
/// every invalid combination of selections is a typed [`PlanError`], never a
/// panic.
#[derive(Debug, Clone)]
pub struct SolvePlan {
    pub(crate) job: SolveJob,
    pub(crate) priority: Priority,
    pub(crate) deadline: Option<Duration>,
}

impl SolvePlan {
    /// Starts a plan for a CG solve with the harness defaults: all-ones right-hand
    /// side, relative `1e-8` tolerance, no residual trace, standard priority.
    ///
    /// Deliberately returns the builder (not `Self`): a `SolvePlan` only exists
    /// once [`SolvePlanBuilder::build`] has validated every selection.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(
        tenant: impl Into<String>,
        matrix: MatrixHandle,
        format: ReFloatConfig,
    ) -> SolvePlanBuilder {
        SolvePlanBuilder {
            tenant: tenant.into(),
            matrix,
            format,
            solver: SolverKind::Cg,
            solver_config: None,
            rhs: None,
            rhs_batch: None,
            shards: 1,
            refinement: None,
            auto_format: None,
            priority: Priority::Standard,
            deadline: None,
        }
    }

    /// Submitting tenant.
    pub fn tenant(&self) -> &str {
        &self.job.tenant
    }

    /// The matrix the plan solves against.
    pub fn matrix(&self) -> &MatrixHandle {
        &self.job.matrix
    }

    /// The ReFloat format (base rung for refined jobs; blocking source for
    /// auto-format jobs).
    pub fn format(&self) -> ReFloatConfig {
        self.job.format
    }

    /// Which Krylov solver the plan runs.
    pub fn solver(&self) -> SolverKind {
        self.job.solver
    }

    /// The solver stopping criterion.
    pub fn solver_config(&self) -> &SolverConfig {
        &self.job.solver_config
    }

    /// The explicit primary right-hand side (`None` = the all-ones vector).
    pub fn rhs(&self) -> Option<&Arc<Vec<f64>>> {
        self.job.rhs.as_ref()
    }

    /// Right-hand sides this plan solves (primary + extras).
    pub fn rhs_count(&self) -> usize {
        self.job.rhs_count()
    }

    /// Chips the plan spans (1 = unsharded).
    pub fn shards(&self) -> usize {
        self.job.shards
    }

    /// The QoS class the scheduler orders by.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The soft deadline (relative to submission), if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }
}

/// Order-independent builder for a [`SolvePlan`]; see [`SolvePlan::new`].
///
/// Setters never panic and never inspect each other — all validation happens at
/// once in [`build`](Self::build), which reports *every* conflicting selection.
#[derive(Debug, Clone)]
pub struct SolvePlanBuilder {
    tenant: String,
    matrix: MatrixHandle,
    format: ReFloatConfig,
    solver: SolverKind,
    solver_config: Option<SolverConfig>,
    rhs: Option<Arc<Vec<f64>>>,
    rhs_batch: Option<Vec<Arc<Vec<f64>>>>,
    shards: usize,
    refinement: Option<RefinementSpec>,
    auto_format: Option<AutoFormatSpec>,
    priority: Priority,
    deadline: Option<Duration>,
}

impl SolvePlanBuilder {
    /// Use BiCGSTAB (or switch back to CG).
    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Override the solver configuration.
    ///
    /// On an auto-format plan only the iteration cap and trace flag survive: the
    /// tolerance is re-coupled to the [`AutoFormatSpec`] target so the solve
    /// criterion and the auto-format contract can never drift apart.
    pub fn solver_config(mut self, config: SolverConfig) -> Self {
        self.solver_config = Some(config);
        self
    }

    /// Use an explicit right-hand side (mutually exclusive with
    /// [`rhs_batch`](Self::rhs_batch)).
    pub fn rhs(mut self, rhs: Arc<Vec<f64>>) -> Self {
        self.rhs = Some(rhs);
        self
    }

    /// Solve against a batch of right-hand sides sharing one chip programming
    /// (mutually exclusive with [`rhs`](Self::rhs)).
    pub fn rhs_batch(mut self, batch: Vec<Arc<Vec<f64>>>) -> Self {
        self.rhs_batch = Some(batch);
        self
    }

    /// Span the job across `shards` accelerator chips (block-row sharding).
    pub fn sharding(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Run the job in mixed-precision refinement mode.
    pub fn refinement(mut self, spec: RefinementSpec) -> Self {
        self.refinement = Some(spec);
        self
    }

    /// Auto-tune the format, targeting the given *true* relative residual.
    pub fn auto_format(self, tolerance: f64) -> Self {
        self.auto_format_spec(AutoFormatSpec::to_target(tolerance))
    }

    /// Auto-tune the format with an explicit [`AutoFormatSpec`] (custom fallback
    /// escalation).
    pub fn auto_format_spec(mut self, spec: AutoFormatSpec) -> Self {
        self.auto_format = Some(spec);
        self
    }

    /// Set the QoS class (default [`Priority::Standard`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set a soft deadline relative to submission: within one priority class the
    /// scheduler runs deadline jobs earliest-deadline-first ahead of
    /// deadline-free peers.  Soft means best-effort — a missed deadline is
    /// telemetry, not an error.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Validates every selection at once.  On success the plan is immutable and a
    /// worker can never reject it; on failure [`PlanError::violations`] lists
    /// **all** conflicting selections, in a fixed check order.
    pub fn build(self) -> Result<SolvePlan, PlanError> {
        let mut violations = Vec::new();
        let n = self.matrix.csr().nrows();

        if self.shards == 0 {
            violations.push(PlanViolation::ZeroShards);
        }
        if self.rhs.is_some() && self.rhs_batch.is_some() {
            violations.push(PlanViolation::RhsConflict);
        }
        if let Some(batch) = &self.rhs_batch {
            if batch.is_empty() {
                violations.push(PlanViolation::EmptyRhsBatch);
            }
            for (index, rhs) in batch.iter().enumerate() {
                if rhs.len() != n {
                    violations.push(PlanViolation::RhsLengthMismatch {
                        index,
                        expected: n,
                        got: rhs.len(),
                    });
                }
            }
        }
        if let Some(rhs) = &self.rhs {
            if rhs.len() != n {
                violations.push(PlanViolation::RhsLengthMismatch {
                    index: 0,
                    expected: n,
                    got: rhs.len(),
                });
            }
        }
        let rhs_count = self.rhs_batch.as_ref().map(Vec::len).unwrap_or(1);
        if self.refinement.is_some() && self.auto_format.is_some() {
            violations.push(PlanViolation::RefinementWithAutoFormat);
        }
        if self.refinement.is_some() && self.shards > 1 {
            violations.push(PlanViolation::RefinedJobSharded {
                shards: self.shards,
            });
        }
        if self.refinement.is_some() && rhs_count > 1 {
            violations.push(PlanViolation::RefinedJobBatched { rhs_count });
        }
        if self.auto_format.is_some() && rhs_count > 1 {
            violations.push(PlanViolation::AutoFormatBatched { rhs_count });
        }
        if let Some(spec) = &self.auto_format {
            if !(spec.tolerance > 0.0 && spec.tolerance.is_finite()) {
                violations.push(PlanViolation::InvalidTolerance {
                    tolerance: spec.tolerance,
                });
            }
        }
        if !violations.is_empty() {
            return Err(PlanError { violations });
        }

        let mut solver_config = self
            .solver_config
            .unwrap_or_else(|| SolverConfig::relative(1e-8).with_trace(false));
        if let Some(spec) = &self.auto_format {
            // Re-couple the solve criterion to the auto-format target (only the
            // iteration cap and trace flag of an explicit config survive).
            solver_config = SolverConfig::relative(spec.tolerance)
                .with_max_iterations(solver_config.max_iterations)
                .with_trace(false);
        }
        let (rhs, extra_rhs) = match self.rhs_batch {
            Some(batch) => {
                let mut batch = batch.into_iter();
                (batch.next(), batch.collect())
            }
            None => (self.rhs, Vec::new()),
        };
        Ok(SolvePlan {
            job: SolveJob {
                tenant: self.tenant.into(),
                matrix: self.matrix,
                rhs,
                extra_rhs,
                format: self.format,
                shards: self.shards,
                solver: self.solver,
                solver_config,
                refinement: self.refinement,
                auto_format: self.auto_format,
                sequence: None,
            },
            priority: self.priority,
            deadline: self.deadline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(n: usize) -> MatrixHandle {
        MatrixHandle::new(
            format!("p{n}"),
            refloat_matgen::generators::laplacian_2d(n, n, 0.1).to_csr(),
        )
    }

    fn fmt() -> ReFloatConfig {
        ReFloatConfig::new(3, 3, 8, 3, 8)
    }

    #[test]
    fn a_default_plan_builds() {
        let plan = SolvePlan::new("t", handle(4), fmt()).build().unwrap();
        assert_eq!(plan.tenant(), "t");
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.rhs_count(), 1);
        assert_eq!(plan.priority(), Priority::Standard);
        assert!(plan.deadline().is_none());
    }

    #[test]
    fn zero_shards_is_a_violation_not_a_panic() {
        let err = SolvePlan::new("t", handle(4), fmt())
            .sharding(0)
            .build()
            .unwrap_err();
        assert!(err.contains(&PlanViolation::ZeroShards));
    }

    #[test]
    fn refinement_conflicts_are_order_independent() {
        // Old API: with_refinement().with_sharding(2) panicked in with_sharding,
        // with_sharding(2).with_refinement() panicked in with_refinement — and a
        // direct struct literal slipped through to the worker.  The plan reports
        // the same violation for every order.
        let spec = RefinementSpec::to_target(1e-10);
        let a = SolvePlan::new("t", handle(4), fmt())
            .refinement(spec.clone())
            .sharding(2)
            .build()
            .unwrap_err();
        let b = SolvePlan::new("t", handle(4), fmt())
            .sharding(2)
            .refinement(spec)
            .build()
            .unwrap_err();
        assert_eq!(a, b);
        assert!(a.contains(&PlanViolation::RefinedJobSharded { shards: 2 }));
    }

    #[test]
    fn all_violations_are_reported_at_once() {
        let h = handle(4);
        let n = h.csr().nrows();
        let err = SolvePlan::new("t", h, fmt())
            .sharding(0)
            .rhs(Arc::new(vec![1.0; n]))
            .rhs_batch(vec![Arc::new(vec![1.0; 3]), Arc::new(vec![1.0; n])])
            .refinement(RefinementSpec::to_target(1e-10))
            .auto_format(-1.0)
            .build()
            .unwrap_err();
        assert!(err.contains(&PlanViolation::ZeroShards));
        assert!(err.contains(&PlanViolation::RhsConflict));
        assert!(err.contains(&PlanViolation::RhsLengthMismatch {
            index: 0,
            expected: n,
            got: 3
        }));
        assert!(err.contains(&PlanViolation::RefinementWithAutoFormat));
        assert!(err.contains(&PlanViolation::RefinedJobBatched { rhs_count: 2 }));
        assert!(err.contains(&PlanViolation::AutoFormatBatched { rhs_count: 2 }));
        assert!(err.contains(&PlanViolation::InvalidTolerance { tolerance: -1.0 }));
        assert!(err.violations.len() >= 7);
        let rendered = err.to_string();
        assert!(rendered.contains("violations"));
        assert!(rendered.contains("tolerance"));
    }

    #[test]
    fn empty_rhs_batch_and_bad_tolerances_are_violations() {
        let err = SolvePlan::new("t", handle(4), fmt())
            .rhs_batch(Vec::new())
            .build()
            .unwrap_err();
        assert_eq!(err.violations, vec![PlanViolation::EmptyRhsBatch]);
        for bad in [0.0, -1e-8, f64::NAN, f64::INFINITY] {
            let err = SolvePlan::new("t", handle(4), fmt())
                .auto_format(bad)
                .build()
                .unwrap_err();
            assert!(
                matches!(
                    err.violations.as_slice(),
                    [PlanViolation::InvalidTolerance { .. }]
                ),
                "tolerance {bad}: {err}"
            );
        }
    }

    #[test]
    fn valid_combinations_still_build() {
        let h = handle(6);
        let n = h.csr().nrows();
        // Sharded multi-RHS.
        let plan = SolvePlan::new("t", h.clone(), fmt())
            .rhs_batch(vec![Arc::new(vec![1.0; n]), Arc::new(vec![2.0; n])])
            .sharding(4)
            .build()
            .unwrap();
        assert_eq!(plan.rhs_count(), 2);
        assert_eq!(plan.shards(), 4);
        assert_eq!(plan.rhs().unwrap()[0], 1.0);
        // Auto-format composed with sharding, at a non-default priority.
        let plan = SolvePlan::new("t", h.clone(), fmt())
            .auto_format(1e-6)
            .sharding(2)
            .priority(Priority::Interactive)
            .deadline(Duration::from_millis(50))
            .build()
            .unwrap();
        assert_eq!(plan.priority(), Priority::Interactive);
        assert_eq!(plan.deadline(), Some(Duration::from_millis(50)));
        // The auto-format target re-couples the solver criterion.
        assert_eq!(plan.solver_config().tolerance, 1e-6);
        assert!(plan.solver_config().relative);
        // Refined single-chip single-RHS.
        let plan = SolvePlan::new("t", h, fmt())
            .refinement(RefinementSpec::to_target(1e-12))
            .build()
            .unwrap();
        assert!(plan.job.refinement.is_some());
    }

    #[test]
    fn solver_config_iteration_cap_survives_auto_format_in_any_order() {
        let h = handle(4);
        let before = SolvePlan::new("t", h.clone(), fmt())
            .solver_config(SolverConfig::relative(1e-3).with_max_iterations(123))
            .auto_format(1e-6)
            .build()
            .unwrap();
        let after = SolvePlan::new("t", h, fmt())
            .auto_format(1e-6)
            .solver_config(SolverConfig::relative(1e-3).with_max_iterations(123))
            .build()
            .unwrap();
        for plan in [&before, &after] {
            assert_eq!(plan.solver_config().max_iterations, 123);
            assert_eq!(plan.solver_config().tolerance, 1e-6);
        }
    }
}
