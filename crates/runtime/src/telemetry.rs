//! Per-job telemetry and batch-level aggregation.

use reram_sim::SolverKind;

use crate::accel::SimulatedRun;
use crate::cache::{CacheOutcome, CacheStats};

/// The cache outcome without the embedded timing (telemetry keeps timing separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcomeKind {
    /// Encoded matrix found in the cache.
    Hit,
    /// This job encoded the matrix.
    Miss,
    /// This job waited for a concurrent encode of the same key.
    Coalesced,
}

impl From<CacheOutcome> for CacheOutcomeKind {
    fn from(outcome: CacheOutcome) -> Self {
        match outcome {
            CacheOutcome::Hit => CacheOutcomeKind::Hit,
            CacheOutcome::Miss { .. } => CacheOutcomeKind::Miss,
            CacheOutcome::Coalesced => CacheOutcomeKind::Coalesced,
        }
    }
}

/// Everything measured about one job.
#[derive(Debug, Clone)]
pub struct JobTelemetry {
    /// Submission-order id.
    pub job_id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Matrix name (from the handle).
    pub matrix: String,
    /// Worker that executed the job.
    pub worker: usize,
    /// Solver kind.
    pub solver: SolverKind,
    /// How the encoded matrix was obtained.
    pub cache: CacheOutcomeKind,
    /// Seconds between submission and a worker dequeuing the job.
    pub queue_wait_s: f64,
    /// Seconds spent quantizing the matrix (0 unless `cache` is `Miss`).
    pub encode_s: f64,
    /// Seconds in the solver itself (functional simulation wall-clock).
    pub solve_s: f64,
    /// Seconds from submission to completion.
    pub latency_s: f64,
    /// Solver iterations executed.
    pub iterations: usize,
    /// Whether the solve met its residual criterion.
    pub converged: bool,
    /// The simulated-chip cost of the job.
    pub simulated: SimulatedRun,
}

/// Aggregated statistics for one batch.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Jobs completed.
    pub jobs: usize,
    /// Jobs that converged.
    pub converged: usize,
    /// Worker threads that served the batch.
    pub workers: usize,
    /// Batch wall-clock seconds (submission of the first job to completion of the
    /// last).
    pub wall_s: f64,
    /// Jobs per wall-clock second.
    pub throughput_jobs_per_s: f64,
    /// Median job latency (submit → done), seconds.
    pub latency_p50_s: f64,
    /// 99th-percentile job latency, seconds.
    pub latency_p99_s: f64,
    /// Mean job latency, seconds.
    pub latency_mean_s: f64,
    /// Worst job latency, seconds.
    pub latency_max_s: f64,
    /// Median queue wait, seconds.
    pub queue_wait_p50_s: f64,
    /// Cache counter increments during the batch.
    pub cache: CacheStats,
    /// Total seconds spent encoding matrices (paid by cache misses).
    pub encode_total_s: f64,
    /// Total seconds spent inside solvers.
    pub solve_total_s: f64,
    /// Total simulated accelerator cycles.
    pub simulated_cycles: u64,
    /// Total simulated accelerator seconds.
    pub simulated_total_s: f64,
    /// Chip re-programming events across the pool.
    pub remaps: u64,
    /// Jobs per worker (index = worker id).
    pub per_worker_jobs: Vec<u64>,
}

/// `q`-quantile (0 ≤ q ≤ 1) of an unsorted sample using the nearest-rank method.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl RuntimeReport {
    /// Aggregates a finished batch.
    pub fn aggregate(
        jobs: &[crate::job::JobOutcome],
        wall_s: f64,
        cache: CacheStats,
        workers: usize,
    ) -> Self {
        let latencies: Vec<f64> = jobs.iter().map(|j| j.telemetry.latency_s).collect();
        let queue_waits: Vec<f64> = jobs.iter().map(|j| j.telemetry.queue_wait_s).collect();
        let mut per_worker_jobs = vec![0u64; workers];
        for job in jobs {
            if let Some(slot) = per_worker_jobs.get_mut(job.telemetry.worker) {
                *slot += 1;
            }
        }
        RuntimeReport {
            jobs: jobs.len(),
            converged: jobs.iter().filter(|j| j.telemetry.converged).count(),
            workers,
            wall_s,
            throughput_jobs_per_s: if wall_s > 0.0 {
                jobs.len() as f64 / wall_s
            } else {
                0.0
            },
            latency_p50_s: percentile(&latencies, 0.50),
            latency_p99_s: percentile(&latencies, 0.99),
            latency_mean_s: if latencies.is_empty() {
                0.0
            } else {
                latencies.iter().sum::<f64>() / latencies.len() as f64
            },
            latency_max_s: latencies.iter().cloned().fold(0.0, f64::max),
            queue_wait_p50_s: percentile(&queue_waits, 0.50),
            cache,
            // `Sum<f64>` over an empty iterator yields -0.0, which renders as
            // "-0.000000"; fold from +0.0 instead.
            encode_total_s: jobs.iter().fold(0.0, |acc, j| acc + j.telemetry.encode_s),
            solve_total_s: jobs.iter().fold(0.0, |acc, j| acc + j.telemetry.solve_s),
            simulated_cycles: jobs.iter().map(|j| j.telemetry.simulated.cycles).sum(),
            simulated_total_s: jobs
                .iter()
                .fold(0.0, |acc, j| acc + j.telemetry.simulated.total_s),
            remaps: jobs
                .iter()
                .filter(|j| j.telemetry.simulated.remapped)
                .count() as u64,
            per_worker_jobs,
        }
    }

    /// The batch cache hit rate (hits + coalesced over lookups).
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// A human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "jobs            {} ({} converged) on {} workers\n",
            self.jobs, self.converged, self.workers
        ));
        out.push_str(&format!(
            "throughput      {:.1} jobs/s over {:.3} s wall\n",
            self.throughput_jobs_per_s, self.wall_s
        ));
        out.push_str(&format!(
            "latency         p50 {:.2} ms   p99 {:.2} ms   mean {:.2} ms   max {:.2} ms\n",
            self.latency_p50_s * 1e3,
            self.latency_p99_s * 1e3,
            self.latency_mean_s * 1e3,
            self.latency_max_s * 1e3,
        ));
        out.push_str(&format!(
            "queue wait      p50 {:.2} ms\n",
            self.queue_wait_p50_s * 1e3
        ));
        out.push_str(&format!(
            "encode cache    {:.1}% hit rate ({} hits, {} coalesced, {} misses, {} evictions), {:.3} s encoding\n",
            self.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.coalesced,
            self.cache.misses,
            self.cache.evictions,
            self.encode_total_s,
        ));
        out.push_str(&format!(
            "simulated chip  {:.3e} cycles, {:.6} s total, {} remaps\n",
            self.simulated_cycles as f64, self.simulated_total_s, self.remaps
        ));
        out.push_str(&format!("worker load     {:?}\n", self.per_worker_jobs));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 0.50), 50.0);
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }
}
