//! Per-job telemetry and batch-level aggregation.
//!
//! Aggregation is *backed by the metrics registry*: the counters and histograms a
//! live worker streams into ([`JobMetricHandles::record`]) are the same recording
//! path [`RuntimeReport::aggregate`] replays over a batch's telemetry rows, so a
//! live [`metrics_snapshot`](crate::SolveClient::metrics_snapshot) and a post-drain
//! report can never disagree about what a completed job counts as.
//!
//! # Which clock is which
//!
//! Wall-clock fields (`queue_wait_s`, `encode_s`, `solve_s`, `latency_s`, every
//! percentile) are host measurements and vary run to run; the [`SimulatedRun`]
//! fields are deterministic simulated seconds from the Eq. 2/3 cost model.  See the
//! deterministic-clock contract in `refloat_telemetry::clock`.

use std::sync::Arc;

use refloat_core::ReFloatConfig;
use refloat_telemetry::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};
use reram_sim::SolverKind;
use serde::{Serialize, Value};

use crate::accel::SimulatedRun;
use crate::cache::{CacheOutcome, CacheStats};
use crate::decision::DecisionStats;
use crate::sched::Priority;

/// The metric names under which the runtime records job completions — the stable
/// vocabulary shared by live snapshots, report aggregation, and dashboards.
pub mod metric_names {
    /// Counter: jobs completed (cancelled jobs never reach it).
    pub const JOBS_COMPLETED: &str = "jobs_completed";
    /// Counter: completed jobs whose solve met its residual criterion.
    pub const JOBS_CONVERGED: &str = "jobs_converged";
    /// Counter: jobs cancelled before any worker started them.
    pub const JOBS_CANCELLED: &str = "jobs_cancelled";
    /// Counter: jobs whose encoded matrix was a cache hit.
    pub const CACHE_HITS: &str = "cache_hits";
    /// Counter: jobs that encoded their matrix (cache miss).
    pub const CACHE_MISSES: &str = "cache_misses";
    /// Counter: jobs that waited on a concurrent encode of the same key.
    pub const CACHE_COALESCED: &str = "cache_coalesced";
    /// Counter: total simulated accelerator cycles.
    pub const SIMULATED_CYCLES: &str = "simulated_cycles";
    /// Counter: jobs that re-programmed their chip.
    pub const REMAPS: &str = "remaps";
    /// Counter: jobs spanning more than one chip.
    pub const SHARDED_JOBS: &str = "sharded_jobs";
    /// Counter: right-hand sides solved (≥ jobs; batched jobs contribute several).
    pub const RHS_TOTAL: &str = "rhs_total";
    /// Counter: jobs that ran in mixed-precision refinement mode.
    pub const REFINED_JOBS: &str = "refined_jobs";
    /// Counter: format escalations across refined jobs.
    pub const ESCALATIONS: &str = "escalations";
    /// Counter: jobs that ran in auto-format mode.
    pub const AUTOTUNED_JOBS: &str = "autotuned_jobs";
    /// Counter: auto-format jobs served from the decision cache.
    pub const AUTOTUNE_DECISION_HITS: &str = "autotune_decision_hits";
    /// Counter: auto-format jobs that fell back to the refinement ladder.
    pub const AUTOTUNE_FALLBACKS: &str = "autotune_fallbacks";
    /// Histogram (wall seconds): submission → dequeue.
    pub const QUEUE_WAIT_S: &str = "queue_wait_s";
    /// Histogram (wall seconds): submission → completion.
    pub const LATENCY_S: &str = "latency_s";
    /// Histogram (wall seconds): time inside the solver.
    pub const SOLVE_S: &str = "solve_s";
    /// Histogram (wall seconds): encode time, observed only for jobs that paid any
    /// encoding (whole-matrix misses, shard misses, refinement-rung misses).
    pub const ENCODE_S: &str = "encode_s";
    /// Histogram (simulated seconds): per-job simulated chip time.
    pub const SIMULATED_S: &str = "simulated_s";
    /// Histogram (simulated seconds): inter-chip gather time of sharded jobs.
    pub const REDUCTION_S: &str = "reduction_s";
    /// Histogram (simulated seconds): host-side fp64 work.
    pub const HOST_FP64_S: &str = "host_fp64_s";
    /// Histogram (wall seconds): autotune analysis time, observed on decision-cache
    /// misses only.
    pub const ANALYSIS_S: &str = "analysis_s";
    /// Gauge: scheduler queue-depth high-water mark.
    pub const QUEUE_DEPTH_PEAK: &str = "queue_depth_peak";
    /// Gauge: worker threads serving the client.
    pub const WORKERS: &str = "workers";
    /// Counter: jobs the cluster router placed on a node (single-node runtimes
    /// never touch it).
    pub const JOBS_ROUTED: &str = "jobs_routed";
    /// Counter: routed jobs placed on the node already holding their encodings
    /// (the fingerprint-affinity placement key won).
    pub const ROUTE_AFFINITY_HITS: &str = "route_affinity_hits";
    /// Counter: routed jobs whose affinity node was too loaded, spilling to the
    /// least-loaded node instead (the sticky mapping moves with them).
    pub const ROUTE_SPILLS: &str = "route_spills";
    /// Counter: submissions shed by admission control because the cluster-wide
    /// in-system bound was reached ([`SubmitError::Overloaded`](crate::SubmitError)).
    pub const JOBS_SHED_OVERLOAD: &str = "jobs_shed_overload";
    /// Counter: submissions shed because the tenant's fair-share quota was full
    /// ([`SubmitError::QuotaExceeded`](crate::SubmitError)).
    pub const JOBS_SHED_QUOTA: &str = "jobs_shed_quota";
    /// Gauge: nodes serving the cluster (1 for a single-node runtime).
    pub const NODES: &str = "nodes";
    /// Gauge: tenants currently holding at least one admitted, unfinished job.
    pub const TENANTS_ACTIVE: &str = "tenants_active";
    /// Counter: ABFT checksum failures detected across all solves (0 unless a fault
    /// model with ABFT is configured).
    pub const FAULTS_DETECTED: &str = "faults_detected";
    /// Counter: detected-corruption retries that re-encoded a job onto spare
    /// resources.
    pub const FAULT_RETRIES: &str = "fault_retries";
    /// Counter: jobs that resolved with a typed `Degraded` outcome instead of a
    /// clean completion (corruption unresolved after retries, or a chip killed with
    /// no live worker left to take the job).
    pub const JOBS_DEGRADED: &str = "jobs_degraded";
    /// Counter: queued jobs re-routed off a killed chip onto a surviving worker.
    pub const JOBS_REROUTED: &str = "jobs_rerouted";
    /// Counter: chips administratively killed mid-trace.
    pub const CHIPS_KILLED: &str = "chips_killed";
    /// Counter: cluster placements steered away from the health-blind choice
    /// because a node looked degraded (dead workers or detection-heavy chips).
    pub const ROUTE_HEALTH_STEERS: &str = "route_health_steers";
    /// Counter: jobs submitted through a [`SolveSequence`](crate::SolveSequence)
    /// step (they carry predecessor context the worker can exploit).
    pub const SEQ_STEPS: &str = "seq_steps";
    /// Counter: sequence steps whose warm-start guess passed the residual guard
    /// (zero-iteration short-circuit or correction solve; rejected guesses fall
    /// back to the plain zero-start solve).
    pub const WARM_START_HITS: &str = "warm_start_hits";
    /// Counter: blocks re-quantized by incremental sequence re-encodes (partial or
    /// full crossbar rewrites).
    pub const BLOCKS_REENCODED: &str = "blocks_reencoded";
    /// Counter: blocks reused verbatim from the predecessor's encoding by
    /// incremental sequence re-encodes (no quantization, no device writes).
    pub const BLOCKS_REUSED: &str = "blocks_reused";
    /// Counter: sequence steps that reused the predecessor's format decision
    /// instead of re-running the auto-format analysis.
    pub const SEQ_DECISION_CACHE_HITS: &str = "seq_decision_cache_hits";

    /// The per-node completion counter's name (`node<i>_jobs_completed`), one per
    /// node, registered when the node's workers spawn.
    pub fn node_jobs_completed(node: usize) -> String {
        format!("node{node}_jobs_completed")
    }
}

/// Pre-fetched handles on every job-completion metric.
///
/// Workers create one set at startup and record through it, so the per-job hot path
/// is atomic increments only — the registry's name-lookup locks are never touched
/// after registration.  Registration also *creates* every metric, so a snapshot
/// taken before the first job still carries the full (all-zero) vocabulary and
/// dashboards never key-error on missing fields.
#[derive(Debug)]
pub struct JobMetricHandles {
    jobs: Arc<Counter>,
    converged: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_coalesced: Arc<Counter>,
    simulated_cycles: Arc<Counter>,
    remaps: Arc<Counter>,
    sharded_jobs: Arc<Counter>,
    rhs_total: Arc<Counter>,
    refined_jobs: Arc<Counter>,
    escalations: Arc<Counter>,
    autotuned_jobs: Arc<Counter>,
    autotune_decision_hits: Arc<Counter>,
    autotune_fallbacks: Arc<Counter>,
    queue_wait_s: Arc<Histogram>,
    latency_s: Arc<Histogram>,
    solve_s: Arc<Histogram>,
    encode_s: Arc<Histogram>,
    simulated_s: Arc<Histogram>,
    reduction_s: Arc<Histogram>,
    host_fp64_s: Arc<Histogram>,
    analysis_s: Arc<Histogram>,
    faults_detected: Arc<Counter>,
    fault_retries: Arc<Counter>,
    seq_steps: Arc<Counter>,
    warm_start_hits: Arc<Counter>,
    blocks_reencoded: Arc<Counter>,
    blocks_reused: Arc<Counter>,
    seq_decision_cache_hits: Arc<Counter>,
}

impl JobMetricHandles {
    /// Fetches (creating if needed) every job-completion metric of `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        use metric_names as m;
        // Ensure the counters incremented outside the per-completed-job path exist
        // too (cancellation by the client; degraded/rerouted/killed by the worker
        // loop and kill path), so a live snapshot carries the full vocabulary.
        let _ = registry.counter(m::JOBS_CANCELLED);
        let _ = registry.counter(m::JOBS_DEGRADED);
        let _ = registry.counter(m::JOBS_REROUTED);
        let _ = registry.counter(m::CHIPS_KILLED);
        JobMetricHandles {
            jobs: registry.counter(m::JOBS_COMPLETED),
            converged: registry.counter(m::JOBS_CONVERGED),
            cache_hits: registry.counter(m::CACHE_HITS),
            cache_misses: registry.counter(m::CACHE_MISSES),
            cache_coalesced: registry.counter(m::CACHE_COALESCED),
            simulated_cycles: registry.counter(m::SIMULATED_CYCLES),
            remaps: registry.counter(m::REMAPS),
            sharded_jobs: registry.counter(m::SHARDED_JOBS),
            rhs_total: registry.counter(m::RHS_TOTAL),
            refined_jobs: registry.counter(m::REFINED_JOBS),
            escalations: registry.counter(m::ESCALATIONS),
            autotuned_jobs: registry.counter(m::AUTOTUNED_JOBS),
            autotune_decision_hits: registry.counter(m::AUTOTUNE_DECISION_HITS),
            autotune_fallbacks: registry.counter(m::AUTOTUNE_FALLBACKS),
            queue_wait_s: registry.histogram_seconds(m::QUEUE_WAIT_S),
            latency_s: registry.histogram_seconds(m::LATENCY_S),
            solve_s: registry.histogram_seconds(m::SOLVE_S),
            encode_s: registry.histogram_seconds(m::ENCODE_S),
            simulated_s: registry.histogram_seconds(m::SIMULATED_S),
            reduction_s: registry.histogram_seconds(m::REDUCTION_S),
            host_fp64_s: registry.histogram_seconds(m::HOST_FP64_S),
            analysis_s: registry.histogram_seconds(m::ANALYSIS_S),
            faults_detected: registry.counter(m::FAULTS_DETECTED),
            fault_retries: registry.counter(m::FAULT_RETRIES),
            seq_steps: registry.counter(m::SEQ_STEPS),
            warm_start_hits: registry.counter(m::WARM_START_HITS),
            blocks_reencoded: registry.counter(m::BLOCKS_REENCODED),
            blocks_reused: registry.counter(m::BLOCKS_REUSED),
            seq_decision_cache_hits: registry.counter(m::SEQ_DECISION_CACHE_HITS),
        }
    }

    /// Streams one completed job into the metrics (atomic operations only).
    pub fn record(&self, job: &JobTelemetry) {
        self.jobs.inc();
        if job.converged {
            self.converged.inc();
        }
        match job.cache {
            CacheOutcomeKind::Hit => self.cache_hits.inc(),
            CacheOutcomeKind::Miss => self.cache_misses.inc(),
            CacheOutcomeKind::Coalesced => self.cache_coalesced.inc(),
        }
        self.simulated_cycles.add(job.simulated.cycles);
        if job.simulated.remapped {
            self.remaps.inc();
        }
        if job.shards > 1 {
            self.sharded_jobs.inc();
            self.reduction_s.observe(job.simulated.reduction_s);
        }
        self.rhs_total.add(job.rhs_count as u64);
        if let Some(refinement) = &job.refinement {
            self.refined_jobs.inc();
            self.escalations.add(refinement.escalations as u64);
        }
        if let Some(autotune) = &job.autotune {
            self.autotuned_jobs.inc();
            if autotune.decision_cached {
                self.autotune_decision_hits.inc();
            }
            if autotune.fell_back {
                self.autotune_fallbacks.inc();
            }
            if autotune.analysis_s > 0.0 {
                self.analysis_s.observe(autotune.analysis_s);
            }
        }
        self.queue_wait_s.observe(job.queue_wait_s);
        self.latency_s.observe(job.latency_s);
        self.solve_s.observe(job.solve_s);
        // A refined job can pay rung encodes even when its *base* rung was a hit, so
        // key on the time actually spent, not on the job-level cache outcome.
        if job.encode_s > 0.0 {
            self.encode_s.observe(job.encode_s);
        }
        self.simulated_s.observe(job.simulated.total_s);
        if job.simulated.host_fp64_s > 0.0 {
            self.host_fp64_s.observe(job.simulated.host_fp64_s);
        }
        self.faults_detected.add(job.faults_detected);
        self.fault_retries.add(job.fault_retries);
        if let Some(seq) = &job.sequence {
            self.seq_steps.inc();
            if seq.warm_start_used {
                self.warm_start_hits.inc();
            }
            self.blocks_reencoded.add(seq.blocks_reencoded);
            self.blocks_reused.add(seq.blocks_reused);
            if seq.decision_cache_hit {
                self.seq_decision_cache_hits.inc();
            }
        }
    }
}

/// The cache outcome without the embedded timing (telemetry keeps timing separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcomeKind {
    /// Encoded matrix found in the cache.
    Hit,
    /// This job encoded the matrix.
    Miss,
    /// This job waited for a concurrent encode of the same key.
    Coalesced,
}

impl CacheOutcomeKind {
    /// A stable lowercase label for trace details and exports.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcomeKind::Hit => "hit",
            CacheOutcomeKind::Miss => "miss",
            CacheOutcomeKind::Coalesced => "coalesced",
        }
    }
}

impl From<CacheOutcome> for CacheOutcomeKind {
    fn from(outcome: CacheOutcome) -> Self {
        match outcome {
            CacheOutcome::Hit => CacheOutcomeKind::Hit,
            CacheOutcome::Miss { .. } => CacheOutcomeKind::Miss,
            CacheOutcome::Coalesced => CacheOutcomeKind::Coalesced,
        }
    }
}

/// What the outer refinement loop of a refined job did (absent for plain jobs).
#[derive(Debug, Clone)]
pub struct RefinementTelemetry {
    /// Outer defect-correction passes executed.
    pub outer_iterations: usize,
    /// Total inner solver iterations across all passes.
    pub inner_iterations: usize,
    /// Format escalations (rungs climbed because a pass stalled).
    pub escalations: usize,
    /// Name of the rung the solve finished on.
    pub final_level: String,
    /// Exact fp64 operator applications (one per outer residual evaluation).
    pub fp64_spmvs: usize,
    /// Final outer relative residual `‖b − A·x‖₂/‖b‖₂`.
    pub final_relative_residual: f64,
    /// `true` when the top rung stopped contracting before the target was met.
    pub stalled: bool,
}

/// What the format auto-tuner did for a job (absent unless the plan used
/// [`SolvePlanBuilder::auto_format`](crate::SolvePlanBuilder::auto_format)).
#[derive(Debug, Clone)]
pub struct AutotuneTelemetry {
    /// The format the tuner chose (blocking `b` inherited from the job).
    pub chosen_format: ReFloatConfig,
    /// The requested true relative residual.
    pub tolerance: f64,
    /// `true` when the decision came out of the format-decision cache (hit or
    /// coalesced) instead of running the analysis.
    pub decision_cached: bool,
    /// Seconds this job spent in `plan_format` (0 unless it ran the analysis).
    pub analysis_s: f64,
    /// Condition-number estimate the decision used.
    pub kappa: f64,
    /// `true` when the eigen estimation behind κ reported degraded confidence.
    pub degraded_confidence: bool,
    /// `false` when no candidate survived the analysis and the chosen format is a
    /// best-effort fallback (the refinement ladder is then expected to engage).
    pub predicted_convergent: bool,
    /// Iterations the analysis predicted (measured by its verification solve when one
    /// ran, the √κ bound otherwise).
    pub predicted_iterations: u64,
    /// Model cycles per SpMV the analysis predicted for the chosen format.
    pub predicted_cycles_per_spmv: u64,
    /// Iterations the plain solve at the chosen format actually took.
    pub achieved_iterations: u64,
    /// True relative residual after the job finished (post-fallback if one ran).
    pub achieved_relative_residual: f64,
    /// `true` when the chosen format stalled above the tolerance and the job fell
    /// back to the mixed-precision refinement ladder.
    pub fell_back: bool,
}

/// What the sequence machinery did for a job (absent unless the job was submitted
/// through a [`SolveSequence`](crate::SolveSequence) step).
#[derive(Debug, Clone)]
pub struct SequenceTelemetry {
    /// `true` when the warm-start guess passed the residual guard (the solve ran in
    /// correction form, or the guess already met the criterion).
    pub warm_start_used: bool,
    /// `‖b − A·x₀‖` measured by the guard, when a guess was offered.
    pub initial_residual: Option<f64>,
    /// `true` when the encoding came from an incremental re-encode against the
    /// predecessor (rather than a from-scratch encode or a plain cache hit).
    pub incremental: bool,
    /// Blocks re-quantized by the incremental re-encode (0 when `incremental` is
    /// false).
    pub blocks_reencoded: u64,
    /// Blocks reused verbatim from the predecessor's encoding.
    pub blocks_reused: u64,
    /// `true` when an auto-format step reused the predecessor's format decision
    /// instead of re-running the analysis.
    pub decision_cache_hit: bool,
}

/// Everything measured about one job.
#[derive(Debug, Clone)]
pub struct JobTelemetry {
    /// Submission-order id.
    pub job_id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Matrix name (from the handle).
    pub matrix: String,
    /// Worker that executed the job (pool-global: a cluster numbers its workers
    /// contiguously across nodes, so the index is unique fleet-wide).
    pub worker: usize,
    /// Node that executed the job (0 for a single-node runtime).
    pub node: usize,
    /// Solver kind.
    pub solver: SolverKind,
    /// QoS class the job was scheduled under.
    pub priority: Priority,
    /// Chips the job spanned (1 = unsharded).
    pub shards: usize,
    /// Right-hand sides solved under the one chip programming (1 = single RHS).
    pub rhs_count: usize,
    /// How the encoded matrix was obtained.
    pub cache: CacheOutcomeKind,
    /// Seconds between submission and a worker dequeuing the job.
    pub queue_wait_s: f64,
    /// Seconds spent quantizing the matrix (0 unless `cache` is `Miss`).
    pub encode_s: f64,
    /// Seconds in the solver itself (functional simulation wall-clock).
    pub solve_s: f64,
    /// Seconds from submission to completion.
    pub latency_s: f64,
    /// Solver iterations executed.
    pub iterations: usize,
    /// Whether the solve met its residual criterion.
    pub converged: bool,
    /// The simulated-chip cost of the job.
    pub simulated: SimulatedRun,
    /// Outer-loop details when the job ran in mixed-precision refinement mode (also
    /// populated when an auto-format job fell back to the refinement ladder).
    pub refinement: Option<RefinementTelemetry>,
    /// Format auto-tuning details when the job ran in auto-format mode.
    pub autotune: Option<AutotuneTelemetry>,
    /// ABFT checksum failures detected while solving this job (0 without a fault
    /// model).
    pub faults_detected: u64,
    /// Detected-corruption retries this job paid (each one re-encoded onto spare
    /// resources and re-ran the solve).
    pub fault_retries: u64,
    /// Sequence-step details when the job was submitted through a
    /// [`SolveSequence`](crate::SolveSequence) (`None` for all other jobs).
    pub sequence: Option<SequenceTelemetry>,
}

/// Everything [`RuntimeReport::aggregate`] needs besides the telemetry rows: the
/// batch wall time, the cache/decision counter deltas, the pool shape, and the
/// cluster-level counts the rows themselves cannot carry (cancelled and shed jobs
/// never produce telemetry).
#[derive(Debug, Clone)]
pub struct AggregateContext {
    /// Batch wall-clock seconds (first submission to last completion).
    pub wall_s: f64,
    /// Encode-cache counter increments during the batch.
    pub cache: CacheStats,
    /// Decision-cache counter increments during the batch.
    pub decisions: DecisionStats,
    /// Worker threads that served the batch (cluster: total across nodes).
    pub workers: usize,
    /// Nodes that served the batch (1 for the single-node runtime).
    pub nodes: usize,
    /// Scheduler queue-depth high-water mark (cluster: the worst node).
    pub queue_depth_peak: usize,
    /// Jobs cancelled before a worker started them.
    pub cancelled_jobs: usize,
    /// Submissions shed because the cluster-wide in-system bound was reached.
    pub shed_overloaded: u64,
    /// Submissions shed because a tenant's fair-share quota was full.
    pub shed_quota: u64,
    /// Jobs that resolved with a typed `Degraded` outcome (no telemetry row: the
    /// solve did not complete cleanly).
    pub degraded_jobs: u64,
    /// Queued jobs re-routed off a killed chip onto a surviving worker.
    pub rerouted_jobs: u64,
    /// Chips administratively killed during the batch.
    pub chips_killed: u64,
    /// ABFT detections recorded by jobs that resolved `Degraded` — those carry
    /// no telemetry row, so the replay alone would undercount the fleet total.
    pub degraded_faults_detected: u64,
    /// Re-encode retries recorded by jobs that resolved `Degraded`.
    pub degraded_fault_retries: u64,
}

impl Default for AggregateContext {
    fn default() -> Self {
        AggregateContext {
            wall_s: 0.0,
            cache: CacheStats::default(),
            decisions: DecisionStats::default(),
            workers: 1,
            nodes: 1,
            queue_depth_peak: 0,
            cancelled_jobs: 0,
            shed_overloaded: 0,
            shed_quota: 0,
            degraded_jobs: 0,
            rerouted_jobs: 0,
            chips_killed: 0,
            degraded_faults_detected: 0,
            degraded_fault_retries: 0,
        }
    }
}

/// Aggregated statistics for one batch.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Jobs completed.
    pub jobs: usize,
    /// Jobs that converged.
    pub converged: usize,
    /// Worker threads that served the batch.
    pub workers: usize,
    /// Nodes that served the batch (1 for the single-node runtime).
    pub nodes: usize,
    /// Batch wall-clock seconds (submission of the first job to completion of the
    /// last).
    pub wall_s: f64,
    /// Jobs per wall-clock second.
    pub throughput_jobs_per_s: f64,
    /// Median job latency (submit → done), seconds.
    pub latency_p50_s: f64,
    /// 99th-percentile job latency, seconds.
    pub latency_p99_s: f64,
    /// Mean job latency, seconds.
    pub latency_mean_s: f64,
    /// Worst job latency, seconds.
    pub latency_max_s: f64,
    /// Median queue wait, seconds.
    pub queue_wait_p50_s: f64,
    /// 99th-percentile queue wait, seconds.
    pub queue_wait_p99_s: f64,
    /// Most jobs ever pending in the scheduler at once (high-water mark).
    pub queue_depth_peak: usize,
    /// Jobs cancelled before a worker started them (they contribute nothing to any
    /// other counter: no cycles, no cache traffic, no latency samples).
    pub cancelled_jobs: usize,
    /// Per-priority queue-wait statistics.  Every class is always present (empty
    /// lanes report 0 jobs and 0.0 waits), so dashboards keyed on a lane never
    /// key-error when a class saw no traffic.
    pub per_priority: Vec<PriorityLane>,
    /// Cache counter increments during the batch.
    pub cache: CacheStats,
    /// Total seconds spent encoding matrices (paid by cache misses).
    pub encode_total_s: f64,
    /// Total seconds spent inside solvers.
    pub solve_total_s: f64,
    /// Total simulated accelerator cycles.
    pub simulated_cycles: u64,
    /// Total simulated accelerator seconds.
    pub simulated_total_s: f64,
    /// Chip re-programming events across the pool.
    pub remaps: u64,
    /// Jobs that spanned more than one chip.
    pub sharded_jobs: usize,
    /// Total right-hand sides solved (≥ `jobs`; batched jobs contribute several).
    pub rhs_total: usize,
    /// Total simulated seconds spent in inter-chip gathers of sharded jobs.
    pub reduction_total_s: f64,
    /// Jobs per worker (index = pool-global worker id).
    pub per_worker_jobs: Vec<u64>,
    /// Jobs per node (index = node id; a single-node runtime reports one entry).
    pub per_node_jobs: Vec<u64>,
    /// Submissions shed with [`SubmitError::Overloaded`](crate::SubmitError) (they
    /// never entered a queue: no telemetry row, no cycles, no cache traffic).
    pub shed_overloaded: u64,
    /// Submissions shed with [`SubmitError::QuotaExceeded`](crate::SubmitError).
    pub shed_quota: u64,
    /// Jobs whose telemetry named a worker outside the pool (should be 0; counted so
    /// `per_worker_jobs` totals plus this always sum to `jobs`).
    pub unattributed_jobs: u64,
    /// Jobs that ran in mixed-precision refinement mode.
    pub refined_jobs: usize,
    /// Format escalations across all refined jobs.
    pub escalations: u64,
    /// Total host-side fp64 seconds (residual evaluations + fp64 fallback solves) of
    /// refined jobs, under the GPU model.
    pub host_fp64_total_s: f64,
    /// Jobs that ran in auto-format mode.
    pub autotuned_jobs: usize,
    /// Auto-format jobs whose decision came out of the decision cache.
    pub autotune_decision_hits: u64,
    /// Auto-format jobs that stalled and fell back to the refinement ladder.
    pub autotune_fallbacks: u64,
    /// Total seconds spent in format analyses (paid by decision-cache misses).
    pub analysis_total_s: f64,
    /// ABFT checksum failures detected across all solves (0 without a fault model).
    pub faults_detected: u64,
    /// Detected-corruption retries that re-encoded a job onto spare resources.
    pub fault_retries: u64,
    /// Jobs that resolved with a typed `Degraded` outcome.
    pub degraded_jobs: u64,
    /// Queued jobs re-routed off a killed chip onto a surviving worker.
    pub rerouted_jobs: u64,
    /// Chips administratively killed during the batch.
    pub chips_killed: u64,
    /// Jobs submitted through a [`SolveSequence`](crate::SolveSequence) step.
    pub seq_steps: usize,
    /// Sequence steps whose warm-start guess passed the residual guard.
    pub warm_start_hits: u64,
    /// Blocks re-quantized by incremental sequence re-encodes.
    pub blocks_reencoded: u64,
    /// Blocks reused verbatim from predecessor encodings.
    pub blocks_reused: u64,
    /// Sequence steps that reused the predecessor's format decision.
    pub seq_decision_cache_hits: u64,
    /// Decision-cache counter increments during the batch.
    pub decisions: DecisionStats,
    /// The full metrics snapshot the aggregation was derived from (the same
    /// vocabulary [`SolveClient::metrics_snapshot`](crate::SolveClient::metrics_snapshot)
    /// serves live).
    pub metrics: MetricsSnapshot,
}

/// Queue-wait statistics of one priority class.
#[derive(Debug, Clone)]
pub struct PriorityLane {
    /// The class.
    pub priority: Priority,
    /// Jobs completed in this class.
    pub jobs: usize,
    /// Median queue wait, seconds.
    pub queue_wait_p50_s: f64,
    /// 99th-percentile queue wait, seconds.
    pub queue_wait_p99_s: f64,
}

/// `q`-quantile of an unsorted sample using the nearest-rank method.
///
/// Robust by construction: `q` is clamped into `[0, 1]` (a debug assertion flags
/// out-of-range or NaN quantiles) and non-finite samples are ignored rather than
/// poisoning the sort.  Returns 0.0 when no finite sample remains.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    debug_assert!(
        (0.0..=1.0).contains(&q),
        "percentile: quantile {q} outside [0, 1]"
    );
    // In release, out-of-range quantiles clamp; a NaN quantile falls through the
    // saturating cast below to rank 1 (the minimum) instead of panicking.
    let q = q.clamp(0.0, 1.0);
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|s| s.is_finite()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl RuntimeReport {
    /// Aggregates the telemetry of a finished batch (or of everything a
    /// [`SolveClient`](crate::SolveClient) has completed so far).
    pub fn aggregate(jobs: &[JobTelemetry], ctx: AggregateContext) -> Self {
        let AggregateContext {
            wall_s,
            cache,
            decisions,
            workers,
            nodes,
            queue_depth_peak,
            cancelled_jobs,
            shed_overloaded,
            shed_quota,
            degraded_jobs,
            rerouted_jobs,
            chips_killed,
            degraded_faults_detected,
            degraded_fault_retries,
        } = ctx;
        // Replay every row through the same recording path live workers use, so the
        // report's totals are *derived from* the metrics registry rather than being
        // a second, independently maintained accumulation that could drift from it.
        let registry = MetricsRegistry::new();
        let handles = JobMetricHandles::register(&registry);
        for job in jobs {
            handles.record(job);
        }
        registry
            .counter(metric_names::JOBS_CANCELLED)
            .add(cancelled_jobs as u64);
        registry
            .counter(metric_names::JOBS_SHED_OVERLOAD)
            .add(shed_overloaded);
        registry
            .counter(metric_names::JOBS_SHED_QUOTA)
            .add(shed_quota);
        registry
            .counter(metric_names::JOBS_DEGRADED)
            .add(degraded_jobs);
        registry
            .counter(metric_names::JOBS_REROUTED)
            .add(rerouted_jobs);
        registry
            .counter(metric_names::CHIPS_KILLED)
            .add(chips_killed);
        registry
            .counter(metric_names::FAULTS_DETECTED)
            .add(degraded_faults_detected);
        registry
            .counter(metric_names::FAULT_RETRIES)
            .add(degraded_fault_retries);
        registry
            .gauge(metric_names::QUEUE_DEPTH_PEAK)
            .set(queue_depth_peak as f64);
        registry.gauge(metric_names::WORKERS).set(workers as f64);
        registry.gauge(metric_names::NODES).set(nodes as f64);

        let latencies: Vec<f64> = jobs.iter().map(|j| j.latency_s).collect();
        let queue_waits: Vec<f64> = jobs.iter().map(|j| j.queue_wait_s).collect();
        let mut per_worker_jobs = vec![0u64; workers];
        let mut per_node_jobs = vec![0u64; nodes.max(1)];
        let mut unattributed_jobs = 0u64;
        for job in jobs {
            match per_worker_jobs.get_mut(job.worker) {
                Some(slot) => *slot += 1,
                None => {
                    // A worker index outside the pool means the telemetry and the
                    // runtime configuration disagree — never drop the job silently,
                    // or per-worker totals stop summing to `jobs`.
                    debug_assert!(
                        false,
                        "job {} attributed to worker {} of a {}-worker pool",
                        job.job_id, job.worker, workers
                    );
                    unattributed_jobs += 1;
                }
            }
            if let Some(slot) = per_node_jobs.get_mut(job.node) {
                *slot += 1;
            } else {
                debug_assert!(
                    false,
                    "job {} attributed to node {} of a {}-node cluster",
                    job.job_id, job.node, nodes
                );
            }
        }
        // The per-node completion counters workers stream into live are replayed
        // here too, so a report's metrics snapshot carries the node dimension.
        for (node, count) in per_node_jobs.iter().enumerate() {
            registry
                .counter(&metric_names::node_jobs_completed(node))
                .add(*count);
        }
        let metrics = registry.snapshot();
        let counter = |name: &str| metrics.counter(name).unwrap_or(0);
        let hist_sum = |name: &str| metrics.histogram(name).map(|h| h.sum).unwrap_or(0.0);
        // Every class gets a lane, traffic or not — consumers index by class.
        let per_priority = Priority::ALL
            .into_iter()
            .map(|priority| {
                let waits: Vec<f64> = jobs
                    .iter()
                    .filter(|j| j.priority == priority)
                    .map(|j| j.queue_wait_s)
                    .collect();
                PriorityLane {
                    priority,
                    jobs: waits.len(),
                    queue_wait_p50_s: percentile(&waits, 0.50),
                    queue_wait_p99_s: percentile(&waits, 0.99),
                }
            })
            .collect();
        RuntimeReport {
            jobs: counter(metric_names::JOBS_COMPLETED) as usize,
            converged: counter(metric_names::JOBS_CONVERGED) as usize,
            workers,
            nodes: nodes.max(1),
            wall_s,
            throughput_jobs_per_s: if wall_s > 0.0 {
                jobs.len() as f64 / wall_s
            } else {
                0.0
            },
            latency_p50_s: percentile(&latencies, 0.50),
            latency_p99_s: percentile(&latencies, 0.99),
            latency_mean_s: if latencies.is_empty() {
                0.0
            } else {
                // Pairwise accumulation (vecops::sum) keeps report means stable and
                // shard-order independent even over long traffic logs.
                refloat_sparse::vecops::sum(&latencies) / latencies.len() as f64
            },
            latency_max_s: latencies.iter().cloned().fold(0.0, f64::max),
            queue_wait_p50_s: percentile(&queue_waits, 0.50),
            queue_wait_p99_s: percentile(&queue_waits, 0.99),
            queue_depth_peak,
            cancelled_jobs,
            per_priority,
            cache,
            encode_total_s: hist_sum(metric_names::ENCODE_S),
            solve_total_s: hist_sum(metric_names::SOLVE_S),
            simulated_cycles: counter(metric_names::SIMULATED_CYCLES),
            simulated_total_s: hist_sum(metric_names::SIMULATED_S),
            remaps: counter(metric_names::REMAPS),
            sharded_jobs: counter(metric_names::SHARDED_JOBS) as usize,
            rhs_total: counter(metric_names::RHS_TOTAL) as usize,
            reduction_total_s: hist_sum(metric_names::REDUCTION_S),
            per_worker_jobs,
            per_node_jobs,
            shed_overloaded,
            shed_quota,
            unattributed_jobs,
            refined_jobs: counter(metric_names::REFINED_JOBS) as usize,
            escalations: counter(metric_names::ESCALATIONS),
            host_fp64_total_s: hist_sum(metric_names::HOST_FP64_S),
            autotuned_jobs: counter(metric_names::AUTOTUNED_JOBS) as usize,
            autotune_decision_hits: counter(metric_names::AUTOTUNE_DECISION_HITS),
            autotune_fallbacks: counter(metric_names::AUTOTUNE_FALLBACKS),
            analysis_total_s: hist_sum(metric_names::ANALYSIS_S),
            faults_detected: counter(metric_names::FAULTS_DETECTED),
            fault_retries: counter(metric_names::FAULT_RETRIES),
            degraded_jobs,
            rerouted_jobs,
            chips_killed,
            seq_steps: counter(metric_names::SEQ_STEPS) as usize,
            warm_start_hits: counter(metric_names::WARM_START_HITS),
            blocks_reencoded: counter(metric_names::BLOCKS_REENCODED),
            blocks_reused: counter(metric_names::BLOCKS_REUSED),
            seq_decision_cache_hits: counter(metric_names::SEQ_DECISION_CACHE_HITS),
            decisions,
            metrics,
        }
    }

    /// The batch cache hit rate (hits + coalesced over lookups).
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// A human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "jobs            {} ({} converged) on {} workers\n",
            self.jobs, self.converged, self.workers
        ));
        out.push_str(&format!(
            "throughput      {:.1} jobs/s over {:.3} s wall\n",
            self.throughput_jobs_per_s, self.wall_s
        ));
        out.push_str(&format!(
            "latency         p50 {:.2} ms   p99 {:.2} ms   mean {:.2} ms   max {:.2} ms\n",
            self.latency_p50_s * 1e3,
            self.latency_p99_s * 1e3,
            self.latency_mean_s * 1e3,
            self.latency_max_s * 1e3,
        ));
        out.push_str(&format!(
            "queue wait      p50 {:.2} ms   p99 {:.2} ms   peak depth {}\n",
            self.queue_wait_p50_s * 1e3,
            self.queue_wait_p99_s * 1e3,
            self.queue_depth_peak,
        ));
        // Every lane prints, traffic or not — a dashboard scraping this output sees
        // the same lines whether or not a class happened to receive jobs.
        for lane in &self.per_priority {
            out.push_str(&format!(
                "  {:<13} {} jobs, wait p50 {:.2} ms   p99 {:.2} ms\n",
                lane.priority.label(),
                lane.jobs,
                lane.queue_wait_p50_s * 1e3,
                lane.queue_wait_p99_s * 1e3,
            ));
        }
        out.push_str(&format!(
            "cancelled       {} jobs dequeued before starting (no chip time charged)\n",
            self.cancelled_jobs
        ));
        if self.shed_overloaded + self.shed_quota > 0 {
            out.push_str(&format!(
                "shed            {} overloaded, {} over-quota (typed rejections, never queued)\n",
                self.shed_overloaded, self.shed_quota
            ));
        }
        out.push_str(&format!(
            "encode cache    {:.1}% hit rate ({} hits, {} coalesced, {} misses, {} evictions), {:.3} s encoding\n",
            self.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.coalesced,
            self.cache.misses,
            self.cache.evictions,
            self.encode_total_s,
        ));
        out.push_str(&format!(
            "simulated chip  {:.3e} cycles, {:.6} s total, {} remaps\n",
            self.simulated_cycles as f64, self.simulated_total_s, self.remaps
        ));
        // Always printed, zero-fault runs included: report snapshots stay
        // schema-stable whether or not a fault model is configured.
        out.push_str(&format!(
            "reliability     {} faults detected, {} retries, {} degraded, {} rerouted, {} chips killed\n",
            self.faults_detected,
            self.fault_retries,
            self.degraded_jobs,
            self.rerouted_jobs,
            self.chips_killed,
        ));
        if self.refined_jobs > 0 {
            out.push_str(&format!(
                "refinement      {} refined jobs, {} escalations, {:.6} s host fp64\n",
                self.refined_jobs, self.escalations, self.host_fp64_total_s
            ));
        }
        if self.sharded_jobs > 0 {
            out.push_str(&format!(
                "sharding        {} sharded jobs, {:.6} s inter-chip reduction\n",
                self.sharded_jobs, self.reduction_total_s
            ));
        }
        if self.autotuned_jobs > 0 {
            out.push_str(&format!(
                "autotune        {} autotuned jobs ({} decision-cache hits, {} fallbacks), {:.3} s analysing\n",
                self.autotuned_jobs,
                self.autotune_decision_hits,
                self.autotune_fallbacks,
                self.analysis_total_s,
            ));
        }
        if self.rhs_total > self.jobs {
            out.push_str(&format!(
                "multi-rhs       {} right-hand sides across {} jobs\n",
                self.rhs_total, self.jobs
            ));
        }
        if self.seq_steps > 0 {
            out.push_str(&format!(
                "sequences       {} steps ({} warm-start hits, {} decision reuses), blocks {} reused / {} re-encoded\n",
                self.seq_steps,
                self.warm_start_hits,
                self.seq_decision_cache_hits,
                self.blocks_reused,
                self.blocks_reencoded,
            ));
        }
        out.push_str(&format!("worker load     {:?}\n", self.per_worker_jobs));
        if self.nodes > 1 {
            out.push_str(&format!(
                "node load       {:?} across {} nodes\n",
                self.per_node_jobs, self.nodes
            ));
        }
        if self.unattributed_jobs > 0 {
            out.push_str(&format!(
                "WARNING         {} jobs attributed to workers outside the pool\n",
                self.unattributed_jobs
            ));
        } else {
            out.push_str("unattributed    0 jobs\n");
        }
        out
    }
}

impl Serialize for PriorityLane {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "priority".to_string(),
                Value::Str(self.priority.label().to_string()),
            ),
            ("jobs".to_string(), Value::Num(self.jobs as f64)),
            (
                "queue_wait_p50_s".to_string(),
                Value::Num(self.queue_wait_p50_s),
            ),
            (
                "queue_wait_p99_s".to_string(),
                Value::Num(self.queue_wait_p99_s),
            ),
        ])
    }
}

impl Serialize for RuntimeReport {
    fn to_value(&self) -> Value {
        let cache_stats = |hits: u64, misses: u64, coalesced: u64, evictions: u64| {
            Value::Object(vec![
                ("hits".to_string(), Value::Num(hits as f64)),
                ("misses".to_string(), Value::Num(misses as f64)),
                ("coalesced".to_string(), Value::Num(coalesced as f64)),
                ("evictions".to_string(), Value::Num(evictions as f64)),
            ])
        };
        Value::Object(vec![
            ("jobs".to_string(), Value::Num(self.jobs as f64)),
            ("converged".to_string(), Value::Num(self.converged as f64)),
            ("workers".to_string(), Value::Num(self.workers as f64)),
            ("nodes".to_string(), Value::Num(self.nodes as f64)),
            ("wall_s".to_string(), Value::Num(self.wall_s)),
            (
                "throughput_jobs_per_s".to_string(),
                Value::Num(self.throughput_jobs_per_s),
            ),
            ("latency_p50_s".to_string(), Value::Num(self.latency_p50_s)),
            ("latency_p99_s".to_string(), Value::Num(self.latency_p99_s)),
            (
                "latency_mean_s".to_string(),
                Value::Num(self.latency_mean_s),
            ),
            ("latency_max_s".to_string(), Value::Num(self.latency_max_s)),
            (
                "queue_wait_p50_s".to_string(),
                Value::Num(self.queue_wait_p50_s),
            ),
            (
                "queue_wait_p99_s".to_string(),
                Value::Num(self.queue_wait_p99_s),
            ),
            (
                "queue_depth_peak".to_string(),
                Value::Num(self.queue_depth_peak as f64),
            ),
            (
                "cancelled_jobs".to_string(),
                Value::Num(self.cancelled_jobs as f64),
            ),
            (
                "unattributed_jobs".to_string(),
                Value::Num(self.unattributed_jobs as f64),
            ),
            (
                "per_priority".to_string(),
                Value::Array(self.per_priority.iter().map(|l| l.to_value()).collect()),
            ),
            (
                "cache".to_string(),
                cache_stats(
                    self.cache.hits,
                    self.cache.misses,
                    self.cache.coalesced,
                    self.cache.evictions,
                ),
            ),
            (
                "decisions".to_string(),
                cache_stats(
                    self.decisions.hits,
                    self.decisions.misses,
                    self.decisions.coalesced,
                    self.decisions.evictions,
                ),
            ),
            (
                "encode_total_s".to_string(),
                Value::Num(self.encode_total_s),
            ),
            ("solve_total_s".to_string(), Value::Num(self.solve_total_s)),
            (
                "simulated_cycles".to_string(),
                Value::Num(self.simulated_cycles as f64),
            ),
            (
                "simulated_total_s".to_string(),
                Value::Num(self.simulated_total_s),
            ),
            ("remaps".to_string(), Value::Num(self.remaps as f64)),
            (
                "sharded_jobs".to_string(),
                Value::Num(self.sharded_jobs as f64),
            ),
            ("rhs_total".to_string(), Value::Num(self.rhs_total as f64)),
            (
                "reduction_total_s".to_string(),
                Value::Num(self.reduction_total_s),
            ),
            (
                "per_worker_jobs".to_string(),
                Value::Array(
                    self.per_worker_jobs
                        .iter()
                        .map(|&n| Value::Num(n as f64))
                        .collect(),
                ),
            ),
            (
                "per_node_jobs".to_string(),
                Value::Array(
                    self.per_node_jobs
                        .iter()
                        .map(|&n| Value::Num(n as f64))
                        .collect(),
                ),
            ),
            (
                "shed_overloaded".to_string(),
                Value::Num(self.shed_overloaded as f64),
            ),
            ("shed_quota".to_string(), Value::Num(self.shed_quota as f64)),
            (
                "refined_jobs".to_string(),
                Value::Num(self.refined_jobs as f64),
            ),
            (
                "escalations".to_string(),
                Value::Num(self.escalations as f64),
            ),
            (
                "host_fp64_total_s".to_string(),
                Value::Num(self.host_fp64_total_s),
            ),
            (
                "autotuned_jobs".to_string(),
                Value::Num(self.autotuned_jobs as f64),
            ),
            (
                "autotune_decision_hits".to_string(),
                Value::Num(self.autotune_decision_hits as f64),
            ),
            (
                "autotune_fallbacks".to_string(),
                Value::Num(self.autotune_fallbacks as f64),
            ),
            (
                "analysis_total_s".to_string(),
                Value::Num(self.analysis_total_s),
            ),
            (
                "faults_detected".to_string(),
                Value::Num(self.faults_detected as f64),
            ),
            (
                "fault_retries".to_string(),
                Value::Num(self.fault_retries as f64),
            ),
            (
                "degraded_jobs".to_string(),
                Value::Num(self.degraded_jobs as f64),
            ),
            (
                "rerouted_jobs".to_string(),
                Value::Num(self.rerouted_jobs as f64),
            ),
            (
                "chips_killed".to_string(),
                Value::Num(self.chips_killed as f64),
            ),
            ("seq_steps".to_string(), Value::Num(self.seq_steps as f64)),
            (
                "warm_start_hits".to_string(),
                Value::Num(self.warm_start_hits as f64),
            ),
            (
                "blocks_reencoded".to_string(),
                Value::Num(self.blocks_reencoded as f64),
            ),
            (
                "blocks_reused".to_string(),
                Value::Num(self.blocks_reused as f64),
            ),
            (
                "seq_decision_cache_hits".to_string(),
                Value::Num(self.seq_decision_cache_hits as f64),
            ),
            ("metrics".to_string(), self.metrics.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 0.50), 50.0);
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn percentile_edge_cases_are_robust() {
        // Empty and single-sample inputs.
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 1.0), 0.0);
        assert_eq!(percentile(&[3.5], 0.0), 3.5);
        assert_eq!(percentile(&[3.5], 0.5), 3.5);
        assert_eq!(percentile(&[3.5], 1.0), 3.5);
        // Non-finite samples are filtered instead of panicking the sort.
        assert_eq!(percentile(&[f64::NAN, 2.0, 1.0], 1.0), 2.0);
        assert_eq!(percentile(&[f64::INFINITY, 2.0, 1.0], 0.0), 1.0);
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 0.5), 0.0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn percentile_clamps_out_of_range_quantiles_in_release() {
        let samples = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&samples, -0.5), 1.0);
        assert_eq!(percentile(&samples, 7.0), 3.0);
        assert_eq!(percentile(&samples, f64::NAN), 1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside [0, 1]")]
    fn percentile_flags_out_of_range_quantiles_in_debug() {
        let _ = percentile(&[1.0], 1.5);
    }

    fn telemetry(job_id: u64, worker: usize, refined: bool) -> JobTelemetry {
        let simulated = SimulatedRun {
            cycles: 100,
            compute_s: 1e-6,
            stream_write_s: 0.0,
            program_s: 0.0,
            reduction_s: 0.0,
            host_fp64_s: if refined { 2e-6 } else { 0.0 },
            total_s: 3e-6,
            remapped: false,
        };
        let refinement = refined.then(|| RefinementTelemetry {
            outer_iterations: 3,
            inner_iterations: 30,
            escalations: 1,
            final_level: "fp64 (exact)".to_string(),
            fp64_spmvs: 3,
            final_relative_residual: 1e-13,
            stalled: false,
        });
        JobTelemetry {
            job_id,
            tenant: "t".to_string(),
            matrix: "m".to_string(),
            worker,
            node: 0,
            solver: SolverKind::Cg,
            priority: Priority::Standard,
            shards: 1,
            rhs_count: 1,
            cache: CacheOutcomeKind::Hit,
            queue_wait_s: 1e-4 * (job_id + 1) as f64,
            encode_s: 0.0,
            solve_s: 1e-3,
            latency_s: 2e-3,
            iterations: 10,
            converged: true,
            simulated,
            refinement,
            autotune: None,
            faults_detected: 0,
            fault_retries: 0,
            sequence: None,
        }
    }

    #[test]
    fn render_always_prints_the_reliability_line() {
        // Zero-fault run: the line is present with all-zero counters, so report
        // snapshots keep a stable schema whether or not a fault model is on.
        let jobs = vec![telemetry(0, 0, false)];
        let clean = RuntimeReport::aggregate(
            &jobs,
            AggregateContext {
                wall_s: 0.1,
                ..Default::default()
            },
        );
        assert!(clean.render().contains(
            "reliability     0 faults detected, 0 retries, 0 degraded, 0 rerouted, 0 chips killed"
        ));

        // Faulty run: the same line carries the counts.
        let mut faulty_job = telemetry(1, 0, false);
        faulty_job.faults_detected = 12;
        faulty_job.fault_retries = 2;
        let faulty = RuntimeReport::aggregate(
            &[faulty_job],
            AggregateContext {
                wall_s: 0.1,
                degraded_jobs: 1,
                rerouted_jobs: 3,
                chips_killed: 1,
                ..Default::default()
            },
        );
        let rendered = faulty.render();
        assert!(rendered.contains(
            "reliability     12 faults detected, 2 retries, 1 degraded, 3 rerouted, 1 chips killed"
        ));
        assert_eq!(faulty.faults_detected, 12);
        assert_eq!(faulty.fault_retries, 2);
        assert_eq!(
            faulty.metrics.counter(metric_names::FAULTS_DETECTED),
            Some(12)
        );
        assert_eq!(faulty.metrics.counter(metric_names::JOBS_DEGRADED), Some(1));
        assert_eq!(faulty.metrics.counter(metric_names::JOBS_REROUTED), Some(3));
        assert_eq!(faulty.metrics.counter(metric_names::CHIPS_KILLED), Some(1));
    }

    #[test]
    fn aggregate_worker_attribution_sums_to_jobs() {
        let jobs = vec![
            telemetry(0, 0, false),
            telemetry(1, 1, true),
            telemetry(2, 1, false),
        ];
        let report = RuntimeReport::aggregate(
            &jobs,
            AggregateContext {
                wall_s: 0.1,
                workers: 2,
                queue_depth_peak: 3,
                ..Default::default()
            },
        );
        let attributed: u64 = report.per_worker_jobs.iter().sum();
        assert_eq!(attributed + report.unattributed_jobs, report.jobs as u64);
        assert_eq!(report.unattributed_jobs, 0);
        assert_eq!(report.refined_jobs, 1);
        assert_eq!(report.escalations, 1);
        assert!((report.host_fp64_total_s - 2e-6).abs() < 1e-18);
        assert!(report.render().contains("1 refined jobs"));
    }

    #[test]
    fn aggregate_reports_queue_wait_tails_depth_and_priority_lanes() {
        let mut jobs: Vec<JobTelemetry> = (0..10).map(|i| telemetry(i, 0, false)).collect();
        jobs[9].priority = Priority::Interactive;
        jobs[9].queue_wait_s = 1e-6;
        let report = RuntimeReport::aggregate(
            &jobs,
            AggregateContext {
                wall_s: 0.1,
                workers: 1,
                queue_depth_peak: 7,
                cancelled_jobs: 2,
                ..Default::default()
            },
        );
        // Nearest-rank p99 of 10 samples is the maximum standard-lane wait (1 ms).
        assert!(report.queue_wait_p99_s >= report.queue_wait_p50_s);
        assert!((report.queue_wait_p99_s - 9e-4).abs() < 1e-12);
        assert_eq!(report.queue_depth_peak, 7);
        assert_eq!(report.cancelled_jobs, 2);
        // All three lanes are always present; the batch lane saw no traffic.
        assert_eq!(report.per_priority.len(), 3);
        let interactive = &report.per_priority[0];
        assert_eq!(interactive.priority, Priority::Interactive);
        assert_eq!(interactive.jobs, 1);
        assert!((interactive.queue_wait_p99_s - 1e-6).abs() < 1e-15);
        let standard = &report.per_priority[1];
        assert_eq!(standard.priority, Priority::Standard);
        assert_eq!(standard.jobs, 9);
        let batch = &report.per_priority[2];
        assert_eq!(batch.priority, Priority::Batch);
        assert_eq!(batch.jobs, 0);
        assert_eq!(batch.queue_wait_p99_s, 0.0);
        // The metrics snapshot backs the aggregation and agrees with it.
        assert_eq!(
            report.metrics.counter(metric_names::JOBS_COMPLETED),
            Some(report.jobs as u64)
        );
        assert_eq!(
            report.metrics.counter(metric_names::JOBS_CANCELLED),
            Some(2)
        );
        let rendered = report.render();
        assert!(rendered.contains("p99"));
        assert!(rendered.contains("peak depth 7"));
        assert!(rendered.contains("interactive"));
        assert!(rendered.contains("batch"));
        assert!(rendered.contains("cancelled       2 jobs"));
        assert!(rendered.contains("unattributed    0 jobs"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "attributed to worker")]
    fn aggregate_flags_out_of_range_worker_indices_in_debug() {
        let jobs = vec![telemetry(0, 5, false)];
        let _ = RuntimeReport::aggregate(
            &jobs,
            AggregateContext {
                wall_s: 0.1,
                workers: 2,
                queue_depth_peak: 1,
                ..Default::default()
            },
        );
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn aggregate_counts_unattributed_jobs_in_release() {
        let jobs = vec![telemetry(0, 5, false), telemetry(1, 0, false)];
        let report = RuntimeReport::aggregate(
            &jobs,
            AggregateContext {
                wall_s: 0.1,
                workers: 2,
                queue_depth_peak: 2,
                ..Default::default()
            },
        );
        assert_eq!(report.unattributed_jobs, 1);
        let attributed: u64 = report.per_worker_jobs.iter().sum();
        assert_eq!(attributed + report.unattributed_jobs, report.jobs as u64);
        assert!(report.render().contains("WARNING"));
    }
}
