//! A blocking bounded MPMC queue (`Mutex` + `Condvar`, no async runtime).
//!
//! Producers block while the queue is at capacity — this is the service's
//! backpressure; consumers block while it is empty.  [`BoundedQueue::close`] wakes
//! everyone: pending items are still drained, further pushes fail.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use refloat_telemetry::sync;

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        sync::lock(&self.state).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues an item, blocking while the queue is full.  Returns the item back if
    /// the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = sync::lock(&self.state);
        while state.items.len() >= self.capacity && !state.closed {
            state = sync::wait(&self.not_full, state);
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues an item, blocking while the queue is empty and open.  Returns `None`
    /// once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = sync::lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = sync::wait(&self.not_empty, state);
        }
    }

    /// Closes the queue: consumers drain what is left, producers fail fast.
    pub fn close(&self) {
        sync::lock(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_within_a_single_consumer() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn push_after_close_returns_the_item() {
        let q = BoundedQueue::new(2);
        q.close();
        assert_eq!(q.push(7), Err(7));
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        let q = BoundedQueue::new(2);
        let produced = AtomicUsize::new(0);
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..100 {
                    q.push(i).unwrap();
                    produced.fetch_add(1, Ordering::SeqCst);
                    // The producer can never be more than capacity + 1 ahead (one item
                    // may be in-flight at the consumer).
                    let ahead = produced.load(Ordering::SeqCst) as i64
                        - consumed.load(Ordering::SeqCst) as i64;
                    assert!(
                        ahead <= 3,
                        "producer ran {ahead} ahead of a capacity-2 queue"
                    );
                }
                q.close();
            });
            scope.spawn(|| {
                while let Some(_item) = q.pop() {
                    consumed.fetch_add(1, Ordering::SeqCst);
                }
            });
        });
        assert_eq!(consumed.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn close_wakes_producers_blocked_on_a_full_queue_without_losing_items() {
        // Contention regression: several producers sit *blocked inside push* on a full
        // queue when close() fires.  Every blocked producer must wake promptly and get
        // its item handed back (Err), the accepted items must all drain, and nothing
        // may be lost or duplicated.
        let q = BoundedQueue::new(2);
        q.push(1000).unwrap();
        q.push(1001).unwrap();
        let accepted = AtomicUsize::new(2);
        let rejected = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for i in 0..4 {
                let q = &q;
                let accepted = &accepted;
                let rejected = &rejected;
                scope.spawn(move || match q.push(i) {
                    Ok(()) => {
                        accepted.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(item) => {
                        assert_eq!(item, i, "a rejected push must return its own item");
                        rejected.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            // Give the producers time to block on the full queue, then close.  If
            // close() failed to wake them, the scope join below would hang the test.
            std::thread::sleep(std::time::Duration::from_millis(50));
            q.close();
        });
        // All four contended producers returned; the queue still drains fully.
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained.len(), accepted.load(Ordering::SeqCst));
        assert_eq!(
            accepted.load(Ordering::SeqCst) + rejected.load(Ordering::SeqCst),
            2 + 4
        );
        // The two pre-close items were accepted and must be among the drained ones.
        assert!(drained.contains(&1000) && drained.contains(&1001));
        // No duplicates.
        let mut unique = drained.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), drained.len());
        // Post-close pushes fail fast.
        assert_eq!(q.push(7), Err(7));
    }

    #[test]
    fn close_wakes_consumers_blocked_on_an_empty_queue_and_drains_late_items() {
        // Contention regression: several consumers sit *blocked inside pop* on an
        // empty queue; items are pushed while they wait, then the queue closes.  All
        // consumers must wake promptly, the pushed items must be consumed exactly
        // once, and every consumer must observe the closed-and-drained None.
        let q = BoundedQueue::new(4);
        let consumed_total = AtomicUsize::new(0);
        let consumed_count = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let q = &q;
                let consumed_total = &consumed_total;
                let consumed_count = &consumed_count;
                scope.spawn(move || {
                    while let Some(item) = q.pop() {
                        consumed_total.fetch_add(item, Ordering::SeqCst);
                        consumed_count.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            // Let the consumers block on the empty queue first.
            std::thread::sleep(std::time::Duration::from_millis(50));
            q.push(10).unwrap();
            q.push(20).unwrap();
            // Close with consumers still (potentially) parked.  If close() failed to
            // wake them, the scope join would hang the test.
            q.close();
        });
        assert_eq!(consumed_count.load(Ordering::SeqCst), 2);
        assert_eq!(consumed_total.load(Ordering::SeqCst), 30);
        assert!(q.is_empty());
        assert_eq!(
            q.pop(),
            None,
            "a closed, drained queue keeps returning None"
        );
    }

    #[test]
    fn multiple_consumers_drain_everything_exactly_once() {
        let q = BoundedQueue::new(4);
        let total = AtomicUsize::new(0);
        let count = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(item) = q.pop() {
                        total.fetch_add(item, Ordering::SeqCst);
                        count.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            for i in 1..=64 {
                q.push(i).unwrap();
            }
            q.close();
        });
        assert_eq!(count.load(Ordering::SeqCst), 64);
        assert_eq!(total.load(Ordering::SeqCst), 64 * 65 / 2);
    }
}
