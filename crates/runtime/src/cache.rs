//! The encoded-matrix cache: an LRU of quantized [`ReFloatMatrix`] operators keyed by
//! (matrix fingerprint, shard, format), with in-flight deduplication.
//!
//! Quantizing a matrix (`ReFloatMatrix::from_csr`) walks every non-zero through
//! exponent-base selection and fraction encoding — by far the most expensive step of a
//! cached job.  Repeated jobs on a popular matrix therefore share one encode:
//!
//! * a lookup that finds the entry is a **hit** (zero encode cost);
//! * the first lookup of a missing key is a **miss** — it encodes outside the lock;
//! * lookups racing with an in-progress encode **coalesce**: they block until the
//!   encoder publishes the entry instead of duplicating the work.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Condvar, Mutex};

use refloat_core::{ReFloatConfig, ReFloatMatrix};
use refloat_telemetry::{sync, Clock};

/// Which slice of a matrix an encoding covers: shard `index` of a `count`-way
/// block-row partition.  The unsharded operator is shard 0 of 1.
///
/// Shard identity (not the row range) is what keys the cache: the partitioner is a
/// pure function of `(matrix, b, count)`, so `(fingerprint, index, count)` pins the
/// row band exactly, while keys stay `Copy` and hashable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId {
    /// Shard index within the partition (`< count`).
    pub index: u32,
    /// Number of shards in the partition.
    pub count: u32,
}

impl ShardId {
    /// The whole (unsharded) matrix: shard 0 of 1.
    pub const WHOLE: ShardId = ShardId { index: 0, count: 1 };

    /// Shard `index` of a `count`-way partition.
    pub fn of(index: u32, count: u32) -> Self {
        assert!(count >= 1 && index < count, "shard {index} of {count}");
        ShardId { index, count }
    }

    /// Whether this is the unsharded whole-matrix encoding.
    pub fn is_whole(&self) -> bool {
        self.count == 1
    }
}

/// Cache key: (matrix content fingerprint, shard, ReFloat format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// Content hash of the matrix (structure + values).
    pub fingerprint: u64,
    /// Which block-row shard of the matrix the encoding covers.
    pub shard: ShardId,
    /// The ReFloat format of the encoding.
    pub format: ReFloatConfig,
}

impl CacheKey {
    /// Key of the unsharded encoding of a matrix in a format.
    pub fn whole(fingerprint: u64, format: ReFloatConfig) -> Self {
        CacheKey {
            fingerprint,
            shard: ShardId::WHOLE,
            format,
        }
    }

    /// Key of one shard's encoding.
    pub fn sharded(fingerprint: u64, shard: ShardId, format: ReFloatConfig) -> Self {
        CacheKey {
            fingerprint,
            shard,
            format,
        }
    }
}

/// How one lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheOutcome {
    /// The encoded matrix was already cached.
    Hit,
    /// This lookup performed the encode (seconds spent encoding).
    Miss {
        /// Wall-clock seconds this caller spent in `ReFloatMatrix::from_csr`.
        encode_seconds: f64,
    },
    /// Another worker was already encoding this key; this lookup waited for it.
    Coalesced,
}

impl CacheOutcome {
    /// `true` unless this lookup paid for the encode itself.
    pub fn skipped_encode(&self) -> bool {
        !matches!(self, CacheOutcome::Miss { .. })
    }
}

/// Monotonic cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that performed an encode.
    pub misses: u64,
    /// Lookups that waited for a concurrent encode of the same key.
    pub coalesced: u64,
    /// Entries dropped by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// Fraction of lookups that skipped the encode (hits + coalesced).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            return 0.0;
        }
        (self.hits + self.coalesced) as f64 / lookups as f64
    }

    /// Counter increments since an earlier snapshot of the same cache.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            coalesced: self.coalesced - earlier.coalesced,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

struct CacheEntry {
    matrix: Arc<ReFloatMatrix>,
    last_used: u64,
}

struct CacheInner {
    /// Ordered map so iteration (the LRU victim scan) visits keys deterministically.
    map: BTreeMap<CacheKey, CacheEntry>,
    /// Keys currently being encoded by some caller.
    pending: BTreeSet<CacheKey>,
    /// Logical clock for LRU recency.
    tick: u64,
    stats: CacheStats,
}

/// A thread-safe LRU cache of encoded matrices.  See the module docs.
pub struct EncodedMatrixCache {
    inner: Mutex<CacheInner>,
    ready: Condvar,
    capacity: usize,
}

impl EncodedMatrixCache {
    /// Creates a cache holding at most `capacity` encoded matrices.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        EncodedMatrixCache {
            inner: Mutex::new(CacheInner {
                map: BTreeMap::new(),
                pending: BTreeSet::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of cached entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        sync::lock(&self.inner).map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        sync::lock(&self.inner).stats
    }

    /// Whether a key is currently cached (does not touch recency).
    pub fn contains(&self, key: &CacheKey) -> bool {
        sync::lock(&self.inner).map.contains_key(key)
    }

    /// Non-counting lookup: the cached encoding for `key` if present.  Refreshes LRU
    /// recency but records neither hit nor miss — sequence steps use it to probe for
    /// a predecessor's encoding without skewing the hit-rate statistics.
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<ReFloatMatrix>> {
        let mut inner = sync::lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.matrix)
        })
    }

    /// Returns the encoded matrix for `key`, calling `encode` (outside the lock) only
    /// if no other caller has cached or is currently encoding it.  Encode timing is
    /// read from `clock` so a `ManualClock` run reports exactly-zero encode seconds.
    pub fn get_or_encode<F>(
        &self,
        key: CacheKey,
        clock: &dyn Clock,
        encode: F,
    ) -> (Arc<ReFloatMatrix>, CacheOutcome)
    where
        F: FnOnce() -> ReFloatMatrix,
    {
        let mut inner = sync::lock(&self.inner);
        let mut waited = false;
        loop {
            if inner.map.contains_key(&key) {
                inner.tick += 1;
                let tick = inner.tick;
                // refloat-analysis: allow(panic-in-service-path) — key presence was
                // checked two lines above under the same guard.
                let entry = inner.map.get_mut(&key).expect("entry just found");
                entry.last_used = tick;
                let matrix = Arc::clone(&entry.matrix);
                let outcome = if waited {
                    inner.stats.coalesced += 1;
                    CacheOutcome::Coalesced
                } else {
                    inner.stats.hits += 1;
                    CacheOutcome::Hit
                };
                return (matrix, outcome);
            }
            if inner.pending.contains(&key) {
                waited = true;
                inner = sync::wait(&self.ready, inner);
                continue;
            }
            inner.pending.insert(key);
            break;
        }
        drop(inner);

        // Encode outside the lock; the guard unblocks waiters if `encode` panics (they
        // will then race to encode themselves).  On the success path the guard is
        // disarmed and the pending marker is cleared in the *same* critical section
        // that publishes the entry — clearing it first would let a waiter wake, find
        // neither entry nor marker, and start a redundant second encode.
        let mut guard = PendingGuard {
            cache: self,
            key,
            armed: true,
        };
        let started_s = clock.now_s();
        let matrix = Arc::new(encode());
        let encode_seconds = (clock.now_s() - started_s).max(0.0);

        let mut inner = sync::lock(&self.inner);
        guard.armed = false;
        inner.pending.remove(&key);
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            CacheEntry {
                matrix: Arc::clone(&matrix),
                last_used: tick,
            },
        );
        inner.stats.misses += 1;
        while inner.map.len() > self.capacity {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                    inner.stats.evictions += 1;
                }
                None => break,
            }
        }
        drop(inner);
        self.ready.notify_all();
        (matrix, CacheOutcome::Miss { encode_seconds })
    }
}

/// Removes the pending mark (and wakes waiters) if the encode unwinds; disarmed on the
/// success path, where the marker is cleared together with the entry insert.
struct PendingGuard<'a> {
    cache: &'a EncodedMatrixCache,
    key: CacheKey,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        sync::lock(&self.cache.inner).pending.remove(&self.key);
        self.cache.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::generators;
    use refloat_sparse::CsrMatrix;
    use refloat_telemetry::WallClock;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn matrix(n: usize) -> CsrMatrix {
        generators::laplacian_2d(n, n, 0.2).to_csr()
    }

    fn key(tag: u64) -> CacheKey {
        CacheKey::whole(tag, ReFloatConfig::new(3, 3, 8, 3, 8))
    }

    fn encoded(n: usize) -> ReFloatMatrix {
        ReFloatMatrix::from_csr(&matrix(n), ReFloatConfig::new(3, 3, 8, 3, 8))
    }

    #[test]
    fn second_lookup_is_a_hit_and_skips_the_encoder() {
        let cache = EncodedMatrixCache::new(4);
        let encodes = AtomicU64::new(0);
        let clock = WallClock::new();
        let run = |cache: &EncodedMatrixCache| {
            cache.get_or_encode(key(1), &clock, || {
                encodes.fetch_add(1, Ordering::SeqCst);
                encoded(4)
            })
        };
        let (_, first) = run(&cache);
        assert!(matches!(first, CacheOutcome::Miss { .. }));
        let (_, second) = run(&cache);
        assert_eq!(second, CacheOutcome::Hit);
        assert_eq!(encodes.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cache = EncodedMatrixCache::new(2);
        let clock = WallClock::new();
        cache.get_or_encode(key(1), &clock, || encoded(4));
        cache.get_or_encode(key(2), &clock, || encoded(4));
        cache.get_or_encode(key(1), &clock, || encoded(4)); // touch 1; 2 becomes LRU
        cache.get_or_encode(key(3), &clock, || encoded(4)); // evicts 2
        assert!(cache.contains(&key(1)));
        assert!(!cache.contains(&key(2)));
        assert!(cache.contains(&key(3)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn concurrent_lookups_of_one_key_encode_exactly_once() {
        let cache = EncodedMatrixCache::new(4);
        let clock = WallClock::new();
        let encodes = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_encode(key(7), &clock, || {
                        encodes.fetch_add(1, Ordering::SeqCst);
                        // A non-trivial encode so the other threads actually race it.
                        encoded(24)
                    });
                });
            }
        });
        assert_eq!(encodes.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, 7);
        assert_eq!(stats.hit_rate(), 7.0 / 8.0);
    }

    #[test]
    fn distinct_formats_are_distinct_entries() {
        let cache = EncodedMatrixCache::new(4);
        let clock = WallClock::new();
        let fp = 99u64;
        cache.get_or_encode(
            CacheKey::whole(fp, ReFloatConfig::new(3, 3, 3, 3, 8)),
            &clock,
            || encoded(4),
        );
        cache.get_or_encode(
            CacheKey::whole(fp, ReFloatConfig::new(3, 3, 8, 3, 8)),
            &clock,
            || encoded(4),
        );
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn distinct_shards_are_distinct_entries() {
        let cache = EncodedMatrixCache::new(8);
        let clock = WallClock::new();
        let fp = 7u64;
        let format = ReFloatConfig::new(3, 3, 8, 3, 8);
        cache.get_or_encode(CacheKey::whole(fp, format), &clock, || encoded(4));
        cache.get_or_encode(
            CacheKey::sharded(fp, ShardId::of(0, 2), format),
            &clock,
            || encoded(4),
        );
        cache.get_or_encode(
            CacheKey::sharded(fp, ShardId::of(1, 2), format),
            &clock,
            || encoded(4),
        );
        // The same shard again is a hit.
        let (_, outcome) = cache.get_or_encode(
            CacheKey::sharded(fp, ShardId::of(1, 2), format),
            &clock,
            || encoded(4),
        );
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(cache.len(), 3);
        assert!(ShardId::WHOLE.is_whole() && !ShardId::of(1, 2).is_whole());
    }
}
