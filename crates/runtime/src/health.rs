//! Fault policy and fleet health tracking: the runtime half of the device fault
//! model in `reram_sim::fault`.
//!
//! A [`FaultPolicy`] on [`RuntimeConfig`](crate::RuntimeConfig) turns fault
//! injection on for every worker chip: plain unsharded solves then run through a
//! [`FaultyReFloatOperator`](reram_sim::FaultyReFloatOperator) (spare remapping,
//! residual corruption, drift, optional ABFT checksum test) instead of the clean
//! encoded operator.  `None` — the default — leaves every execution path
//! bit-identical to the fault-free runtime.
//!
//! The [`HealthTracker`] is the fleet-wide ledger those workers feed: ABFT
//! detections, re-encode retries, per-chip degradation scores, and administrative
//! chip kills.  A single-node client owns one; a cluster shares one across all
//! nodes so the router can fold [`NodeHealthSignal`]s into placement
//! ([`Router::place_with_health`](crate::cluster::Router::place_with_health)) and
//! steer shards away from degraded or dead nodes.
//!
//! # What a kill means to a job
//!
//! [`SolveClient::kill_chip`](crate::SolveClient::kill_chip) marks one worker's
//! chip dead.  A killed chip never loses or corrupts a job: the worker checks the
//! tracker after every dequeue and either **re-routes** the job back through its
//! scheduler to a surviving worker (counted in `jobs_rerouted`) or — when no live
//! worker remains on the node — resolves the ticket with the typed
//! [`TicketOutcome::Degraded`](crate::TicketOutcome) outcome (counted in
//! `jobs_degraded`).  Degraded jobs carry no telemetry row, exactly like
//! cancelled jobs: the report's `jobs` field counts clean completions only.

use std::collections::BTreeMap;
use std::sync::Mutex;

use refloat_telemetry::sync;
use reram_sim::FaultModelConfig;

/// Crossbar grid size the runtime builds chip fault state with.  Only the health
/// probe depends on it (the faulty operator samples crossbars at the encoding's
/// own block size), so it is a fixed modeling constant, not a config knob.
pub const CROSSBAR_GRID: usize = 128;

/// Fault-injection knobs of a runtime (set [`RuntimeConfig::fault`](crate::RuntimeConfig)).
#[derive(Debug, Clone, Copy)]
pub struct FaultPolicy {
    /// The persistent device fault model (stuck cells, drift, wear).
    pub model: FaultModelConfig,
    /// Program the ABFT checksum column alongside every block and run the residual
    /// test after every SpMV (costs one extra cycle per block-MVM).
    pub abft: bool,
    /// Relative residual threshold of the ABFT test.  Clean applies sit near
    /// machine epsilon, so the 1e-8 default has huge margin on both sides.
    pub abft_threshold: f64,
    /// Spare rows per crossbar available for remapping around stuck cells.
    pub spare_rows: u16,
    /// Spare columns per crossbar available for remapping.
    pub spare_cols: u16,
    /// How many times a checksum-failing solve is retried with a fresh re-encode
    /// onto spare resources before the job resolves as `Degraded`.
    pub max_retries: u32,
}

impl FaultPolicy {
    /// A realistic policy: [`FaultModelConfig::realistic`] rates, ABFT on at 1e-8,
    /// two spare rows and columns per crossbar, two retries.
    pub fn realistic(seed: u64) -> Self {
        FaultPolicy {
            model: FaultModelConfig::realistic(seed),
            abft: true,
            abft_threshold: 1e-8,
            spare_rows: 2,
            spare_cols: 2,
            max_retries: 2,
        }
    }

    /// Builder: disable the ABFT checksum test (faults then corrupt silently — the
    /// control arm of `fig_faults`).
    pub fn without_abft(mut self) -> Self {
        self.abft = false;
        self
    }

    /// Builder: override the fault model.
    pub fn with_model(mut self, model: FaultModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Builder: override the retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// The spare budget handed to the remap planner.
    pub fn spares(&self) -> refloat_core::SpareBudget {
        refloat_core::SpareBudget {
            rows: self.spare_rows as usize,
            cols: self.spare_cols as usize,
        }
    }
}

/// Everything the tracker knows about one worker's chip.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChipHealthRecord {
    /// ABFT checksum failures detected on this chip.
    pub detections: u64,
    /// Detected-corruption retries that re-encoded onto spare resources.
    pub re_encodes: u64,
    /// The chip's last reported degradation score (see
    /// [`HealthSummary::degradation`](reram_sim::HealthSummary)).
    pub degradation: f64,
    /// Whether the chip was administratively killed.
    pub killed: bool,
}

/// The per-node health aggregate the cluster router folds into placement.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeHealthSignal {
    /// Workers on the node whose chip is not killed.
    pub live_workers: usize,
    /// Workers on the node in total.
    pub workers: usize,
    /// Summed degradation score over the node's chips.
    pub degradation: f64,
    /// Summed ABFT detections over the node's chips.
    pub detections: u64,
}

impl NodeHealthSignal {
    /// Whether the node can execute anything at all.
    pub fn alive(&self) -> bool {
        self.live_workers > 0
    }
}

/// The fleet-wide health ledger, keyed by pool-global worker id.
///
/// Shared by every node of a cluster (one `Arc`), fed by workers (detections,
/// re-encodes, degradation) and the client (`kill_chip`), read by the router
/// (per-node signals) and the killed-chip protocol in the worker loop.  All
/// methods take `&self`; the map behind the single `health` mutex is only ever
/// held for the duration of one method (a leaf in the declared lock order —
/// in the cluster submit path it is read strictly before the router's
/// `placement` lock).
#[derive(Debug, Default)]
pub struct HealthTracker {
    /// Lock-order "health": declared before `placement` in `lock_order.toml`.
    health: Mutex<BTreeMap<usize, ChipHealthRecord>>,
}

impl HealthTracker {
    /// An empty ledger (every chip implicitly pristine and alive).
    pub fn new() -> Self {
        HealthTracker::default()
    }

    /// Records `count` ABFT detections on `worker`'s chip.
    pub fn record_detections(&self, worker: usize, count: u64) {
        if count == 0 {
            return;
        }
        sync::lock(&self.health)
            .entry(worker)
            .or_default()
            .detections += count;
    }

    /// Records one re-encode retry on `worker`'s chip.
    pub fn record_re_encode(&self, worker: usize) {
        sync::lock(&self.health)
            .entry(worker)
            .or_default()
            .re_encodes += 1;
    }

    /// Updates `worker`'s degradation score (from a fresh
    /// [`DeviceHealth`](reram_sim::DeviceHealth) probe).
    pub fn update_degradation(&self, worker: usize, score: f64) {
        sync::lock(&self.health)
            .entry(worker)
            .or_default()
            .degradation = score;
    }

    /// Marks `worker`'s chip dead.  Returns `true` the first time (the kill), and
    /// `false` when the chip was already dead (idempotent).
    pub fn kill_chip(&self, worker: usize) -> bool {
        let mut health = sync::lock(&self.health);
        let record = health.entry(worker).or_default();
        let newly = !record.killed;
        record.killed = true;
        newly
    }

    /// Whether `worker`'s chip was killed.
    pub fn is_killed(&self, worker: usize) -> bool {
        sync::lock(&self.health)
            .get(&worker)
            .map(|r| r.killed)
            .unwrap_or(false)
    }

    /// A copy of `worker`'s record (default/pristine when never touched).
    pub fn chip(&self, worker: usize) -> ChipHealthRecord {
        sync::lock(&self.health)
            .get(&worker)
            .copied()
            .unwrap_or_default()
    }

    /// Workers in `[base, base + count)` whose chip is not killed.
    pub fn live_workers_in(&self, base: usize, count: usize) -> usize {
        let health = sync::lock(&self.health);
        (base..base + count)
            .filter(|w| !health.get(w).map(|r| r.killed).unwrap_or(false))
            .count()
    }

    /// Aggregates the health of workers `[base, base + count)` into one node
    /// signal for the router.
    pub fn node_signal(&self, base: usize, count: usize) -> NodeHealthSignal {
        let health = sync::lock(&self.health);
        let mut signal = NodeHealthSignal {
            live_workers: 0,
            workers: count,
            degradation: 0.0,
            detections: 0,
        };
        for w in base..base + count {
            match health.get(&w) {
                Some(r) => {
                    if !r.killed {
                        signal.live_workers += 1;
                    }
                    signal.degradation += r.degradation;
                    signal.detections += r.detections;
                }
                None => signal.live_workers += 1,
            }
        }
        signal
    }

    /// Total ABFT detections across the fleet.
    pub fn total_detections(&self) -> u64 {
        let health = sync::lock(&self.health);
        let mut total = 0;
        for record in health.values() {
            total += record.detections;
        }
        total
    }

    /// Total re-encode retries across the fleet.
    pub fn total_re_encodes(&self) -> u64 {
        let health = sync::lock(&self.health);
        let mut total = 0;
        for record in health.values() {
            total += record.re_encodes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kills_are_idempotent_and_visible() {
        let tracker = HealthTracker::new();
        assert!(!tracker.is_killed(3));
        assert!(tracker.kill_chip(3), "first kill reports true");
        assert!(!tracker.kill_chip(3), "second kill is a no-op");
        assert!(tracker.is_killed(3));
        assert!(!tracker.is_killed(4));
    }

    #[test]
    fn node_signals_aggregate_only_their_worker_range() {
        let tracker = HealthTracker::new();
        // Node 0 owns workers 0..2, node 1 owns workers 2..4.
        tracker.record_detections(0, 5);
        tracker.update_degradation(1, 0.25);
        tracker.kill_chip(2);
        tracker.record_re_encode(3);

        let n0 = tracker.node_signal(0, 2);
        assert_eq!(n0.live_workers, 2);
        assert_eq!(n0.detections, 5);
        assert!((n0.degradation - 0.25).abs() < 1e-15);
        assert!(n0.alive());

        let n1 = tracker.node_signal(2, 2);
        assert_eq!(n1.live_workers, 1);
        assert_eq!(n1.detections, 0);
        assert_eq!(tracker.live_workers_in(2, 2), 1);

        tracker.kill_chip(3);
        assert!(!tracker.node_signal(2, 2).alive());
    }

    #[test]
    fn counters_accumulate_per_chip_and_fleet_wide() {
        let tracker = HealthTracker::new();
        tracker.record_detections(0, 2);
        tracker.record_detections(0, 3);
        tracker.record_detections(7, 1);
        tracker.record_re_encode(0);
        assert_eq!(tracker.chip(0).detections, 5);
        assert_eq!(tracker.chip(0).re_encodes, 1);
        assert_eq!(tracker.chip(7).detections, 1);
        assert_eq!(tracker.total_detections(), 6);
        assert_eq!(tracker.total_re_encodes(), 1);
        assert_eq!(tracker.chip(9), ChipHealthRecord::default());
    }

    #[test]
    fn policy_builders_compose() {
        let policy = FaultPolicy::realistic(11)
            .without_abft()
            .with_max_retries(0);
        assert!(!policy.abft);
        assert_eq!(policy.max_retries, 0);
        assert_eq!(policy.spares().rows, 2);
        let custom = FaultPolicy::realistic(11).with_model(FaultModelConfig::pristine(11));
        assert_eq!(custom.model.stuck_low_rate, 0.0);
    }
}
