//! Admission control: per-tenant fair-share quotas and a cluster-wide in-system
//! bound, layered *on top of* the per-node QoS scheduling.
//!
//! The QoS queue decides *which* admitted job runs next; admission control decides
//! whether a submission gets to queue at all.  Under sustained overload an
//! unbounded queue converts every tenant's latency into the backlog's — so past the
//! configured bound the cluster **sheds** with a typed
//! [`SubmitError`](crate::SubmitError) instead of queueing toward collapse, and a
//! single tenant flooding the cluster exhausts its own quota long before it can
//! starve the rest.
//!
//! Accounting is permit-based: [`TenantLedger::try_admit`] hands back an
//! [`AdmissionPermit`] whose `Drop` refunds the tenant exactly once, so every exit
//! path — completion, cancellation, even a panicked worker — releases the slot
//! without bespoke bookkeeping at each site.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use refloat_telemetry::{sync, Gauge};

/// The admission bounds a cluster enforces at submit time.
///
/// `None` disables a bound.  The defaults admit everything — admission control is
/// opt-in, so a cluster without explicit bounds behaves like N independent nodes
/// behind a router.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionConfig {
    /// Cluster-wide cap on jobs in system (queued + running).  Submissions beyond
    /// it are shed with [`SubmitError::Overloaded`](crate::SubmitError).
    pub max_in_system: Option<usize>,
    /// Per-tenant cap on jobs in system.  Submissions beyond it are shed with
    /// [`SubmitError::QuotaExceeded`](crate::SubmitError); other tenants are
    /// unaffected.
    pub per_tenant_quota: Option<usize>,
}

/// Why a submission was not admitted (converted to the public
/// [`SubmitError`](crate::SubmitError) by the cluster backend, which owns the plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionReject {
    /// The cluster-wide bound was full: `in_system` of `capacity` slots taken.
    Overloaded {
        /// Jobs in system at rejection time.
        in_system: usize,
        /// The configured cluster-wide bound.
        capacity: usize,
    },
    /// The tenant's bound was full: `in_system` of `quota` slots taken.
    QuotaExceeded {
        /// The tenant's jobs in system at rejection time.
        in_system: usize,
        /// The configured per-tenant bound.
        quota: usize,
    },
}

/// In-system occupancy, per tenant and total.
struct LedgerState {
    per_tenant: BTreeMap<Arc<str>, usize>,
    total: usize,
}

/// The cluster's admission ledger: who currently occupies how many in-system slots.
pub struct TenantLedger {
    /// Lock-order leaf "tenants": nothing else is ever locked while holding it.
    tenants: Mutex<LedgerState>,
    /// The `tenants_active` gauge, updated on admit/refund (absent when the ledger
    /// runs without a metrics registry, e.g. inside a simulation harness).
    tenants_active: Option<Arc<Gauge>>,
}

impl TenantLedger {
    /// An empty ledger.  Pass the `tenants_active` gauge to keep it live-updated,
    /// or `None` to run gauge-free (simulation harnesses).
    pub fn new(tenants_active: Option<Arc<Gauge>>) -> Self {
        TenantLedger {
            tenants: Mutex::new(LedgerState {
                per_tenant: BTreeMap::new(),
                total: 0,
            }),
            tenants_active,
        }
    }

    /// Admits one job for `tenant` under `config`'s bounds, or says why not.
    ///
    /// Both bounds are checked under one lock acquisition, so a mixed burst can
    /// never overshoot either bound by racing between the checks.
    pub fn try_admit(
        self: &Arc<Self>,
        tenant: &Arc<str>,
        config: &AdmissionConfig,
    ) -> Result<AdmissionPermit, AdmissionReject> {
        let mut state = sync::lock(&self.tenants);
        if let Some(capacity) = config.max_in_system {
            if state.total >= capacity {
                return Err(AdmissionReject::Overloaded {
                    in_system: state.total,
                    capacity,
                });
            }
        }
        let occupied = state.per_tenant.get(tenant).copied().unwrap_or(0);
        if let Some(quota) = config.per_tenant_quota {
            if occupied >= quota {
                return Err(AdmissionReject::QuotaExceeded {
                    in_system: occupied,
                    quota,
                });
            }
        }
        state.total += 1;
        *state.per_tenant.entry(Arc::clone(tenant)).or_insert(0) += 1;
        let active = state.per_tenant.len();
        drop(state);
        if let Some(gauge) = &self.tenants_active {
            gauge.set(active as f64);
        }
        Ok(AdmissionPermit {
            ledger: Arc::clone(self),
            tenant: Arc::clone(tenant),
        })
    }

    /// Jobs currently in system, cluster-wide.
    pub fn in_system(&self) -> usize {
        sync::lock(&self.tenants).total
    }

    /// Jobs currently in system for one tenant.
    #[cfg(test)]
    pub(crate) fn tenant_in_system(&self, tenant: &str) -> usize {
        sync::lock(&self.tenants)
            .per_tenant
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    fn refund(&self, tenant: &Arc<str>) {
        let mut state = sync::lock(&self.tenants);
        state.total = state.total.saturating_sub(1);
        if let Some(count) = state.per_tenant.get_mut(tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                state.per_tenant.remove(tenant);
            }
        }
        let active = state.per_tenant.len();
        drop(state);
        if let Some(gauge) = &self.tenants_active {
            gauge.set(active as f64);
        }
    }
}

impl std::fmt::Debug for TenantLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = sync::lock(&self.tenants);
        f.debug_struct("TenantLedger")
            .field("total", &state.total)
            .field("tenants", &state.per_tenant.len())
            .finish()
    }
}

/// One admitted job's slot in the ledger.  Travels inside the queued payload;
/// dropping it — wherever the job's lifetime ends — refunds the tenant exactly once.
pub struct AdmissionPermit {
    ledger: Arc<TenantLedger>,
    tenant: Arc<str>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.ledger.refund(&self.tenant);
    }
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("tenant", &self.tenant)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(name: &str) -> Arc<str> {
        Arc::from(name)
    }

    #[test]
    fn unbounded_config_admits_everything() {
        let ledger = Arc::new(TenantLedger::new(None));
        let config = AdmissionConfig::default();
        let permits: Vec<_> = (0..100)
            .map(|_| ledger.try_admit(&tenant("t"), &config).expect("admitted"))
            .collect();
        assert_eq!(ledger.in_system(), 100);
        drop(permits);
        assert_eq!(ledger.in_system(), 0);
    }

    #[test]
    fn the_cluster_bound_sheds_overloaded_and_permits_refund() {
        let ledger = Arc::new(TenantLedger::new(None));
        let config = AdmissionConfig {
            max_in_system: Some(2),
            per_tenant_quota: None,
        };
        let a = ledger.try_admit(&tenant("a"), &config).expect("1st");
        let _b = ledger.try_admit(&tenant("b"), &config).expect("2nd");
        assert_eq!(
            ledger.try_admit(&tenant("c"), &config).unwrap_err(),
            AdmissionReject::Overloaded {
                in_system: 2,
                capacity: 2
            }
        );
        drop(a);
        assert!(ledger.try_admit(&tenant("c"), &config).is_ok());
    }

    #[test]
    fn a_flooding_tenant_exhausts_its_own_quota_without_starving_others() {
        let ledger = Arc::new(TenantLedger::new(None));
        let config = AdmissionConfig {
            max_in_system: None,
            per_tenant_quota: Some(3),
        };
        let flood: Vec<_> = (0..3)
            .map(|_| ledger.try_admit(&tenant("noisy"), &config).expect("quota"))
            .collect();
        assert_eq!(
            ledger.try_admit(&tenant("noisy"), &config).unwrap_err(),
            AdmissionReject::QuotaExceeded {
                in_system: 3,
                quota: 3
            }
        );
        // Another tenant is unaffected by the noisy one's saturation.
        let quiet = ledger.try_admit(&tenant("quiet"), &config).expect("quiet");
        assert_eq!(ledger.tenant_in_system("noisy"), 3);
        assert_eq!(ledger.tenant_in_system("quiet"), 1);
        drop(flood);
        assert_eq!(ledger.tenant_in_system("noisy"), 0);
        drop(quiet);
        assert_eq!(ledger.in_system(), 0);
    }

    #[test]
    fn the_active_tenants_gauge_tracks_distinct_occupants() {
        let registry = refloat_telemetry::MetricsRegistry::new();
        let gauge = registry.gauge("tenants_active");
        let ledger = Arc::new(TenantLedger::new(Some(gauge.clone())));
        let config = AdmissionConfig::default();
        let a = ledger.try_admit(&tenant("a"), &config).expect("a");
        let b1 = ledger.try_admit(&tenant("b"), &config).expect("b1");
        let b2 = ledger.try_admit(&tenant("b"), &config).expect("b2");
        assert_eq!(gauge.get(), 2.0);
        drop(b1);
        assert_eq!(gauge.get(), 2.0, "tenant b still holds a slot");
        drop(b2);
        assert_eq!(gauge.get(), 1.0);
        drop(a);
        assert_eq!(gauge.get(), 0.0);
    }
}
