//! The multi-node cluster layer: N [`Node`]s behind an affinity-aware
//! [`Router`], fronted by the same [`SolveClient`] surface as a single node.
//!
//! A [`ClusterRuntime::start`] spins up `nodes` identical serving units (each with
//! its **own** encoded-matrix and format-decision caches — affinity routing is what
//! makes private caches pay, see [`router`]) sharing one metrics registry, and
//! returns a [`SolveClient`] whose submissions flow:
//!
//! ```text
//! submit(plan) ──► admission (tenant ledger, typed shed) ──► router (fit /
//! affinity / load) ──► node scheduler (QoS) ──► worker ──► ticket resolves
//! ```
//!
//! Everything downstream of the router is exactly the single-node runtime, so the
//! determinism contract carries over unchanged: numerics are a pure function of the
//! plan, bit-identical whatever node or worker executes it.  Only placement,
//! timing, and telemetry attribution vary with the cluster shape.
//!
//! Cancellation crosses the router boundary transparently: the ticket remembers its
//! node, `cancel` dequeues there, and dropping the queued payload releases the
//! tenant's admission slot — the same single-refund permit path every other job
//! exit uses (see [`admission`]).

pub mod admission;
pub mod router;

pub use admission::{AdmissionConfig, AdmissionPermit, AdmissionReject, TenantLedger};
pub use router::{Placement, RouteKind, Router, RouterPolicy};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use refloat_telemetry::{
    sync, Clock, Counter, MetricsRegistry, SpanKind, TraceEvent, TraceSink, WallClock,
};

use crate::cache::{CacheStats, EncodedMatrixCache};
use crate::client::{QueuedTicket, SolveClient, SolveTicket, SubmitError, TicketShared};
use crate::decision::{DecisionStats, FormatDecisionCache};
use crate::health::{HealthTracker, NodeHealthSignal};
use crate::node::Node;
use crate::plan::SolvePlan;
use crate::telemetry::{metric_names, AggregateContext, JobTelemetry, RuntimeReport};
use crate::RuntimeConfig;

/// Simulated chips per node when [`ClusterConfig::chips_per_node`] is left empty —
/// matches the deepest sharding the test matrices exercise.
pub const DEFAULT_NODE_CHIPS: usize = 8;

/// Shape and policy of a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node sizing (workers, queue, caches, scheduler, trace) — every node is
    /// built from this one config.
    pub node: RuntimeConfig,
    /// Simulated-chip capacity per node (the router's shard-fit signal).  Empty
    /// means [`DEFAULT_NODE_CHIPS`] everywhere; otherwise must have one entry per
    /// node.
    pub chips_per_node: Vec<usize>,
    /// Admission bounds (default: admit everything).
    pub admission: AdmissionConfig,
    /// Routing policy (default: affinity on, spill margin 8).
    pub router: RouterPolicy,
}

impl ClusterConfig {
    /// A cluster of `nodes` identical nodes with default chips, admission, and
    /// routing.
    pub fn uniform(nodes: usize, node: RuntimeConfig) -> Self {
        ClusterConfig {
            nodes,
            node,
            chips_per_node: Vec::new(),
            admission: AdmissionConfig::default(),
            router: RouterPolicy::default(),
        }
    }
}

/// Factory for a multi-node cluster fronted by a [`SolveClient`].
///
/// ```
/// use refloat_core::ReFloatConfig;
/// use refloat_runtime::cluster::{ClusterConfig, ClusterRuntime};
/// use refloat_runtime::{MatrixHandle, RuntimeConfig, SolvePlan};
///
/// let a = refloat_matgen::generators::laplacian_2d(8, 8, 0.3).to_csr();
/// let handle = MatrixHandle::new("p8", a);
/// let client = ClusterRuntime::start(ClusterConfig::uniform(
///     2,
///     RuntimeConfig { workers: 1, ..Default::default() },
/// ));
/// let ticket = client
///     .submit(SolvePlan::new("t", handle, ReFloatConfig::new(4, 3, 8, 3, 8)).build().unwrap())
///     .unwrap();
/// assert!(ticket.wait().completed().unwrap().result.converged());
/// let report = client.shutdown();
/// assert_eq!(report.nodes, 2);
/// assert_eq!(report.jobs, 1);
/// ```
pub struct ClusterRuntime;

impl ClusterRuntime {
    /// Spawns every node's worker pool and returns the cluster's client.
    pub fn start(config: ClusterConfig) -> SolveClient {
        SolveClient::from_cluster(ClusterBackend::start(config))
    }
}

/// The routed multi-node backend behind a [`SolveClient`].
pub(crate) struct ClusterBackend {
    pub(crate) nodes: Vec<Node>,
    chips_per_node: Vec<usize>,
    router: Router,
    admission: AdmissionConfig,
    ledger: Arc<TenantLedger>,
    /// Cluster-wide id allocator (node-level allocators are bypassed so ids stay
    /// unique and equal to submission order across the whole fleet).
    next_id: AtomicU64,
    pub(crate) metrics: Arc<MetricsRegistry>,
    pub(crate) trace: Option<Arc<TraceSink>>,
    pub(crate) clock: Arc<dyn Clock>,
    /// One fleet-wide health ledger shared by every node (workers feed it, the
    /// router reads per-node signals out of it, `kill_chip` writes to it).
    pub(crate) health: Arc<HealthTracker>,
    /// Per-node worker count, for slicing the health ledger into node signals.
    workers_per_node: usize,
    jobs_routed: Arc<Counter>,
    affinity_hits: Arc<Counter>,
    spills: Arc<Counter>,
    shed_overload: Arc<Counter>,
    shed_quota: Arc<Counter>,
    route_health_steers: Arc<Counter>,
}

impl ClusterBackend {
    pub(crate) fn start(config: ClusterConfig) -> Self {
        assert!(config.nodes >= 1, "a cluster needs at least one node");
        let chips_per_node = if config.chips_per_node.is_empty() {
            vec![DEFAULT_NODE_CHIPS; config.nodes]
        } else {
            assert_eq!(
                config.chips_per_node.len(),
                config.nodes,
                "chips_per_node must have one entry per node"
            );
            config.chips_per_node.clone()
        };
        let mut node_config = config.node.clone();
        // The router decides placement; a node's queue must never block the
        // router's push (that would re-create the collapse shedding exists to
        // avoid), so when an in-system bound exists the per-node queue is sized to
        // hold every admitted job in the worst all-on-one-node case.
        if let Some(max) = config.admission.max_in_system {
            node_config.queue_capacity = node_config.queue_capacity.max(max);
        }
        let metrics = Arc::new(MetricsRegistry::new());
        // Register the cluster vocabulary up front so a pre-traffic snapshot
        // already carries every counter (mirrors the per-job vocabulary contract).
        let jobs_routed = metrics.counter(metric_names::JOBS_ROUTED);
        let affinity_hits = metrics.counter(metric_names::ROUTE_AFFINITY_HITS);
        let spills = metrics.counter(metric_names::ROUTE_SPILLS);
        let shed_overload = metrics.counter(metric_names::JOBS_SHED_OVERLOAD);
        let shed_quota = metrics.counter(metric_names::JOBS_SHED_QUOTA);
        let route_health_steers = metrics.counter(metric_names::ROUTE_HEALTH_STEERS);
        metrics
            .gauge(metric_names::WORKERS)
            .set((config.nodes * node_config.workers) as f64);
        metrics.gauge(metric_names::NODES).set(config.nodes as f64);
        let ledger = Arc::new(TenantLedger::new(Some(
            metrics.gauge(metric_names::TENANTS_ACTIVE),
        )));
        let clock: Arc<dyn Clock> = match &node_config.trace {
            Some(sink) => sink.clock(),
            None => Arc::new(WallClock::new()),
        };
        let health = Arc::new(HealthTracker::new());
        let nodes: Vec<Node> = (0..config.nodes)
            .map(|node_id| {
                // Private caches per node: affinity routing keeps repeat traffic on
                // the node whose caches are already warm (see the module docs).
                let cache = Arc::new(EncodedMatrixCache::new(node_config.cache_capacity));
                let decisions = Arc::new(FormatDecisionCache::new(node_config.cache_capacity));
                Node::spawn(
                    node_id,
                    node_id * node_config.workers,
                    &node_config,
                    cache,
                    decisions,
                    Arc::clone(&metrics),
                    Arc::clone(&health),
                )
            })
            .collect();
        ClusterBackend {
            nodes,
            chips_per_node,
            router: Router::new(config.router),
            admission: config.admission,
            ledger,
            next_id: AtomicU64::new(0),
            metrics,
            trace: node_config.trace.clone(),
            clock,
            health,
            workers_per_node: node_config.workers,
            jobs_routed,
            affinity_hits,
            spills,
            shed_overload,
            shed_quota,
            route_health_steers,
        }
    }

    /// Admits, routes, and enqueues one plan (the cluster half of
    /// [`SolveClient::submit`]).
    pub(crate) fn submit(&self, plan: SolvePlan) -> Result<SolveTicket, SubmitError> {
        // The id is allocated before admission so shed submissions still get a real
        // job id in traces, and `submitted()` counts every attempt (admitted or
        // not) exactly like the single-node path documents.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let tenant = Arc::clone(&plan.job.tenant);
        let permit = match self.ledger.try_admit(&tenant, &self.admission) {
            Ok(permit) => permit,
            Err(reject) => {
                let (reason, counter) = match reject {
                    AdmissionReject::Overloaded { .. } => ("overloaded", &self.shed_overload),
                    AdmissionReject::QuotaExceeded { .. } => ("quota", &self.shed_quota),
                };
                counter.inc();
                if let Some(sink) = &self.trace {
                    let now = sink.now_s();
                    sink.record(TraceEvent {
                        job_id: id,
                        seq: 0,
                        worker: None,
                        kind: SpanKind::Shed,
                        start_s: now,
                        end_s: now,
                        detail: format!("reason={reason} tenant={tenant}"),
                    });
                }
                return Err(match reject {
                    AdmissionReject::Overloaded {
                        in_system,
                        capacity,
                    } => SubmitError::Overloaded {
                        plan: Box::new(plan),
                        in_system,
                        capacity,
                    },
                    AdmissionReject::QuotaExceeded { in_system, quota } => {
                        SubmitError::QuotaExceeded {
                            plan: Box::new(plan),
                            in_system,
                            quota,
                        }
                    }
                });
            }
        };
        let loads: Vec<usize> = self.nodes.iter().map(Node::load).collect();
        // Health signals are read strictly *before* the router takes its
        // `placement` lock ("health" precedes "placement" in the declared lock
        // order).
        let signals: Vec<NodeHealthSignal> = (0..self.nodes.len())
            .map(|node_id| {
                self.health
                    .node_signal(node_id * self.workers_per_node, self.workers_per_node)
            })
            .collect();
        let fingerprint = plan.job.matrix.fingerprint();
        let (placement, steered) = self.router.place_with_health(
            fingerprint,
            plan.shards(),
            &loads,
            &self.chips_per_node,
            &signals,
        );
        self.jobs_routed.inc();
        if steered {
            self.route_health_steers.inc();
        }
        match placement.kind {
            RouteKind::Affinity => self.affinity_hits.inc(),
            RouteKind::Spill => self.spills.inc(),
            RouteKind::LeastLoaded | RouteKind::Overflow => {}
        }
        let core = self.nodes[placement.node].core();
        let submitted_at_s = self.clock.now_s();
        // Seqs 0/1 of a traced cluster job carry the submit-side admit/route
        // instants; the worker's own events start at seq 2 (`trace_seq_base`).
        let trace_seq_base = match &self.trace {
            Some(sink) => {
                sink.record_batch(vec![
                    TraceEvent {
                        job_id: id,
                        seq: 0,
                        worker: None,
                        kind: SpanKind::Admit,
                        start_s: submitted_at_s,
                        end_s: submitted_at_s,
                        detail: format!("tenant={tenant} in_system={}", self.ledger.in_system()),
                    },
                    TraceEvent {
                        job_id: id,
                        seq: 1,
                        worker: None,
                        kind: SpanKind::Route,
                        start_s: submitted_at_s,
                        end_s: submitted_at_s,
                        detail: format!("node={} key={}", placement.node, placement.kind.label()),
                    },
                ]);
                2
            }
            None => 0,
        };
        let priority = plan.priority;
        let deadline = plan.deadline.map(|d| submitted_at_s + d.as_secs_f64());
        let shared = Arc::new(TicketShared::new());
        let queued = QueuedTicket {
            plan,
            submitted_at_s,
            ticket: Arc::clone(&shared),
            permit: Some(permit),
            trace_seq_base,
        };
        match core.sched.push(id, priority, deadline, queued) {
            Ok(()) => Ok(SolveTicket::new(id, shared, Arc::clone(core))),
            Err(queued) => Err(SubmitError::Closed(Box::new(queued.plan))),
        }
    }

    pub(crate) fn submitted(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    pub(crate) fn cancelled(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.core().cancelled.load(Ordering::Relaxed))
            .sum()
    }

    /// The cluster half of [`SolveClient::report`]: every node's completions,
    /// merged by job id, with cache/decision counters summed over the fleet (node
    /// caches are created with their node, so their raw stats *are* the deltas).
    pub(crate) fn report(&self, started_s: f64) -> RuntimeReport {
        let mut completed: Vec<JobTelemetry> = Vec::new();
        let mut cache = CacheStats::default();
        let mut decisions = DecisionStats::default();
        let mut queue_depth_peak = 0usize;
        let mut cancelled = 0u64;
        for node in &self.nodes {
            let core = node.core();
            completed.extend(sync::lock(&core.completed).iter().cloned());
            let c = core.cache.stats();
            cache.hits += c.hits;
            cache.misses += c.misses;
            cache.coalesced += c.coalesced;
            cache.evictions += c.evictions;
            let d = core.decisions.stats();
            decisions.hits += d.hits;
            decisions.misses += d.misses;
            decisions.coalesced += d.coalesced;
            decisions.evictions += d.evictions;
            queue_depth_peak = queue_depth_peak.max(core.sched.stats().peak_depth);
            cancelled += core.cancelled.load(Ordering::Relaxed);
        }
        completed.sort_by_key(|t| t.job_id);
        let workers: usize = self.nodes.iter().map(|n| n.core().workers).sum();
        // Degraded jobs add to the shared fault counters without a telemetry
        // row; subtract the row-attributed share so the replay never
        // double-counts (see the single-node report for the same split).
        let row_faults: u64 = completed.iter().map(|j| j.faults_detected).sum();
        let row_retries: u64 = completed.iter().map(|j| j.fault_retries).sum();
        RuntimeReport::aggregate(
            &completed,
            AggregateContext {
                wall_s: (self.clock.now_s() - started_s).max(0.0),
                cache,
                decisions,
                workers,
                nodes: self.nodes.len(),
                queue_depth_peak,
                cancelled_jobs: cancelled as usize,
                shed_overloaded: self.shed_overload.get(),
                shed_quota: self.shed_quota.get(),
                // Nodes share one registry, so these are read once for the fleet.
                degraded_jobs: self.metrics.counter(metric_names::JOBS_DEGRADED).get(),
                rerouted_jobs: self.metrics.counter(metric_names::JOBS_REROUTED).get(),
                chips_killed: self.metrics.counter(metric_names::CHIPS_KILLED).get(),
                degraded_faults_detected: self
                    .metrics
                    .counter(metric_names::FAULTS_DETECTED)
                    .get()
                    .saturating_sub(row_faults),
                degraded_fault_retries: self
                    .metrics
                    .counter(metric_names::FAULT_RETRIES)
                    .get()
                    .saturating_sub(row_retries),
            },
        )
    }
}
