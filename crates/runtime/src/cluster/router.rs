//! The cluster router: places each admitted plan on a node by shard-capacity fit,
//! cache affinity, and load.
//!
//! # Placement keys, in precedence order
//!
//! 1. **Shard-capacity fit** — a sharded job only fits nodes with at least
//!    `shards` simulated chips; ineligible nodes are filtered out first.  When *no*
//!    node fits, the job overflows to the largest node (the partitioner will clamp
//!    the shard count there) rather than being rejected: capacity shaping is the
//!    admission layer's job, not the router's.
//! 2. **Cache affinity** — the router remembers, per matrix fingerprint, the node
//!    it last placed that matrix on.  Repeat tenants and repeat fingerprints land
//!    on the node that already holds their encodings (per-node caches are private,
//!    so affinity is what makes them pay), *unless* the sticky node's load exceeds
//!    the least-loaded eligible node by more than
//!    [`spill_margin`](RouterPolicy::spill_margin) — then the job **spills** to the
//!    least-loaded node and the stickiness moves with it (future repeats follow the
//!    spill, warming the new node once instead of ping-ponging).
//! 3. **Least load** — everything else goes to the eligible node with the lowest
//!    queued-plus-running count *per chip*: a node with three times the chips
//!    drains its backlog three times as fast, so heterogeneous `chips_per_node`
//!    fleets balance on `load/chips`, not raw depth (compared exactly by integer
//!    cross-multiplication; ties break to the lowest node index, which keeps
//!    placement deterministic for a fixed submission order).
//!
//! [`Router::place_with_health`] additionally folds per-node
//! [`NodeHealthSignal`]s into the decision: dead nodes (no live worker) are
//! filtered like capacity misfits, and each node's load is padded by a penalty
//! proportional to its summed degradation score, steering traffic away from
//! worn or fault-ridden chips before they start detecting corruption.

use std::collections::BTreeMap;
use std::sync::Mutex;

use refloat_telemetry::sync;

use crate::health::NodeHealthSignal;

/// Tunables for [`Router::place`].
#[derive(Debug, Clone, Copy)]
pub struct RouterPolicy {
    /// Route repeat fingerprints back to the node holding their encodings.
    pub affinity: bool,
    /// How much deeper (in queued+running jobs) the sticky node may be than the
    /// least-loaded eligible node before the job spills away from its cache.
    pub spill_margin: usize,
}

impl Default for RouterPolicy {
    fn default() -> Self {
        RouterPolicy {
            affinity: true,
            spill_margin: 8,
        }
    }
}

/// Which placement key decided a routing (exported in traces and counted in
/// metrics, so `fig_cluster` can attribute throughput to affinity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// The fingerprint's sticky node won (its encodings are already resident).
    Affinity,
    /// No stickiness applied; the least-loaded eligible node won.
    LeastLoaded,
    /// The sticky node was too deep; the job moved to the least-loaded node and
    /// took its stickiness along.
    Spill,
    /// No node had enough chips for the requested shards; the largest node won.
    Overflow,
}

impl RouteKind {
    /// Stable label used in trace details and reports.
    pub fn label(self) -> &'static str {
        match self {
            RouteKind::Affinity => "affinity",
            RouteKind::LeastLoaded => "least_loaded",
            RouteKind::Spill => "spill",
            RouteKind::Overflow => "overflow",
        }
    }
}

/// One placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The chosen node's index.
    pub node: usize,
    /// Which key decided it.
    pub kind: RouteKind,
}

/// The placement engine.  Holds only the fingerprint→node stickiness map; load and
/// chip capacities are passed per call so the router never reaches into the nodes.
#[derive(Debug)]
pub struct Router {
    policy: RouterPolicy,
    /// Lock-order leaf "placement": nothing else is ever locked while holding it.
    placement: Mutex<BTreeMap<u64, usize>>,
}

impl Router {
    /// A router with the given policy.
    pub fn new(policy: RouterPolicy) -> Self {
        Router {
            policy,
            placement: Mutex::new(BTreeMap::new()),
        }
    }

    /// Places one job.  `loads[i]` is node `i`'s queued+running count and
    /// `chips[i]` its simulated-chip capacity; `shards` is the job's requested
    /// shard count and `fingerprint` its matrix identity.
    ///
    /// Deterministic: for fixed inputs (including the stickiness accumulated from
    /// prior calls) the decision is a pure function — ties always break to the
    /// lowest node index.
    pub fn place(
        &self,
        fingerprint: u64,
        shards: usize,
        loads: &[usize],
        chips: &[usize],
    ) -> Placement {
        debug_assert_eq!(loads.len(), chips.len());
        debug_assert!(!loads.is_empty(), "a cluster has at least one node");
        self.select(fingerprint, shards, loads, chips, None, true)
    }

    /// Like [`place`](Self::place), but folds per-node health into the decision:
    /// dead nodes are ineligible (unless *every* fitting node is dead, in which
    /// case the filter is dropped — the job still lands somewhere and the dead
    /// node resolves it with a typed `Degraded` rather than losing it), and each
    /// node's load is padded by `ceil(degradation × 8)` phantom jobs so worn
    /// fleets shed traffic gradually instead of at a cliff.
    ///
    /// The second return value reports whether health *changed* the decision
    /// relative to a health-blind placement over the same inputs (the
    /// `route_health_steers` counter).
    pub fn place_with_health(
        &self,
        fingerprint: u64,
        shards: usize,
        loads: &[usize],
        chips: &[usize],
        health: &[NodeHealthSignal],
    ) -> (Placement, bool) {
        debug_assert_eq!(loads.len(), chips.len());
        debug_assert_eq!(loads.len(), health.len());
        debug_assert!(!loads.is_empty(), "a cluster has at least one node");
        // What a health-blind router would do (no stickiness commit: only the
        // decision that actually routes may move the affinity map).
        let baseline = self.select(fingerprint, shards, loads, chips, None, false);
        let effective: Vec<usize> = loads
            .iter()
            .zip(health)
            .map(|(&load, h)| load.saturating_add((h.degradation * 8.0).ceil() as usize))
            .collect();
        let alive: Vec<bool> = health.iter().map(NodeHealthSignal::alive).collect();
        let actual = self.select(fingerprint, shards, &effective, chips, Some(&alive), true);
        (actual, actual.node != baseline.node)
    }

    /// The shared placement core.  `alive` masks nodes out like a capacity misfit
    /// (dropped entirely when it would empty the eligible set); `commit` gates
    /// writes to the stickiness map so speculative baselines stay side-effect
    /// free.
    fn select(
        &self,
        fingerprint: u64,
        shards: usize,
        loads: &[usize],
        chips: &[usize],
        alive: Option<&[bool]>,
        commit: bool,
    ) -> Placement {
        let fits = |i: usize| chips[i] >= shards.max(1);
        let mut eligible: Vec<usize> = (0..loads.len())
            .filter(|&i| fits(i) && alive.map(|a| a[i]).unwrap_or(true))
            .collect();
        if eligible.is_empty() && alive.is_some() {
            // Every fitting node is dead: place anyway (the dead node's drain
            // resolves the job as Degraded — typed, never lost).
            eligible = (0..loads.len()).filter(|&i| fits(i)).collect();
        }
        if eligible.is_empty() {
            // Nothing fits: overflow to the biggest node (lowest index on ties) and
            // let the partitioner clamp the shard count there.
            let node = (0..chips.len())
                .max_by_key(|&i| (chips[i], std::cmp::Reverse(i)))
                .unwrap_or(0);
            return Placement {
                node,
                kind: RouteKind::Overflow,
            };
        }
        // Least load *per chip*, compared exactly via cross-multiplication; strict
        // `<` with ascending iteration keeps ties on the lowest index.
        let mut least = eligible[0];
        for &i in &eligible[1..] {
            if loads[i] * chips[least] < loads[least] * chips[i] {
                least = i;
            }
        }
        if !self.policy.affinity {
            return Placement {
                node: least,
                kind: RouteKind::LeastLoaded,
            };
        }
        let mut placement = sync::lock(&self.placement);
        match placement.get(&fingerprint).copied() {
            Some(sticky) if eligible.contains(&sticky) => {
                if loads[sticky] <= loads[least].saturating_add(self.policy.spill_margin) {
                    Placement {
                        node: sticky,
                        kind: RouteKind::Affinity,
                    }
                } else {
                    // Spill: move the stickiness with the job so future repeats
                    // warm the new node once instead of ping-ponging.
                    if commit {
                        placement.insert(fingerprint, least);
                    }
                    Placement {
                        node: least,
                        kind: RouteKind::Spill,
                    }
                }
            }
            _ => {
                if commit {
                    placement.insert(fingerprint, least);
                }
                Placement {
                    node: least,
                    kind: RouteKind::LeastLoaded,
                }
            }
        }
    }

    /// Distinct fingerprints with a sticky node (observability/testing).
    pub fn tracked_fingerprints(&self) -> usize {
        sync::lock(&self.placement).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        Router::new(RouterPolicy::default())
    }

    #[test]
    fn first_touch_goes_least_loaded_and_repeats_stick() {
        let r = router();
        let chips = [8, 8, 8];
        let first = r.place(42, 1, &[3, 1, 2], &chips);
        assert_eq!(
            first,
            Placement {
                node: 1,
                kind: RouteKind::LeastLoaded
            }
        );
        // Repeat sticks to node 1 even though node 2 is now emptier.
        let repeat = r.place(42, 1, &[3, 2, 0], &chips);
        assert_eq!(
            repeat,
            Placement {
                node: 1,
                kind: RouteKind::Affinity
            }
        );
    }

    #[test]
    fn a_deep_sticky_node_spills_and_the_stickiness_moves() {
        let r = Router::new(RouterPolicy {
            affinity: true,
            spill_margin: 2,
        });
        let chips = [8, 8];
        assert_eq!(r.place(7, 1, &[0, 5], &chips).node, 0);
        // Node 0 is now 3 deeper than node 1's 0 — past the margin of 2.
        let spilled = r.place(7, 1, &[3, 0], &chips);
        assert_eq!(
            spilled,
            Placement {
                node: 1,
                kind: RouteKind::Spill
            }
        );
        // The stickiness followed the spill.
        assert_eq!(r.place(7, 1, &[0, 1], &chips).kind, RouteKind::Affinity);
        assert_eq!(r.place(7, 1, &[0, 1], &chips).node, 1);
    }

    #[test]
    fn sharded_jobs_only_fit_nodes_with_enough_chips() {
        let r = router();
        // Node 0 is empty but only has 2 chips; the 4-shard job must go to node 1.
        let placed = r.place(9, 4, &[0, 6], &[2, 8]);
        assert_eq!(placed.node, 1);
        assert_eq!(placed.kind, RouteKind::LeastLoaded);
    }

    #[test]
    fn an_oversized_job_overflows_to_the_largest_node() {
        let r = router();
        let placed = r.place(9, 64, &[0, 0, 0], &[4, 8, 8]);
        assert_eq!(
            placed,
            Placement {
                node: 1,
                kind: RouteKind::Overflow
            },
            "ties break to the lowest index among largest nodes"
        );
    }

    #[test]
    fn ties_break_to_the_lowest_node_index() {
        let r = Router::new(RouterPolicy {
            affinity: false,
            spill_margin: 0,
        });
        assert_eq!(r.place(1, 1, &[2, 2, 2], &[8, 8, 8]).node, 0);
    }

    #[test]
    fn least_load_is_weighted_by_chip_capacity() {
        let r = router();
        // Raw depth says node 0 (4 < 6), but per-chip load says node 1
        // (4/4 = 1.0 vs 6/12 = 0.5): the bigger node drains faster.
        let placed = r.place(77, 1, &[4, 6], &[4, 12]);
        assert_eq!(placed.node, 1);
        assert_eq!(placed.kind, RouteKind::LeastLoaded);
        // Equal per-chip load ties back to the lowest index.
        assert_eq!(r.place(78, 1, &[2, 6], &[4, 12]).node, 0);
    }

    #[test]
    fn health_steers_away_from_dead_and_degraded_nodes() {
        let alive = NodeHealthSignal {
            live_workers: 2,
            workers: 2,
            degradation: 0.0,
            detections: 0,
        };
        let r = Router::new(RouterPolicy {
            affinity: false,
            spill_margin: 8,
        });
        let chips = [8, 8];

        // A dead node is ineligible even when emptier.
        let dead = NodeHealthSignal {
            live_workers: 0,
            ..alive
        };
        let (placed, steered) = r.place_with_health(1, 1, &[5, 0], &chips, &[alive, dead]);
        assert_eq!(placed.node, 0);
        assert!(steered, "a health-blind router would have picked node 1");

        // Degradation pads the load: 0.5 ⇒ 4 phantom jobs, flipping a 2-vs-5 gap.
        let worn = NodeHealthSignal {
            degradation: 0.5,
            ..alive
        };
        let (placed, steered) = r.place_with_health(2, 1, &[5, 2], &chips, &[alive, worn]);
        assert_eq!(placed.node, 0, "2 + ceil(0.5·8) = 6 > 5");
        assert!(steered);

        // Healthy fleets place exactly like the health-blind router.
        let (placed, steered) = r.place_with_health(3, 1, &[5, 2], &chips, &[alive, alive]);
        assert_eq!(placed.node, 1);
        assert!(!steered);

        // All fitting nodes dead: the filter drops so the job still lands (the
        // dead node resolves it as Degraded instead of losing it).
        let (placed, _) = r.place_with_health(4, 1, &[1, 0], &chips, &[dead, dead]);
        assert_eq!(placed.node, 1);
    }

    #[test]
    fn disabling_affinity_never_sticks() {
        let r = Router::new(RouterPolicy {
            affinity: false,
            spill_margin: 8,
        });
        let chips = [8, 8];
        assert_eq!(r.place(5, 1, &[1, 0], &chips).node, 1);
        assert_eq!(r.place(5, 1, &[0, 1], &chips).node, 0);
        assert_eq!(r.tracked_fingerprints(), 0);
    }
}
