//! The cluster router: places each admitted plan on a node by shard-capacity fit,
//! cache affinity, and load.
//!
//! # Placement keys, in precedence order
//!
//! 1. **Shard-capacity fit** — a sharded job only fits nodes with at least
//!    `shards` simulated chips; ineligible nodes are filtered out first.  When *no*
//!    node fits, the job overflows to the largest node (the partitioner will clamp
//!    the shard count there) rather than being rejected: capacity shaping is the
//!    admission layer's job, not the router's.
//! 2. **Cache affinity** — the router remembers, per matrix fingerprint, the node
//!    it last placed that matrix on.  Repeat tenants and repeat fingerprints land
//!    on the node that already holds their encodings (per-node caches are private,
//!    so affinity is what makes them pay), *unless* the sticky node's load exceeds
//!    the least-loaded eligible node by more than
//!    [`spill_margin`](RouterPolicy::spill_margin) — then the job **spills** to the
//!    least-loaded node and the stickiness moves with it (future repeats follow the
//!    spill, warming the new node once instead of ping-ponging).
//! 3. **Least load** — everything else goes to the eligible node with the fewest
//!    queued-plus-running jobs (ties break to the lowest node index, which keeps
//!    placement deterministic for a fixed submission order).

use std::collections::BTreeMap;
use std::sync::Mutex;

use refloat_telemetry::sync;

/// Tunables for [`Router::place`].
#[derive(Debug, Clone, Copy)]
pub struct RouterPolicy {
    /// Route repeat fingerprints back to the node holding their encodings.
    pub affinity: bool,
    /// How much deeper (in queued+running jobs) the sticky node may be than the
    /// least-loaded eligible node before the job spills away from its cache.
    pub spill_margin: usize,
}

impl Default for RouterPolicy {
    fn default() -> Self {
        RouterPolicy {
            affinity: true,
            spill_margin: 8,
        }
    }
}

/// Which placement key decided a routing (exported in traces and counted in
/// metrics, so `fig_cluster` can attribute throughput to affinity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// The fingerprint's sticky node won (its encodings are already resident).
    Affinity,
    /// No stickiness applied; the least-loaded eligible node won.
    LeastLoaded,
    /// The sticky node was too deep; the job moved to the least-loaded node and
    /// took its stickiness along.
    Spill,
    /// No node had enough chips for the requested shards; the largest node won.
    Overflow,
}

impl RouteKind {
    /// Stable label used in trace details and reports.
    pub fn label(self) -> &'static str {
        match self {
            RouteKind::Affinity => "affinity",
            RouteKind::LeastLoaded => "least_loaded",
            RouteKind::Spill => "spill",
            RouteKind::Overflow => "overflow",
        }
    }
}

/// One placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The chosen node's index.
    pub node: usize,
    /// Which key decided it.
    pub kind: RouteKind,
}

/// The placement engine.  Holds only the fingerprint→node stickiness map; load and
/// chip capacities are passed per call so the router never reaches into the nodes.
#[derive(Debug)]
pub struct Router {
    policy: RouterPolicy,
    /// Lock-order leaf "placement": nothing else is ever locked while holding it.
    placement: Mutex<BTreeMap<u64, usize>>,
}

impl Router {
    /// A router with the given policy.
    pub fn new(policy: RouterPolicy) -> Self {
        Router {
            policy,
            placement: Mutex::new(BTreeMap::new()),
        }
    }

    /// Places one job.  `loads[i]` is node `i`'s queued+running count and
    /// `chips[i]` its simulated-chip capacity; `shards` is the job's requested
    /// shard count and `fingerprint` its matrix identity.
    ///
    /// Deterministic: for fixed inputs (including the stickiness accumulated from
    /// prior calls) the decision is a pure function — ties always break to the
    /// lowest node index.
    pub fn place(
        &self,
        fingerprint: u64,
        shards: usize,
        loads: &[usize],
        chips: &[usize],
    ) -> Placement {
        debug_assert_eq!(loads.len(), chips.len());
        debug_assert!(!loads.is_empty(), "a cluster has at least one node");
        let eligible: Vec<usize> = (0..loads.len())
            .filter(|&i| chips[i] >= shards.max(1))
            .collect();
        if eligible.is_empty() {
            // Nothing fits: overflow to the biggest node (lowest index on ties) and
            // let the partitioner clamp the shard count there.
            let node = (0..chips.len())
                .max_by_key(|&i| (chips[i], std::cmp::Reverse(i)))
                .unwrap_or(0);
            return Placement {
                node,
                kind: RouteKind::Overflow,
            };
        }
        let least = eligible
            .iter()
            .copied()
            .min_by_key(|&i| (loads[i], i))
            .unwrap_or(eligible[0]);
        if !self.policy.affinity {
            return Placement {
                node: least,
                kind: RouteKind::LeastLoaded,
            };
        }
        let mut placement = sync::lock(&self.placement);
        match placement.get(&fingerprint).copied() {
            Some(sticky) if eligible.contains(&sticky) => {
                if loads[sticky] <= loads[least].saturating_add(self.policy.spill_margin) {
                    Placement {
                        node: sticky,
                        kind: RouteKind::Affinity,
                    }
                } else {
                    // Spill: move the stickiness with the job so future repeats
                    // warm the new node once instead of ping-ponging.
                    placement.insert(fingerprint, least);
                    Placement {
                        node: least,
                        kind: RouteKind::Spill,
                    }
                }
            }
            _ => {
                placement.insert(fingerprint, least);
                Placement {
                    node: least,
                    kind: RouteKind::LeastLoaded,
                }
            }
        }
    }

    /// Distinct fingerprints with a sticky node (observability/testing).
    pub fn tracked_fingerprints(&self) -> usize {
        sync::lock(&self.placement).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        Router::new(RouterPolicy::default())
    }

    #[test]
    fn first_touch_goes_least_loaded_and_repeats_stick() {
        let r = router();
        let chips = [8, 8, 8];
        let first = r.place(42, 1, &[3, 1, 2], &chips);
        assert_eq!(
            first,
            Placement {
                node: 1,
                kind: RouteKind::LeastLoaded
            }
        );
        // Repeat sticks to node 1 even though node 2 is now emptier.
        let repeat = r.place(42, 1, &[3, 2, 0], &chips);
        assert_eq!(
            repeat,
            Placement {
                node: 1,
                kind: RouteKind::Affinity
            }
        );
    }

    #[test]
    fn a_deep_sticky_node_spills_and_the_stickiness_moves() {
        let r = Router::new(RouterPolicy {
            affinity: true,
            spill_margin: 2,
        });
        let chips = [8, 8];
        assert_eq!(r.place(7, 1, &[0, 5], &chips).node, 0);
        // Node 0 is now 3 deeper than node 1's 0 — past the margin of 2.
        let spilled = r.place(7, 1, &[3, 0], &chips);
        assert_eq!(
            spilled,
            Placement {
                node: 1,
                kind: RouteKind::Spill
            }
        );
        // The stickiness followed the spill.
        assert_eq!(r.place(7, 1, &[0, 1], &chips).kind, RouteKind::Affinity);
        assert_eq!(r.place(7, 1, &[0, 1], &chips).node, 1);
    }

    #[test]
    fn sharded_jobs_only_fit_nodes_with_enough_chips() {
        let r = router();
        // Node 0 is empty but only has 2 chips; the 4-shard job must go to node 1.
        let placed = r.place(9, 4, &[0, 6], &[2, 8]);
        assert_eq!(placed.node, 1);
        assert_eq!(placed.kind, RouteKind::LeastLoaded);
    }

    #[test]
    fn an_oversized_job_overflows_to_the_largest_node() {
        let r = router();
        let placed = r.place(9, 64, &[0, 0, 0], &[4, 8, 8]);
        assert_eq!(
            placed,
            Placement {
                node: 1,
                kind: RouteKind::Overflow
            },
            "ties break to the lowest index among largest nodes"
        );
    }

    #[test]
    fn ties_break_to_the_lowest_node_index() {
        let r = Router::new(RouterPolicy {
            affinity: false,
            spill_margin: 0,
        });
        assert_eq!(r.place(1, 1, &[2, 2, 2], &[8, 8, 8]).node, 0);
    }

    #[test]
    fn disabling_affinity_never_sticks() {
        let r = Router::new(RouterPolicy {
            affinity: false,
            spill_margin: 8,
        });
        let chips = [8, 8];
        assert_eq!(r.place(5, 1, &[1, 0], &chips).node, 1);
        assert_eq!(r.place(5, 1, &[0, 1], &chips).node, 0);
        assert_eq!(r.tracked_fingerprints(), 0);
    }
}
