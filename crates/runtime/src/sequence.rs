//! Transient solve sequences: a [`SolveSequence`] handle that threads each step's
//! outcome into the next step's submission.
//!
//! Transient workloads (time-stepping FEM, parameter continuation, quasi-static
//! load stepping) submit a *chain* of solves whose matrices differ by a small
//! perturbation and whose solutions evolve smoothly.  Submitted as independent
//! jobs, every step pays the full model cycle: analysis, quantization, crossbar
//! programming, and a cold Krylov solve.  A sequence reuses what the previous
//! step already paid for:
//!
//! * **incremental re-encode** — the worker diffs the step's matrix against the
//!   predecessor's cached encoding block-by-block
//!   ([`refloat_core::incremental`]) and re-quantizes only the blocks whose
//!   values actually changed; crossbar reprogramming is charged only for the
//!   touched fraction of the chip ([`SimulatedAccelerator::execute_batch_delta`](
//!   crate::accel::SimulatedAccelerator::execute_batch_delta)).  The incremental
//!   encoding is **bitwise identical** to encoding from scratch, so sequence
//!   numerics never drift from the non-sequence path;
//! * **warm start** — the previous solution seeds the next solve in residual-
//!   guarded correction form (`refloat_solvers::warm`): a useful guess saves
//!   Krylov iterations, a stale one costs exactly one SpMV and falls back to the
//!   cold solve bit-for-bit;
//! * **decision reuse** — auto-format steps inherit the predecessor's memoized
//!   [`FormatDecision`](refloat_core::autotune::FormatDecision) instead of
//!   re-running the analysis; the worker's true-residual epilogue re-verifies
//!   the choice on *this* matrix and falls back to refinement if the inherited
//!   decision no longer holds.
//!
//! Jobs submitted outside a sequence are untouched: every reuse path is gated on
//! the job carrying a `SequenceSpec` (`crate::job`), so the
//! non-sequence service remains bit-identical to the pre-sequence runtime.
//!
//! ```
//! use refloat_core::ReFloatConfig;
//! use refloat_matgen::{fem, TransientChain, TransientSpec};
//! use refloat_runtime::{MatrixHandle, RuntimeConfig, SolvePlan, SolveRuntime};
//!
//! let base = fem::poisson_2d(9, 9, 0.2, 7);
//! let chain = TransientChain::new(base, TransientSpec::default().with_steps(4).with_seed(11));
//! let client = SolveRuntime::start(RuntimeConfig { workers: 1, ..Default::default() });
//! let mut seq = client.sequence();
//! for step in chain {
//!     let handle = MatrixHandle::new(format!("heat-{}", step.index), step.matrix);
//!     let outcome = seq
//!         .step(
//!             SolvePlan::new("sim", handle, ReFloatConfig::new(4, 3, 8, 3, 8))
//!                 .rhs(std::sync::Arc::new(step.rhs))
//!                 .build()
//!                 .unwrap(),
//!         )
//!         .unwrap();
//!     assert!(outcome.completed().unwrap().result.converged());
//! }
//! assert_eq!(seq.steps(), 4);
//! let report = client.shutdown();
//! assert_eq!(report.seq_steps, 4);
//! assert_eq!(report.warm_start_hits, 3);
//! ```

use std::sync::Arc;

use refloat_sparse::CsrMatrix;

use crate::client::{SolveClient, SubmitError, TicketOutcome};
use crate::job::{SequencePredecessor, SequenceSpec};
use crate::plan::SolvePlan;

/// What the sequence remembers about its last completed step.
struct StepMemory {
    /// The previous matrix's content fingerprint (keys its cached encoding and
    /// format decision).
    fingerprint: u64,
    /// The previous matrix itself — the incremental re-encoder needs the raw
    /// values (encoded blocks store only quantized data).
    csr: Arc<CsrMatrix>,
    /// The previous solution, offered as the next step's warm-start guess.
    solution: Arc<Vec<f64>>,
}

/// A handle threading a chain of related solves through a [`SolveClient`].
///
/// Created by [`SolveClient::sequence`].  Each [`step`](Self::step) attaches the
/// previous step's matrix and solution to the submitted plan, then blocks until
/// the step resolves (the chain is inherently serial — step *N+1*'s warm start
/// *is* step *N*'s solution).  Steps that do not complete cleanly (cancelled,
/// failed, degraded) leave the memory untouched, so the next step simply chains
/// off the last *completed* one.
///
/// A sequence holds no locks and owns no jobs; dropping it mid-chain is safe and
/// costs nothing.  Multiple sequences can run against one client concurrently —
/// they share the encoded-matrix and decision caches but each threads only its
/// own memory.
pub struct SolveSequence<'a> {
    client: &'a SolveClient,
    memory: Option<StepMemory>,
    steps: usize,
}

impl<'a> SolveSequence<'a> {
    pub(crate) fn new(client: &'a SolveClient) -> Self {
        SolveSequence {
            client,
            memory: None,
            steps: 0,
        }
    }

    /// Steps completed cleanly so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Drops the chain memory: the next step runs cold (full encode, no guess),
    /// as if it were the first.  Use after a discontinuity the chain cannot
    /// smooth over (remeshing, a load jump) to avoid paying the one guarded SpMV
    /// on a guess that cannot help.
    pub fn reset(&mut self) {
        self.memory = None;
    }

    /// Submits one step of the chain and blocks until it resolves.
    ///
    /// The plan is submitted with a `SequenceSpec` attached: the previous
    /// step's matrix as incremental-re-encode predecessor and its solution as
    /// the warm-start guess (both absent on the first step, or after
    /// [`reset`](Self::reset)).  On clean completion the step's matrix and
    /// solution become the next step's memory.  Admission errors hand the plan
    /// back intact, exactly like [`SolveClient::submit`].
    pub fn step(&mut self, mut plan: SolvePlan) -> Result<TicketOutcome, SubmitError> {
        let fingerprint = plan.job.matrix.fingerprint();
        let csr = plan.job.matrix.csr_arc();
        plan.job.sequence = Some(match &self.memory {
            Some(memory) => SequenceSpec {
                predecessor: Some(SequencePredecessor {
                    fingerprint: memory.fingerprint,
                    csr: Arc::clone(&memory.csr),
                }),
                initial_guess: Some(Arc::clone(&memory.solution)),
            },
            None => SequenceSpec::default(),
        });
        let outcome = self.client.submit(plan)?.wait();
        if let TicketOutcome::Completed(job) = &outcome {
            self.memory = Some(StepMemory {
                fingerprint,
                csr,
                solution: Arc::new(job.result.x.clone()),
            });
            self.steps += 1;
        }
        Ok(outcome)
    }
}

impl std::fmt::Debug for SolveSequence<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveSequence")
            .field("steps", &self.steps)
            .field("warm", &self.memory.is_some())
            .finish()
    }
}

impl SolveClient {
    /// Starts a solve sequence against this client (see [`SolveSequence`]).
    pub fn sequence(&self) -> SolveSequence<'_> {
        SolveSequence::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::MatrixHandle;
    use crate::telemetry::metric_names;
    use crate::{RuntimeConfig, SolveRuntime};
    use refloat_core::ReFloatConfig;
    use refloat_matgen::fem::poisson_2d;
    use refloat_matgen::{TransientChain, TransientSpec};

    fn chain(steps: usize) -> TransientChain {
        TransientChain::new(
            poisson_2d(10, 9, 0.2, 13),
            TransientSpec::default()
                .with_steps(steps)
                .with_seed(29)
                .with_drift(0.02, 0.25)
                .with_mass(0.5, 0.05),
        )
    }

    fn format() -> ReFloatConfig {
        ReFloatConfig::new(4, 3, 8, 3, 8)
    }

    #[test]
    fn a_sequence_reuses_blocks_and_warm_starts_every_step_after_the_first() {
        let client = SolveRuntime::start(RuntimeConfig {
            workers: 1,
            ..Default::default()
        });
        let mut seq = client.sequence();
        for step in chain(6) {
            let handle = MatrixHandle::new(format!("step-{}", step.index), step.matrix);
            let outcome = seq
                .step(
                    SolvePlan::new("t", handle, format())
                        .rhs(std::sync::Arc::new(step.rhs))
                        .build()
                        .unwrap(),
                )
                .unwrap()
                .completed()
                .expect("sequence steps complete");
            assert!(outcome.result.converged());
            let tele = outcome.telemetry.sequence.as_ref().expect("sequence rows");
            if step.index == 0 {
                assert!(!tele.warm_start_used && !tele.incremental);
            } else {
                assert!(tele.warm_start_used, "step {} ran cold", step.index);
                assert!(
                    tele.incremental,
                    "step {} re-encoded from scratch",
                    step.index
                );
                assert!(
                    tele.blocks_reused > 0,
                    "a 2% perturbation must leave some blocks untouched"
                );
            }
        }
        assert_eq!(seq.steps(), 6);
        let report = client.shutdown();
        assert_eq!(report.seq_steps, 6);
        assert_eq!(report.warm_start_hits, 5);
        assert!(report.blocks_reused > 0);
        assert!(report.blocks_reencoded > 0);
        let rendered = report.render();
        assert!(
            rendered.contains("sequences"),
            "report renders the sequence line"
        );
    }

    #[test]
    fn live_metrics_snapshot_serves_the_sequence_vocabulary_undrained() {
        // Satellite guarantee: the five sequence counters are registered at client
        // spawn and observable on a *live* (undrained) client — present-and-zero
        // before any sequence traffic, correct mid-service afterwards.
        let client = SolveRuntime::start(RuntimeConfig {
            workers: 1,
            ..Default::default()
        });
        let before = client.metrics_snapshot();
        for name in [
            metric_names::SEQ_STEPS,
            metric_names::WARM_START_HITS,
            metric_names::BLOCKS_REENCODED,
            metric_names::BLOCKS_REUSED,
            metric_names::SEQ_DECISION_CACHE_HITS,
        ] {
            assert_eq!(before.counter(name), Some(0), "{name} registered at spawn");
        }

        let mut seq = client.sequence();
        for step in chain(3) {
            let handle = MatrixHandle::new(format!("live-{}", step.index), step.matrix);
            seq.step(
                SolvePlan::new("t", handle, format())
                    .rhs(std::sync::Arc::new(step.rhs))
                    .build()
                    .unwrap(),
            )
            .unwrap();
        }
        // No drain, no shutdown: the client is still admitting.
        let live = client.metrics_snapshot();
        assert_eq!(live.counter(metric_names::SEQ_STEPS), Some(3));
        assert_eq!(live.counter(metric_names::WARM_START_HITS), Some(2));
        assert!(live.counter(metric_names::BLOCKS_REUSED).unwrap() > 0);
        assert!(live.counter(metric_names::BLOCKS_REENCODED).unwrap() > 0);
        client.shutdown();
    }

    #[test]
    fn an_incrementally_encoded_step_solves_bitwise_identically_to_a_cold_client() {
        // The incremental encoding is bitwise-identical to from-scratch by
        // construction (refloat_core::incremental asserts it in-tree); this checks
        // the property end-to-end through the service: the *solution* of a
        // predecessor-chained step (no warm-start guess, so the solver runs the
        // exact cold iteration) matches a fresh client bit for bit.
        let steps: Vec<_> = chain(2).collect();
        let handle0 = MatrixHandle::new("s0", steps[0].matrix.clone());
        let handle1 = MatrixHandle::new("s1", steps[1].matrix.clone());

        let cold_client = SolveRuntime::start(RuntimeConfig {
            workers: 1,
            ..Default::default()
        });
        let cold = cold_client
            .submit(
                SolvePlan::new("t", handle1.clone(), format())
                    .rhs(std::sync::Arc::new(steps[1].rhs.clone()))
                    .build()
                    .unwrap(),
            )
            .unwrap()
            .wait()
            .completed()
            .unwrap();
        cold_client.shutdown();

        let client = SolveRuntime::start(RuntimeConfig {
            workers: 1,
            ..Default::default()
        });
        client
            .submit(
                SolvePlan::new("t", handle0.clone(), format())
                    .rhs(std::sync::Arc::new(steps[0].rhs.clone()))
                    .build()
                    .unwrap(),
            )
            .unwrap()
            .wait()
            .completed()
            .unwrap();
        // Chain the predecessor but withhold the guess: in-crate surgery on the
        // built plan, the same trick client.rs tests use.
        let mut plan = SolvePlan::new("t", handle1, format())
            .rhs(std::sync::Arc::new(steps[1].rhs.clone()))
            .build()
            .unwrap();
        plan.job.sequence = Some(SequenceSpec {
            predecessor: Some(SequencePredecessor {
                fingerprint: handle0.fingerprint(),
                csr: handle0.csr_arc(),
            }),
            initial_guess: None,
        });
        let incremental = client.submit(plan).unwrap().wait().completed().unwrap();
        let tele = incremental.telemetry.sequence.as_ref().unwrap();
        assert!(tele.incremental, "the predecessor's encoding was in cache");
        assert!(!tele.warm_start_used);
        client.shutdown();

        assert_eq!(cold.result.iterations, incremental.result.iterations);
        let cold_bits: Vec<u64> = cold.result.x.iter().map(|v| v.to_bits()).collect();
        let inc_bits: Vec<u64> = incremental.result.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            cold_bits, inc_bits,
            "incremental encode must not change numerics"
        );
    }

    #[test]
    fn auto_format_steps_inherit_the_predecessor_decision() {
        let client = SolveRuntime::start(RuntimeConfig {
            workers: 1,
            ..Default::default()
        });
        let mut seq = client.sequence();
        let mut hits = 0u32;
        for step in chain(4) {
            let handle = MatrixHandle::new(format!("af-{}", step.index), step.matrix);
            let outcome = seq
                .step(
                    SolvePlan::new("t", handle, ReFloatConfig::paper_default())
                        .rhs(std::sync::Arc::new(step.rhs))
                        .auto_format(1e-6)
                        .build()
                        .unwrap(),
                )
                .unwrap()
                .completed()
                .expect("auto-format sequence steps complete");
            assert!(outcome.result.converged());
            let tele = outcome.telemetry.sequence.as_ref().unwrap();
            if tele.decision_cache_hit {
                hits += 1;
            }
        }
        assert_eq!(
            hits, 3,
            "every step after the first inherits the memoized decision"
        );
        let report = client.shutdown();
        assert_eq!(report.seq_decision_cache_hits, 3);
        // The inherited decisions still converged: the true-residual epilogue
        // verified each one on its own matrix.
        assert_eq!(report.converged, 4);
    }

    #[test]
    fn refined_sequence_steps_warm_start_the_outer_loop_and_encode_incrementally() {
        // The refined path is where a warm start actually pays: the outer loop
        // measures *exact* fp64 residuals, so a carried-over solution starts the
        // refinement decades below ‖b‖ and skips cold passes while still hitting
        // the same true-residual target.
        use crate::job::RefinementSpec;
        let client = SolveRuntime::start(RuntimeConfig {
            workers: 1,
            ..Default::default()
        });
        let mut seq = client.sequence();
        let steps: Vec<_> = TransientChain::new(
            poisson_2d(10, 9, 0.2, 13),
            TransientSpec::default()
                .with_steps(4)
                .with_seed(29)
                .with_drift(1e-7, 0.25)
                .with_rhs_phase(1e-6)
                .with_mass(0.5, 0.0),
        )
        .collect();
        let mut cold_chip_iters = 0;
        for step in &steps {
            let handle = MatrixHandle::new(format!("ref-{}", step.index), step.matrix.clone());
            let outcome = seq
                .step(
                    SolvePlan::new("t", handle, format())
                        .rhs(std::sync::Arc::new(step.rhs.clone()))
                        .refinement(RefinementSpec::to_target(1e-8))
                        .build()
                        .unwrap(),
                )
                .unwrap()
                .completed()
                .expect("refined sequence steps complete");
            assert!(outcome.result.converged());
            assert!(
                step.matrix.relative_residual(&step.rhs, &outcome.result.x) <= 1e-8,
                "step {} missed the true-residual target",
                step.index
            );
            let tele = outcome.telemetry.sequence.as_ref().expect("sequence rows");
            if step.index == 0 {
                assert!(!tele.warm_start_used && !tele.incremental);
                cold_chip_iters = outcome.result.iterations;
            } else {
                assert!(tele.warm_start_used, "step {} ran cold", step.index);
                assert!(
                    tele.initial_residual.is_some(),
                    "a warm refined step records its guarded r0"
                );
                assert!(
                    tele.incremental,
                    "step {} re-encoded from scratch",
                    step.index
                );
                assert!(tele.blocks_reused > 0);
                assert!(
                    outcome.result.iterations < cold_chip_iters,
                    "warm refinement must skip cold passes ({} >= {cold_chip_iters})",
                    outcome.result.iterations
                );
            }
        }
        let report = client.shutdown();
        assert_eq!(report.seq_steps, 4);
        assert_eq!(report.warm_start_hits, 3);
    }

    #[test]
    fn reset_drops_the_chain_memory() {
        let client = SolveRuntime::start(RuntimeConfig {
            workers: 1,
            ..Default::default()
        });
        let mut seq = client.sequence();
        let steps: Vec<_> = chain(2).collect();
        for step in &steps {
            let handle = MatrixHandle::new(format!("r-{}", step.index), step.matrix.clone());
            seq.step(
                SolvePlan::new("t", handle, format())
                    .rhs(std::sync::Arc::new(step.rhs.clone()))
                    .build()
                    .unwrap(),
            )
            .unwrap();
        }
        seq.reset();
        let handle = MatrixHandle::new("r-again", steps[1].matrix.clone());
        let outcome = seq
            .step(
                SolvePlan::new("t", handle, format())
                    .rhs(std::sync::Arc::new(steps[1].rhs.clone()))
                    .build()
                    .unwrap(),
            )
            .unwrap()
            .completed()
            .unwrap();
        let tele = outcome.telemetry.sequence.as_ref().unwrap();
        assert!(
            !tele.warm_start_used && !tele.incremental,
            "reset runs cold"
        );
        assert_eq!(seq.steps(), 3, "a post-reset step still counts");
        client.shutdown();
    }
}
