//! The format-decision cache: memoized auto-tuning verdicts keyed by
//! (matrix fingerprint, blocking, tolerance, chip capacity).
//!
//! A `plan_format` analysis costs an eigen estimation plus verification solves — far
//! more than an encode — so repeat tenants must not pay it twice.  The cache mirrors
//! the [`EncodedMatrixCache`](crate::cache::EncodedMatrixCache) design: LRU eviction
//! plus in-flight deduplication, so concurrent first-touch jobs on the same matrix
//! run exactly one analysis and the rest coalesce onto its result.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Condvar, Mutex};

use refloat_core::autotune::FormatDecision;
use refloat_solvers::SolverKind;
use refloat_telemetry::{sync, Clock};

/// What pins an auto-tuning decision: the matrix content, the blocking (candidates
/// share the job format's `b`), the requested tolerance, the crossbar capacity the
/// cost model ranked against, and the Krylov solver the verification trials ran
/// (CG and BiCGSTAB converge differently on the same quantized operator, so their
/// decisions must not be shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DecisionKey {
    /// Content hash of the matrix (structure + values).
    pub fingerprint: u64,
    /// Block-size exponent every candidate was constrained to.
    pub b: u32,
    /// `tolerance.to_bits()` — exact bit pattern, so keys stay `Eq + Hash`.
    pub tolerance_bits: u64,
    /// Total crossbars the ranking assumed (per chip × chips the job spans).
    pub chip_crossbars: u64,
    /// The solver the analysis verified with.
    pub solver: SolverKind,
}

impl DecisionKey {
    /// Builds the key for one job's analysis request.
    pub fn new(
        fingerprint: u64,
        b: u32,
        tolerance: f64,
        chip_crossbars: u64,
        solver: SolverKind,
    ) -> Self {
        DecisionKey {
            fingerprint,
            b,
            tolerance_bits: tolerance.to_bits(),
            chip_crossbars,
            solver,
        }
    }
}

/// How one decision lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionOutcome {
    /// The decision was already cached.
    Hit,
    /// This lookup ran the analysis (seconds spent planning).
    Miss {
        /// Wall-clock seconds this caller spent in `plan_format`.
        analysis_seconds: f64,
    },
    /// Another worker was already analysing this key; this lookup waited for it.
    Coalesced,
}

impl DecisionOutcome {
    /// `true` unless this lookup paid for the analysis itself.
    pub fn skipped_analysis(&self) -> bool {
        !matches!(self, DecisionOutcome::Miss { .. })
    }
}

/// Monotonic decision-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that ran an analysis.
    pub misses: u64,
    /// Lookups that waited for a concurrent analysis of the same key.
    pub coalesced: u64,
    /// Entries dropped by the LRU policy.
    pub evictions: u64,
}

impl DecisionStats {
    /// Counter increments since an earlier snapshot of the same cache.
    pub fn delta_since(&self, earlier: &DecisionStats) -> DecisionStats {
        DecisionStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            coalesced: self.coalesced - earlier.coalesced,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

struct DecisionEntry {
    decision: FormatDecision,
    last_used: u64,
}

struct DecisionInner {
    /// Ordered map so iteration (the LRU victim scan) visits keys deterministically.
    map: BTreeMap<DecisionKey, DecisionEntry>,
    pending: BTreeSet<DecisionKey>,
    tick: u64,
    stats: DecisionStats,
}

/// A thread-safe LRU cache of [`FormatDecision`]s.  See the module docs.
pub struct FormatDecisionCache {
    inner: Mutex<DecisionInner>,
    ready: Condvar,
    capacity: usize,
}

impl FormatDecisionCache {
    /// Creates a cache holding at most `capacity` decisions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "decision cache capacity must be at least 1");
        FormatDecisionCache {
            inner: Mutex::new(DecisionInner {
                map: BTreeMap::new(),
                pending: BTreeSet::new(),
                tick: 0,
                stats: DecisionStats::default(),
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of cached decisions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Decisions currently cached.
    pub fn len(&self) -> usize {
        sync::lock(&self.inner).map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> DecisionStats {
        sync::lock(&self.inner).stats
    }

    /// Whether a key is currently cached (does not touch recency).
    pub fn contains(&self, key: &DecisionKey) -> bool {
        sync::lock(&self.inner).map.contains_key(key)
    }

    /// Non-counting lookup: the cached decision for `key` if present.  Refreshes LRU
    /// recency but records neither hit nor miss — sequence steps use it to probe for
    /// a predecessor's decision without skewing the hit-rate statistics.
    pub fn peek(&self, key: &DecisionKey) -> Option<FormatDecision> {
        let mut inner = sync::lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|entry| {
            entry.last_used = tick;
            entry.decision
        })
    }

    /// Returns the decision for `key`, calling `analyse` (outside the lock) only if no
    /// other caller has cached or is currently computing it.  Analysis timing is read
    /// from `clock` so a `ManualClock` run reports exactly-zero analysis seconds.
    pub fn get_or_analyse<F>(
        &self,
        key: DecisionKey,
        clock: &dyn Clock,
        analyse: F,
    ) -> (FormatDecision, DecisionOutcome)
    where
        F: FnOnce() -> FormatDecision,
    {
        let mut inner = sync::lock(&self.inner);
        let mut waited = false;
        loop {
            if inner.map.contains_key(&key) {
                inner.tick += 1;
                let tick = inner.tick;
                // refloat-analysis: allow(panic-in-service-path) — key presence was
                // checked two lines above under the same guard.
                let entry = inner.map.get_mut(&key).expect("entry just found");
                entry.last_used = tick;
                let decision = entry.decision;
                let outcome = if waited {
                    inner.stats.coalesced += 1;
                    DecisionOutcome::Coalesced
                } else {
                    inner.stats.hits += 1;
                    DecisionOutcome::Hit
                };
                return (decision, outcome);
            }
            if inner.pending.contains(&key) {
                waited = true;
                inner = sync::wait(&self.ready, inner);
                continue;
            }
            inner.pending.insert(key);
            break;
        }
        drop(inner);

        // Analyse outside the lock; the guard unblocks waiters if `analyse` panics
        // (they then race to analyse themselves).  On success the pending marker is
        // cleared in the same critical section that publishes the entry.
        let mut guard = PendingGuard {
            cache: self,
            key,
            armed: true,
        };
        let started_s = clock.now_s();
        let decision = analyse();
        let analysis_seconds = (clock.now_s() - started_s).max(0.0);

        let mut inner = sync::lock(&self.inner);
        guard.armed = false;
        inner.pending.remove(&key);
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            DecisionEntry {
                decision,
                last_used: tick,
            },
        );
        inner.stats.misses += 1;
        while inner.map.len() > self.capacity {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                    inner.stats.evictions += 1;
                }
                None => break,
            }
        }
        drop(inner);
        self.ready.notify_all();
        (decision, DecisionOutcome::Miss { analysis_seconds })
    }
}

/// Removes the pending mark (and wakes waiters) if the analysis unwinds; disarmed on
/// the success path, where the marker is cleared together with the entry insert.
struct PendingGuard<'a> {
    cache: &'a FormatDecisionCache,
    key: DecisionKey,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        sync::lock(&self.cache.inner).pending.remove(&self.key);
        self.cache.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_core::ReFloatConfig;
    use refloat_solvers::SolverKind;
    use refloat_telemetry::WallClock;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn decision(e: u32) -> FormatDecision {
        FormatDecision {
            format: ReFloatConfig::new(4, e, 8, e, 13),
            kappa: 10.0,
            degraded_confidence: false,
            predicted_convergent: true,
            predicted_iterations: 25,
            predicted_cycles_per_spmv: 40,
        }
    }

    #[test]
    fn second_lookup_is_a_hit_and_skips_the_analysis() {
        let cache = FormatDecisionCache::new(4);
        let key = DecisionKey::new(7, 4, 1e-6, 1 << 18, SolverKind::Cg);
        let analyses = AtomicU64::new(0);
        let clock = WallClock::new();
        let run = || {
            cache.get_or_analyse(key, &clock, || {
                analyses.fetch_add(1, Ordering::SeqCst);
                decision(3)
            })
        };
        let (first_decision, first) = run();
        assert!(matches!(first, DecisionOutcome::Miss { .. }));
        assert!(!first.skipped_analysis());
        let (second_decision, second) = run();
        assert_eq!(second, DecisionOutcome::Hit);
        assert_eq!(first_decision, second_decision);
        assert_eq!(analyses.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn distinct_tolerances_and_chips_are_distinct_decisions() {
        let cache = FormatDecisionCache::new(8);
        let clock = WallClock::new();
        cache.get_or_analyse(
            DecisionKey::new(7, 4, 1e-6, 1 << 18, SolverKind::Cg),
            &clock,
            || decision(3),
        );
        cache.get_or_analyse(
            DecisionKey::new(7, 4, 1e-8, 1 << 18, SolverKind::Cg),
            &clock,
            || decision(4),
        );
        cache.get_or_analyse(
            DecisionKey::new(7, 4, 1e-6, 1 << 12, SolverKind::Cg),
            &clock,
            || decision(5),
        );
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
        assert!(cache.contains(&DecisionKey::new(7, 4, 1e-8, 1 << 18, SolverKind::Cg)));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_decision() {
        let cache = FormatDecisionCache::new(2);
        let clock = WallClock::new();
        let key = |tag: u64| DecisionKey::new(tag, 4, 1e-6, 1 << 18, SolverKind::Cg);
        cache.get_or_analyse(key(1), &clock, || decision(2));
        cache.get_or_analyse(key(2), &clock, || decision(3));
        cache.get_or_analyse(key(1), &clock, || decision(2)); // touch 1; 2 becomes LRU
        cache.get_or_analyse(key(3), &clock, || decision(4)); // evicts 2
        assert!(cache.contains(&key(1)));
        assert!(!cache.contains(&key(2)));
        assert!(cache.contains(&key(3)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn concurrent_lookups_of_one_key_analyse_exactly_once() {
        let cache = FormatDecisionCache::new(4);
        let key = DecisionKey::new(42, 4, 1e-6, 1 << 18, SolverKind::Cg);
        let analyses = AtomicU64::new(0);
        let clock = WallClock::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_analyse(key, &clock, || {
                        analyses.fetch_add(1, Ordering::SeqCst);
                        // Give the other threads a chance to actually race it.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        decision(3)
                    });
                });
            }
        });
        assert_eq!(analyses.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, 7);
    }
}
