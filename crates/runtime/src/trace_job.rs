//! The worker-side trace builder: accumulates one job's [`TraceEvent`]s locally and
//! flushes them to the shared [`TraceSink`] in a single batch, so tracing costs one
//! sink-lock acquisition per *job*.  With no sink configured every method is a no-op
//! and detail strings are never even formatted (the closures are not called).

use refloat_telemetry::{SpanKind, TraceEvent, TraceSink};

/// One job's in-flight trace.  Created per dequeued job by the worker loop and
/// threaded through `execute_job`; disabled (all no-ops) when the runtime has no
/// trace sink.
pub(crate) struct JobTrace<'a> {
    sink: Option<&'a TraceSink>,
    job_id: u64,
    worker: u64,
    seq: u32,
    events: Vec<TraceEvent>,
}

impl<'a> JobTrace<'a> {
    /// `seq_base` is the first sequence number this builder may use: a cluster
    /// reserves the leading slots of a job's timeline for its submit-side
    /// admit/route events, so worker events must start after them to keep
    /// `(job_id, seq)` unique.  0 on the single-node path.
    pub(crate) fn new(
        sink: Option<&'a TraceSink>,
        job_id: u64,
        worker: usize,
        seq_base: u32,
    ) -> Self {
        JobTrace {
            sink,
            job_id,
            worker: worker as u64,
            seq: seq_base,
            events: Vec::new(),
        }
    }

    /// Whether events are being collected (callers may skip preparing inputs).
    pub(crate) fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The sink clock's current reading (0.0 when tracing is disabled — only ever
    /// used as the start anchor of a span that is then never emitted).
    pub(crate) fn now_s(&self) -> f64 {
        self.sink.map(|s| s.now_s()).unwrap_or(0.0)
    }

    fn push(&mut self, kind: SpanKind, start_s: f64, end_s: f64, detail: String) {
        self.events.push(TraceEvent {
            job_id: self.job_id,
            seq: self.seq,
            worker: Some(self.worker),
            kind,
            start_s,
            end_s,
            detail,
        });
        self.seq += 1;
    }

    /// An instant event at "now".
    pub(crate) fn instant(&mut self, kind: SpanKind, detail: impl FnOnce() -> String) {
        if self.sink.is_some() {
            let now = self.now_s();
            self.push(kind, now, now, detail());
        }
    }

    /// A span from an earlier [`now_s`](Self::now_s) anchor to "now".
    pub(crate) fn span(&mut self, kind: SpanKind, start_s: f64, detail: impl FnOnce() -> String) {
        if self.sink.is_some() {
            let end = self.now_s();
            self.push(kind, start_s.min(end), end, detail());
        }
    }

    /// A span of known duration ending "now" — for stages whose timing was measured
    /// elsewhere (queue wait, a cache miss's encode seconds).
    pub(crate) fn span_backdated(
        &mut self,
        kind: SpanKind,
        duration_s: f64,
        detail: impl FnOnce() -> String,
    ) {
        if self.sink.is_some() {
            let end = self.now_s();
            self.push(kind, (end - duration_s.max(0.0)).max(0.0), end, detail());
        }
    }

    /// Flushes the job's events to the sink (one lock acquisition).
    pub(crate) fn flush(self) {
        if let Some(sink) = self.sink {
            sink.record_batch(self.events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_telemetry::ManualClock;
    use std::sync::Arc;

    #[test]
    fn disabled_trace_is_free_and_never_formats_details() {
        let mut jt = JobTrace::new(None, 1, 0, 0);
        assert!(!jt.enabled());
        jt.instant(SpanKind::Dequeue, || panic!("must not be called"));
        jt.span(SpanKind::Execute, 0.0, || panic!("must not be called"));
        jt.flush();
    }

    #[test]
    fn seq_base_reserves_leading_slots_for_cluster_events() {
        let sink = TraceSink::wall();
        let mut jt = JobTrace::new(Some(&sink), 9, 1, 2);
        jt.instant(SpanKind::Dequeue, || "after-admit-and-route".to_string());
        jt.flush();
        let events = sink.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 2, "seqs 0/1 stay free for admit/route");
    }

    #[test]
    fn events_are_sequenced_and_flushed_as_one_batch() {
        let clock = Arc::new(ManualClock::new());
        let sink = TraceSink::new(Arc::clone(&clock) as Arc<dyn refloat_telemetry::Clock>);
        let mut jt = JobTrace::new(Some(&sink), 7, 3, 0);
        clock.set(1.0);
        let start = jt.now_s();
        clock.set(1.5);
        jt.span(SpanKind::Execute, start, || "iterations=10".to_string());
        jt.span_backdated(SpanKind::QueueWait, 0.25, String::new);
        jt.instant(SpanKind::Dequeue, || "priority=standard".to_string());
        assert!(sink.is_empty(), "nothing reaches the sink before flush");
        jt.flush();
        let events = sink.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(events[0].kind, SpanKind::Execute);
        assert_eq!(events[0].start_s, 1.0);
        assert_eq!(events[0].end_s, 1.5);
        assert_eq!(events[1].start_s, 1.25);
        assert_eq!(events[2].worker, Some(3));
        assert_eq!(events[2].duration_s(), 0.0);
    }
}
