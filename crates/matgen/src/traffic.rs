//! Open-loop traffic generation: seeded arrival processes and heavy-tailed tenant
//! populations for driving the solve service the way real front-ends do.
//!
//! A *closed-loop* driver (submit, wait, submit …) can never overload a service —
//! its offered load adapts to the service's speed, hiding every queueing effect the
//! cluster's admission control exists to manage.  An *open-loop* trace fixes the
//! arrival times **up front**, independent of completions: jobs arrive when the
//! trace says they arrive, whether or not the service has kept up.  That is the
//! regime where shedding, quotas, and p99 queue waits mean something.
//!
//! Everything here is a pure function of the [`TrafficSpec`] (ChaCha8 seeded), so a
//! trace is bitwise-reproducible across runs, worker counts, and node counts — the
//! same determinism contract the runtime's numerics follow.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential gaps at `rate_per_s` (the classic open-loop
    /// reference load).
    Poisson {
        /// Mean arrivals per second.
        rate_per_s: f64,
    },
    /// Bursty arrivals: geometrically-sized bursts of back-to-back jobs
    /// (`within_burst_gap_s` apart), with exponential gaps between bursts sized so
    /// the *long-run* rate is still `rate_per_s`.  Stresses admission control much
    /// harder than Poisson at the same average rate.
    Bursty {
        /// Mean arrivals per second, long-run.
        rate_per_s: f64,
        /// Mean burst size (geometric; must be ≥ 1).
        mean_burst: f64,
        /// Gap between jobs inside one burst, seconds.
        within_burst_gap_s: f64,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate, jobs per second.
    pub fn rate_per_s(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } | ArrivalProcess::Bursty { rate_per_s, .. } => {
                rate_per_s
            }
        }
    }
}

/// A reproducible open-loop trace specification.
#[derive(Debug, Clone, Copy)]
pub struct TrafficSpec {
    /// Total arrivals to generate.
    pub jobs: usize,
    /// Distinct tenants; tenant `k` is drawn with weight `(k+1)^-skew`.
    pub tenants: usize,
    /// Zipf exponent over the tenant population (0 = uniform; ~1 = realistic
    /// heavy tail where a couple of tenants dominate the traffic).
    pub tenant_skew: f64,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// ChaCha8 seed — the trace is a pure function of this spec.
    pub seed: u64,
}

/// One arrival of the generated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Arrival time, seconds from trace start (non-decreasing across the trace).
    pub at_s: f64,
    /// Index of the submitting tenant in `0..spec.tenants`.
    pub tenant: usize,
    /// Index of the catalog item this job solves, drawn from `item_weights`.
    pub item: usize,
}

/// Zipf-like weights `(k+1)^-s` for `n` ranks (unnormalized; `s = 0` is uniform).
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|k| ((k + 1) as f64).powf(-s)).collect()
}

/// Draws an index from unnormalized `weights` with one uniform variate.
fn pick(weights: &[f64], rng: &mut ChaCha8Rng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut target = rng.gen::<f64>() * total;
    for (index, w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return index;
        }
    }
    weights.len().saturating_sub(1)
}

/// An exponential variate with the given mean (inverse-CDF of one uniform draw;
/// `1 - u` keeps the log argument strictly positive since `u ∈ [0, 1)`).
fn exponential(mean: f64, rng: &mut ChaCha8Rng) -> f64 {
    -(1.0 - rng.gen::<f64>()).ln() * mean
}

/// Generates the full arrival trace of `spec`: arrival times from the process,
/// tenants from the skewed population, items from `item_weights` (the same
/// catalog-weight convention the serving benches use).
///
/// Deterministic: identical specs and weights yield identical traces, on any
/// machine, at any worker/node count — the trace is *input*, not measurement.
pub fn generate(spec: &TrafficSpec, item_weights: &[f64]) -> Vec<Arrival> {
    assert!(spec.tenants >= 1, "traffic needs at least one tenant");
    assert!(
        !item_weights.is_empty(),
        "traffic needs a non-empty catalog"
    );
    assert!(
        spec.arrivals.rate_per_s() > 0.0,
        "arrival rate must be positive"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let tenant_weights = zipf_weights(spec.tenants, spec.tenant_skew);
    let mut arrivals = Vec::with_capacity(spec.jobs);
    let mut now_s = 0.0f64;
    match spec.arrivals {
        ArrivalProcess::Poisson { rate_per_s } => {
            let mean_gap = 1.0 / rate_per_s;
            for _ in 0..spec.jobs {
                now_s += exponential(mean_gap, &mut rng);
                arrivals.push(Arrival {
                    at_s: now_s,
                    tenant: pick(&tenant_weights, &mut rng),
                    item: pick(item_weights, &mut rng),
                });
            }
        }
        ArrivalProcess::Bursty {
            rate_per_s,
            mean_burst,
            within_burst_gap_s,
        } => {
            assert!(mean_burst >= 1.0, "mean burst size must be at least 1");
            // A burst of mean size B arriving every mean_burst_gap seconds offers
            // B / mean_burst_gap jobs/s; solve for the gap that hits rate_per_s.
            let mean_burst_gap_s = mean_burst / rate_per_s;
            while arrivals.len() < spec.jobs {
                now_s += exponential(mean_burst_gap_s, &mut rng);
                // Geometric burst size with mean `mean_burst`: count Bernoulli
                // continues at p = 1 - 1/mean.
                let continue_p = 1.0 - 1.0 / mean_burst;
                let mut burst = 1;
                while rng.gen::<f64>() < continue_p {
                    burst += 1;
                }
                // The whole burst shares one tenant — that is what makes bursts
                // adversarial for per-tenant quotas.
                let tenant = pick(&tenant_weights, &mut rng);
                for j in 0..burst {
                    if arrivals.len() >= spec.jobs {
                        break;
                    }
                    arrivals.push(Arrival {
                        at_s: now_s + j as f64 * within_burst_gap_s,
                        tenant,
                        item: pick(item_weights, &mut rng),
                    });
                }
            }
        }
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(arrivals: ArrivalProcess) -> TrafficSpec {
        TrafficSpec {
            jobs: 500,
            tenants: 8,
            tenant_skew: 1.1,
            arrivals,
            seed: 42,
        }
    }

    #[test]
    fn identical_specs_generate_identical_traces() {
        let weights = zipf_weights(8, 1.0);
        let s = spec(ArrivalProcess::Poisson { rate_per_s: 50.0 });
        assert_eq!(generate(&s, &weights), generate(&s, &weights));
        let b = spec(ArrivalProcess::Bursty {
            rate_per_s: 50.0,
            mean_burst: 6.0,
            within_burst_gap_s: 1e-4,
        });
        assert_eq!(generate(&b, &weights), generate(&b, &weights));
    }

    #[test]
    fn different_seeds_differ() {
        let weights = zipf_weights(4, 0.0);
        let a = spec(ArrivalProcess::Poisson { rate_per_s: 50.0 });
        let mut b = a;
        b.seed = 43;
        assert_ne!(generate(&a, &weights), generate(&b, &weights));
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_near_the_requested_rate() {
        let s = TrafficSpec {
            jobs: 4000,
            tenants: 4,
            tenant_skew: 0.0,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 100.0 },
            seed: 7,
        };
        let trace = generate(&s, &[1.0]);
        assert!(trace.windows(2).all(|w| w[0].at_s <= w[1].at_s));
        let span = trace.last().unwrap().at_s;
        let rate = trace.len() as f64 / span;
        assert!(
            (rate - 100.0).abs() / 100.0 < 0.15,
            "empirical rate {rate:.1}/s too far from 100/s"
        );
    }

    #[test]
    fn bursty_arrivals_hit_the_long_run_rate_and_share_tenants_within_bursts() {
        let s = TrafficSpec {
            jobs: 4000,
            tenants: 6,
            tenant_skew: 0.0,
            arrivals: ArrivalProcess::Bursty {
                rate_per_s: 100.0,
                mean_burst: 8.0,
                within_burst_gap_s: 1e-5,
            },
            seed: 11,
        };
        let trace = generate(&s, &[1.0, 1.0]);
        assert!(trace.windows(2).all(|w| w[0].at_s <= w[1].at_s));
        let span = trace.last().unwrap().at_s;
        let rate = trace.len() as f64 / span;
        assert!(
            (rate - 100.0).abs() / 100.0 < 0.25,
            "empirical long-run rate {rate:.1}/s too far from 100/s"
        );
        // Back-to-back arrivals (same burst) share a tenant.
        let same_burst_pairs = trace
            .windows(2)
            .filter(|w| w[1].at_s - w[0].at_s < 5e-5)
            .count();
        assert!(same_burst_pairs > 0, "bursts must produce tight pairs");
        assert!(trace
            .windows(2)
            .filter(|w| w[1].at_s - w[0].at_s < 5e-5)
            .all(|w| w[0].tenant == w[1].tenant));
    }

    #[test]
    fn tenant_skew_concentrates_traffic_on_low_ranks() {
        let s = TrafficSpec {
            jobs: 2000,
            tenants: 10,
            tenant_skew: 1.2,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 10.0 },
            seed: 3,
        };
        let trace = generate(&s, &[1.0]);
        let tenant0 = trace.iter().filter(|a| a.tenant == 0).count();
        let tenant9 = trace.iter().filter(|a| a.tenant == 9).count();
        assert!(
            tenant0 > 4 * tenant9.max(1),
            "rank 0 ({tenant0}) must dominate rank 9 ({tenant9}) at skew 1.2"
        );
        // Every tenant index stays in range.
        assert!(trace.iter().all(|a| a.tenant < 10));
    }

    #[test]
    fn zero_skew_is_uniform_ish() {
        let weights = zipf_weights(5, 0.0);
        assert!(weights.iter().all(|&w| (w - 1.0).abs() < 1e-12));
    }
}
