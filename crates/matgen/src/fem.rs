//! Structured-mesh finite-element assembly: 2D/3D Poisson and 2D linear
//! elasticity with Q1 (bi/trilinear) elements.
//!
//! Each operator is assembled the classical way — a per-element stiffness
//! matrix from a tensorized 2-point Gauss quadrature over the reference
//! element, scattered into the global matrix — with a *seeded lognormal
//! coefficient field* (conductivity for Poisson, Young's modulus for
//! elasticity) so the exponent spread inside ReFloat blocks is realistic
//! rather than uniform.  Dirichlet boundaries are imposed by symmetric
//! elimination (boundary nodes are simply not unknowns), which keeps every
//! assembled operator symmetric positive definite.
//!
//! These are the base operators of the transient chains in
//! [`crate::transient`]: a time-stepping run perturbs one of these matrices a
//! little per step, which is exactly the traffic shape incremental
//! re-encoding and warm-started sequences in the runtime exploit.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use refloat_sparse::CooMatrix;

/// The 1D 2-point Gauss rule on `[-1, 1]`: nodes `±1/√3`, both weights 1.
/// Tensorized per axis, it integrates Q1 element stiffness entries exactly.
const GAUSS_1D: [f64; 2] = [-0.577_350_269_189_625_7, 0.577_350_269_189_625_7];

/// A seeded per-element lognormal field `2^(σ·u)` with `u` approximately
/// standard normal (Irwin–Hall sum of four uniforms), matching the deviate
/// construction of [`crate::generators::apply_lognormal_jitter`].  `σ = 0`
/// gives the exactly-unit field.
fn coefficient_field(elements: usize, sigma_log2: f64, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..elements)
        .map(|_| {
            let u = rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 2.0;
            (sigma_log2 * u).exp2()
        })
        .collect()
}

/// The 4×4 Q1 quad Laplace element stiffness `∫ ∇Nₐ·∇N_b` on an `hx × hy`
/// element, by 2×2 Gauss quadrature.  Exactly symmetric: entry `(a, b)` and
/// `(b, a)` are the same floating-point expression up to commuted products.
fn quad_laplace_element(hx: f64, hy: f64) -> [[f64; 4]; 4] {
    // Local node order: (-1,-1), (1,-1), (1,1), (-1,1).
    let xi_n = [-1.0, 1.0, 1.0, -1.0];
    let eta_n = [-1.0, -1.0, 1.0, 1.0];
    let det_j = hx * hy / 4.0;
    let mut k = [[0.0; 4]; 4];
    for &xi in &GAUSS_1D {
        for &eta in &GAUSS_1D {
            let mut g = [[0.0; 2]; 4];
            for a in 0..4 {
                let dn_dxi = 0.25 * xi_n[a] * (1.0 + eta_n[a] * eta);
                let dn_deta = 0.25 * eta_n[a] * (1.0 + xi_n[a] * xi);
                g[a] = [dn_dxi * 2.0 / hx, dn_deta * 2.0 / hy];
            }
            for a in 0..4 {
                for b in 0..4 {
                    k[a][b] += det_j * (g[a][0] * g[b][0] + g[a][1] * g[b][1]);
                }
            }
        }
    }
    k
}

/// The 8×8 Q1 hex Laplace element stiffness on an `hx × hy × hz` element, by
/// 2×2×2 Gauss quadrature.
fn hex_laplace_element(hx: f64, hy: f64, hz: f64) -> [[f64; 8]; 8] {
    // Local node order follows the (di, dj, dk) offsets of `poisson_3d`.
    let xi_n = [-1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0];
    let eta_n = [-1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0];
    let zeta_n = [-1.0, -1.0, -1.0, -1.0, 1.0, 1.0, 1.0, 1.0];
    let det_j = hx * hy * hz / 8.0;
    let mut k = [[0.0; 8]; 8];
    for &xi in &GAUSS_1D {
        for &eta in &GAUSS_1D {
            for &zeta in &GAUSS_1D {
                let mut g = [[0.0; 3]; 8];
                for a in 0..8 {
                    let dn_dxi =
                        0.125 * xi_n[a] * (1.0 + eta_n[a] * eta) * (1.0 + zeta_n[a] * zeta);
                    let dn_deta =
                        0.125 * eta_n[a] * (1.0 + xi_n[a] * xi) * (1.0 + zeta_n[a] * zeta);
                    let dn_dzeta =
                        0.125 * zeta_n[a] * (1.0 + xi_n[a] * xi) * (1.0 + eta_n[a] * eta);
                    g[a] = [dn_dxi * 2.0 / hx, dn_deta * 2.0 / hy, dn_dzeta * 2.0 / hz];
                }
                for a in 0..8 {
                    for b in 0..8 {
                        k[a][b] +=
                            det_j * (g[a][0] * g[b][0] + g[a][1] * g[b][1] + g[a][2] * g[b][2]);
                    }
                }
            }
        }
    }
    k
}

/// The 8×8 plane-strain Q1 quad elasticity element stiffness `∫ Bᵀ D B` for a
/// unit Young's modulus and Poisson ratio `nu`, by 2×2 Gauss quadrature; DOFs
/// are interleaved `(uₓ, u_y)` per local node.  The `Bᵀ D B` triple product is
/// not commutation-symmetric in floating point, so the element matrix is
/// symmetrized explicitly (`(K + Kᵀ)/2`).
fn quad_elasticity_element(hx: f64, hy: f64, nu: f64) -> [[f64; 8]; 8] {
    let xi_n = [-1.0, 1.0, 1.0, -1.0];
    let eta_n = [-1.0, -1.0, 1.0, 1.0];
    let c = 1.0 / ((1.0 + nu) * (1.0 - 2.0 * nu));
    let d = [
        [c * (1.0 - nu), c * nu, 0.0],
        [c * nu, c * (1.0 - nu), 0.0],
        [0.0, 0.0, c * (1.0 - 2.0 * nu) / 2.0],
    ];
    let det_j = hx * hy / 4.0;
    let mut k = [[0.0; 8]; 8];
    for &xi in &GAUSS_1D {
        for &eta in &GAUSS_1D {
            let mut b = [[0.0; 8]; 3];
            for a in 0..4 {
                let dn_dx = 0.25 * xi_n[a] * (1.0 + eta_n[a] * eta) * 2.0 / hx;
                let dn_dy = 0.25 * eta_n[a] * (1.0 + xi_n[a] * xi) * 2.0 / hy;
                b[0][2 * a] = dn_dx;
                b[1][2 * a + 1] = dn_dy;
                b[2][2 * a] = dn_dy;
                b[2][2 * a + 1] = dn_dx;
            }
            for i in 0..8 {
                for j in 0..8 {
                    let mut acc = 0.0;
                    for row in 0..3 {
                        for col in 0..3 {
                            acc += b[row][i] * d[row][col] * b[col][j];
                        }
                    }
                    k[i][j] += det_j * acc;
                }
            }
        }
    }
    let mut sym = [[0.0; 8]; 8];
    for i in 0..8 {
        for j in 0..8 {
            sym[i][j] = 0.5 * (k[i][j] + k[j][i]);
        }
    }
    sym
}

/// Compresses an upper-triangle (`r ≤ c`) assembly and mirrors it across the
/// diagonal.  Element matrices here are exactly symmetric, so assembling one
/// triangle and mirroring yields the same operator as a full assembly — but
/// with *bitwise* symmetry guaranteed regardless of duplicate-summation
/// order (the COO compressor's sort is unstable).
fn mirror_upper(mut upper: CooMatrix) -> CooMatrix {
    upper.compress();
    let mut full = CooMatrix::with_capacity(upper.nrows(), upper.ncols(), 2 * upper.nnz());
    for (r, c, v) in upper.iter() {
        full.push(r, c, v);
        if r != c {
            full.push(c, r, v);
        }
    }
    full
}

/// Assembles the 2D Poisson operator `-∇·(κ ∇u)` on an `nx × ny` Q1 quad mesh
/// over the unit square, with a seeded lognormal per-element conductivity
/// `κ_e = 2^(σ·u)` and homogeneous Dirichlet boundaries (eliminated, so the
/// unknowns are the `(nx−1)(ny−1)` interior nodes).  SPD and weakly
/// diagonally dominant; deterministic per `(nx, ny, sigma_log2, seed)`.
///
/// # Panics
/// Panics when either axis has fewer than 2 elements (no interior nodes).
pub fn poisson_2d(nx: usize, ny: usize, sigma_log2: f64, seed: u64) -> CooMatrix {
    assert!(nx >= 2 && ny >= 2, "need at least 2 elements per axis");
    let ke = quad_laplace_element(1.0 / nx as f64, 1.0 / ny as f64);
    let kappa = coefficient_field(nx * ny, sigma_log2, seed);
    let n = (nx - 1) * (ny - 1);
    let mut a = CooMatrix::with_capacity(n, n, 16 * nx * ny);
    let node = |i: usize, j: usize| -> Option<usize> {
        (i >= 1 && i < nx && j >= 1 && j < ny).then(|| (i - 1) * (ny - 1) + (j - 1))
    };
    for ei in 0..nx {
        for ej in 0..ny {
            let coeff = kappa[ei * ny + ej];
            let nodes = [
                node(ei, ej),
                node(ei + 1, ej),
                node(ei + 1, ej + 1),
                node(ei, ej + 1),
            ];
            for (la, row) in nodes.iter().enumerate() {
                let Some(r) = *row else { continue };
                for (lb, col) in nodes.iter().enumerate() {
                    let Some(c) = *col else { continue };
                    if r <= c {
                        a.push(r, c, coeff * ke[la][lb]);
                    }
                }
            }
        }
    }
    mirror_upper(a)
}

/// Assembles the 3D Poisson operator on an `nx × ny × nz` Q1 hex mesh over
/// the unit cube: the 3D analogue of [`poisson_2d`], with the same seeded
/// lognormal conductivity field and eliminated Dirichlet boundaries
/// (`(nx−1)(ny−1)(nz−1)` unknowns).
///
/// # Panics
/// Panics when any axis has fewer than 2 elements.
pub fn poisson_3d(nx: usize, ny: usize, nz: usize, sigma_log2: f64, seed: u64) -> CooMatrix {
    assert!(
        nx >= 2 && ny >= 2 && nz >= 2,
        "need at least 2 elements per axis"
    );
    let ke = hex_laplace_element(1.0 / nx as f64, 1.0 / ny as f64, 1.0 / nz as f64);
    let kappa = coefficient_field(nx * ny * nz, sigma_log2, seed);
    let n = (nx - 1) * (ny - 1) * (nz - 1);
    let mut a = CooMatrix::with_capacity(n, n, 64 * nx * ny * nz);
    let node = |i: usize, j: usize, k: usize| -> Option<usize> {
        (i >= 1 && i < nx && j >= 1 && j < ny && k >= 1 && k < nz)
            .then(|| ((i - 1) * (ny - 1) + (j - 1)) * (nz - 1) + (k - 1))
    };
    // (di, dj, dk) offsets in the local node order of `hex_laplace_element`.
    const OFFSETS: [(usize, usize, usize); 8] = [
        (0, 0, 0),
        (1, 0, 0),
        (1, 1, 0),
        (0, 1, 0),
        (0, 0, 1),
        (1, 0, 1),
        (1, 1, 1),
        (0, 1, 1),
    ];
    for ei in 0..nx {
        for ej in 0..ny {
            for ek in 0..nz {
                let coeff = kappa[(ei * ny + ej) * nz + ek];
                let nodes = OFFSETS.map(|(di, dj, dk)| node(ei + di, ej + dj, ek + dk));
                for (la, row) in nodes.iter().enumerate() {
                    let Some(r) = *row else { continue };
                    for (lb, col) in nodes.iter().enumerate() {
                        let Some(c) = *col else { continue };
                        if r <= c {
                            a.push(r, c, coeff * ke[la][lb]);
                        }
                    }
                }
            }
        }
    }
    mirror_upper(a)
}

/// Assembles the 2D plane-strain linear-elasticity operator on an `nx × ny`
/// Q1 quad mesh with Poisson ratio `nu`, a seeded lognormal per-element
/// Young's modulus `E_e = 2^(σ·u)`, and fully clamped (eliminated Dirichlet)
/// boundaries.  Two interleaved `(uₓ, u_y)` DOFs per interior node:
/// `2(nx−1)(ny−1)` unknowns.  SPD (but *not* diagonally dominant — the shear
/// coupling is strong), which makes it the harder conditioning regime of the
/// two assemblies.
///
/// # Panics
/// Panics when either axis has fewer than 2 elements or `nu` is outside
/// `(0, 0.5)` (plane strain needs `1 − 2ν > 0`).
pub fn elasticity_2d(nx: usize, ny: usize, nu: f64, sigma_log2: f64, seed: u64) -> CooMatrix {
    assert!(nx >= 2 && ny >= 2, "need at least 2 elements per axis");
    assert!(nu > 0.0 && nu < 0.5, "plane strain needs 0 < nu < 0.5");
    let ke = quad_elasticity_element(1.0 / nx as f64, 1.0 / ny as f64, nu);
    let young = coefficient_field(nx * ny, sigma_log2, seed);
    let n = 2 * (nx - 1) * (ny - 1);
    let mut a = CooMatrix::with_capacity(n, n, 64 * nx * ny);
    let node = |i: usize, j: usize| -> Option<usize> {
        (i >= 1 && i < nx && j >= 1 && j < ny).then(|| (i - 1) * (ny - 1) + (j - 1))
    };
    for ei in 0..nx {
        for ej in 0..ny {
            let coeff = young[ei * ny + ej];
            let nodes = [
                node(ei, ej),
                node(ei + 1, ej),
                node(ei + 1, ej + 1),
                node(ei, ej + 1),
            ];
            for (la, row) in nodes.iter().enumerate() {
                let Some(rn) = *row else { continue };
                for (lb, col) in nodes.iter().enumerate() {
                    let Some(cn) = *col else { continue };
                    for dr in 0..2 {
                        for dc in 0..2 {
                            let (r, c) = (2 * rn + dr, 2 * cn + dc);
                            if r <= c {
                                a.push(r, c, coeff * ke[2 * la + dr][2 * lb + dc]);
                            }
                        }
                    }
                }
            }
        }
    }
    mirror_upper(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_sparse::CsrMatrix;

    fn is_spd_by_gershgorin(a: &CsrMatrix) -> bool {
        (0..a.nrows()).all(|r| {
            let (cols, vals) = a.row(r);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c == r {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            diag > 0.0 && diag >= off - 1e-12 * diag.abs()
        })
    }

    fn is_positive_definite_by_sampling(a: &CsrMatrix, seed: u64) -> bool {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..5).all(|_| {
            let x: Vec<f64> = (0..a.nrows()).map(|_| rng.gen::<f64>() - 0.5).collect();
            let ax = a.spmv(&x);
            let quad: f64 = x.iter().zip(ax.iter()).map(|(xi, yi)| xi * yi).sum();
            quad > 0.0
        })
    }

    #[test]
    fn poisson_2d_is_symmetric_spd_and_right_sized() {
        let a = poisson_2d(12, 10, 0.3, 7).to_csr();
        assert_eq!(a.nrows(), 11 * 9);
        assert!(a.is_symmetric(0.0), "exactly symmetric by construction");
        assert!(is_spd_by_gershgorin(&a));
        // Interior nodes couple to their full 9-point Q1 neighborhood.
        assert!(a.nnz() > 9 * (11 * 9) / 2);
    }

    #[test]
    fn poisson_2d_annihilates_constants_away_from_the_boundary() {
        // With σ = 0 the operator is a pure Laplacian: rows of nodes whose whole
        // Q1 neighborhood is interior must sum to ~0 (constants are in the
        // pre-elimination kernel).
        let (nx, ny) = (8, 8);
        let a = poisson_2d(nx, ny, 0.0, 1).to_csr();
        let ones = vec![1.0; a.nrows()];
        let y = a.spmv(&ones);
        for i in 2..nx - 2 {
            for j in 2..ny - 2 {
                let r = (i - 1) * (ny - 1) + (j - 1);
                assert!(y[r].abs() < 1e-12, "row {r} sums to {}", y[r]);
            }
        }
    }

    #[test]
    fn poisson_3d_is_symmetric_spd() {
        // Anisotropic trilinear hexes are not diagonally dominant (face
        // couplings change sign), so certify positive definiteness by
        // sampling instead of Gershgorin.
        let a = poisson_3d(5, 4, 6, 0.2, 11).to_csr();
        assert_eq!(a.nrows(), 4 * 3 * 5);
        assert!(a.is_symmetric(0.0));
        assert!(is_positive_definite_by_sampling(&a, 17));
    }

    #[test]
    fn elasticity_2d_is_symmetric_and_positive_definite() {
        let a = elasticity_2d(8, 8, 0.3, 0.25, 3).to_csr();
        assert_eq!(a.nrows(), 2 * 7 * 7);
        assert!(a.is_symmetric(0.0));
        assert!(is_positive_definite_by_sampling(&a, 42));
    }

    #[test]
    fn assemblies_are_deterministic_per_seed_and_vary_across_seeds() {
        let a = poisson_2d(9, 9, 0.4, 5).to_csr();
        let b = poisson_2d(9, 9, 0.4, 5).to_csr();
        let c = poisson_2d(9, 9, 0.4, 6).to_csr();
        assert_eq!(a.values(), b.values());
        assert_ne!(a.values(), c.values());
        // σ = 0 collapses the coefficient field: seed must not matter.
        let u = poisson_2d(9, 9, 0.0, 5).to_csr();
        let v = poisson_2d(9, 9, 0.0, 6).to_csr();
        assert_eq!(u.values(), v.values());
    }
}
