//! Transient solve chains: a seeded, bitwise-reproducible sequence of
//! closely-related systems, the traffic shape of time-stepping and parameter
//! continuation.
//!
//! Each [`SolveStep`]'s matrix is `K_k + m_k·I`: an evolving stiffness
//! operator plus a lumped-mass/time-step shift.  Between steps the stiffness
//! drifts *locally* — coefficient jitter (via
//! [`crate::generators::apply_lognormal_jitter`]) confined to a contiguous
//! index window that advances with the step, like a moving front in the
//! domain — so most ReFloat blocks of step `k` are bitwise identical to step
//! `k−1`'s.  That locality is exactly what the runtime's incremental
//! re-encoding and encoded-cache keying exploit; an optional *mesh-region
//! refresh* (a stronger, seeded whole-window re-draw every few steps) and a
//! nonzero mass drift (which touches every diagonal entry) provide the
//! dirtier regimes for worst-case testing.
//!
//! Reproducibility contract: a chain is a pure function of its base matrix
//! and [`TransientSpec`] — re-running the iterator yields bitwise-identical
//! matrices and right-hand sides, independent of wall clock or thread count.

use refloat_sparse::{CooMatrix, CsrMatrix};

use crate::generators::apply_lognormal_jitter;

/// How a transient chain evolves from its base operator.
#[derive(Debug, Clone)]
pub struct TransientSpec {
    /// Number of steps the chain emits.
    pub steps: usize,
    /// Lumped-mass / time-step shift `m` added to every diagonal entry
    /// (`A_k = K_k + m_k·I`); keeps every step SPD even under jitter.
    pub mass_coefficient: f64,
    /// Relative modulation of the mass term over time
    /// (`m_k = m·(1 + drift·sin(0.3k))`).  `0` keeps the diagonal shift
    /// constant (the block-friendly regime); `> 0` dirties every diagonal
    /// block every step (the stress regime).
    pub drift_amplitude: f64,
    /// Lognormal jitter width (in log2) of the per-step coefficient drift.
    pub jitter_sigma_log2: f64,
    /// Fraction of the index range the per-step drift window covers.
    pub drift_window: f64,
    /// Every `refresh_every` steps, the drift window is re-drawn entirely
    /// with [`refresh_sigma_log2`](Self::refresh_sigma_log2) (a mesh-region
    /// refresh); `None` disables it.
    pub refresh_every: Option<usize>,
    /// Jitter width of the mesh-region refresh.
    pub refresh_sigma_log2: f64,
    /// Phase the right-hand side's source term advances per step.  Scales with
    /// the implicit time step: large values (the 0.1 default) model coarse
    /// stepping where consecutive solutions differ visibly, small values the
    /// fine-stepping quasi-static regime where warm starts shine.
    pub rhs_phase_step: f64,
    /// Base seed; each step derives its own sub-seed.
    pub seed: u64,
}

impl Default for TransientSpec {
    fn default() -> Self {
        TransientSpec {
            steps: 50,
            mass_coefficient: 0.5,
            drift_amplitude: 0.0,
            jitter_sigma_log2: 0.02,
            drift_window: 0.2,
            refresh_every: None,
            refresh_sigma_log2: 0.2,
            rhs_phase_step: 0.1,
            seed: 2023,
        }
    }
}

impl TransientSpec {
    /// Builder: number of steps.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Builder: base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: per-step jitter width and drift-window fraction.
    pub fn with_drift(mut self, sigma_log2: f64, window: f64) -> Self {
        self.jitter_sigma_log2 = sigma_log2;
        self.drift_window = window;
        self
    }

    /// Builder: mass coefficient and its relative time modulation.
    pub fn with_mass(mut self, coefficient: f64, drift_amplitude: f64) -> Self {
        self.mass_coefficient = coefficient;
        self.drift_amplitude = drift_amplitude;
        self
    }

    /// Builder: enable the mesh-region refresh every `every` steps.
    pub fn with_refresh(mut self, every: usize, sigma_log2: f64) -> Self {
        self.refresh_every = Some(every);
        self.refresh_sigma_log2 = sigma_log2;
        self
    }

    /// Builder: right-hand-side phase advance per step (the effective time-step
    /// size of the source term).
    pub fn with_rhs_phase(mut self, phase_step: f64) -> Self {
        self.rhs_phase_step = phase_step;
        self
    }
}

/// One step of a transient chain: the system `matrix · x = rhs` to solve.
#[derive(Debug, Clone)]
pub struct SolveStep {
    /// Step number, `0..spec.steps`.
    pub index: usize,
    /// The step's operator (`K_k + m_k·I`), SPD for SPD base operators and
    /// small jitter.
    pub matrix: CsrMatrix,
    /// The step's right-hand side: a smooth source whose phase advances
    /// slowly with the step, so consecutive solutions stay close (the
    /// warm-start regime).
    pub rhs: Vec<f64>,
}

/// SplitMix64: the per-step sub-seed derivation (and the symmetric pair hash
/// of the region refresh).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform in `[0, 1)` from the top 53 bits of a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The seeded iterator over a chain's [`SolveStep`]s.
pub struct TransientChain {
    /// The evolving stiffness operator, kept compressed (row-major, no
    /// duplicates) and exactly symmetric between steps.
    stiffness: CooMatrix,
    spec: TransientSpec,
    step: usize,
}

impl TransientChain {
    /// Starts a chain from a base stiffness operator (typically one of the
    /// [`crate::fem`] assemblies).  The base is compressed once so the entry
    /// order every per-step transform sees is deterministic.
    pub fn new(base: CooMatrix, spec: TransientSpec) -> Self {
        let mut stiffness = base;
        stiffness.compress();
        TransientChain {
            stiffness,
            spec,
            step: 0,
        }
    }

    /// The half-open index window the drift of step `step` is confined to:
    /// `drift_window · n` indices, advancing by a fixed stride per step (a
    /// moving front), as a pure function of the spec and step.
    fn drift_span(&self, step: usize) -> (usize, usize) {
        let n = self.stiffness.nrows();
        let len = ((self.spec.drift_window * n as f64) as usize).clamp(1, n);
        let stride = (n / 7).max(1);
        let start = (step * stride) % (n - len + 1).max(1);
        (start, start + len)
    }

    /// Applies the per-step coefficient drift: entries with *both* indices in
    /// the window are jittered through `apply_lognormal_jitter` (run on the
    /// extracted window submatrix, so the deviate stream is a pure function
    /// of the step seed and the window's entry order) and the result is
    /// re-symmetrized; everything outside the window is untouched —
    /// bit-for-bit.
    fn drift(&mut self, step: usize, sigma_log2: f64) {
        if sigma_log2 == 0.0 {
            return;
        }
        let (lo, hi) = self.drift_span(step);
        let n = self.stiffness.nrows();
        let in_window = |r: usize, c: usize| r >= lo && r < hi && c >= lo && c < hi;
        let mut window = CooMatrix::new(n, n);
        let mut outside = CooMatrix::with_capacity(n, n, self.stiffness.nnz());
        for (r, c, v) in self.stiffness.iter() {
            if in_window(r, c) {
                window.push(r, c, v);
            } else {
                outside.push(r, c, v);
            }
        }
        if window.nnz() == 0 {
            return;
        }
        apply_lognormal_jitter(
            &mut window,
            sigma_log2,
            splitmix64(self.spec.seed ^ step as u64),
        );
        // Entrywise jitter breaks symmetry inside the window; average with the
        // transpose there.  The window is a symmetric square region, so the
        // averaging never leaks outside it.
        let mut merged = outside;
        for (r, c, v) in window.iter() {
            merged.push(r, c, 0.5 * v);
            merged.push(c, r, 0.5 * v);
        }
        merged.compress();
        self.stiffness = merged;
    }
}

impl Iterator for TransientChain {
    type Item = SolveStep;

    fn next(&mut self) -> Option<SolveStep> {
        if self.step >= self.spec.steps {
            return None;
        }
        let step = self.step;
        if step > 0 {
            self.drift(step, self.spec.jitter_sigma_log2);
            if let Some(every) = self.spec.refresh_every {
                if every > 0 && step.is_multiple_of(every) {
                    // Mesh-region refresh: a stronger re-draw of the same
                    // window, on a decorrelated sub-seed stream.
                    self.drift(
                        splitmix64(step as u64) as usize % self.spec.steps.max(1),
                        self.spec.refresh_sigma_log2,
                    );
                }
            }
        }
        let n = self.stiffness.nrows();
        let phase = (0.3 * step as f64).sin();
        let mass = self.spec.mass_coefficient * (1.0 + self.spec.drift_amplitude * phase);
        let mut system = self.stiffness.clone();
        for i in 0..n {
            system.push(i, i, mass);
        }
        let matrix = system.to_csr();
        let rhs: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                1.0 + 0.25
                    * (std::f64::consts::TAU * 3.0 * x + self.spec.rhs_phase_step * step as f64)
                        .sin()
            })
            .collect();
        self.step += 1;
        Some(SolveStep {
            index: step,
            matrix,
            rhs,
        })
    }
}

/// A symmetric per-pair jitter used by tests and benches to perturb a CSR
/// matrix *without* a chain: each unordered index pair gets its own
/// lognormal factor `2^(σ·u)` keyed on `(seed, min(r,c), max(r,c))`, so the
/// result is exactly symmetric for symmetric inputs and deterministic per
/// seed.  `fraction` limits the perturbation to pairs whose hash falls below
/// the threshold (1.0 = every entry, the all-blocks-dirty worst case).
pub fn perturb_symmetric_pairs(
    a: &CsrMatrix,
    sigma_log2: f64,
    fraction: f64,
    seed: u64,
) -> CsrMatrix {
    let mut out = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz());
    for (r, c, v) in a.iter() {
        let key = splitmix64(seed ^ (((r.min(c) as u64) << 32) | r.max(c) as u64));
        let selected = unit(key) < fraction;
        let v = if selected {
            let s1 = splitmix64(key);
            let s2 = splitmix64(s1);
            let s3 = splitmix64(s2);
            let s4 = splitmix64(s3);
            let u = unit(s1) + unit(s2) + unit(s3) + unit(s4) - 2.0;
            v * (sigma_log2 * u).exp2()
        } else {
            v
        };
        out.push(r, c, v);
    }
    out.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fem;

    fn base() -> CooMatrix {
        fem::poisson_2d(10, 10, 0.3, 7)
    }

    fn spec() -> TransientSpec {
        TransientSpec::default().with_steps(6).with_seed(42)
    }

    #[test]
    fn chains_are_bitwise_reproducible() {
        let a: Vec<SolveStep> = TransientChain::new(base(), spec()).collect();
        let b: Vec<SolveStep> = TransientChain::new(base(), spec()).collect();
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.matrix.values(), y.matrix.values());
            assert_eq!(x.matrix.col_idx(), y.matrix.col_idx());
            assert_eq!(x.rhs, y.rhs);
        }
    }

    #[test]
    fn steps_stay_symmetric_and_perturb_locally() {
        let steps: Vec<SolveStep> = TransientChain::new(base(), spec()).collect();
        let mut any_same = 0usize;
        let mut any_diff = 0usize;
        for w in steps.windows(2) {
            assert!(
                w[1].matrix.is_symmetric(0.0),
                "drift must preserve symmetry"
            );
            assert_eq!(w[0].matrix.nnz(), w[1].matrix.nnz(), "structure is stable");
            for ((_, _, a), (_, _, b)) in w[0].matrix.iter().zip(w[1].matrix.iter()) {
                if a.to_bits() == b.to_bits() {
                    any_same += 1;
                } else {
                    any_diff += 1;
                }
            }
        }
        assert!(any_diff > 0, "consecutive steps must differ");
        assert!(
            any_same > any_diff,
            "drift must be local: {any_same} same vs {any_diff} changed"
        );
    }

    #[test]
    fn mass_drift_moves_the_diagonal_and_refresh_redraws_harder() {
        let drifting = TransientSpec::default()
            .with_steps(4)
            .with_mass(0.5, 0.2)
            .with_seed(1);
        let steps: Vec<SolveStep> = TransientChain::new(base(), drifting).collect();
        let d0 = steps[0].matrix.diagonal();
        let d1 = steps[1].matrix.diagonal();
        assert!(d0.iter().zip(d1.iter()).any(|(a, b)| a != b));

        let refreshed = spec().with_refresh(2, 0.5);
        let with_refresh: Vec<SolveStep> = TransientChain::new(base(), refreshed).collect();
        let without: Vec<SolveStep> = TransientChain::new(base(), spec()).collect();
        // The refresh kicks in at step 2; some entry must differ from the
        // refresh-free chain from then on.
        let differs = with_refresh[2]
            .matrix
            .values()
            .iter()
            .zip(without[2].matrix.values())
            .any(|(a, b)| a != b);
        assert!(differs, "the mesh-region refresh must change step 2");
    }

    #[test]
    fn perturb_symmetric_pairs_is_symmetric_selective_and_deterministic() {
        let a = base().to_csr();
        let full = perturb_symmetric_pairs(&a, 0.1, 1.0, 9);
        let none = perturb_symmetric_pairs(&a, 0.1, 0.0, 9);
        let half = perturb_symmetric_pairs(&a, 0.1, 0.5, 9);
        assert!(full.is_symmetric(0.0));
        assert_eq!(none.values(), a.values());
        assert!(full.values().iter().zip(a.values()).all(|(x, y)| x != y));
        let changed = half
            .values()
            .iter()
            .zip(a.values())
            .filter(|(x, y)| x != y)
            .count();
        assert!(changed > 0 && changed < a.nnz());
        assert_eq!(
            perturb_symmetric_pairs(&a, 0.1, 0.5, 9).values(),
            half.values()
        );
    }
}
