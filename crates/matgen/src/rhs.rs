//! Right-hand-side vectors for the solver experiments.
//!
//! The paper initializes the solution to the all-zero vector and iterates until the
//! residual 2-norm drops below 1e-8 (§VI.A).  The right-hand side is not specified; we
//! follow the common SuiteSparse benchmarking convention of `b = A·x⋆` with a known
//! synthetic solution `x⋆`, and also provide the all-ones vector used by many solver
//! papers.  Both are deterministic so experiments are reproducible.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use refloat_sparse::CsrMatrix;

/// The all-ones right-hand side of length `n`.
pub fn ones(n: usize) -> Vec<f64> {
    vec![1.0; n]
}

/// A deterministic pseudo-random vector with entries uniform in `[-1, 1]`.
pub fn random_uniform(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..=1.0)).collect()
}

/// A smooth deterministic vector (`sin` profile), representative of the discretized PDE
/// solutions the workloads come from.
pub fn smooth(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * std::f64::consts::PI / n.max(1) as f64).sin() + 0.5)
        .collect()
}

/// Builds `b = A·x⋆` for a known solution `x⋆`, returning `(b, x⋆)`.
///
/// Solving with this right-hand side lets experiments report both the residual norm and
/// the true error `‖x − x⋆‖`.
pub fn from_known_solution(a: &CsrMatrix, x_star: Vec<f64>) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(
        a.ncols(),
        x_star.len(),
        "rhs: solution length must match matrix"
    );
    let b = a.spmv(&x_star);
    (b, x_star)
}

/// The default right-hand side used by the experiment harness: `b = A·x⋆` with a smooth
/// `x⋆` of unit scale.  Returns `(b, x⋆)`.
pub fn default_rhs(a: &CsrMatrix) -> (Vec<f64>, Vec<f64>) {
    from_known_solution(a, smooth(a.ncols()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ones_and_smooth_have_requested_length() {
        assert_eq!(ones(5), vec![1.0; 5]);
        assert_eq!(smooth(17).len(), 17);
        assert!(smooth(17).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn random_uniform_is_deterministic_and_bounded() {
        let a = random_uniform(100, 3);
        let b = random_uniform(100, 3);
        let c = random_uniform(100, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn from_known_solution_reproduces_b() {
        let a = generators::laplacian_2d(8, 8, 0.5).to_csr();
        let (b, x_star) = default_rhs(&a);
        let b2 = a.spmv(&x_star);
        assert_eq!(b, b2);
        assert_eq!(b.len(), a.nrows());
    }
}
