//! The 12 Table V workloads as synthetic analogues.
//!
//! Every [`Workload`] knows the paper-reported properties of the SuiteSparse matrix it
//! stands in for ([`WorkloadSpec`]) and can [`generate`](Workload::generate) a synthetic
//! matrix reproducing its dimension, sparsity, structure class and value-magnitude
//! profile.  See `DESIGN.md` §3 for the substitution rationale.

use crate::generators;
use refloat_sparse::{CooMatrix, CsrMatrix};

/// Paper-reported properties of a Table V matrix (SuiteSparse id, name, rows, non-zeros,
/// non-zeros per row and condition number) together with the value-scale class used by
/// the synthetic analogue.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// SuiteSparse collection id used by the paper (e.g. 355 for `crystm03`).
    pub id: u32,
    /// SuiteSparse matrix name.
    pub name: &'static str,
    /// Number of rows reported in Table V.
    pub nrows: usize,
    /// Number of non-zeros reported in Table V.
    pub nnz: usize,
    /// Non-zeros per row reported in Table V.
    pub nnz_per_row: f64,
    /// Condition number reported in Table V.
    pub cond: f64,
    /// Typical magnitude of the matrix entries in the synthetic analogue.  Matrices far
    /// from 1.0 are the ones on which the Feinberg baseline fails to converge.
    pub value_scale: f64,
    /// Default fraction bits for the *vector* segments in the ReFloat solver runs
    /// (Table VII: 8 for most matrices, 16 for `wathen100` and `Dubcova2`).
    pub refloat_fv: u32,
    /// Default fraction bits for the *matrix* blocks in the ReFloat solver runs.  The
    /// paper uses 3 for every matrix; the synthetic mass-matrix analogues (crystm*,
    /// qa8fm) need 8 because their stencil part is worse conditioned than the real FEM
    /// matrices, so a 2^-3 element perturbation would break positive definiteness (see
    /// EXPERIMENTS.md, E10).
    pub refloat_f: u32,
}

/// The 12 evaluation workloads of the paper, in Table V order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 353 — `crystm01`, FEM crystal-vibration mass matrix (tiny entries ≈ 1e-12).
    Crystm01,
    /// 1313 — `minsurfo`, minimal-surface optimization (5-point grid stencil).
    Minsurfo,
    /// 354 — `crystm02`, FEM crystal-vibration mass matrix.
    Crystm02,
    /// 2261 — `shallow_water1`, sphere shallow-water model (4 nnz/row, κ ≈ 3.6).
    ShallowWater1,
    /// 1288 — `wathen100`, random FEM mass matrix (Wathen element assembly).
    Wathen100,
    /// 1311 — `gridgena`, grid-generation optimization (anisotropic stencil, large κ).
    Gridgena,
    /// 1289 — `wathen120`, larger Wathen matrix.
    Wathen120,
    /// 355 — `crystm03`, FEM crystal-vibration mass matrix (used in Table I / Fig. 10).
    Crystm03,
    /// 2257 — `thermomech_TC`, thermo-mechanical coupling (scattered, entries O(1)).
    ThermomechTC,
    /// 1848 — `Dubcova2`, FEM Poisson problem.
    Dubcova2,
    /// 2259 — `thermomech_dM`, thermo-mechanical mass matrix (scattered, tiny entries).
    ThermomechDM,
    /// 845 — `qa8fm`, 3D acoustic FEM mass matrix (tiny entries).
    Qa8fm,
}

impl Workload {
    /// All 12 workloads in Table V order.
    pub const ALL: [Workload; 12] = [
        Workload::Crystm01,
        Workload::Minsurfo,
        Workload::Crystm02,
        Workload::ShallowWater1,
        Workload::Wathen100,
        Workload::Gridgena,
        Workload::Wathen120,
        Workload::Crystm03,
        Workload::ThermomechTC,
        Workload::Dubcova2,
        Workload::ThermomechDM,
        Workload::Qa8fm,
    ];

    /// The paper-reported properties of this workload (Table V).
    pub fn spec(&self) -> WorkloadSpec {
        match self {
            Workload::Crystm01 => WorkloadSpec {
                id: 353,
                name: "crystm01",
                nrows: 4875,
                nnz: 105_339,
                nnz_per_row: 21.6,
                cond: 4.21e2,
                value_scale: 1e-12,
                refloat_fv: 8,
                refloat_f: 8,
            },
            Workload::Minsurfo => WorkloadSpec {
                id: 1313,
                name: "minsurfo",
                nrows: 40_806,
                nnz: 203_622,
                nnz_per_row: 5.0,
                cond: 8.11e1,
                value_scale: 1.0,
                refloat_fv: 8,
                refloat_f: 3,
            },
            Workload::Crystm02 => WorkloadSpec {
                id: 354,
                name: "crystm02",
                nrows: 13_965,
                nnz: 322_905,
                nnz_per_row: 23.1,
                cond: 4.49e2,
                value_scale: 1e-12,
                refloat_fv: 8,
                refloat_f: 8,
            },
            Workload::ShallowWater1 => WorkloadSpec {
                id: 2261,
                name: "shallow_water1",
                nrows: 81_920,
                nnz: 327_680,
                nnz_per_row: 4.0,
                cond: 3.63,
                value_scale: 1e12,
                refloat_fv: 8,
                refloat_f: 3,
            },
            Workload::Wathen100 => WorkloadSpec {
                id: 1288,
                name: "wathen100",
                nrows: 30_401,
                nnz: 471_601,
                nnz_per_row: 15.5,
                cond: 8.24e3,
                value_scale: 1.0,
                refloat_fv: 16,
                refloat_f: 3,
            },
            Workload::Gridgena => WorkloadSpec {
                id: 1311,
                name: "gridgena",
                nrows: 48_962,
                nnz: 512_084,
                nnz_per_row: 10.5,
                cond: 5.74e5,
                value_scale: 1.0,
                refloat_fv: 8,
                refloat_f: 3,
            },
            Workload::Wathen120 => WorkloadSpec {
                id: 1289,
                name: "wathen120",
                nrows: 36_441,
                nnz: 565_761,
                nnz_per_row: 15.5,
                cond: 4.05e3,
                value_scale: 1.0,
                refloat_fv: 8,
                refloat_f: 3,
            },
            Workload::Crystm03 => WorkloadSpec {
                id: 355,
                name: "crystm03",
                nrows: 24_696,
                nnz: 583_770,
                nnz_per_row: 23.6,
                cond: 4.68e2,
                value_scale: 1e-12,
                refloat_fv: 8,
                refloat_f: 8,
            },
            Workload::ThermomechTC => WorkloadSpec {
                id: 2257,
                name: "thermomech_TC",
                nrows: 102_158,
                nnz: 711_558,
                nnz_per_row: 6.9,
                cond: 1.23e2,
                value_scale: 1.0,
                refloat_fv: 8,
                refloat_f: 3,
            },
            Workload::Dubcova2 => WorkloadSpec {
                id: 1848,
                name: "Dubcova2",
                nrows: 65_025,
                nnz: 1_030_225,
                nnz_per_row: 15.84,
                cond: 1.04e4,
                value_scale: 1.0,
                refloat_fv: 16,
                refloat_f: 3,
            },
            Workload::ThermomechDM => WorkloadSpec {
                id: 2259,
                name: "thermomech_dM",
                nrows: 204_316,
                nnz: 1_423_116,
                nnz_per_row: 6.9,
                cond: 1.24e2,
                value_scale: 1e-10,
                refloat_fv: 8,
                refloat_f: 3,
            },
            Workload::Qa8fm => WorkloadSpec {
                id: 845,
                name: "qa8fm",
                nrows: 66_127,
                nnz: 1_660_579,
                nnz_per_row: 25.1,
                cond: 1.10e2,
                value_scale: 1e-10,
                refloat_fv: 8,
                refloat_f: 8,
            },
        }
    }

    /// Looks a workload up by its SuiteSparse id (the numeric labels used in the paper's
    /// figures), e.g. `355` for `crystm03`.
    pub fn from_id(id: u32) -> Option<Workload> {
        Workload::ALL.iter().copied().find(|w| w.spec().id == id)
    }

    /// Looks a workload up by its SuiteSparse name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Workload> {
        Workload::ALL
            .iter()
            .copied()
            .find(|w| w.spec().name.eq_ignore_ascii_case(name))
    }

    /// Generates the synthetic analogue of this workload.
    ///
    /// The generated matrix is symmetric positive definite, matches the Table V
    /// dimension and density to within a few percent, and carries the value-magnitude
    /// profile listed in [`WorkloadSpec::value_scale`].  Generation is deterministic in
    /// `seed`.
    pub fn generate(&self, seed: u64) -> CooMatrix {
        match self {
            // FEM mass matrices with tiny entries: 27-point 3D mass stencils.
            Workload::Crystm01 => generators::mass_matrix_3d(17, 17, 17, 1e-12, 0.8, seed ^ 0x353),
            Workload::Crystm02 => generators::mass_matrix_3d(24, 24, 24, 1e-12, 0.8, seed ^ 0x354),
            Workload::Crystm03 => generators::mass_matrix_3d(29, 29, 29, 1e-12, 0.8, seed ^ 0x355),
            // Minimal-surface: shifted 5-point Laplacian on a 202x202 grid (κ ≈ 80).
            Workload::Minsurfo => generators::laplacian_2d(202, 202, 0.1),
            // Shallow water: 3-regular sphere ring with huge physical constants, κ ≈ 3.6.
            Workload::ShallowWater1 => generators::sphere_ring_3regular(81_920, 1e12, 0.1894),
            // Wathen FEM matrices (exact SuiteSparse construction).
            Workload::Wathen100 => generators::wathen(100, 100, seed ^ 0x1288),
            // SuiteSparse wathen120 is the 120x100-element Wathen matrix (36 441 rows).
            Workload::Wathen120 => generators::wathen(120, 100, seed ^ 0x1289),
            // Grid generation: strongly anisotropic 9-point stencil, κ ≈ 5e5.
            Workload::Gridgena => generators::anisotropic_9pt(221, 221, 1.0, 0.033, 2e-5),
            // Thermo-mechanical problems: scattered random FEM graphs.
            Workload::ThermomechTC => {
                generators::random_spd_graph(102_158, 6, 1.35, 1.0, seed ^ 0x2257)
            }
            Workload::ThermomechDM => {
                generators::random_spd_graph(204_316, 6, 1.35, 1e-10, seed ^ 0x2259)
            }
            // FEM Poisson: 9-point stencil on a 255x255 grid with a small shift.
            Workload::Dubcova2 => generators::anisotropic_9pt(255, 255, 1.0, 1.0, 5e-4),
            // 3D acoustic mass matrix, tiny entries, 27 nnz/row.
            Workload::Qa8fm => generators::mass_matrix_3d(41, 41, 39, 1e-10, 0.6, seed ^ 0x845),
        }
    }

    /// Generates the workload and converts it to CSR.
    pub fn generate_csr(&self, seed: u64) -> CsrMatrix {
        self.generate(seed).to_csr()
    }

    /// Whether the Feinberg baseline converges on this workload according to the paper
    /// (§VI.B: it fails on ids 353, 354, 2261, 355, 2259 and 845 — exactly the matrices
    /// whose entries sit far from 1.0).
    pub fn feinberg_converges_in_paper(&self) -> bool {
        !matches!(
            self,
            Workload::Crystm01
                | Workload::Crystm02
                | Workload::Crystm03
                | Workload::ShallowWater1
                | Workload::ThermomechDM
                | Workload::Qa8fm
        )
    }

    /// Paper-reported iteration counts to convergence (Table VI), as
    /// `(cg_double, cg_refloat, bicgstab_double, bicgstab_refloat)`.
    pub fn paper_iterations(&self) -> (usize, usize, usize, usize) {
        match self {
            Workload::Crystm01 => (68, 85, 49, 51),
            Workload::Minsurfo => (52, 55, 34, 69),
            Workload::Crystm02 => (81, 95, 58, 79),
            Workload::ShallowWater1 => (11, 11, 7, 7),
            Workload::Wathen100 => (262, 305, 195, 205),
            Workload::Gridgena => (1, 1, 1, 1),
            Workload::Wathen120 => (294, 401, 211, 317),
            Workload::Crystm03 => (80, 95, 59, 52),
            Workload::ThermomechTC => (55, 56, 43, 36),
            Workload::Dubcova2 => (162, 214, 118, 145),
            Workload::ThermomechDM => (57, 58, 45, 36),
            Workload::Qa8fm => (53, 54, 41, 35),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_sparse::MatrixStats;

    #[test]
    fn all_has_twelve_unique_ids() {
        let mut ids: Vec<u32> = Workload::ALL.iter().map(|w| w.spec().id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn lookup_by_id_and_name() {
        assert_eq!(Workload::from_id(355), Some(Workload::Crystm03));
        assert_eq!(Workload::from_name("CRYSTM03"), Some(Workload::Crystm03));
        assert_eq!(Workload::from_id(999), None);
        assert_eq!(Workload::from_name("nope"), None);
    }

    #[test]
    fn feinberg_failure_set_matches_paper() {
        let failing: Vec<u32> = Workload::ALL
            .iter()
            .filter(|w| !w.feinberg_converges_in_paper())
            .map(|w| w.spec().id)
            .collect();
        assert_eq!(failing, vec![353, 354, 2261, 355, 2259, 845]);
    }

    #[test]
    fn small_workloads_match_spec_dimensions_approximately() {
        // Only generate the small ones in unit tests; the large ones are covered by the
        // integration tests and the experiment binaries.
        for w in [Workload::Crystm01, Workload::Wathen100] {
            let spec = w.spec();
            let a = w.generate_csr(1);
            let s = MatrixStats::compute(&a);
            let row_ratio = a.nrows() as f64 / spec.nrows as f64;
            assert!(
                (0.85..=1.15).contains(&row_ratio),
                "{}: rows {} vs spec {}",
                spec.name,
                a.nrows(),
                spec.nrows
            );
            assert!(s.symmetric, "{} must be symmetric", spec.name);
            assert!(
                s.nnz_per_row > 0.5 * spec.nnz_per_row && s.nnz_per_row < 2.0 * spec.nnz_per_row,
                "{}: nnz/row {} vs spec {}",
                spec.name,
                s.nnz_per_row,
                spec.nnz_per_row
            );
        }
    }

    #[test]
    fn wathen100_matches_exact_suitesparse_dimension() {
        let a = Workload::Wathen100.generate_csr(1);
        assert_eq!(a.nrows(), 30_401);
        assert_eq!(a.nnz(), 471_601);
    }

    #[test]
    fn wathen120_matches_exact_suitesparse_dimension() {
        // SuiteSparse wathen120 is the 120x100-element Wathen matrix.
        let a = Workload::Wathen120.generate_csr(1);
        assert_eq!(a.nrows(), 36_441);
        assert_eq!(a.nnz(), 565_761);
    }

    #[test]
    fn crystm_analogue_has_tiny_entries_and_minsurfo_has_unit_entries() {
        let crystm = Workload::Crystm01.generate_csr(1);
        let s = MatrixStats::compute(&crystm);
        assert!(
            s.max_abs < 1e-9,
            "crystm01 entries should be ≈1e-12, got {}",
            s.max_abs
        );

        let minsurf = generators::laplacian_2d(32, 32, 0.1).to_csr();
        let s2 = MatrixStats::compute(&minsurf);
        assert!(s2.max_abs > 1.0 && s2.max_abs < 16.0);
    }

    #[test]
    fn paper_iterations_are_consistent_with_table_vi() {
        let (cg_d, cg_r, bi_d, bi_r) = Workload::Crystm03.paper_iterations();
        assert_eq!((cg_d, cg_r), (80, 95));
        assert_eq!((bi_d, bi_r), (59, 52));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::Crystm01.generate_csr(7);
        let b = Workload::Crystm01.generate_csr(7);
        assert_eq!(a, b);
    }
}
