//! Synthetic workload generators for the ReFloat reproduction.
//!
//! The paper evaluates on 12 matrices from the SuiteSparse collection (Table V).  That
//! collection cannot be downloaded in this environment, so this crate generates
//! *synthetic analogues* that preserve the properties the ReFloat study is sensitive to:
//!
//! * dimension and number of non-zeros (within a few percent),
//! * structure class — banded FEM mass matrices (`crystm*`, `qa8fm`), grid stencils
//!   (`minsurfo`, `gridgena`, `Dubcova2`), the Wathen random FEM matrix (`wathen100/120`,
//!   generated with the *actual* Wathen element assembly), a 3-regular sphere-like graph
//!   (`shallow_water1`) and scattered random FEM graphs (`thermomech_TC/dM`),
//! * symmetric positive definiteness (all 12 paper matrices are solvable by CG),
//! * the *value-magnitude profile*: which matrices have entries many binades away from
//!   O(1) — that is what breaks the fixed-window exponent handling of the Feinberg
//!   baseline — and how much the exponents vary inside a 128×128 block (the "exponent
//!   value locality" of Fig. 3d).
//!
//! Real SuiteSparse matrices can still be used through `refloat_sparse::mm` when
//! available; every experiment binary accepts them interchangeably.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fem;
pub mod generators;
pub mod rhs;
pub mod traffic;
pub mod transient;
pub mod workloads;

pub use traffic::{Arrival, ArrivalProcess, TrafficSpec};
pub use transient::{SolveStep, TransientChain, TransientSpec};
pub use workloads::{Workload, WorkloadSpec};
