//! Parametric sparse-matrix generators.
//!
//! Each generator returns a [`CooMatrix`]; the Table V analogues in
//! [`crate::workloads`] are thin wrappers that pick parameters.  All generators that use
//! randomness take an explicit seed and use `ChaCha8Rng`, so every experiment in the
//! bench harness is reproducible bit-for-bit.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use refloat_sparse::CooMatrix;

/// 2D Poisson 5-point stencil on an `nx × ny` grid with Dirichlet boundary and an
/// additional diagonal shift `shift ≥ 0` (shift > 0 improves the condition number,
/// mimicking the reaction term of the minimal-surface / shifted-Laplace problems).
///
/// The matrix is symmetric positive definite for `shift ≥ 0`.
pub fn laplacian_2d(nx: usize, ny: usize, shift: f64) -> CooMatrix {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut a = CooMatrix::with_capacity(n, n, 5 * n);
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            a.push(r, r, 4.0 + shift);
            if i + 1 < nx {
                a.push(r, idx(i + 1, j), -1.0);
                a.push(idx(i + 1, j), r, -1.0);
            }
            if j + 1 < ny {
                a.push(r, idx(i, j + 1), -1.0);
                a.push(idx(i, j + 1), r, -1.0);
            }
        }
    }
    a
}

/// Anisotropic 9-point stencil on an `nx × ny` grid: the discrete operator
/// `-∂x(εx ∂x) - ∂y(εy ∂y)` with a compact 9-point stencil plus diagonal shift.
///
/// Strong anisotropy (`epsy ≪ epsx`) drives the condition number up, which is how the
/// `gridgena` analogue reaches κ ≈ 5.7e5.  SPD for `epsx, epsy > 0`, `shift ≥ 0`.
pub fn anisotropic_9pt(nx: usize, ny: usize, epsx: f64, epsy: f64, shift: f64) -> CooMatrix {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut a = CooMatrix::with_capacity(n, n, 9 * n);
    // Bilinear (Q1) finite-element stiffness stencil for -εx ∂xx - εy ∂yy on a uniform
    // grid; for εx = εy = ε it reduces to ε/3 · [[-1,-1,-1],[-1,8,-1],[-1,-1,-1]].
    let cx = epsx;
    let cy = epsy;
    let diag = (4.0 / 3.0) * (cx + cy) + shift;
    let edge_x = (-2.0 * cx + cy) / 3.0; // horizontal neighbour (x ± 1)
    let edge_y = (cx - 2.0 * cy) / 3.0; // vertical neighbour (y ± 1)
    let corner = -(cx + cy) / 6.0; // diagonal neighbour
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            a.push(r, r, diag);
            let mut couple = |ii: isize, jj: isize, v: f64| {
                if ii >= 0 && jj >= 0 && (ii as usize) < nx && (jj as usize) < ny {
                    a.push(r, idx(ii as usize, jj as usize), v);
                }
            };
            couple(i as isize - 1, j as isize, edge_x);
            couple(i as isize + 1, j as isize, edge_x);
            couple(i as isize, j as isize - 1, edge_y);
            couple(i as isize, j as isize + 1, edge_y);
            couple(i as isize - 1, j as isize - 1, corner);
            couple(i as isize - 1, j as isize + 1, corner);
            couple(i as isize + 1, j as isize - 1, corner);
            couple(i as isize + 1, j as isize + 1, corner);
        }
    }
    a
}

/// 3D tensor-product *mass* matrix on an `nx × ny × nz` grid (27-point stencil with
/// lumped-consistent weights `[1, 3, 1]/5` in each direction), scaled by `scale` and
/// with a per-node random density in `[1, 1 + jitter]`.
///
/// This mimics the consistent FEM mass matrices of the `crystm*` and `qa8fm` workloads:
/// strictly diagonally dominant, SPD, condition number of a few hundred, and — through
/// `scale` — entries that sit many binades away from 1.0.
pub fn mass_matrix_3d(
    nx: usize,
    ny: usize,
    nz: usize,
    scale: f64,
    jitter: f64,
    seed: u64,
) -> CooMatrix {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let density: Vec<f64> = (0..n).map(|_| 1.0 + jitter * rng.gen::<f64>()).collect();
    // 1-D weights [1, 3, 1]/5: the tensor product is SPD (each 1-D factor is a strictly
    // diagonally dominant tridiagonal), the 3-D condition number is ≈ 5³/jitter-factor
    // (a few hundred, matching the crystm/qa8fm workloads), and the corner-to-centre
    // weight ratio of 27 keeps the per-block exponent spread within the ±3 offsets of
    // the paper's e = 3 format — the "exponent value locality" the real FEM matrices
    // exhibit (Fig. 3d).
    let w1 = |d: i64| -> f64 {
        match d {
            0 => 3.0 / 5.0,
            _ => 1.0 / 5.0,
        }
    };
    let mut a = CooMatrix::with_capacity(n, n, 27 * n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let r = idx(i, j, k);
                for di in -1i64..=1 {
                    for dj in -1i64..=1 {
                        for dk in -1i64..=1 {
                            let (ii, jj, kk) = (i as i64 + di, j as i64 + dj, k as i64 + dk);
                            if ii < 0
                                || jj < 0
                                || kk < 0
                                || ii >= nx as i64
                                || jj >= ny as i64
                                || kk >= nz as i64
                            {
                                continue;
                            }
                            let c = idx(ii as usize, jj as usize, kk as usize);
                            // Only emit the lower triangle + diagonal, mirror the rest,
                            // so the matrix is exactly symmetric.
                            if c > r {
                                continue;
                            }
                            // Scale by the geometric mean of the nodal densities so the
                            // result is D^{1/2} M D^{1/2} with M the SPD tensor-product
                            // mass matrix — a congruence transform, hence still SPD.
                            let w =
                                w1(di) * w1(dj) * w1(dk) * (density[r] * density[c]).sqrt() * scale;
                            if c == r {
                                a.push(r, r, w);
                            } else {
                                a.push(r, c, w);
                                a.push(c, r, w);
                            }
                        }
                    }
                }
            }
        }
    }
    a
}

/// The Wathen finite-element matrix (`gallery('wathen', nx, ny)` in MATLAB): the
/// consistent mass matrix of an `nx × ny` grid of 8-node serendipity elements with a
/// random density per element.
///
/// The dimension is `3·nx·ny + 2·nx + 2·ny + 1`; for `nx = ny = 100` this is exactly the
/// SuiteSparse `wathen100` matrix (30 401 rows, 471 601 non-zeros).  The matrix is SPD
/// with condition number of a few thousand.
pub fn wathen(nx: usize, ny: usize, seed: u64) -> CooMatrix {
    // The 8×8 element matrix, scaled by 1/45 (Higham, "Algorithm 694").
    #[rustfmt::skip]
    const E: [[f64; 8]; 8] = [
        [ 6.0, -6.0,  2.0, -8.0,  3.0, -8.0,  2.0, -6.0],
        [-6.0, 32.0, -6.0, 20.0, -8.0, 16.0, -8.0, 20.0],
        [ 2.0, -6.0,  6.0, -6.0,  2.0, -8.0,  3.0, -8.0],
        [-8.0, 20.0, -6.0, 32.0, -6.0, 20.0, -8.0, 16.0],
        [ 3.0, -8.0,  2.0, -6.0,  6.0, -6.0,  2.0, -8.0],
        [-8.0, 16.0, -8.0, 20.0, -6.0, 32.0, -6.0, 20.0],
        [ 2.0, -8.0,  3.0, -8.0,  2.0, -6.0,  6.0, -6.0],
        [-6.0, 20.0, -8.0, 16.0, -8.0, 20.0, -6.0, 32.0],
    ];
    let n = 3 * nx * ny + 2 * nx + 2 * ny + 1;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let rho = Uniform::new(0.0f64, 100.0);
    let mut a = CooMatrix::with_capacity(n, n, 64 * nx * ny);
    for j in 1..=ny {
        for i in 1..=nx {
            // 1-based node numbers of the 8 element nodes (MATLAB convention).
            let mut nn = [0usize; 8];
            nn[0] = 3 * j * nx + 2 * i + 2 * j + 1;
            nn[1] = nn[0] - 1;
            nn[2] = nn[1] - 1;
            nn[3] = (3 * j - 1) * nx + 2 * j + i - 1;
            nn[4] = 3 * (j - 1) * nx + 2 * i + 2 * j - 3;
            nn[5] = nn[4] + 1;
            nn[6] = nn[5] + 1;
            nn[7] = nn[3] + 1;
            let density = rho.sample(&mut rng);
            for (kr, &nr) in nn.iter().enumerate() {
                for (kc, &nc) in nn.iter().enumerate() {
                    a.push(nr - 1, nc - 1, density * E[kr][kc] / 45.0);
                }
            }
        }
    }
    a
}

/// A symmetric matrix whose off-diagonal pattern is a random `k`-neighbour graph, with
/// negative off-diagonal entries and a diagonal equal to `dominance` times the absolute
/// row sum.
///
/// `dominance > 1` makes the matrix strictly diagonally dominant and hence SPD; the
/// condition number is roughly `(2·dominance) / (dominance − 1)` for large `k`, so small
/// `dominance` values give the κ ≈ 10²–10³ range of the thermo-mechanical workloads.
/// The scattered pattern is the important part: with ~6 neighbours drawn uniformly from
/// all columns, almost every non-zero lands in its own 128×128 block, which reproduces
/// the very large cluster requirements the paper reports for `thermomech_TC/dM`.
///
/// `value_scale` multiplies every entry, setting the magnitude profile.
pub fn random_spd_graph(
    n: usize,
    k: usize,
    dominance: f64,
    value_scale: f64,
    seed: u64,
) -> CooMatrix {
    assert!(
        dominance > 1.0,
        "dominance must exceed 1 for positive definiteness"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let col_dist = Uniform::new(0usize, n);
    // Collect symmetric off-diagonal edges (i, j, v) with i < j.
    let mut edges: Vec<(usize, usize, f64)> = Vec::with_capacity(n * k / 2 + n);
    for i in 0..n {
        // Each node proposes ~k/2 edges; symmetry doubles the expected degree to ~k.
        for _ in 0..k.div_ceil(2) {
            let j = col_dist.sample(&mut rng);
            if j == i {
                continue;
            }
            let (lo, hi) = (i.min(j), i.max(j));
            let w = -(0.5 + rng.gen::<f64>());
            edges.push((lo, hi, w));
        }
    }
    let mut row_abs_sum = vec![0.0f64; n];
    for &(i, j, w) in &edges {
        row_abs_sum[i] += w.abs();
        row_abs_sum[j] += w.abs();
    }
    let mut a = CooMatrix::with_capacity(n, n, edges.len() * 2 + n);
    for &(i, j, w) in &edges {
        a.push(i, j, w * value_scale);
        a.push(j, i, w * value_scale);
    }
    for (i, &s) in row_abs_sum.iter().enumerate() {
        // Guarantee a positive diagonal even for isolated nodes.
        a.push(i, i, (dominance * s).max(1.0) * value_scale);
    }
    a
}

/// A circulant symmetric 3-regular "sphere grid" matrix: every row couples to its two
/// ring neighbours and to the antipodal node, mimicking the 4 non-zeros/row and tiny
/// condition number of `shallow_water1`.
///
/// `diag_scale` sets the value magnitude (the real shallow-water matrices carry physical
/// constants far from 1.0); `offdiag_ratio ∈ (0, 1/3)` controls the condition number
/// `κ ≈ (1 + 3·ratio) / (1 − 3·ratio)`.
pub fn sphere_ring_3regular(n: usize, diag_scale: f64, offdiag_ratio: f64) -> CooMatrix {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "sphere_ring_3regular needs an even n ≥ 4"
    );
    assert!(
        offdiag_ratio > 0.0 && offdiag_ratio < 1.0 / 3.0,
        "offdiag_ratio must lie in (0, 1/3) for positive definiteness"
    );
    let half = n / 2;
    let off = -diag_scale * offdiag_ratio;
    let mut a = CooMatrix::with_capacity(n, n, 4 * n);
    for i in 0..n {
        a.push(i, i, diag_scale);
        a.push(i, (i + 1) % n, off);
        a.push(i, (i + n - 1) % n, off);
        a.push(i, (i + half) % n, off);
    }
    a
}

/// 2D convection–diffusion operator (5-point upwind) — a *non-symmetric* test matrix for
/// the BiCGSTAB solver.  `peclet` controls the strength of convection; `peclet = 0`
/// reduces to the symmetric Laplacian.
pub fn convection_diffusion_2d(nx: usize, ny: usize, peclet: f64) -> CooMatrix {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut a = CooMatrix::with_capacity(n, n, 5 * n);
    let h = 1.0 / (nx.max(ny) as f64 + 1.0);
    let c = peclet * h / 2.0;
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            a.push(r, r, 4.0 + 2.0 * c.abs());
            if i + 1 < nx {
                a.push(r, idx(i + 1, j), -1.0 + c);
            }
            if i > 0 {
                a.push(r, idx(i - 1, j), -1.0 - c);
            }
            if j + 1 < ny {
                a.push(r, idx(i, j + 1), -1.0);
            }
            if j > 0 {
                a.push(r, idx(i, j - 1), -1.0);
            }
        }
    }
    a
}

/// A diagonal matrix with logarithmically spaced entries between `min` and `max`
/// (inclusive), useful for tests that need an exactly known condition number `max/min`.
pub fn logspace_diagonal(n: usize, min: f64, max: f64) -> CooMatrix {
    assert!(n >= 1 && min > 0.0 && max >= min);
    let mut a = CooMatrix::with_capacity(n, n, n);
    for i in 0..n {
        let t = if n == 1 {
            0.0
        } else {
            i as f64 / (n - 1) as f64
        };
        a.push(i, i, min * (max / min).powf(t));
    }
    a
}

/// Multiplies every entry of a COO matrix by a per-entry lognormal factor
/// `exp(σ·N(0,1))` — used to widen the exponent spread inside blocks when studying the
/// exponent-locality assumption.
pub fn apply_lognormal_jitter(a: &mut CooMatrix, sigma_log2: f64, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let vals: Vec<f64> = a
        .values()
        .iter()
        .map(|&v| {
            // Approximately normal deviate from the sum of four uniforms (Irwin–Hall);
            // chained adds keep the exact left-to-right order of the draws.
            let u = rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 2.0;
            v * (sigma_log2 * u).exp2()
        })
        .collect();
    let rows = a.row_indices().to_vec();
    let cols = a.col_indices().to_vec();
    *a = CooMatrix::from_triplets(a.nrows(), a.ncols(), rows, cols, vals)
        .expect("same structure, still valid");
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_sparse::{CsrMatrix, MatrixStats};

    fn is_spd_by_gershgorin(a: &CsrMatrix) -> bool {
        // Diagonal dominance with positive diagonal is a sufficient SPD certificate.
        (0..a.nrows()).all(|r| {
            let (cols, vals) = a.row(r);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c == r {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            diag > 0.0 && diag >= off - 1e-12 * diag.abs()
        })
    }

    #[test]
    fn laplacian_2d_shape_and_symmetry() {
        let a = laplacian_2d(10, 12, 0.5).to_csr();
        assert_eq!(a.nrows(), 120);
        assert!(a.is_symmetric(1e-14));
        assert!(is_spd_by_gershgorin(&a));
        // Interior rows have 5 nonzeros.
        let s = MatrixStats::compute(&a);
        assert_eq!(s.max_row_nnz, 5);
    }

    #[test]
    fn anisotropic_9pt_is_symmetric_and_has_nine_point_rows() {
        let a = anisotropic_9pt(9, 9, 1.0, 0.05, 1e-3).to_csr();
        assert!(a.is_symmetric(1e-12));
        let s = MatrixStats::compute(&a);
        assert_eq!(s.max_row_nnz, 9);
        // Diagonal must be positive.
        assert!(a.diagonal().iter().all(|&d| d > 0.0));
    }

    fn is_positive_definite_by_sampling(a: &CsrMatrix, seed: u64) -> bool {
        // Mass matrices are SPD but not diagonally dominant; check xᵀAx > 0 on a handful
        // of deterministic pseudo-random vectors instead of Gershgorin.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..5).all(|_| {
            let x: Vec<f64> = (0..a.ncols()).map(|_| rng.gen_range(-1.0..=1.0)).collect();
            let y = a.spmv(&x);
            refloat_sparse::vecops::dot(&x, &y) > 0.0
        })
    }

    #[test]
    fn mass_matrix_3d_is_spd_and_scaled() {
        let a = mass_matrix_3d(6, 5, 4, 1e-12, 0.5, 7).to_csr();
        assert_eq!(a.nrows(), 120);
        assert!(a.is_symmetric(1e-25));
        assert!(is_positive_definite_by_sampling(&a, 11));
        let s = MatrixStats::compute(&a);
        assert_eq!(s.max_row_nnz, 27);
        // Values should sit around 1e-12, i.e. binary exponents near -40.
        assert!(s.max_exponent < -35 && s.min_exponent > -50, "stats: {s:?}");
    }

    #[test]
    fn wathen_dimension_matches_suitesparse() {
        // wathen(nx, ny) has 3 nx ny + 2 nx + 2 ny + 1 rows; nx = ny = 10 gives 341.
        let a = wathen(10, 10, 1).to_csr();
        assert_eq!(a.nrows(), 341);
        assert!(a.is_symmetric(1e-9));
        assert!(a.diagonal().iter().all(|&d| d > 0.0));
        // The full wathen100 dimension formula (not generated here to keep tests fast).
        assert_eq!(3 * 100 * 100 + 2 * 100 + 2 * 100 + 1, 30401);
    }

    #[test]
    fn wathen_is_deterministic_per_seed() {
        let a = wathen(6, 7, 42).to_csr();
        let b = wathen(6, 7, 42).to_csr();
        let c = wathen(6, 7, 43).to_csr();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_spd_graph_is_dominant_and_scattered() {
        let a = random_spd_graph(2000, 6, 1.4, 1.0, 3).to_csr();
        assert!(a.is_symmetric(1e-12));
        assert!(is_spd_by_gershgorin(&a));
        let s = MatrixStats::compute(&a);
        assert!(
            s.nnz_per_row > 3.0 && s.nnz_per_row < 12.0,
            "nnz/row = {}",
            s.nnz_per_row
        );
        // Scattered structure: bandwidth close to n.
        assert!(s.bandwidth > 1000);
    }

    #[test]
    fn random_spd_graph_scaling_moves_exponents() {
        let a = random_spd_graph(500, 6, 1.4, 1e-10, 5).to_csr();
        let s = MatrixStats::compute(&a);
        assert!(s.max_exponent < -25, "max exponent {}", s.max_exponent);
    }

    #[test]
    fn sphere_ring_has_exactly_four_nonzeros_per_row() {
        let a = sphere_ring_3regular(64, 1e10, 0.18).to_csr();
        assert!(a.is_symmetric(1e-3));
        let s = MatrixStats::compute(&a);
        assert_eq!(s.max_row_nnz, 4);
        assert_eq!(s.nnz, 4 * 64);
        assert!(is_spd_by_gershgorin(&a));
    }

    #[test]
    #[should_panic(expected = "positive definiteness")]
    fn sphere_ring_rejects_bad_ratio() {
        let _ = sphere_ring_3regular(16, 1.0, 0.4);
    }

    #[test]
    fn convection_diffusion_is_nonsymmetric_for_positive_peclet() {
        let sym = convection_diffusion_2d(8, 8, 0.0).to_csr();
        assert!(sym.is_symmetric(1e-14));
        let asym = convection_diffusion_2d(8, 8, 20.0).to_csr();
        assert!(!asym.is_symmetric(1e-14));
    }

    #[test]
    fn logspace_diagonal_has_requested_extremes() {
        let a = logspace_diagonal(11, 1e-3, 1e3).to_csr();
        let d = a.diagonal();
        assert!((d[0] - 1e-3).abs() < 1e-15);
        assert!((d[10] - 1e3).abs() < 1e-9);
        assert_eq!(a.nnz(), 11);
    }

    #[test]
    fn lognormal_jitter_preserves_structure() {
        let mut a = laplacian_2d(6, 6, 0.0);
        let nnz = a.nnz();
        apply_lognormal_jitter(&mut a, 1.0, 9);
        assert_eq!(a.nnz(), nnz);
        // Values changed but signs preserved.
        assert!(a.values().iter().all(|&v| v != 0.0));
    }
}
