//! Ablation (beyond the paper's tables): which ingredients of ReFloat actually buy the
//! convergence?
//!
//! Three design choices are isolated on a crystm-like workload (CG, relative 1e-8):
//!
//! 1. **Per-block exponent base vs block fixed point (BFP).**  §II.C argues BFP cannot
//!    capture the dynamic range inside a block; `e = 0` (all offsets zero) is exactly
//!    BFP with the Eq. 5 base, so the comparison is one flag away.
//! 2. **The Eq. 5 optimal base vs naive base choices** (minimum / maximum block
//!    exponent) at the paper's e = 3.
//! 3. **Per-iteration vector re-encoding on/off** — the ingredient the Feinberg design
//!    lacks (§III.C).
//!
//! Run with: `cargo run --release -p refloat-bench --bin ablation_format [--quick]`

use refloat_bench::json::has_flag;
use refloat_bench::table::TextTable;
use refloat_core::block::ReFloatBlock;
use refloat_core::{ReFloatConfig, ReFloatMatrix};
use refloat_matgen::{rhs, Workload};
use refloat_solvers::{cg, SolverConfig};
use refloat_sparse::BlockedMatrix;

/// Builds a ReFloat operator whose per-block base is chosen by `policy` instead of the
/// Eq. 5 optimum.
fn with_base_policy(
    blocked: &BlockedMatrix,
    config: ReFloatConfig,
    policy: fn(&[f64]) -> i32,
) -> ReFloatMatrix {
    // Re-encode every block with the alternative base, then splice the blocks into a
    // ReFloatMatrix by round-tripping through a quantized CSR.
    let mut quantized =
        refloat_sparse::CooMatrix::with_capacity(blocked.nrows(), blocked.ncols(), blocked.nnz());
    let bs = blocked.block_size();
    for block in blocked.blocks() {
        let base = policy(&block.vals);
        let encoded = ReFloatBlock::encode_with_base(block, &config, base);
        let row0 = block.block_row * bs;
        let col0 = block.block_col * bs;
        for (ii, jj, v) in encoded.iter_decoded() {
            if v != 0.0 {
                quantized.push(row0 + ii as usize, col0 + jj as usize, v);
            }
        }
    }
    // The matrix values are already quantized; encode them again with a wide fraction so
    // no further loss occurs, keeping the vector path identical to the real operator.
    let wide = ReFloatConfig::new(config.b, 11, 52, config.ev, config.fv);
    ReFloatMatrix::from_csr(&quantized.to_csr(), wide)
}

fn min_exponent_base(vals: &[f64]) -> i32 {
    vals.iter()
        .filter(|v| **v != 0.0)
        .map(|v| refloat_sparse::stats::exponent_of(*v))
        .min()
        .unwrap_or(0)
}

fn max_exponent_base(vals: &[f64]) -> i32 {
    vals.iter()
        .filter(|v| **v != 0.0)
        .map(|v| refloat_sparse::stats::exponent_of(*v))
        .max()
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let workload = if quick {
        Workload::Crystm01
    } else {
        Workload::Crystm03
    };
    let a = workload.generate_csr(2023);
    let b = rhs::ones(a.nrows());
    let cfg = SolverConfig::relative(1e-8)
        .with_max_iterations(5_000)
        .with_trace(false);
    let format = ReFloatConfig::paper_default();
    let blocked = BlockedMatrix::from_csr(&a, format.b).expect("b = 7 is valid");

    println!(
        "== Ablation on {} ({} rows, {} nnz), CG to 1e-8 relative ==\n",
        workload.spec().name,
        a.nrows(),
        a.nnz()
    );

    let reference = cg(&mut a.clone(), &b, &cfg);
    let mut t = TextTable::new(["variant", "#iterations", "notes"]);
    t.row([
        "FP64 (reference)".to_string(),
        reference.iterations_label(),
        "exact arithmetic".to_string(),
    ]);

    // (0) The full ReFloat pipeline, paper defaults.
    let mut full = ReFloatMatrix::from_blocked(&blocked, format);
    let r_full = cg(&mut full, &b, &cfg);
    t.row([
        "ReFloat(7,3,3)(3,8)".to_string(),
        r_full.iterations_label(),
        "paper default (Eq. 5 base, adaptive vectors)".to_string(),
    ]);

    // (1) Block fixed point: e = 0 for the matrix (single shared exponent per block).
    let bfp = ReFloatConfig::new(7, 0, 3, 3, 8);
    let mut bfp_op = ReFloatMatrix::from_blocked(&blocked, bfp);
    let r_bfp = cg(&mut bfp_op, &b, &cfg);
    t.row([
        "BFP block (e = 0, f = 3)".to_string(),
        r_bfp.iterations_label(),
        "no per-element exponent offsets (§II.C argument)".to_string(),
    ]);

    // (2) Naive base policies at e = 3.
    let mut min_base = with_base_policy(&blocked, format, min_exponent_base);
    let r_min = cg(&mut min_base, &b, &cfg);
    t.row([
        "base = min block exponent".to_string(),
        r_min.iterations_label(),
        "saturates the large elements".to_string(),
    ]);
    let mut max_base = with_base_policy(&blocked, format, max_exponent_base);
    let r_max = cg(&mut max_base, &b, &cfg);
    t.row([
        "base = max block exponent".to_string(),
        r_max.iterations_label(),
        "saturates the small elements".to_string(),
    ]);

    // (3) Vector re-encoding disabled (matrix quantization only).
    let mut no_vq = ReFloatMatrix::from_blocked(&blocked, format);
    no_vq.set_vector_quantization(false);
    let r_novq = cg(&mut no_vq, &b, &cfg);
    t.row([
        "no vector re-encoding".to_string(),
        r_novq.iterations_label(),
        "isolates the matrix-quantization error".to_string(),
    ]);

    println!("{}", t.render());
    println!(
        "reading the table: the Eq. 5 base and the adaptive vector converter are what keep the\n\
         iteration count near the FP64 reference; fixed-point blocks and one-sided base choices\n\
         cost extra iterations (or convergence) for the same hardware budget."
    );
}
