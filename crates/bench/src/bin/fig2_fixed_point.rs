//! Experiment E1 — Fig. 2 / Eq. 1: bit-sliced fixed-point MVM in ReRAM crossbars.
//!
//! Reproduces the worked 4×4 integer example of the paper exactly, then cross-checks the
//! pipeline against exact integer arithmetic on a larger random case and reports the
//! cycle counts of §III.A.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use refloat_bench::table::TextTable;
use reram_sim::xbar::{reference_mvm, FixedPointMvm};

fn main() {
    println!("== Fig. 2 / Eq. 1: fixed-point MVM in ReRAM (bit-sliced pipeline) ==\n");

    // The logical matrix applied in Eq. 1 is the transpose of the printed one.
    let matrix: Vec<u64> = vec![
        0, 11, 9, 14, //
        13, 14, 5, 6, //
        7, 3, 2, 9, //
        11, 8, 5, 15,
    ];
    let x = vec![6u64, 12, 6, 13];
    let engine = FixedPointMvm::new(&matrix, 4, 4);
    let y = engine.multiply(&x, 4);

    let mut t = TextTable::new(["output row", "pipeline", "expected (paper)"]);
    for (i, (got, expect)) in y.iter().zip([368u128, 354, 207, 387].iter()).enumerate() {
        t.row([i.to_string(), got.to_string(), expect.to_string()]);
    }
    println!("{}", t.render());
    println!(
        "crossbars (1-bit slices of the 4-bit matrix): {}\ncycles C_int = N_v + N_M - 1 = {}\n",
        engine.num_crossbars(),
        engine.cycles(4)
    );
    assert_eq!(
        y,
        vec![368, 354, 207, 387],
        "the Fig. 2 example must reproduce exactly"
    );

    // A larger randomized cross-check: 64x64, 8-bit matrix, 12-bit vector.
    let mut rng = ChaCha8Rng::seed_from_u64(2023);
    let size = 64;
    let m: Vec<u64> = (0..size * size).map(|_| rng.gen_range(0..256)).collect();
    let v: Vec<u64> = (0..size).map(|_| rng.gen_range(0..4096)).collect();
    let engine = FixedPointMvm::new(&m, size, 8);
    let got = engine.multiply(&v, 12);
    let expect = reference_mvm(&m, size, &v);
    assert_eq!(got, expect, "pipeline must be exact for arbitrary operands");
    println!(
        "random 64x64 cross-check: exact ({} crossbars, {} cycles for an 8-bit matrix x 12-bit vector)",
        engine.num_crossbars(),
        engine.cycles(12)
    );
}
