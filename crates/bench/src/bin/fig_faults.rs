//! `fig_faults` — acceptance run of the fault-aware execution stack, three arms,
//! all asserted:
//!
//! 1. **Bounded overhead** — a trace solved on a chip that wears out mid-trace
//!    (stuck rates escalate with every re-program) under the full policy (spare
//!    remapping + ABFT probe + re-encode retries).  The ABFT probe must actually
//!    fire (detections > 0) and the jobs that survive it must converge within
//!    [`ITERATION_OVERHEAD_BOUND`]× the clean per-job iteration count — detected
//!    corruption costs retries, never wrong answers.
//! 2. **Silent-corruption control** — defect rates that overflow the spare budget
//!    from the first program, with ABFT disabled.  Nothing detects, nothing
//!    degrades, and the returned "solution" is detectably wrong in true fp64
//!    residual — the measured value of the checksum column.
//! 3. **Mid-trace chip kill** — a 2-node cluster loses both chips of node 0 while
//!    a trace is in flight.  Every submitted job must still resolve typed
//!    (completed, degraded, or a refused plan handed back) — zero lost jobs — and
//!    the health-aware router must steer the post-kill traffic to the live node.
//!
//! ```text
//! fig_faults [--quick] [--seed S] [--bench-dir DIR]
//! ```
//!
//! With `--bench-dir` the run also emits `BENCH_faults.json` (the `faults` area of
//! the tracked perf trajectory; see `bench_check`).

use refloat_bench::args::parse_u64;
use refloat_bench::bench_emit::{bench_dir_from_args, emit};
use refloat_bench::json::has_flag;
use refloat_core::ReFloatConfig;
use refloat_matgen::generators;
use refloat_runtime::{
    metric_names, ClusterConfig, ClusterRuntime, DegradedReason, FaultPolicy, MatrixHandle,
    RuntimeConfig, SolvePlan, SolveRuntime, SolveTicket, TicketOutcome,
};
use refloat_solvers::SolverConfig;
use refloat_telemetry::BenchReport;
use reram_sim::FaultModelConfig;

/// Jobs surviving ABFT must converge within this multiple of the clean per-job
/// iteration count (plus a small additive slack for tiny iteration counts).
const ITERATION_OVERHEAD_BOUND: f64 = 3.0;

/// Solver tolerance of every arm; the control arm's true residual must miss it.
const TOLERANCE: f64 = 1e-8;

/// A chip that *wears out under the trace*: the base stuck rates (~3 defects per
/// 16×16 crossbar) stay inside the 2+2 spare budget, so early jobs run clean, but
/// every re-program escalates the rates by 10% — mid-trace the budget overflows,
/// the ABFT probe starts firing and the retry/degrade machinery engages.  Drift
/// grows with age too; the checksum compensates it exactly (no false positives)
/// while the solver pays a bounded iteration overhead for it.
fn wearing_faults(seed: u64) -> FaultModelConfig {
    FaultModelConfig {
        seed,
        stuck_low_rate: 1e-2,
        stuck_high_rate: 2e-3,
        drift_sigma: 0.02,
        wear_growth: 0.3,
    }
}

/// Stuck rates that overflow the spare budget from the very first program — the
/// silent-corruption control arm needs corruption at age zero.
fn crushing_faults(seed: u64) -> FaultModelConfig {
    FaultModelConfig {
        seed,
        stuck_low_rate: 2e-2,
        stuck_high_rate: 4e-3,
        drift_sigma: 0.0,
        wear_growth: 0.0,
    }
}

fn workload(quick: bool) -> MatrixHandle {
    let scale = if quick { 16 } else { 24 };
    MatrixHandle::new(
        "poisson",
        generators::laplacian_2d(scale, scale, 0.3).to_csr(),
    )
}

fn plans(count: usize, handle: &MatrixHandle) -> Vec<SolvePlan> {
    (0..count)
        .map(|i| {
            SolvePlan::new(
                format!("tenant-{}", i % 3),
                handle.clone(),
                ReFloatConfig::new(4, 3, 8, 3, 8),
            )
            .solver_config(
                SolverConfig::relative(TOLERANCE)
                    .with_max_iterations(2_000)
                    .with_trace(false),
            )
            .build()
            .expect("valid plan")
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = match parse_u64(&args, "--seed") {
        Ok(seed) => seed.unwrap_or(2023),
        Err(usage) => {
            eprintln!("fig_faults: {usage}");
            std::process::exit(2);
        }
    };
    run(&args, seed);
}

fn run(args: &[String], seed: u64) {
    let quick = has_flag(args, "--quick");
    let jobs = if quick { 12 } else { 24 };
    let handle = workload(quick);
    println!("fig_faults: {jobs} jobs per arm, seed {seed}");

    // ---- Arm 1: ABFT on faulty chips — detections, retries, bounded damage. ----
    let clean = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        ..RuntimeConfig::default()
    })
    .run_batch(plans(jobs, &handle));
    let clean_iters_per_job = clean
        .jobs
        .iter()
        .map(|j| j.result.iterations)
        .sum::<usize>() as f64
        / jobs as f64;

    let policy = FaultPolicy::realistic(seed).with_model(wearing_faults(seed));
    let client = SolveRuntime::start(RuntimeConfig {
        workers: 2,
        fault: Some(policy),
        ..RuntimeConfig::default()
    });
    let tickets: Vec<SolveTicket> = plans(jobs, &handle)
        .into_iter()
        .map(|p| client.submit(p).expect("accepting"))
        .collect();
    let (mut completed, mut degraded, mut faulty_iters) = (0u64, 0u64, 0usize);
    for ticket in tickets {
        match ticket.wait() {
            TicketOutcome::Completed(outcome) => {
                assert!(outcome.result.converged(), "ABFT survivors must converge");
                completed += 1;
                faulty_iters += outcome.result.iterations;
            }
            TicketOutcome::Degraded(job) => {
                assert_eq!(job.reason, DegradedReason::AbftUnresolved);
                degraded += 1;
            }
            other => panic!("faulty chips must not lose or fail jobs: {other:?}"),
        }
    }
    assert_eq!(completed + degraded, jobs as u64, "zero lost jobs");
    assert!(completed > 0, "the retry path must rescue some jobs");
    let ratio = (faulty_iters as f64 / completed as f64) / clean_iters_per_job;
    assert!(
        ratio <= ITERATION_OVERHEAD_BOUND,
        "unbounded iteration overhead: {ratio:.2}x"
    );
    let report = client.shutdown();
    assert!(report.faults_detected > 0, "the ABFT probe never fired");
    println!(
        "faults: ABFT bounded the damage: extra-iteration ratio {ratio:.2}x \
         (bound {ITERATION_OVERHEAD_BOUND:.2}x), {} detections, {} re-encodes, {} degraded",
        report.faults_detected, report.fault_retries, report.degraded_jobs
    );

    // ---- Arm 2: the control — crushing defects, checksum test off. ----
    let silent = SolveRuntime::new(RuntimeConfig {
        workers: 1,
        fault: Some(
            FaultPolicy::realistic(seed)
                .with_model(crushing_faults(seed))
                .without_abft(),
        ),
        ..RuntimeConfig::default()
    })
    .run_batch(plans(2, &handle));
    assert_eq!(silent.report.faults_detected, 0, "no ABFT, no detections");
    assert_eq!(silent.report.degraded_jobs, 0);
    let a = handle.csr();
    let b = vec![1.0; a.nrows()];
    let worst_rel = silent
        .jobs
        .iter()
        .map(|j| a.relative_residual(&b, &j.result.x))
        .fold(0.0, f64::max);
    assert!(
        worst_rel > TOLERANCE,
        "the control arm should be detectably wrong, got {worst_rel:.3e}"
    );
    println!(
        "faults: ABFT-off control corrupts silently: worst true residual {worst_rel:.2e} \
         (tolerance {TOLERANCE:.0e}), 0 detections"
    );

    // ---- Arm 3: mid-trace chip kill on a 2-node cluster — zero lost jobs. ----
    let cluster = ClusterRuntime::start(ClusterConfig::uniform(
        2,
        RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        },
    ));
    let mut trace = plans(jobs, &handle).into_iter();
    let mut tickets: Vec<SolveTicket> = Vec::new();
    let mut refused = 0u64;
    for plan in trace.by_ref().take(jobs / 2) {
        tickets.push(cluster.submit(plan).expect("pre-kill cluster accepts"));
    }
    // Node 0 (pool-global workers 0 and 1) dies with half the trace in flight.
    assert!(cluster.kill_chip(0));
    assert!(cluster.kill_chip(1));
    let (mut kill_completed, mut kill_degraded) = (0u64, 0u64);
    let mut resolve = |ticket: SolveTicket| match ticket.wait() {
        TicketOutcome::Completed(_) => kill_completed += 1,
        TicketOutcome::Degraded(job) => {
            assert_eq!(job.reason, DegradedReason::ChipKilled);
            kill_degraded += 1;
        }
        other => panic!("a chip kill must not lose or fail jobs: {other:?}"),
    };
    // Drain the in-flight half first so both nodes sit at zero queued load: the
    // health-blind baseline then breaks the tie onto dead node 0, and every
    // post-kill placement the router moves off it registers as a steer.
    for ticket in tickets.drain(..) {
        resolve(ticket);
    }
    for plan in trace {
        match cluster.submit(plan) {
            Ok(ticket) => tickets.push(ticket),
            // A queue that closed under the kill refuses typed, plan intact.
            Err(err) => {
                let _ = err;
                refused += 1;
            }
        }
    }
    for ticket in tickets {
        resolve(ticket);
    }
    assert_eq!(
        kill_completed + kill_degraded + refused,
        jobs as u64,
        "every job resolved typed"
    );
    let steers = cluster
        .metrics_snapshot()
        .counter(metric_names::ROUTE_HEALTH_STEERS)
        .unwrap_or(0);
    assert!(
        steers > 0,
        "post-kill traffic must be steered off the dead node"
    );
    let kill_report = cluster.shutdown();
    assert_eq!(kill_report.chips_killed, 2);
    println!(
        "faults: mid-trace chip kill lost zero jobs: {kill_completed} completed + \
         {kill_degraded} degraded + {refused} refused of {jobs}, {} rerouted, {steers} steered",
        kill_report.rerouted_jobs
    );

    if let Some(dir) = bench_dir_from_args(args) {
        let bench = BenchReport::new("faults", "fig_faults")
            .config_num("jobs", jobs as f64)
            .config_num("seed", seed as f64)
            .config_str("mode", if quick { "quick" } else { "full" })
            .metric("extra_iteration_ratio", ratio)
            .metric("detections", report.faults_detected as f64)
            .metric("re_encodes", report.fault_retries as f64)
            .metric(
                "degraded_jobs",
                (report.degraded_jobs + kill_degraded) as f64,
            )
            .metric("rerouted_jobs", kill_report.rerouted_jobs as f64);
        emit(&bench, &dir);
    }
}
