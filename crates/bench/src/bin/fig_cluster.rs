//! `fig_cluster` — throughput scaling and overload behaviour of the multi-node
//! cluster, measured in a deterministic discrete-event simulation that drives the
//! **production** routing and admission components.
//!
//! Wall-clock scaling experiments need more cores than a CI box has, so this
//! binary separates the two concerns the cluster design actually couples:
//!
//! * the *decisions* — placement ([`Router`]), admission ([`TenantLedger`] under an
//!   [`AdmissionConfig`]), and QoS dequeue order ([`JobScheduler`]) — are made by
//!   the real production types, exactly as `ClusterRuntime` calls them;
//! * the *passage of time* is virtual: per-job service times come from a one-shot
//!   calibration pass that solves every catalog matrix through the real runtime
//!   and reads the **simulated accelerator model time** (deterministic on any
//!   host), and a min-heap advances the clock from event to event.
//!
//! Two experiments, both asserted:
//!
//! 1. **Scaling** — a saturating Poisson trace replayed against 1, 2, and 4 nodes:
//!    throughput at 4 nodes must be **≥ 3×** the single-node throughput
//!    (near-linear despite the Zipf-skewed catalog, because the router spills hot
//!    matrices when affinity would overload their home node).
//! 2. **Overload** — the same cluster offered **2× its service capacity** of
//!    bursty traffic, with and without admission control.  With admission the
//!    excess is shed as typed rejections while the interactive p99 queue wait
//!    stays bounded (≤ [`INTERACTIVE_P99_SERVICE_MULTIPLE`] service times); without
//!    it nothing is shed and the queue wait diverges with trace length.
//!
//! ```text
//! fig_cluster [--quick] [--seed S] [--json PATH] [--bench-dir DIR]
//! ```
//!
//! With `--bench-dir` the run also emits `BENCH_cluster.json` (the `cluster` area
//! of the tracked perf trajectory; see `bench_check`).

use std::collections::BTreeSet;
use std::collections::BinaryHeap;
use std::sync::Arc;

use serde::Serialize;

use refloat_bench::args::parse_u64;
use refloat_bench::bench_emit::{bench_dir_from_args, emit};
use refloat_bench::json::{has_flag, json_path_from_args, write_json};
use refloat_bench::table::TextTable;
use refloat_core::ReFloatConfig;
use refloat_matgen::generators;
use refloat_matgen::traffic::{generate, ArrivalProcess, TrafficSpec};
use refloat_runtime::cluster::{AdmissionConfig, AdmissionReject, TenantLedger};
use refloat_runtime::fingerprint::{fnv1a_u64, FNV_OFFSET};
use refloat_runtime::{
    JobScheduler, MatrixHandle, Priority, Router, RouterPolicy, RuntimeConfig, SchedulerPolicy,
    SolvePlan, SolveRuntime,
};
use refloat_solvers::SolverConfig;
use refloat_telemetry::BenchReport;
use reram_sim::SolverKind;

/// Simulated workers per node (matches the default `serve_traffic` pool).
const WORKERS_PER_NODE: usize = 4;

/// Simulated chips per node, the router's shard-fit capacity signal.
const CHIPS_PER_NODE: usize = 8;

/// Encoding a matrix on a cold node costs this fraction of one solve of the same
/// matrix — the price the affinity router exists to avoid paying per node.
const ENCODE_COST_FRACTION: f64 = 0.75;

/// The overload acceptance bar: with admission on, the interactive p99 queue wait
/// must stay within this many *maximum* service times, however long the trace.
const INTERACTIVE_P99_SERVICE_MULTIPLE: f64 = 5.0;

/// One catalog matrix of the simulated service.
struct CatalogItem {
    name: &'static str,
    handle: MatrixHandle,
    format: ReFloatConfig,
    solver: SolverKind,
    /// The router's shard-fit signal for this matrix.
    shards: usize,
    /// Zipf popularity weight.
    weight: f64,
}

/// A small skewed catalog: the hot stencil dominates traffic, the convection
/// operator is the big multi-shard job that makes shard-fit placement matter.
fn catalog(seed: u64, quick: bool) -> Vec<CatalogItem> {
    let scale = if quick { 16 } else { 32 };
    let fmt = ReFloatConfig::new;
    let raw: Vec<(
        &'static str,
        refloat_sparse::CooMatrix,
        ReFloatConfig,
        SolverKind,
        usize,
    )> = vec![
        (
            "hot-stencil",
            generators::laplacian_2d(scale, scale, 0.1),
            fmt(7, 3, 3, 3, 8),
            SolverKind::Cg,
            1,
        ),
        (
            "mass-matrix",
            generators::mass_matrix_3d(scale / 4, scale / 4, scale / 4, 1e-12, 0.8, seed ^ 0x353),
            fmt(7, 3, 8, 3, 8),
            SolverKind::Cg,
            1,
        ),
        (
            "wathen",
            generators::wathen(scale / 4, scale / 4, seed ^ 0x1288),
            fmt(7, 5, 8, 5, 16),
            SolverKind::Cg,
            2,
        ),
        (
            "aniso-stencil",
            generators::anisotropic_9pt(scale, scale, 1.0, 0.05, 1e-3),
            fmt(6, 3, 3, 3, 16),
            SolverKind::Cg,
            2,
        ),
        (
            "scatter-graph",
            generators::random_spd_graph(40 * scale, 6, 1.4, 1.0, seed ^ 0x2257),
            fmt(7, 3, 3, 3, 8),
            SolverKind::Cg,
            4,
        ),
        (
            "convdiff",
            generators::convection_diffusion_2d(scale, scale, 8.0),
            fmt(7, 5, 16, 5, 16),
            SolverKind::BiCgStab,
            6,
        ),
    ];
    raw.into_iter()
        .enumerate()
        .map(|(rank, (name, coo, format, solver, shards))| CatalogItem {
            name,
            handle: MatrixHandle::new(name, coo.to_csr()),
            format,
            solver,
            shards,
            weight: 1.0 / (rank as f64 + 1.0),
        })
        .collect()
}

/// Solves every catalog matrix once through the real runtime and returns the
/// simulated accelerator model time per item — the DES service times.  Model time
/// is a pure function of the numerics, so the calibration (and with it the whole
/// simulation) is deterministic on any host at any worker count.
fn calibrate(catalog: &[CatalogItem], quick: bool) -> Vec<f64> {
    let solver_config = SolverConfig::relative(1e-8)
        .with_max_iterations(if quick { 2_000 } else { 5_000 })
        .with_trace(false);
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 1,
        ..RuntimeConfig::default()
    });
    let outcome = runtime.run_with(|submitter| {
        for item in catalog {
            let plan = SolvePlan::new("calibration", item.handle.clone(), item.format)
                .solver(item.solver)
                .solver_config(solver_config.clone())
                .build()
                .expect("valid calibration plan");
            submitter
                .submit(plan)
                .expect("the batch client admits until the producer returns");
        }
    });
    assert_eq!(
        outcome.jobs.len(),
        catalog.len(),
        "every calibration job ran"
    );
    catalog
        .iter()
        .map(|item| {
            let job = outcome
                .jobs
                .iter()
                .find(|j| j.telemetry.matrix == item.name)
                .expect("calibration covers the catalog");
            assert!(job.result.converged(), "calibration solve must converge");
            job.telemetry.simulated.total_s
        })
        .collect()
}

/// One node of the simulated cluster: the production scheduler plus the virtual
/// worker/cache state the DES tracks around it.
struct SimNode {
    sched: JobScheduler<SimJob>,
    /// Virtual workers currently running a job.
    busy: usize,
    /// Catalog items already encoded on this node (per-node cache, as in the real
    /// cluster: affinity routing is what keeps this set small).
    warmed: BTreeSet<usize>,
}

/// The DES payload: everything needed to finish the job when its turn comes.
struct SimJob {
    item: usize,
    arrived_s: f64,
    interactive: bool,
    /// Held for the job's whole life; dropping it refunds the tenant's admission
    /// slot exactly as the real cluster does (read only by `Drop`, hence the
    /// underscore).
    _permit: Option<refloat_runtime::cluster::AdmissionPermit>,
}

/// A completion event, ordered by virtual time (bit-ordered `f64`, valid because
/// times are non-negative), tie-broken by job id for full determinism.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Completion(u64, u64, usize);

/// What one simulated serve measured.
struct SimOutcome {
    completed: usize,
    shed_overloaded: usize,
    shed_quota: usize,
    throughput_jobs_per_s: f64,
    interactive_p99_wait_s: f64,
    overall_p99_wait_s: f64,
    affinity_rate: f64,
    encodes: usize,
}

/// Percentile of an unsorted sample (nearest-rank); 0 for an empty sample.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let rank = ((samples.len() as f64 * p).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Replays `trace` against `nodes` simulated nodes in virtual time, making every
/// placement/admission/dequeue decision with the production components.
fn simulate(
    trace: &[refloat_matgen::traffic::Arrival],
    catalog: &[CatalogItem],
    service_s: &[f64],
    nodes: usize,
    admission: AdmissionConfig,
) -> SimOutcome {
    let router = Router::new(RouterPolicy::default());
    let ledger = Arc::new(TenantLedger::new(None));
    let mut sim_nodes: Vec<SimNode> = (0..nodes)
        .map(|_| SimNode {
            // Capacity covers the whole trace so a DES push can never block.
            sched: JobScheduler::new(trace.len() + 1, SchedulerPolicy::default()),
            busy: 0,
            warmed: BTreeSet::new(),
        })
        .collect();
    let chips = vec![CHIPS_PER_NODE; nodes];
    let tenant_names: Vec<Arc<str>> = (0..64).map(|t| Arc::from(format!("tenant-{t}"))).collect();

    let mut completions: BinaryHeap<std::cmp::Reverse<Completion>> = BinaryHeap::new();
    let mut waits_all: Vec<f64> = Vec::new();
    let mut waits_interactive: Vec<f64> = Vec::new();
    let mut shed_overloaded = 0usize;
    let mut shed_quota = 0usize;
    let mut affinity_hits = 0usize;
    let mut routed = 0usize;
    let mut encodes = 0usize;
    let mut completed = 0usize;
    let mut makespan_s = 0.0f64;

    // Starts every idle virtual worker of `node` on the scheduler's next pick.
    let start_ready = |node_index: usize,
                       now_s: f64,
                       sim_nodes: &mut Vec<SimNode>,
                       completions: &mut BinaryHeap<std::cmp::Reverse<Completion>>,
                       waits_all: &mut Vec<f64>,
                       waits_interactive: &mut Vec<f64>,
                       encodes: &mut usize| {
        while sim_nodes[node_index].busy < WORKERS_PER_NODE {
            let Some(popped) = sim_nodes[node_index].sched.try_pop() else {
                break;
            };
            let node = &mut sim_nodes[node_index];
            node.busy += 1;
            let wait_s = now_s - popped.payload.arrived_s;
            waits_all.push(wait_s);
            if popped.payload.interactive {
                waits_interactive.push(wait_s);
            }
            let mut service = service_s[popped.payload.item];
            if node.warmed.insert(popped.payload.item) {
                // Cold matrix on this node: pay the encode before the solve.
                service += ENCODE_COST_FRACTION * service;
                *encodes += 1;
            }
            completions.push(std::cmp::Reverse(Completion(
                (now_s + service).to_bits(),
                popped.id,
                node_index,
            )));
        }
    };

    let mut next_arrival = 0usize;
    let mut next_id = 0u64;
    loop {
        // The next event is whichever comes first: an arrival or a completion.
        let arrival_at = trace.get(next_arrival).map(|a| a.at_s);
        let completion_at = completions
            .peek()
            .map(|std::cmp::Reverse(Completion(bits, _, _))| f64::from_bits(*bits));
        let take_arrival = match (arrival_at, completion_at) {
            (Some(a), Some(c)) => a <= c,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_arrival {
            let arrival = &trace[next_arrival];
            next_arrival += 1;
            let id = next_id;
            next_id += 1;
            let tenant = &tenant_names[arrival.tenant % tenant_names.len()];
            let permit = match ledger.try_admit(tenant, &admission) {
                Ok(permit) => Some(permit),
                Err(AdmissionReject::Overloaded { .. }) => {
                    shed_overloaded += 1;
                    continue;
                }
                Err(AdmissionReject::QuotaExceeded { .. }) => {
                    shed_quota += 1;
                    continue;
                }
            };
            let loads: Vec<usize> = sim_nodes.iter().map(|n| n.sched.load()).collect();
            let fingerprint = fnv1a_u64(FNV_OFFSET, arrival.item as u64);
            let placement = router.place(fingerprint, catalog[arrival.item].shards, &loads, &chips);
            routed += 1;
            if placement.kind == refloat_runtime::RouteKind::Affinity {
                affinity_hits += 1;
            }
            // Every 4th arrival is latency-sensitive; the rest are throughput
            // traffic (deterministic assignment, same trace every run).
            let interactive = id.is_multiple_of(4);
            let priority = if interactive {
                Priority::Interactive
            } else {
                Priority::Batch
            };
            let job = SimJob {
                item: arrival.item,
                arrived_s: arrival.at_s,
                interactive,
                _permit: permit,
            };
            sim_nodes[placement.node]
                .sched
                .push(id, priority, None, job)
                .ok()
                .expect("the DES scheduler is sized for the whole trace");
            start_ready(
                placement.node,
                arrival.at_s,
                &mut sim_nodes,
                &mut completions,
                &mut waits_all,
                &mut waits_interactive,
                &mut encodes,
            );
        } else {
            let std::cmp::Reverse(Completion(bits, _, node_index)) =
                completions.pop().expect("peeked completion exists");
            let now_s = f64::from_bits(bits);
            makespan_s = now_s;
            completed += 1;
            sim_nodes[node_index].busy -= 1;
            sim_nodes[node_index].sched.finish_one();
            start_ready(
                node_index,
                now_s,
                &mut sim_nodes,
                &mut completions,
                &mut waits_all,
                &mut waits_interactive,
                &mut encodes,
            );
        }
    }

    SimOutcome {
        completed,
        shed_overloaded,
        shed_quota,
        throughput_jobs_per_s: if makespan_s > 0.0 {
            completed as f64 / makespan_s
        } else {
            0.0
        },
        interactive_p99_wait_s: percentile(&mut waits_interactive, 0.99),
        overall_p99_wait_s: percentile(&mut waits_all, 0.99),
        affinity_rate: if routed > 0 {
            affinity_hits as f64 / routed as f64
        } else {
            0.0
        },
        encodes,
    }
}

#[derive(Serialize)]
struct ClusterRecord {
    experiment: String,
    nodes: usize,
    offered_jobs: usize,
    completed: usize,
    shed_overloaded: usize,
    shed_quota: usize,
    throughput_jobs_per_s: f64,
    interactive_p99_wait_ms: f64,
    overall_p99_wait_ms: f64,
    affinity_rate: f64,
    encodes: usize,
}

fn record(experiment: &str, nodes: usize, offered: usize, outcome: &SimOutcome) -> ClusterRecord {
    ClusterRecord {
        experiment: experiment.to_string(),
        nodes,
        offered_jobs: offered,
        completed: outcome.completed,
        shed_overloaded: outcome.shed_overloaded,
        shed_quota: outcome.shed_quota,
        throughput_jobs_per_s: outcome.throughput_jobs_per_s,
        interactive_p99_wait_ms: outcome.interactive_p99_wait_s * 1e3,
        overall_p99_wait_ms: outcome.overall_p99_wait_s * 1e3,
        affinity_rate: outcome.affinity_rate,
        encodes: outcome.encodes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_u64(&args, "--seed") {
        Ok(seed) => seed.unwrap_or(2023),
        Err(usage) => {
            eprintln!("fig_cluster: {usage}");
            std::process::exit(2);
        }
    };
    run(&args, options);
}

fn run(args: &[String], seed: u64) {
    let quick = has_flag(args, "--quick");
    let jobs = if quick { 1_200 } else { 4_000 };
    println!("fig_cluster: {jobs} offered jobs, seed {seed}");

    let catalog = catalog(seed, quick);
    let item_weights: Vec<f64> = catalog.iter().map(|i| i.weight).collect();
    println!("calibrating service times (real solves, simulated-chip model time):");
    let service_s = calibrate(&catalog, quick);
    let mut mean_service_s = 0.0;
    let weight_total: f64 = item_weights.iter().sum();
    for (item, (&s, &w)) in catalog
        .iter()
        .zip(service_s.iter().zip(item_weights.iter()))
    {
        println!(
            "  {:<14} {:>9} nnz  shards {}  service {:>8.3} ms",
            item.name,
            item.handle.csr().nnz(),
            item.shards,
            s * 1e3
        );
        mean_service_s += s * w / weight_total;
    }
    let max_service_s = service_s.iter().cloned().fold(0.0, f64::max);

    // ---- Experiment 1: throughput scaling under a near-critical Poisson load. ----
    // Offered at 1.2x the 4-node service capacity: the 4-node cluster runs at the
    // edge of saturation (queues stay short, so the router keeps rebalancing work
    // at every arrival), while 1 and 2 nodes are 4.8x / 2.4x oversubscribed and
    // measure pure service capacity.  A much higher offered rate would freeze
    // placement early — most jobs would sit in queues balanced by *count* while
    // their *work* drains unevenly — and understate the cluster's real capacity.
    let capacity_4 = 4.0 * WORKERS_PER_NODE as f64 / mean_service_s;
    let scaling_trace = generate(
        &TrafficSpec {
            jobs,
            tenants: 16,
            tenant_skew: 1.1,
            arrivals: ArrivalProcess::Poisson {
                rate_per_s: 1.2 * capacity_4,
            },
            seed,
        },
        &item_weights,
    );
    let mut records: Vec<ClusterRecord> = Vec::new();
    let mut throughput_by_nodes = Vec::new();
    let mut scaling_table = TextTable::new(vec![
        "nodes",
        "throughput jobs/s",
        "speedup",
        "affinity rate",
        "encodes",
    ]);
    for &nodes in &[1usize, 2, 4] {
        let outcome = simulate(
            &scaling_trace,
            &catalog,
            &service_s,
            nodes,
            AdmissionConfig::default(),
        );
        assert_eq!(
            outcome.completed,
            scaling_trace.len(),
            "unbounded admission completes the whole trace"
        );
        throughput_by_nodes.push((nodes, outcome.throughput_jobs_per_s));
        let speedup = outcome.throughput_jobs_per_s / throughput_by_nodes[0].1;
        scaling_table.row(vec![
            nodes.to_string(),
            format!("{:.1}", outcome.throughput_jobs_per_s),
            format!("{speedup:.2}x"),
            format!("{:.0}%", outcome.affinity_rate * 100.0),
            outcome.encodes.to_string(),
        ]);
        records.push(record("scaling", nodes, scaling_trace.len(), &outcome));
    }
    println!(
        "\nscaling (near-critical Poisson, {jobs} jobs):\n{}",
        scaling_table.render()
    );
    let speedup_4 = throughput_by_nodes[2].1 / throughput_by_nodes[0].1;
    assert!(
        speedup_4 >= 3.0,
        "4-node throughput must scale >= 3x over one node, got {speedup_4:.2}x"
    );

    // ---- Experiment 2: 2x overload, with and without admission control. ----
    let nodes = 4;
    let capacity = nodes as f64 * WORKERS_PER_NODE as f64 / mean_service_s;
    let overload_trace = generate(
        &TrafficSpec {
            jobs,
            tenants: 16,
            tenant_skew: 1.1,
            arrivals: ArrivalProcess::Bursty {
                rate_per_s: 2.0 * capacity,
                mean_burst: 6.0,
                within_burst_gap_s: mean_service_s / 100.0,
            },
            seed: seed ^ 0x517,
        },
        &item_weights,
    );
    let max_in_system = 2 * nodes * WORKERS_PER_NODE;
    let admission = AdmissionConfig {
        max_in_system: Some(max_in_system),
        per_tenant_quota: Some(max_in_system / 2),
    };
    let bounded = simulate(&overload_trace, &catalog, &service_s, nodes, admission);
    let unbounded = simulate(
        &overload_trace,
        &catalog,
        &service_s,
        nodes,
        AdmissionConfig::default(),
    );
    let mut overload_table = TextTable::new(vec![
        "admission",
        "completed",
        "shed (over / quota)",
        "interactive p99 wait",
        "overall p99 wait",
    ]);
    for (label, outcome) in [("bounded", &bounded), ("unbounded", &unbounded)] {
        overload_table.row(vec![
            label.to_string(),
            outcome.completed.to_string(),
            format!("{} / {}", outcome.shed_overloaded, outcome.shed_quota),
            format!("{:.1} ms", outcome.interactive_p99_wait_s * 1e3),
            format!("{:.1} ms", outcome.overall_p99_wait_s * 1e3),
        ]);
    }
    println!(
        "overload (bursty at 2x capacity, {nodes} nodes, max in system {max_in_system}):\n{}",
        overload_table.render()
    );
    records.push(record(
        "overload-bounded",
        nodes,
        overload_trace.len(),
        &bounded,
    ));
    records.push(record(
        "overload-unbounded",
        nodes,
        overload_trace.len(),
        &unbounded,
    ));

    let total_shed = bounded.shed_overloaded + bounded.shed_quota;
    assert!(
        total_shed > 0,
        "2x overload with admission bounds must shed typed rejections"
    );
    assert_eq!(
        bounded.completed + total_shed,
        overload_trace.len(),
        "every offered job is either completed or shed, never lost"
    );
    let interactive_bound_s = INTERACTIVE_P99_SERVICE_MULTIPLE * max_service_s;
    assert!(
        bounded.interactive_p99_wait_s <= interactive_bound_s,
        "interactive p99 wait {:.1} ms must stay within {:.1} ms under bounded overload",
        bounded.interactive_p99_wait_s * 1e3,
        interactive_bound_s * 1e3
    );
    assert_eq!(
        unbounded.shed_overloaded + unbounded.shed_quota,
        0,
        "without bounds nothing is shed"
    );
    assert!(
        unbounded.overall_p99_wait_s > 3.0 * bounded.overall_p99_wait_s,
        "unbounded overload must queue far worse than admission-bounded ({:.1} ms vs {:.1} ms)",
        unbounded.overall_p99_wait_s * 1e3,
        bounded.overall_p99_wait_s * 1e3
    );

    println!(
        "cluster scaling {speedup_4:.2}x at 4 nodes; overload shed {total_shed} typed, \
         interactive p99 {:.1} ms bounded",
        bounded.interactive_p99_wait_s * 1e3
    );

    if let Some(dir) = bench_dir_from_args(args) {
        let bench = BenchReport::new("cluster", "fig_cluster")
            .config_num("jobs", jobs as f64)
            .config_num("seed", seed as f64)
            .config_num("workers_per_node", WORKERS_PER_NODE as f64)
            .config_str("mode", if quick { "quick" } else { "full" })
            .metric("speedup_4_nodes", speedup_4)
            .metric("throughput_1_jobs_per_s", throughput_by_nodes[0].1)
            .metric("throughput_4_jobs_per_s", throughput_by_nodes[2].1)
            .metric(
                "shed_rate_overload",
                total_shed as f64 / overload_trace.len() as f64,
            )
            .metric(
                "interactive_p99_wait_ms_overload",
                bounded.interactive_p99_wait_s * 1e3,
            )
            .metric("affinity_hit_rate", records[2].affinity_rate);
        emit(&bench, &dir);
    }

    if let Some(path) = json_path_from_args(args) {
        write_json(&path, &records).expect("write --json output");
        println!("wrote {path}");
    }
}
