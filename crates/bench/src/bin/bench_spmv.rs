//! `bench_spmv` — SpMV throughput of the functional simulation, plus the modelled
//! cost of the same SpMV on the ReFloat accelerator.
//!
//! Two host-side operators run over the same 2-D Laplacian: plain FP64 CSR and the
//! quantized ReFloat operator (the per-iteration cost of functional simulation).
//! Alongside the wall-clock rates, the Eq. 2/3 cost model reports the *simulated*
//! cycles one SpMV costs on chip — bitwise reproducible, so trajectory diffs on
//! `model_cycles_per_spmv` reflect model changes, never host noise.  Refreshes the
//! tracked `BENCH_spmv.json` file.
//!
//! ```text
//! bench_spmv [--scale N] [--reps N] [--quick] [--bench-dir DIR]
//! ```

use std::time::Instant;

use refloat_bench::bench_emit::{default_bench_dir, emit};
use refloat_bench::json::has_flag;
use refloat_core::{ReFloatConfig, ReFloatMatrix};
use refloat_matgen::generators;
use refloat_solvers::LinearOperator;
use refloat_telemetry::BenchReport;
use reram_sim::AcceleratorConfig;

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Times `reps` applications of `op` and returns (nnz/s, checksum of the last `y`).
fn time_apply<O: LinearOperator>(
    op: &mut O,
    x: &[f64],
    y: &mut [f64],
    reps: usize,
    nnz: usize,
) -> (f64, f64) {
    // refloat-analysis: allow(wall-clock-in-deterministic-path) — this bench bin
    // measures *real host* SpMV throughput by design; its numbers feed
    // BENCH_spmv.json, not any deterministic digest.
    let start = Instant::now();
    for _ in 0..reps {
        op.apply(x, y);
    }
    // refloat-analysis: allow(wall-clock-in-deterministic-path)
    let total_s = start.elapsed().as_secs_f64().max(1e-9);
    ((nnz * reps) as f64 / total_s, y.iter().sum())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let scale = arg_value(&args, "--scale").unwrap_or(if quick { 128 } else { 256 }) as usize;
    let reps = arg_value(&args, "--reps").unwrap_or(if quick { 20 } else { 100 }) as usize;
    let format = ReFloatConfig::paper_default();

    let a = generators::laplacian_2d(scale, scale, 0.2).to_csr();
    let x: Vec<f64> = (0..a.ncols())
        .map(|i| (i as f64 * 0.001).cos() + 1.5)
        .collect();
    let mut y = vec![0.0; a.nrows()];
    println!(
        "bench_spmv: {} rows, {} nnz, {} reps, format {}",
        a.nrows(),
        a.nnz(),
        reps,
        format,
    );

    let mut csr = a.clone();
    let mut refloat = ReFloatMatrix::from_csr(&a, format);
    let blocks = refloat.num_blocks() as u64;

    // Warm-up one application each, then the timed repetitions.
    LinearOperator::apply(&mut csr, &x, &mut y);
    refloat.apply(&x, &mut y);
    let (csr_nnz_per_s, csr_checksum) = time_apply(&mut csr, &x, &mut y, reps, a.nnz());
    let (quantized_nnz_per_s, q_checksum) = time_apply(&mut refloat, &x, &mut y, reps, a.nnz());
    assert!(csr_checksum.is_finite() && q_checksum.is_finite());

    // The simulated accelerator's price for the same SpMV (Eq. 3 cycles per block
    // MVM, one round per cluster-capacity's worth of blocks).
    let chip = AcceleratorConfig::refloat(&format);
    let rounds = chip.rounds_per_spmv(blocks);
    let model_cycles_per_spmv = rounds * chip.cycles_per_block_mvm;
    let (compute_s, write_s) = chip.spmv_time_s(blocks);

    println!(
        "fp64 csr    {csr_nnz_per_s:>14.0} nnz/s (checksum {csr_checksum:.6e})\n\
         refloat     {quantized_nnz_per_s:>14.0} nnz/s (checksum {q_checksum:.6e})\n\
         chip model  {model_cycles_per_spmv} cycles/SpMV over {rounds} round(s), \
         {:.3e} s compute + {:.3e} s streaming",
        compute_s, write_s,
    );

    let bench = BenchReport::new("spmv", "bench_spmv")
        .config_num("scale", scale as f64)
        .config_num("reps", reps as f64)
        .config_num("rows", a.nrows() as f64)
        .config_num("nnz", a.nnz() as f64)
        .config_num("blocks", blocks as f64)
        .config_str("format", &format.to_string())
        .metric("csr_nnz_per_s", csr_nnz_per_s)
        .metric("quantized_nnz_per_s", quantized_nnz_per_s)
        .metric("model_cycles_per_spmv", model_cycles_per_spmv as f64)
        .metric("model_spmv_compute_s", compute_s)
        .metric("model_spmv_stream_s", write_s);
    emit(&bench, &default_bench_dir(&args));
}
