//! Experiment E10 (+E16) — Fig. 8: solver-time performance of GPU, Feinberg,
//! Feinberg-fc and ReFloat on the 12 Table V workloads, for CG and BiCGSTAB.
//!
//! Iteration counts come from actually running each solver under the corresponding
//! value representation (FP64 for GPU / Feinberg-fc, the Feinberg fixed-window format
//! for Feinberg, the ReFloat format for ReFloat); times come from the hardware models
//! in `reram-sim` (see DESIGN.md §4).  Speedups are normalized to the GPU as in Fig. 8.
//!
//! Flags: `--quick` (smaller matrices only, lower iteration caps), `--details`
//! (per-workload cluster/round breakdown, the §VI.B worked numbers), `--json <path>`.

use refloat_bench::experiment::{
    geometric_mean, solve_all_platforms, ExperimentConfig, PerformanceRow, PreparedWorkload,
};
use refloat_bench::json::{has_flag, json_path_from_args, write_json, PerformanceRecord};
use refloat_bench::table::{speedup, TextTable};
use refloat_matgen::Workload;
use reram_sim::{AcceleratorConfig, SolverKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let details = has_flag(&args, "--details");
    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };

    let workloads: Vec<Workload> = Workload::ALL
        .into_iter()
        .filter(|w| !quick || w.spec().nnz <= 600_000)
        .collect();

    let mut all_rows: Vec<PerformanceRow> = Vec::new();
    for solver in [SolverKind::Cg, SolverKind::BiCgStab] {
        let solver_name = match solver {
            SolverKind::Cg => "CG",
            SolverKind::BiCgStab => "BiCGSTAB",
        };
        println!("== Fig. 8 ({solver_name}): performance normalized to the GPU ==\n");
        let mut t = TextTable::new([
            "id",
            "matrix",
            "GPU",
            "Feinberg",
            "Feinberg-fc",
            "ReFloat",
            "ReFloat vs F-fc",
        ]);
        let mut refloat_speedups = Vec::new();
        let mut feinberg_fc_speedups = Vec::new();
        let mut refloat_over_fc = Vec::new();

        for &workload in &workloads {
            let prepared = PreparedWorkload::prepare(workload, &config);
            let (double, refloat, feinberg) = solve_all_platforms(&prepared, solver, &config);
            let row =
                PerformanceRow::build(&prepared, solver, &double, &refloat, &feinberg, &config);

            refloat_speedups.push(row.speedup_refloat());
            feinberg_fc_speedups.push(row.speedup_feinberg_fc());
            refloat_over_fc.push(row.speedup_refloat_over_feinberg_fc());

            t.row([
                row.id.to_string(),
                row.name.to_string(),
                "1.00x".to_string(),
                row.speedup_feinberg().map_or("NC".to_string(), speedup),
                speedup(row.speedup_feinberg_fc()),
                speedup(row.speedup_refloat()),
                speedup(row.speedup_refloat_over_feinberg_fc()),
            ]);

            if details {
                let hw_refloat = AcceleratorConfig::refloat(&config.refloat_config_for(workload));
                let hw_feinberg = AcceleratorConfig::feinberg();
                println!(
                    "  [{}] clusters required {} | available: ReFloat {} (rounds {}), Feinberg {} (rounds {})",
                    row.name,
                    row.clusters_required,
                    hw_refloat.clusters_available(),
                    hw_refloat.rounds_per_spmv(row.clusters_required),
                    hw_feinberg.clusters_available(),
                    hw_feinberg.rounds_per_spmv(row.clusters_required),
                );
            }
            all_rows.push(row);
        }
        println!("{}", t.render());
        println!(
            "geometric means ({solver_name}): Feinberg-fc {:.4}x, ReFloat {:.2}x vs GPU; ReFloat vs Feinberg-fc {:.2}x (range {:.2}x..{:.2}x)\n",
            geometric_mean(&feinberg_fc_speedups),
            geometric_mean(&refloat_speedups),
            geometric_mean(&refloat_over_fc),
            refloat_over_fc.iter().cloned().fold(f64::INFINITY, f64::min),
            refloat_over_fc.iter().cloned().fold(0.0, f64::max),
        );
    }

    println!(
        "paper reference: GMN speedups vs GPU of 12.59x (CG) / 13.34x (BiCGSTAB) for ReFloat and\n\
         0.84x / 1.04x for Feinberg-fc; ReFloat vs Feinberg [ISCA'18] headline range 5.02x-84.28x;\n\
         Feinberg does not converge on ids 353, 354, 2261, 355, 2259, 845."
    );

    if let Some(path) = json_path_from_args(&args) {
        let records: Vec<PerformanceRecord> =
            all_rows.iter().map(PerformanceRecord::from).collect();
        write_json(&path, &records).expect("write JSON results");
        println!("\nwrote {path}");
    }
}
