//! `fig_autotune` — cost-model-driven format auto-tuning vs the Table III fixed
//! formats: model cycles at equal convergence.
//!
//! Table VII of the paper hand-picks the ReFloat bits per workload; this scenario lets
//! `refloat_core::autotune` pick them.  For each matgen workload the driver runs,
//! through the `refloat-runtime` service:
//!
//! * an **autotuned** job (`SolvePlan` with `auto_format`) — submitted twice, so the
//!   second submission demonstrates the memoized decision (a format-decision-cache
//!   hit), and
//! * one **fixed-format** job per Table III classical format, re-based onto the same
//!   blocking `b` (Table III formats carry no blocking of their own).
//!
//! Convergence is judged honestly: the *true* relative residual `‖b − A·x‖₂/‖b‖₂`
//! against the exact fp64 matrix must reach the tolerance — solver-internal residuals
//! are measured against the quantized operator and can be arbitrarily optimistic.
//! The driver asserts that the autotuned pick **converges and is never slower in
//! model cycles than any fixed format that also converges**, on every workload.
//!
//! ```text
//! fig_autotune [--quick] [--tolerance T] [--json PATH]
//! ```

use serde::Serialize;

use refloat_bench::json::{has_flag, json_path_from_args, write_json};
use refloat_bench::table::TextTable;
use refloat_core::formats;
use refloat_core::ReFloatConfig;
use refloat_matgen::generators;
use refloat_runtime::{MatrixHandle, RuntimeConfig, SolvePlan, SolveRuntime};
use refloat_solvers::SolverConfig;
use refloat_sparse::CsrMatrix;

#[derive(Serialize)]
struct FixedRecord {
    format: String,
    converged: bool,
    true_relative_residual: f64,
    iterations: usize,
    chip_cycles: u64,
}

#[derive(Serialize)]
struct AutotuneRecord {
    workload: String,
    rows: usize,
    nnz: usize,
    kappa: f64,
    chosen_format: String,
    predicted_iterations: u64,
    achieved_iterations: u64,
    predicted_cycles_per_spmv: u64,
    true_relative_residual: f64,
    chip_cycles: u64,
    decision_cache_hit_on_resubmit: bool,
    fell_back: bool,
    best_converging_fixed: Option<String>,
    best_converging_fixed_cycles: Option<u64>,
    cycle_savings_vs_best_fixed: Option<f64>,
    fixed: Vec<FixedRecord>,
}

fn arg_f64(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let tolerance = arg_f64(&args, "--tolerance").unwrap_or(1e-6);
    let b = 4u32; // blocking shared by every job (16×16 blocks suit these sizes)

    // Small synthetic stand-ins for the Table V value-scale classes: unit-scale
    // stencil, tiny-entry FEM mass matrix, huge-entry shallow-water ring, and an
    // anisotropic grid-generation stencil.
    let workloads: Vec<(&str, CsrMatrix)> = if quick {
        vec![
            ("poisson", generators::laplacian_2d(16, 16, 0.3).to_csr()),
            (
                "mass-1e-12",
                generators::mass_matrix_3d(6, 6, 6, 1e-12, 0.8, 5).to_csr(),
            ),
            (
                "ring-1e12",
                generators::sphere_ring_3regular(1024, 1e12, 0.1894).to_csr(),
            ),
            (
                "aniso",
                generators::anisotropic_9pt(24, 24, 1.0, 0.05, 1e-3).to_csr(),
            ),
        ]
    } else {
        vec![
            ("poisson", generators::laplacian_2d(32, 32, 0.3).to_csr()),
            (
                "mass-1e-12",
                generators::mass_matrix_3d(8, 8, 8, 1e-12, 0.8, 5).to_csr(),
            ),
            (
                "ring-1e12",
                generators::sphere_ring_3regular(4096, 1e12, 0.1894).to_csr(),
            ),
            (
                "aniso",
                generators::anisotropic_9pt(48, 48, 1.0, 0.05, 1e-3).to_csr(),
            ),
        ]
    };
    println!(
        "fig_autotune: {} workloads, target true ‖b−Ax‖/‖b‖ ≤ {tolerance:.0e}, b = {b}\n",
        workloads.len()
    );

    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 64,
        ..RuntimeConfig::default()
    });
    let fixed_solver = SolverConfig::relative(tolerance)
        .with_max_iterations(1_500)
        .with_trace(false);

    let mut table = TextTable::new([
        "workload",
        "kappa",
        "chosen format",
        "iters (pred/ach)",
        "autotuned cycles",
        "best fixed (converging)",
        "fixed cycles",
        "savings",
    ]);
    let mut records = Vec::new();
    for (name, a) in &workloads {
        let handle = MatrixHandle::new(*name, a.clone());
        let rhs = vec![1.0; a.nrows()];
        let base = ReFloatConfig::new(b, 3, 8, 3, 8);

        // Two identical autotuned jobs (the second must hit the decision cache), then
        // every Table III format re-based onto the same blocking.
        let mut plans = vec![
            SolvePlan::new("auto", handle.clone(), base)
                .auto_format(tolerance)
                .build()
                .expect("valid plan"),
            SolvePlan::new("auto-again", handle.clone(), base)
                .auto_format(tolerance)
                .build()
                .expect("valid plan"),
        ];
        let fixed_formats: Vec<(String, ReFloatConfig)> = formats::table_iii()
            .iter()
            .map(|named| {
                let c = named.config;
                (
                    named.name.to_string(),
                    ReFloatConfig::new(b, c.e, c.f, c.ev, c.fv),
                )
            })
            .collect();
        plans.extend(fixed_formats.iter().map(|(_, format)| {
            SolvePlan::new("fixed", handle.clone(), *format)
                .solver_config(fixed_solver.clone())
                .build()
                .expect("valid plan")
        }));
        let outcome = runtime.run_batch(plans);

        let auto = &outcome.jobs[0];
        let auto_tele = auto
            .telemetry
            .autotune
            .as_ref()
            .expect("auto job telemetry");
        let again_tele = outcome.jobs[1]
            .telemetry
            .autotune
            .as_ref()
            .expect("auto job telemetry");
        let auto_rel = a.relative_residual(&rhs, &auto.result.x);
        let auto_cycles = auto.telemetry.simulated.cycles;

        let mut fixed_records = Vec::new();
        let mut best_fixed: Option<(String, u64)> = None;
        for ((fixed_name, _), job) in fixed_formats.iter().zip(&outcome.jobs[2..]) {
            let rel = a.relative_residual(&rhs, &job.result.x);
            let converged = rel <= tolerance;
            let cycles = job.telemetry.simulated.cycles;
            if converged && best_fixed.as_ref().is_none_or(|(_, c)| cycles < *c) {
                best_fixed = Some((fixed_name.clone(), cycles));
            }
            fixed_records.push(FixedRecord {
                format: fixed_name.clone(),
                converged,
                true_relative_residual: rel,
                iterations: job.result.iterations,
                chip_cycles: cycles,
            });
        }

        // The acceptance bar: the autotuned pick converges (without engaging the
        // refinement fallback), the resubmission hits the decision cache, and no
        // converging fixed format undercuts it in model cycles.
        assert!(
            auto_rel <= tolerance && !auto_tele.fell_back,
            "{name}: autotuned {} missed the target (true residual {auto_rel:.3e})",
            auto_tele.chosen_format
        );
        assert!(
            again_tele.decision_cached,
            "{name}: resubmitted job must hit the format-decision cache"
        );
        for record in &fixed_records {
            if record.converged {
                assert!(
                    auto_cycles <= record.chip_cycles,
                    "{name}: autotuned {} ({auto_cycles} cycles) slower than fixed {} \
                     ({} cycles) at equal convergence",
                    auto_tele.chosen_format,
                    record.format,
                    record.chip_cycles
                );
            }
        }
        assert!(
            best_fixed.is_some(),
            "{name}: at least the rebased FP64 format must converge"
        );

        let savings = best_fixed
            .as_ref()
            .map(|(_, cycles)| *cycles as f64 / auto_cycles as f64);
        table.row([
            name.to_string(),
            format!("{:.2e}", auto_tele.kappa),
            auto_tele.chosen_format.to_string(),
            format!(
                "{}/{}",
                auto_tele.predicted_iterations, auto_tele.achieved_iterations
            ),
            auto_cycles.to_string(),
            best_fixed
                .as_ref()
                .map_or("-".to_string(), |(n, _)| n.clone()),
            best_fixed
                .as_ref()
                .map_or("-".to_string(), |(_, c)| c.to_string()),
            savings.map_or("-".to_string(), |s| format!("{s:.1}x")),
        ]);
        records.push(AutotuneRecord {
            workload: name.to_string(),
            rows: a.nrows(),
            nnz: a.nnz(),
            kappa: auto_tele.kappa,
            chosen_format: auto_tele.chosen_format.to_string(),
            predicted_iterations: auto_tele.predicted_iterations,
            achieved_iterations: auto_tele.achieved_iterations,
            predicted_cycles_per_spmv: auto_tele.predicted_cycles_per_spmv,
            true_relative_residual: auto_rel,
            chip_cycles: auto_cycles,
            decision_cache_hit_on_resubmit: again_tele.decision_cached,
            fell_back: auto_tele.fell_back,
            best_converging_fixed: best_fixed.as_ref().map(|(n, _)| n.clone()),
            best_converging_fixed_cycles: best_fixed.as_ref().map(|(_, c)| *c),
            cycle_savings_vs_best_fixed: savings,
            fixed: fixed_records,
        });
    }

    println!("{}", table.render());
    if let Some(path) = json_path_from_args(&args) {
        write_json(&path, &records).expect("write --json output");
        println!("wrote {path}");
    }
    println!(
        "autotuned format matched or beat every converging Table III format on {}/{} workloads \
         (decision cache hit on every resubmission)",
        records.len(),
        records.len()
    );
}
