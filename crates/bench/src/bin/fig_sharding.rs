//! `fig_sharding` — sharded multi-chip scaling: makespan speedup vs. reduction
//! overhead for a matrix exceeding one chip's crossbar budget.
//!
//! The paper's evaluation streams oversized matrices through a single chip in multiple
//! re-programming rounds (§VI.B); the distributed in-memory-computing alternative
//! partitions the operator across chips.  This driver sweeps a block-row-sharded solve
//! over 1/2/4/8 chips through the `refloat-runtime` service and reports, per chip
//! count:
//!
//! * the simulated makespan speedup over the single-chip solve,
//! * the share of simulated time spent in the per-SpMV inter-chip gather, and
//! * a bitwise-identity check of the solution against the single-chip run — the
//!   determinism contract of the shard → chip → reduction pipeline.
//!
//! ```text
//! fig_sharding [--smoke] [--json PATH]
//! ```
//!
//! `--smoke` (the CI mode) shrinks the workload but keeps the matrix larger than one
//! chip's cluster budget, so the speedup and determinism assertions still bite.

use serde::Serialize;

use refloat_bench::bench_emit::{bench_dir_from_args, emit};
use refloat_bench::json::{has_flag, json_path_from_args, write_json};
use refloat_bench::table::TextTable;
use refloat_core::ReFloatConfig;
use refloat_runtime::{MatrixHandle, RuntimeConfig, SolvePlan, SolveRuntime};
use refloat_telemetry::BenchReport;
use reram_sim::AcceleratorConfig;

#[derive(Serialize)]
struct ShardingRecord {
    chips: usize,
    iterations: usize,
    simulated_total_s: f64,
    reduction_s: f64,
    reduction_share: f64,
    speedup_vs_single_chip: f64,
    bitwise_identical_to_single_chip: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = has_flag(&args, "--smoke") || has_flag(&args, "--quick");

    // A Poisson workload blocked at 2^4: block count scales with the grid.
    let n = if smoke { 48 } else { 96 };
    let format = ReFloatConfig::new(4, 3, 8, 3, 8);
    let a = refloat_matgen::generators::laplacian_2d(n, n, 0.3).to_csr();
    let handle = MatrixHandle::new(format!("poisson-{n}"), a);

    // Shrink the per-chip crossbar pool until the matrix overflows one chip — the
    // regime where the single-chip baseline pays streaming re-writes every SpMV.
    let chip_crossbars: u64 = 1 << 9;
    let mut small_chip = AcceleratorConfig::refloat(&format);
    small_chip.total_crossbars = chip_crossbars;
    let capacity = small_chip.clusters_available();

    let chip_counts = [1usize, 2, 4, 8];
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 64,
        chip_crossbars: Some(chip_crossbars),
        ..RuntimeConfig::default()
    });
    let plans: Vec<SolvePlan> = chip_counts
        .iter()
        .map(|&chips| {
            SolvePlan::new(format!("chips-{chips}"), handle.clone(), format)
                .sharding(chips)
                .build()
                .expect("valid plan")
        })
        .collect();
    let outcome = runtime.run_batch(plans);

    let blocks = {
        let encoded = refloat_core::ReFloatMatrix::from_csr(handle.csr(), format);
        encoded.num_blocks() as u64
    };
    println!(
        "fig_sharding: {} rows, {} non-empty blocks vs {} clusters/chip ({}x one chip)\n",
        handle.csr().nrows(),
        blocks,
        capacity,
        blocks.div_ceil(capacity.max(1)),
    );
    assert!(
        blocks > capacity,
        "workload must exceed one chip's crossbar budget ({blocks} blocks <= {capacity})"
    );

    let single = &outcome.jobs[0];
    let single_bits: Vec<u64> = single.result.x.iter().map(|v| v.to_bits()).collect();
    let single_total = single.telemetry.simulated.total_s;

    let mut table = TextTable::new([
        "chips",
        "iters",
        "simulated s",
        "reduction s",
        "reduction %",
        "speedup",
        "bitwise",
    ]);
    let mut records = Vec::new();
    for (job, &chips) in outcome.jobs.iter().zip(chip_counts.iter()) {
        let sim = &job.telemetry.simulated;
        let bits: Vec<u64> = job.result.x.iter().map(|v| v.to_bits()).collect();
        let identical = bits == single_bits;
        let speedup = single_total / sim.total_s;
        let share = if sim.total_s > 0.0 {
            sim.reduction_s / sim.total_s
        } else {
            0.0
        };
        table.row([
            chips.to_string(),
            job.result.iterations.to_string(),
            format!("{:.6}", sim.total_s),
            format!("{:.6}", sim.reduction_s),
            format!("{:.1}%", share * 100.0),
            format!("{speedup:.2}x"),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
        records.push(ShardingRecord {
            chips,
            iterations: job.result.iterations,
            simulated_total_s: sim.total_s,
            reduction_s: sim.reduction_s,
            reduction_share: share,
            speedup_vs_single_chip: speedup,
            bitwise_identical_to_single_chip: identical,
        });
    }
    println!("{}", table.render());
    println!("{}", outcome.report.render());

    if let Some(path) = json_path_from_args(&args) {
        write_json(&path, &records).expect("write --json output");
        println!("wrote {path}");
    }

    // The acceptance bar (also the CI smoke): bitwise determinism across every chip
    // count, and a real makespan win once the matrix no longer fits one chip.
    for record in &records {
        assert!(
            record.bitwise_identical_to_single_chip,
            "{}-chip solve is not bitwise identical to the single-chip solve",
            record.chips
        );
    }
    let at_4 = records
        .iter()
        .find(|r| r.chips == 4)
        .expect("4-chip record");
    assert!(
        at_4.speedup_vs_single_chip > 1.5,
        "4-chip makespan speedup should exceed 1.5x, got {:.2}x",
        at_4.speedup_vs_single_chip
    );
    println!(
        "sharding is bitwise-deterministic across 1/2/4/8 chips; 4-chip speedup {:.2}x",
        at_4.speedup_vs_single_chip
    );

    // Record the trajectory point only after the acceptance bar held.
    if let Some(dir) = bench_dir_from_args(&args) {
        let at_8 = records
            .iter()
            .find(|r| r.chips == 8)
            .expect("8-chip record");
        let bench = BenchReport::new("sharding", "fig_sharding")
            .config_num("rows", handle.csr().nrows() as f64)
            .config_num("blocks", blocks as f64)
            .config_num("chip_crossbars", chip_crossbars as f64)
            .config_str("mode", if smoke { "smoke" } else { "full" })
            .metric("speedup_4_chips", at_4.speedup_vs_single_chip)
            .metric("reduction_share_8_chips", at_8.reduction_share)
            .metric("speedup_8_chips", at_8.speedup_vs_single_chip);
        emit(&bench, &dir);
    }
}
