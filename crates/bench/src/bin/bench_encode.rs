//! `bench_encode` — ReFloat block-encoding throughput (the work a cache miss pays).
//!
//! Encodes a 2-D Laplacian into ReFloat blocks repeatedly and reports host-side
//! rows/s and nnz/s, refreshing the tracked `BENCH_encode.json` trajectory file.
//! Wall-clock numbers are host-dependent (see the clock contract in
//! `refloat-telemetry`); the trajectory tracks relative movement on CI's fixed
//! runner class, not absolute speed.
//!
//! ```text
//! bench_encode [--scale N] [--reps N] [--quick] [--bench-dir DIR]
//! ```

use std::time::Instant;

use refloat_bench::bench_emit::{default_bench_dir, emit};
use refloat_bench::json::has_flag;
use refloat_core::{ReFloatConfig, ReFloatMatrix};
use refloat_matgen::generators;
use refloat_telemetry::BenchReport;

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let scale = arg_value(&args, "--scale").unwrap_or(if quick { 96 } else { 192 }) as usize;
    let reps = arg_value(&args, "--reps").unwrap_or(if quick { 4 } else { 16 }) as usize;
    let format = ReFloatConfig::paper_default();

    let a = generators::laplacian_2d(scale, scale, 0.2).to_csr();
    println!(
        "bench_encode: {} rows, {} nnz, {} reps, format {}",
        a.nrows(),
        a.nnz(),
        reps,
        format,
    );

    // Warm-up encode (page in the matrix, stabilise allocator state), then the
    // timed repetitions.
    let warm = ReFloatMatrix::from_csr(&a, format);
    let blocks = warm.num_blocks();
    // refloat-analysis: allow(wall-clock-in-deterministic-path) — this bench bin
    // measures *real host* encode throughput by design; its numbers feed
    // BENCH_encode.json, not any deterministic digest.
    let start = Instant::now();
    for _ in 0..reps {
        let encoded = ReFloatMatrix::from_csr(&a, format);
        assert_eq!(encoded.num_blocks(), blocks, "encode must be deterministic");
    }
    // refloat-analysis: allow(wall-clock-in-deterministic-path)
    let total_s = start.elapsed().as_secs_f64().max(1e-9);

    let rows_per_s = (a.nrows() * reps) as f64 / total_s;
    let nnz_per_s = (a.nnz() * reps) as f64 / total_s;
    println!(
        "encoded {blocks} blocks/rep: {rows_per_s:.0} rows/s, {nnz_per_s:.0} nnz/s \
         ({total_s:.3} s total)"
    );

    let bench = BenchReport::new("encode", "bench_encode")
        .config_num("scale", scale as f64)
        .config_num("reps", reps as f64)
        .config_num("rows", a.nrows() as f64)
        .config_num("nnz", a.nnz() as f64)
        .config_num("blocks", blocks as f64)
        .config_str("format", &format.to_string())
        .metric("rows_per_s", rows_per_s)
        .metric("nnz_per_s", nnz_per_s)
        .metric("encode_s_total", total_s);
    emit(&bench, &default_bench_dir(&args));
}
