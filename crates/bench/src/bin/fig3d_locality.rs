//! Experiment E4 — Fig. 3(d): exponent value locality of the Table V workloads.
//!
//! For every workload, reports the exponent bits of the storage format (11 for FP64),
//! the bits needed to cover the whole matrix's exponent range with a single base, the
//! per-128×128-block locality (maximum and mean), and the e = 3 the ReFloat default
//! allocates.

use refloat_bench::json::{has_flag, json_path_from_args, write_json};
use refloat_bench::table::TextTable;
use refloat_core::locality::exponent_locality;
use refloat_matgen::Workload;
use refloat_sparse::BlockedMatrix;
use serde::Serialize;

#[derive(Serialize)]
struct LocalityRecord {
    id: u32,
    name: String,
    fp64_bits: u32,
    matrix_bits: u32,
    max_block_bits: u32,
    mean_block_bits: f64,
    refloat_bits: u32,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let seed = 2023;

    println!("== Fig. 3(d): exponent locality (whole matrix vs per-block) ==\n");
    let mut t = TextTable::new([
        "id",
        "matrix",
        "FP64 bits",
        "whole-matrix bits",
        "max block bits",
        "mean block bits",
        "ReFloat e",
    ]);
    let mut records = Vec::new();
    for workload in Workload::ALL {
        let spec = workload.spec();
        if quick && spec.nnz > 600_000 {
            continue;
        }
        let csr = workload.generate_csr(seed);
        let blocked = BlockedMatrix::from_csr(&csr, 7).expect("b = 7 is valid");
        let report = exponent_locality(&blocked);
        t.row([
            spec.id.to_string(),
            spec.name.to_string(),
            report.fp64_bits.to_string(),
            report.matrix_bits.to_string(),
            report.max_block_bits.to_string(),
            format!("{:.2}", report.mean_block_bits),
            "3".to_string(),
        ]);
        records.push(LocalityRecord {
            id: spec.id,
            name: spec.name.to_string(),
            fp64_bits: report.fp64_bits,
            matrix_bits: report.matrix_bits,
            max_block_bits: report.max_block_bits,
            mean_block_bits: report.mean_block_bits,
            refloat_bits: 3,
        });
    }
    println!("{}", t.render());
    println!(
        "paper reference: the FP64 format allocates 11 exponent bits, the per-block locality of\n\
         the 12 matrices is at most 7 bits, and ReFloat allocates 3."
    );
    if let Some(path) = json_path_from_args(&args) {
        write_json(&path, &records).expect("write JSON results");
        println!("\nwrote {path}");
    }
}
