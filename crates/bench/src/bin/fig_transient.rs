//! `fig_transient` — acceptance run of the transient-workload stack: one FEM
//! solve chain (time-stepped Poisson operator, drifting coefficients), two arms:
//!
//! 1. **Full re-encode** — every step submitted as an independent cold job: full
//!    quantization, full crossbar reprogramming, and a mixed-precision refined
//!    solve started from zero.
//! 2. **Incremental + warm start** — the same chain through a
//!    [`SolveSequence`](refloat_runtime::SolveSequence): each step diffs
//!    against the predecessor's cached
//!    encoding (only changed blocks re-quantize, reprogramming charged for the
//!    touched crossbar fraction) and warm-starts the refinement outer loop from
//!    the previous solution under an exact-residual guard.
//!
//! Both arms run mixed-precision iterative refinement to the same *true* fp64
//! relative-residual target [`TOLERANCE`] — equal convergence is asserted on
//! the exact residual of every step, not through the quantized operator's eyes
//! — and the sequence arm must cut the simulated model cycle (programming +
//! compute + host seconds) by at least [`MODEL_CYCLE_BOUND`]×.  The run also
//! spot-checks in-tree that an incremental re-encode is bitwise identical to
//! encoding the same step from scratch — the invariant that makes the whole
//! reuse stack numerically free.
//!
//! ```text
//! fig_transient [--quick] [--seed S] [--bench-dir DIR]
//! ```
//!
//! With `--bench-dir` the run also emits `BENCH_transient.json` (the `transient`
//! area of the tracked perf trajectory; see `bench_check`).

use std::sync::Arc;
use std::time::Instant;

use refloat_bench::args::parse_u64;
use refloat_bench::bench_emit::{bench_dir_from_args, emit};
use refloat_bench::json::has_flag;
use refloat_core::{assert_bitwise_identical, reencode_incremental, ReFloatConfig, ReFloatMatrix};
use refloat_matgen::fem::poisson_2d;
use refloat_matgen::{SolveStep, TransientChain, TransientSpec};
use refloat_runtime::{
    MatrixHandle, RefinementSpec, RuntimeConfig, RuntimeReport, SolvePlan, SolveRuntime,
};
use refloat_telemetry::BenchReport;

/// The sequence arm must cut the per-chain simulated model cycle by at least
/// this factor (the acceptance bound of the figure).
const MODEL_CYCLE_BOUND: f64 = 2.0;

/// Relative solver tolerance of both arms; every step of both arms must also
/// meet it in *true* fp64 residual.
const TOLERANCE: f64 = 1e-8;

fn format() -> ReFloatConfig {
    ReFloatConfig::new(4, 3, 8, 3, 8)
}

fn chain(quick: bool, seed: u64) -> Vec<SolveStep> {
    let (nx, ny, steps) = if quick { (12, 11, 16) } else { (22, 21, 60) };
    let base = poisson_2d(nx, ny, 0.2, seed);
    // The fine-time-stepping regime warm starts are built for: per-step
    // coefficient drift and source-phase advance both scale with the (small)
    // implicit time step, so consecutive solutions are close — while every raw
    // matrix still differs, so the cold arm re-encodes and reprograms each step.
    TransientChain::new(
        base,
        TransientSpec::default()
            .with_steps(steps)
            .with_seed(seed)
            .with_drift(1e-7, 0.25)
            .with_rhs_phase(1e-6)
            .with_mass(0.5, 0.0),
    )
    .collect()
}

fn plan(step: &SolveStep, arm: &str) -> SolvePlan {
    SolvePlan::new(
        "sim",
        MatrixHandle::new(format!("{arm}-{}", step.index), step.matrix.clone()),
        format(),
    )
    .rhs(Arc::new(step.rhs.clone()))
    .refinement(RefinementSpec::to_target(TOLERANCE))
    .build()
    .expect("valid plan")
}

/// Runs one arm over the chain, returning (solutions, wall seconds, report).
fn run_arm(steps: &[SolveStep], arm: &str, sequence: bool) -> (Vec<Vec<f64>>, f64, RuntimeReport) {
    let client = SolveRuntime::start(RuntimeConfig {
        workers: 1,
        // Big enough that a sequence step always finds its predecessor encoding.
        cache_capacity: 8,
        ..RuntimeConfig::default()
    });
    // refloat-analysis: allow(wall-clock-in-deterministic-path) — host wall time
    // feeds only the jobs/s speedup metric; all asserted quantities come from the
    // deterministic simulated-cost model.
    let start = Instant::now();
    let mut solutions = Vec::with_capacity(steps.len());
    if sequence {
        let mut seq = client.sequence();
        for step in steps {
            let outcome = seq
                .step(plan(step, arm))
                .expect("accepting")
                .completed()
                .expect("sequence steps complete");
            assert!(
                outcome.result.converged(),
                "{arm} step {} did not converge",
                step.index
            );
            solutions.push(outcome.result.x);
        }
    } else {
        for step in steps {
            let outcome = client
                .submit(plan(step, arm))
                .expect("accepting")
                .wait()
                .completed()
                .expect("cold steps complete");
            assert!(
                outcome.result.converged(),
                "{arm} step {} did not converge",
                step.index
            );
            solutions.push(outcome.result.x);
        }
    }
    // refloat-analysis: allow(wall-clock-in-deterministic-path) — see above.
    let wall_s = start.elapsed().as_secs_f64();
    (solutions, wall_s, client.shutdown())
}

/// Worst true fp64 relative residual over the whole chain.
fn worst_true_residual(steps: &[SolveStep], solutions: &[Vec<f64>]) -> f64 {
    steps
        .iter()
        .zip(solutions)
        .map(|(step, x)| step.matrix.relative_residual(&step.rhs, x))
        .fold(0.0, f64::max)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = match parse_u64(&args, "--seed") {
        Ok(seed) => seed.unwrap_or(2023),
        Err(usage) => {
            eprintln!("fig_transient: {usage}");
            std::process::exit(2);
        }
    };
    run(&args, seed);
}

fn run(args: &[String], seed: u64) {
    let quick = has_flag(args, "--quick");
    let steps = chain(quick, seed);
    let n = steps[0].matrix.nrows();
    println!(
        "fig_transient: {} steps of an n={n} FEM chain, seed {seed}",
        steps.len()
    );

    // In-tree bitwise-identity spot check, through the same core entry points the
    // worker uses: re-encoding step 1 against step 0's encoding must equal
    // encoding step 1 from scratch, field for field, bit for bit.
    let prev = ReFloatMatrix::from_csr(&steps[0].matrix, format());
    let inc = reencode_incremental(&prev, &steps[0].matrix, &steps[1].matrix);
    let scratch = ReFloatMatrix::from_csr(&steps[1].matrix, format());
    assert_bitwise_identical(&inc.matrix, &scratch);
    assert!(
        inc.stats.blocks_reused > 0,
        "a 2% windowed perturbation must leave blocks untouched"
    );
    println!(
        "transient: incremental encode is bitwise identical to scratch \
         ({} of {} blocks reused)",
        inc.stats.blocks_reused, inc.stats.blocks_total
    );

    let (full_x, full_wall_s, full) = run_arm(&steps, "full", false);
    let (seq_x, seq_wall_s, seq) = run_arm(&steps, "seq", true);

    // Equal convergence, in the strongest sense available: both arms run
    // mixed-precision refinement whose outer loop measures the *exact* fp64
    // residual, so every step of both arms must sit at or below [`TOLERANCE`]
    // in true relative residual — not merely "converged through the quantized
    // operator's eyes".
    let full_worst = worst_true_residual(&steps, &full_x);
    let seq_worst = worst_true_residual(&steps, &seq_x);
    assert!(
        full_worst <= TOLERANCE && seq_worst <= TOLERANCE,
        "an arm missed the true-residual target {TOLERANCE:.0e} \
         (full {full_worst:.2e}, seq {seq_worst:.2e})"
    );

    // The reuse accounting: every step after the first warm-starts and diffs.
    assert_eq!(seq.seq_steps, steps.len());
    assert_eq!(
        seq.warm_start_hits,
        steps.len() as u64 - 1,
        "every step after the first must warm-start"
    );
    let diffed = seq.blocks_reused + seq.blocks_reencoded;
    assert!(diffed > 0);
    let reused_fraction = seq.blocks_reused as f64 / diffed as f64;
    assert!(
        reused_fraction > 0.0,
        "the chain's windowed drift must leave reusable blocks"
    );

    // The headline: the sequence arm's simulated model cycle (programming +
    // compute + host seconds over the whole chain) vs paying full price per step.
    let reduction = full.simulated_total_s / seq.simulated_total_s;
    let jobs_per_s_speedup = full_wall_s / seq_wall_s;
    assert!(
        reduction >= MODEL_CYCLE_BOUND,
        "model-cycle reduction {reduction:.2}x below the {MODEL_CYCLE_BOUND:.1}x bound"
    );
    println!(
        "transient: incremental+warm-start beats full re-encode: model cycle \
         {reduction:.2}x lower ({:.3e}s vs {:.3e}s simulated), jobs/s {jobs_per_s_speedup:.2}x, \
         {:.0}% blocks reused, {} warm-start hits over {} steps",
        seq.simulated_total_s,
        full.simulated_total_s,
        100.0 * reused_fraction,
        seq.warm_start_hits,
        seq.seq_steps
    );
    println!(
        "transient: equal convergence: worst true residual full {full_worst:.2e} / \
         seq {seq_worst:.2e} (solver criterion {TOLERANCE:.0e} relative, both arms)"
    );

    if let Some(dir) = bench_dir_from_args(args) {
        let bench = BenchReport::new("transient", "fig_transient")
            .config_num("steps", steps.len() as f64)
            .config_num("n", n as f64)
            .config_num("seed", seed as f64)
            .config_str("mode", if quick { "quick" } else { "full" })
            .metric("model_cycle_reduction_x", reduction)
            .metric("jobs_per_s_speedup_x", jobs_per_s_speedup)
            .metric("blocks_reused_fraction", reused_fraction)
            .metric("warm_start_hits", seq.warm_start_hits as f64)
            .metric("steps", seq.seq_steps as f64);
        emit(&bench, &dir);
    }
}
