//! Experiment E6 — Table III: classical number formats expressed as ReFloat instances,
//! together with the hardware cost each would imply on the crossbar model.

use refloat_bench::table::TextTable;
use refloat_core::formats::table_iii;
use reram_sim::cost;

fn main() {
    println!("== Table III: formats represented by ReFloat(b, e, f) ==\n");
    let mut t = TextTable::new([
        "format",
        "ReFloat(b, e, f)",
        "bits/value",
        "crossbars (Eq.2)",
        "cycles (Eq.3, same vector format)",
    ]);
    for f in table_iii() {
        let c = f.config;
        t.row([
            f.name.to_string(),
            format!("ReFloat({}, {}, {})", c.b, c.e, c.f),
            f.bits_per_value.to_string(),
            cost::crossbar_count_eq2(c.e, c.f).to_string(),
            cost::cycle_count_eq3(c.e, c.f, c.ev, c.fv).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "the paper's default solver format is ReFloat(7, 3, 3)(3, 8): {} crossbars per cluster, {} cycles per block MVM",
        cost::crossbars_per_cluster(3, 3),
        cost::cycle_count_eq3(3, 3, 3, 8)
    );
}
