//! Experiment E9 — Table V: the workload inventory.
//!
//! Generates every synthetic analogue and reports its measured properties next to the
//! values the paper lists for the real SuiteSparse matrices.  With `--cond` it also
//! estimates the condition number by power / inverse-power iteration (slower).

use refloat_bench::json::{has_flag, json_path_from_args, write_json};
use refloat_bench::table::TextTable;
use refloat_matgen::Workload;
use refloat_solvers::eigs;
use refloat_sparse::MatrixStats;
use serde::Serialize;

#[derive(Serialize)]
struct WorkloadRecord {
    id: u32,
    name: String,
    paper_rows: usize,
    generated_rows: usize,
    paper_nnz: usize,
    generated_nnz: usize,
    paper_nnz_per_row: f64,
    generated_nnz_per_row: f64,
    paper_cond: f64,
    estimated_cond: Option<f64>,
    max_abs_value: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let estimate_cond = has_flag(&args, "--cond");
    let quick = has_flag(&args, "--quick");
    let seed = 2023;

    println!("== Table V: evaluation matrices (paper values vs synthetic analogues) ==\n");
    let mut t = TextTable::new([
        "id",
        "name",
        "rows (paper)",
        "rows (gen)",
        "nnz (paper)",
        "nnz (gen)",
        "nnz/row (paper)",
        "nnz/row (gen)",
        "kappa (paper)",
        "kappa (est)",
        "max |a_ij|",
    ]);
    let mut records = Vec::new();
    for workload in Workload::ALL {
        let spec = workload.spec();
        if quick && spec.nnz > 600_000 {
            continue;
        }
        let mut csr = workload.generate_csr(seed);
        let stats = MatrixStats::compute(&csr);
        let cond = if estimate_cond {
            Some(eigs::estimate_extremes(&mut csr, seed).condition_number())
        } else {
            None
        };
        t.row([
            spec.id.to_string(),
            spec.name.to_string(),
            spec.nrows.to_string(),
            stats.nrows.to_string(),
            spec.nnz.to_string(),
            stats.nnz.to_string(),
            format!("{:.1}", spec.nnz_per_row),
            format!("{:.1}", stats.nnz_per_row),
            format!("{:.2e}", spec.cond),
            cond.map_or("-".to_string(), |c| format!("{c:.2e}")),
            format!("{:.2e}", stats.max_abs),
        ]);
        records.push(WorkloadRecord {
            id: spec.id,
            name: spec.name.to_string(),
            paper_rows: spec.nrows,
            generated_rows: stats.nrows,
            paper_nnz: spec.nnz,
            generated_nnz: stats.nnz,
            paper_nnz_per_row: spec.nnz_per_row,
            generated_nnz_per_row: stats.nnz_per_row,
            paper_cond: spec.cond,
            estimated_cond: cond,
            max_abs_value: stats.max_abs,
        });
    }
    println!("{}", t.render());
    println!("(pass --cond to estimate condition numbers; --quick to skip the largest matrices)");

    if let Some(path) = json_path_from_args(&args) {
        write_json(&path, &records).expect("write JSON results");
        println!("\nwrote {path}");
    }
}
