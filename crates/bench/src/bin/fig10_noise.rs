//! Experiment E14 — Fig. 10: robustness of ReFloat to random telegraph noise (RTN) on
//! `crystm03` with the CG solver.
//!
//! Error correction is disabled; the stored (quantized) matrix values are perturbed by a
//! multiplicative deviation σ on every read.  The figure reports both the iteration
//! count and the speedup over the GPU as σ grows from 0.1% to 25%.

use refloat_bench::experiment::{ExperimentConfig, PreparedWorkload};
use refloat_bench::json::{has_flag, json_path_from_args, write_json};
use refloat_bench::table::{speedup, TextTable};
use refloat_core::ReFloatMatrix;
use refloat_matgen::Workload;
use refloat_solvers::{cg, SolverConfig};
use reram_sim::{AcceleratorConfig, GpuModel, NoisyReFloatOperator, SolverKind};
use serde::Serialize;

#[derive(Serialize)]
struct NoiseRecord {
    sigma_percent: f64,
    iterations: Option<usize>,
    speedup_vs_gpu: Option<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };

    let workload = Workload::Crystm03;
    let prepared = PreparedWorkload::prepare(workload, &config);
    let refloat_format = config.refloat_config_for(workload);
    let solver_cfg = SolverConfig::relative(config.tolerance)
        .with_max_iterations(if quick { 1_000 } else { 5_000 })
        .with_trace(false);

    // Reference: FP64 iteration count for the GPU time, noiseless ReFloat for σ = 0.
    let mut exact = prepared.csr.clone();
    let double = cg(&mut exact, &prepared.b, &solver_cfg);
    let gpu_s = GpuModel::v100().solver_time_s(
        prepared.csr.nnz() as u64,
        prepared.csr.nrows() as u64,
        double.iterations as u64,
        SolverKind::Cg,
    );
    let hw = AcceleratorConfig::refloat(&refloat_format);

    let sigmas = if quick {
        vec![0.0, 0.001, 0.01, 0.10, 0.25]
    } else {
        vec![
            0.0, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.10, 0.15, 0.20, 0.25,
        ]
    };

    println!(
        "== Fig. 10: ReFloat + RTN noise on {} (CG, {} rows, {} nnz) ==\n",
        workload.spec().name,
        prepared.csr.nrows(),
        prepared.csr.nnz()
    );
    let mut t = TextTable::new(["sigma", "#iterations", "speedup vs GPU"]);
    let mut records = Vec::new();
    for &sigma in &sigmas {
        let base = ReFloatMatrix::from_blocked(&prepared.blocked, refloat_format);
        let result = if sigma == 0.0 {
            let mut clean = base;
            cg(&mut clean, &prepared.b, &solver_cfg)
        } else {
            let mut noisy = NoisyReFloatOperator::new(base, sigma, 2023);
            cg(&mut noisy, &prepared.b, &solver_cfg)
        };
        let iterations = result.converged().then_some(result.iterations);
        let sp = iterations.map(|it| {
            gpu_s
                / hw.solver_time(prepared.num_blocks(), it as u64, SolverKind::Cg)
                    .solver_total_s
        });
        t.row([
            format!("{:.1}%", sigma * 100.0),
            result.iterations_label(),
            sp.map_or("NC".to_string(), speedup),
        ]);
        records.push(NoiseRecord {
            sigma_percent: sigma * 100.0,
            iterations,
            speedup_vs_gpu: sp,
        });
    }
    println!("{}", t.render());
    println!(
        "paper reference: within 10% noise the speedup degrades very little, and at 25% noise\n\
         ReFloat still maintains a 6.85x speedup over the GPU."
    );

    if let Some(path) = json_path_from_args(&args) {
        write_json(&path, &records).expect("write JSON results");
        println!("\nwrote {path}");
    }
}
