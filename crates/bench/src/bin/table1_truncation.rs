//! Experiment E5 — Table I: iterations to convergence for `crystm03` under plain
//! fraction / exponent truncation.
//!
//! The paper's point: truncating the fraction degrades convergence gracefully, while
//! truncating the exponent (the Feinberg approach) hits a wall — below a threshold the
//! solver simply stops converging because the fixed window no longer covers the vector
//! values.  `NC` marks non-convergence within the iteration budget.

use refloat_bench::json::{has_flag, json_path_from_args, write_json};
use refloat_bench::table::TextTable;
use refloat_core::truncate::{TruncatedOperator, TruncationConfig};
use refloat_matgen::{rhs, Workload};
use refloat_solvers::{cg, SolverConfig};
use serde::Serialize;

#[derive(Serialize)]
struct TruncationRecord {
    exponent_bits: u32,
    fraction_bits: u32,
    iterations: Option<usize>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");

    let workload = Workload::Crystm03;
    let a = workload.generate_csr(2023);
    let b = rhs::ones(a.nrows());
    let max_iterations = if quick { 2_000 } else { 10_000 };
    let cfg = SolverConfig::relative(1e-8)
        .with_max_iterations(max_iterations)
        .with_trace(false);

    println!(
        "== Table I: CG iterations on {} (synthetic analogue, {} rows, {} nnz) ==\n",
        workload.spec().name,
        a.nrows(),
        a.nnz()
    );

    let mut records = Vec::new();
    let mut run = |exp: u32, frac: u32| -> String {
        let mut op = TruncatedOperator::new(
            &a,
            TruncationConfig {
                exponent_bits: exp,
                fraction_bits: frac,
            },
        );
        let result = cg(&mut op, &b, &cfg);
        let iterations = result.converged().then_some(result.iterations);
        records.push(TruncationRecord {
            exponent_bits: exp,
            fraction_bits: frac,
            iterations,
        });
        result.iterations_label()
    };

    // --- Fraction sweep at full exponent (first two row blocks of Table I).
    let frac_sweep: Vec<u32> = if quick {
        vec![52, 30, 26, 22, 20, 8, 3]
    } else {
        vec![52, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 12, 8, 3]
    };
    let mut t = TextTable::new(["exp bits", "frac bits", "#iterations"]);
    for &frac in &frac_sweep {
        let label = run(11, frac);
        t.row(["11".to_string(), frac.to_string(), label]);
    }
    println!("{}", t.render());

    // --- Exponent sweep at full fraction (last row block of Table I).
    let mut t = TextTable::new(["exp bits", "frac bits", "#iterations"]);
    for &exp in &[11u32, 10, 9, 8, 7, 6, 5] {
        let label = run(exp, 52);
        t.row([exp.to_string(), "52".to_string(), label]);
    }
    println!("{}", t.render());

    println!(
        "paper reference (real crystm03): full double converges in 80 iterations; fraction\n\
         truncation is graceful down to ~21 bits; exponent truncation below 7 bits -> NC."
    );

    if let Some(path) = json_path_from_args(&args) {
        write_json(&path, &records).expect("write JSON results");
        println!("\nwrote {path}");
    }
}
