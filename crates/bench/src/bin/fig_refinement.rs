//! `fig_refinement` — mixed-precision iterative refinement: iterations-to-fp64-accuracy
//! across ReFloat formats.
//!
//! The paper stops at the solver's own convergence criterion on the *quantized*
//! operator; this scenario asks the stronger question of Le Gallo et al.'s
//! mixed-precision in-memory computing: how much low-precision work does it take to
//! reach **fp64-level accuracy** (`‖b − A·x‖/‖b‖ ≤ 1e−12` against the exact matrix)?
//!
//! For each format the driver runs, through the `refloat-runtime` service:
//!
//! * a **plain** job — CG on the quantized operator, which converges in its own eyes
//!   but stalls far from fp64 accuracy (the quantization floor), and
//! * a **refined** job — the outer fp64 defect-correction loop with the
//!   format-escalation ladder, which must reach `1e−12`.
//!
//! Output: per-format stall floor vs refined accuracy, outer/inner iteration counts,
//! escalations, and the simulated cost split (chip seconds vs host fp64 seconds).
//!
//! ```text
//! fig_refinement [--quick] [--target T] [--json PATH]
//! ```

use serde::Serialize;

use refloat_bench::json::{has_flag, json_path_from_args, write_json};
use refloat_bench::table::TextTable;
use refloat_core::ReFloatConfig;
use refloat_runtime::{MatrixHandle, RefinementSpec, RuntimeConfig, SolvePlan, SolveRuntime};

#[derive(Serialize)]
struct RefinementRecord {
    format: String,
    plain_iterations: usize,
    plain_true_relative_residual: f64,
    refined_outer: usize,
    refined_inner: usize,
    refined_escalations: usize,
    refined_final_level: String,
    refined_true_relative_residual: f64,
    refined_converged: bool,
    chip_cycles: u64,
    chip_s: f64,
    host_fp64_s: f64,
}

fn arg_f64(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let target = arg_f64(&args, "--target").unwrap_or(1e-12);
    let n = if quick { 16 } else { 48 };

    // An SPD Poisson workload: every plain low-precision solve below stalls orders of
    // magnitude above fp64 accuracy, which is exactly the gap refinement closes.
    let a = refloat_matgen::generators::laplacian_2d(n, n, 0.3).to_csr();
    let handle = MatrixHandle::new(format!("poisson-{n}"), a.clone());
    let b = vec![1.0; a.nrows()];
    println!(
        "fig_refinement: {} rows, {} nnz, target ‖b−Ax‖/‖b‖ ≤ {target:.0e}\n",
        a.nrows(),
        a.nnz()
    );

    // The formats under comparison: paper-default matrix bits, a wider-fraction
    // variant, and a near-half-precision rung that barely needs escalation.
    let formats: Vec<ReFloatConfig> = vec![
        ReFloatConfig::new(4, 3, 3, 3, 8),
        ReFloatConfig::new(4, 3, 8, 3, 8),
        ReFloatConfig::new(4, 4, 16, 4, 16),
    ];

    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 32,
        ..RuntimeConfig::default()
    });
    let plans: Vec<SolvePlan> = formats
        .iter()
        .flat_map(|&format| {
            [
                SolvePlan::new("plain", handle.clone(), format)
                    .build()
                    .expect("valid plan"),
                SolvePlan::new("refined", handle.clone(), format)
                    .refinement(RefinementSpec::to_target(target))
                    .build()
                    .expect("valid plan"),
            ]
        })
        .collect();
    let outcome = runtime.run_batch(plans);

    let mut table = TextTable::new([
        "format",
        "plain iters",
        "plain ‖r‖/‖b‖",
        "refined outer",
        "inner iters",
        "escalations",
        "final rung",
        "refined ‖r‖/‖b‖",
        "chip s",
        "host fp64 s",
    ]);
    let mut records = Vec::new();
    for (i, &format) in formats.iter().enumerate() {
        let plain = &outcome.jobs[2 * i];
        let refined = &outcome.jobs[2 * i + 1];
        let plain_rel = a.relative_residual(&b, &plain.result.x);
        let refined_rel = a.relative_residual(&b, &refined.result.x);
        let tele = refined
            .telemetry
            .refinement
            .as_ref()
            .expect("refined job telemetry");
        table.row([
            format.to_string(),
            plain.result.iterations.to_string(),
            format!("{plain_rel:.2e}"),
            tele.outer_iterations.to_string(),
            tele.inner_iterations.to_string(),
            tele.escalations.to_string(),
            tele.final_level.clone(),
            format!("{refined_rel:.2e}"),
            format!("{:.6}", refined.telemetry.simulated.total_s),
            format!("{:.6}", refined.telemetry.simulated.host_fp64_s),
        ]);
        records.push(RefinementRecord {
            format: format.to_string(),
            plain_iterations: plain.result.iterations,
            plain_true_relative_residual: plain_rel,
            refined_outer: tele.outer_iterations,
            refined_inner: tele.inner_iterations,
            refined_escalations: tele.escalations,
            refined_final_level: tele.final_level.clone(),
            refined_true_relative_residual: refined_rel,
            refined_converged: refined.result.converged(),
            chip_cycles: refined.telemetry.simulated.cycles,
            chip_s: refined.telemetry.simulated.total_s,
            host_fp64_s: refined.telemetry.simulated.host_fp64_s,
        });
    }
    println!("{}", table.render());
    println!("{}", outcome.report.render());

    if let Some(path) = json_path_from_args(&args) {
        write_json(&path, &records).expect("write --json output");
        println!("wrote {path}");
    }

    // The acceptance bar of the scenario (also the CI smoke): the base-format plain
    // solve stalls above 1e-6 while every refined solve reaches the fp64 target.
    assert!(
        records[0].plain_true_relative_residual > 1e-6,
        "plain {} solve should stall above 1e-6, got {:.3e}",
        records[0].format,
        records[0].plain_true_relative_residual
    );
    for record in &records {
        assert!(
            record.refined_converged && record.refined_true_relative_residual <= target,
            "{}: refined solve missed the fp64 target ({:.3e} > {target:.0e})",
            record.format,
            record.refined_true_relative_residual
        );
        assert!(
            record.host_fp64_s > 0.0,
            "{}: outer-loop fp64 work must be charged to the host",
            record.format
        );
    }
    println!("refinement reached {target:.0e} on every format (plain solves stalled)");
}
