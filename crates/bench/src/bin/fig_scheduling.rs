//! `fig_scheduling` — QoS scheduling vs FIFO under a mixed-priority trace.
//!
//! A backlog of batch-priority solves on a medium matrix is queued ahead of a burst
//! of interactive-priority solves on a small matrix, on the same worker pool.  Under
//! FIFO the interactive burst drains behind the whole backlog; under the priority
//! scheduler it overtakes the backlog the moment a worker frees up.  The binary
//! replays the identical trace under both policies and asserts the service-mode
//! acceptance bar:
//!
//! 1. interactive p99 queue wait improves **≥ 5×** over FIFO,
//! 2. at matched throughput (the same jobs complete; wall-clock within 2×),
//! 3. with a bitwise-identical result digest — scheduling reorders *when* jobs run,
//!    never *what* they compute.
//!
//! ```text
//! fig_scheduling [--quick] [--json PATH]
//! ```

use serde::Serialize;

use refloat_bench::bench_emit::{bench_dir_from_args, emit};
use refloat_bench::json::{has_flag, json_path_from_args, write_json};
use refloat_bench::table::TextTable;
use refloat_core::ReFloatConfig;
use refloat_matgen::generators;
use refloat_runtime::fingerprint::{fnv1a_u64, FNV_OFFSET};
use refloat_runtime::{
    MatrixHandle, Priority, RuntimeConfig, RuntimeReport, SchedulerPolicy, SolvePlan, SolveRuntime,
};
use refloat_solvers::SolverConfig;
use refloat_telemetry::BenchReport;

struct PolicyRun {
    report: RuntimeReport,
    digest: u64,
    interactive_p99_s: f64,
    interactive_p50_s: f64,
    batch_p99_s: f64,
}

#[derive(Serialize)]
struct SchedulingRecord {
    policy: String,
    jobs: usize,
    throughput_jobs_per_s: f64,
    interactive_p50_wait_ms: f64,
    interactive_p99_wait_ms: f64,
    batch_p99_wait_ms: f64,
    queue_depth_peak: usize,
    digest: String,
}

fn replay(
    policy: SchedulerPolicy,
    batch_plans: &[SolvePlan],
    interactive_plans: &[SolvePlan],
    warm_plans: &[SolvePlan],
) -> PolicyRun {
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        queue_capacity: batch_plans.len() + interactive_plans.len() + 8,
        cache_capacity: 16,
        scheduler: policy,
        ..RuntimeConfig::default()
    });
    // Warm both encodings so queue waits measure scheduling, not one-off encodes.
    runtime.run_batch(warm_plans.to_vec());

    let client = runtime.client();
    let tickets: Vec<_> = batch_plans
        .iter()
        .chain(interactive_plans.iter())
        .map(|plan| {
            client
                .submit(plan.clone())
                .expect("service admits while open")
        })
        .collect();
    let mut outcomes: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().completed().expect("nothing is cancelled"))
        .collect();
    let report = client.shutdown();

    outcomes.sort_by_key(|o| o.job_id);
    let mut digest = FNV_OFFSET;
    for outcome in &outcomes {
        digest = fnv1a_u64(digest, outcome.job_id);
        digest = fnv1a_u64(digest, outcome.result.iterations as u64);
        let checksum: f64 = outcome.result.x.iter().sum();
        digest = fnv1a_u64(digest, checksum.to_bits());
    }

    let lane = |priority: Priority| {
        report
            .per_priority
            .iter()
            .find(|lane| lane.priority == priority)
            .expect("both priority lanes saw traffic")
            .clone()
    };
    let interactive = lane(Priority::Interactive);
    let batch = lane(Priority::Batch);
    PolicyRun {
        digest,
        interactive_p99_s: interactive.queue_wait_p99_s,
        interactive_p50_s: interactive.queue_wait_p50_s,
        batch_p99_s: batch.queue_wait_p99_s,
        report,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let (batch_jobs, interactive_jobs) = if quick { (32, 8) } else { (64, 16) };

    // The backlog class: a medium stencil whose solves take real time.
    let backlog = MatrixHandle::new("poisson-40", generators::laplacian_2d(40, 40, 0.2).to_csr());
    let backlog_format = ReFloatConfig::new(5, 3, 8, 3, 8);
    // The latency-sensitive class: a small stencil that solves in microseconds.
    let small = MatrixHandle::new("poisson-8", generators::laplacian_2d(8, 8, 0.3).to_csr());
    let small_format = ReFloatConfig::new(4, 3, 8, 3, 8);
    let config = SolverConfig::relative(1e-8)
        .with_max_iterations(2_000)
        .with_trace(false);

    let batch_plans: Vec<SolvePlan> = (0..batch_jobs)
        .map(|i| {
            SolvePlan::new(format!("batch-{i}"), backlog.clone(), backlog_format)
                .solver_config(config.clone())
                .priority(Priority::Batch)
                .build()
                .expect("valid plan")
        })
        .collect();
    let interactive_plans: Vec<SolvePlan> = (0..interactive_jobs)
        .map(|i| {
            SolvePlan::new(format!("urgent-{i}"), small.clone(), small_format)
                .solver_config(config.clone())
                .priority(Priority::Interactive)
                .build()
                .expect("valid plan")
        })
        .collect();
    let warm_plans = vec![
        SolvePlan::new("warm-backlog", backlog.clone(), backlog_format)
            .solver_config(config.clone())
            .build()
            .expect("valid plan"),
        SolvePlan::new("warm-small", small.clone(), small_format)
            .solver_config(config.clone())
            .build()
            .expect("valid plan"),
    ];

    println!(
        "fig_scheduling: {batch_jobs} batch-priority jobs ({} rows) ahead of \
         {interactive_jobs} interactive jobs ({} rows), 2 workers\n",
        backlog.csr().nrows(),
        small.csr().nrows(),
    );

    let fifo = replay(
        SchedulerPolicy::fifo(),
        &batch_plans,
        &interactive_plans,
        &warm_plans,
    );
    let prio = replay(
        SchedulerPolicy::default(),
        &batch_plans,
        &interactive_plans,
        &warm_plans,
    );

    let mut table = TextTable::new([
        "policy",
        "jobs",
        "throughput",
        "interactive wait p50",
        "interactive wait p99",
        "batch wait p99",
        "peak depth",
    ]);
    for (name, run) in [("FIFO", &fifo), ("priority", &prio)] {
        table.row([
            name.to_string(),
            format!("{}", run.report.jobs),
            format!("{:.1} jobs/s", run.report.throughput_jobs_per_s),
            format!("{:.2} ms", run.interactive_p50_s * 1e3),
            format!("{:.2} ms", run.interactive_p99_s * 1e3),
            format!("{:.2} ms", run.batch_p99_s * 1e3),
            format!("{}", run.report.queue_depth_peak),
        ]);
    }
    println!("{}", table.render());
    println!("FIFO     digest: {:016x}", fifo.digest);
    println!("priority digest: {:016x}", prio.digest);

    let improvement = fifo.interactive_p99_s / prio.interactive_p99_s.max(1e-12);
    let throughput_ratio =
        prio.report.throughput_jobs_per_s / fifo.report.throughput_jobs_per_s.max(1e-12);
    println!(
        "\ninteractive p99 queue wait improved {improvement:.1}x over FIFO \
         (throughput ratio {throughput_ratio:.2})"
    );

    if let Some(path) = json_path_from_args(&args) {
        let records: Vec<SchedulingRecord> = [("fifo", &fifo), ("priority", &prio)]
            .into_iter()
            .map(|(name, run)| SchedulingRecord {
                policy: name.to_string(),
                jobs: run.report.jobs,
                throughput_jobs_per_s: run.report.throughput_jobs_per_s,
                interactive_p50_wait_ms: run.interactive_p50_s * 1e3,
                interactive_p99_wait_ms: run.interactive_p99_s * 1e3,
                batch_p99_wait_ms: run.batch_p99_s * 1e3,
                queue_depth_peak: run.report.queue_depth_peak,
                digest: format!("{:016x}", run.digest),
            })
            .collect();
        write_json(&path, &records).expect("write --json output");
        println!("wrote {path}");
    }

    // The acceptance bar (ISSUE 5): scheduling must never change numerics, must cut
    // interactive tail waits >= 5x, and must not buy that with throughput.
    assert_eq!(
        fifo.digest, prio.digest,
        "scheduling policy changed the numeric results"
    );
    assert_eq!(fifo.report.jobs, prio.report.jobs);
    assert_eq!(fifo.report.converged, prio.report.converged);
    assert!(
        improvement >= 5.0,
        "interactive p99 improved only {improvement:.1}x over FIFO \
         ({:.2} ms -> {:.2} ms); the acceptance bar is 5x",
        fifo.interactive_p99_s * 1e3,
        prio.interactive_p99_s * 1e3,
    );
    assert!(
        throughput_ratio >= 0.5,
        "priority scheduling cost too much throughput: ratio {throughput_ratio:.2}"
    );

    // Record the trajectory point only after the acceptance bar held.
    if let Some(dir) = bench_dir_from_args(&args) {
        let bench = BenchReport::new("scheduling", "fig_scheduling")
            .config_num("batch_jobs", batch_jobs as f64)
            .config_num("interactive_jobs", interactive_jobs as f64)
            .config_num("workers", 2.0)
            .config_str("mode", if quick { "quick" } else { "full" })
            .metric("interactive_p99_improvement_x", improvement)
            .metric("throughput_ratio", throughput_ratio)
            .metric("fifo_interactive_p99_wait_ms", fifo.interactive_p99_s * 1e3)
            .metric(
                "priority_interactive_p99_wait_ms",
                prio.interactive_p99_s * 1e3,
            );
        emit(&bench, &dir);
    }
}
