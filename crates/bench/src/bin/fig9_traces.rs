//! Experiment E11 — Fig. 9: convergence traces (residual vs iteration) of the FP64
//! ("GPU"/Feinberg-fc) and ReFloat solvers.
//!
//! The full per-iteration traces are written to CSV files (one per workload × solver)
//! under the directory given by `--out <dir>` (default `fig9_traces/`); stdout shows a
//! compact subsampled view.

use refloat_bench::experiment::{solve_all_platforms, ExperimentConfig, PreparedWorkload};
use refloat_bench::json::has_flag;
use refloat_bench::table::TextTable;
use refloat_matgen::Workload;
use reram_sim::SolverKind;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "fig9_traces".to_string());
    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let workloads: Vec<Workload> = Workload::ALL
        .into_iter()
        .filter(|w| !quick || w.spec().nnz <= 600_000)
        .collect();

    for solver in [SolverKind::Cg, SolverKind::BiCgStab] {
        let solver_name = match solver {
            SolverKind::Cg => "cg",
            SolverKind::BiCgStab => "bicgstab",
        };
        println!(
            "== Fig. 9 ({}): residual traces (subsampled) ==\n",
            solver_name.to_uppercase()
        );
        let mut t = TextTable::new([
            "id",
            "matrix",
            "double iters",
            "refloat iters",
            "double final res",
            "refloat final res",
        ]);
        for &workload in &workloads {
            let prepared = PreparedWorkload::prepare(workload, &config);
            let (double, refloat, _feinberg) = solve_all_platforms(&prepared, solver, &config);
            let spec = workload.spec();

            // Write the full traces as CSV: iteration, residual_double, residual_refloat.
            let path = format!("{out_dir}/{}_{}.csv", spec.name, solver_name);
            let mut file = std::fs::File::create(&path).expect("create trace file");
            writeln!(file, "iteration,residual_double,residual_refloat").unwrap();
            let len = double.result.trace.len().max(refloat.result.trace.len());
            for i in 0..len {
                let d = double
                    .result
                    .trace
                    .get(i)
                    .map_or(String::new(), |v| format!("{v:e}"));
                let r = refloat
                    .result
                    .trace
                    .get(i)
                    .map_or(String::new(), |v| format!("{v:e}"));
                writeln!(file, "{i},{d},{r}").unwrap();
            }

            t.row([
                spec.id.to_string(),
                spec.name.to_string(),
                double.result.iterations_label(),
                refloat.result.iterations_label(),
                format!("{:.2e}", double.result.final_residual),
                format!("{:.2e}", refloat.result.final_residual),
            ]);
        }
        println!("{}", t.render());
    }
    println!("full traces written to {out_dir}/<matrix>_<solver>.csv");
    println!(
        "paper reference: the refloat traces follow the double traces closely (occasional spikes)\n\
         and all twelve matrices reach the 1e-8 residual threshold under both formats."
    );
}
