//! `serve_traffic` — replays a synthetic multi-tenant trace through the
//! `refloat-runtime` solve service: mixed Table V-style workloads, mixed ReFloat
//! formats, skewed matrix popularity (a few hot matrices take most of the traffic),
//! CG and BiCGSTAB jobs interleaved across a pool of simulated accelerators.
//!
//! Prints the runtime report (throughput, p50/p99 latency, cache hit rate, simulated
//! chip time) plus a determinism digest over the numeric results: at a fixed `--seed`
//! the digest is identical across runs, worker counts, **and node counts**, because
//! every job's numerics are independent of scheduling and placement.
//!
//! ```text
//! serve_traffic [--jobs N] [--workers N] [--seed S] [--cache N] [--quick]
//!               [--json PATH] [--trace PATH] [--bench-dir DIR]
//!               [--nodes N] [--max-in-system N] [--quota N]
//!               [--arrivals poisson|bursty] [--rate JOBS_PER_S]
//!               [--tenants N] [--skew S]
//! ```
//!
//! * `--nodes N` serves the trace through an N-node [`ClusterRuntime`] (affinity
//!   router, per-node caches) instead of a single pool; `--max-in-system` /
//!   `--quota` add admission bounds (they require `--nodes`).
//! * `--arrivals` switches from the closed-loop replay to **open-loop** traffic:
//!   arrival times come from a seeded Poisson/bursty process
//!   (`refloat_matgen::traffic`) and are paced in real time, so the offered load —
//!   set with `--rate`, skewed over `--tenants` by `--skew` — does not adapt to
//!   the service.  Over-capacity submissions are *shed* (typed, counted), which is
//!   the regime the digest is not defined for (the completed set depends on
//!   timing); the digest is printed for closed-loop runs only.
//!
//! Bad flag combinations (`--rate` without `--arrivals`, `--nodes 0`, `--arrivals
//! never`) exit with a one-line usage error and status 2 — never a panic.
//!
//! `--trace PATH` attaches a span/event [`TraceSink`] to the runtime and writes the
//! JSONL export to `PATH` after the drain.  Every run also refreshes the tracked
//! `BENCH_runtime.json` perf-trajectory file (in `--bench-dir`, default the current
//! directory).

use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use refloat_bench::args::{
    parse_nonneg_f64, parse_positive_f64, parse_positive_usize, parse_u64, raw_value, require_with,
    UsageError,
};
use refloat_bench::bench_emit::{default_bench_dir, emit};
use refloat_bench::json::{flag_value, has_flag, json_path_from_args, write_json};
use refloat_core::ReFloatConfig;
use refloat_matgen::generators;
use refloat_matgen::traffic::{generate, ArrivalProcess, TrafficSpec};
use refloat_runtime::cluster::{AdmissionConfig, ClusterConfig, ClusterRuntime};
use refloat_runtime::fingerprint::fnv1a_u64;
use refloat_runtime::{
    CacheOutcomeKind, JobOutcome, MatrixHandle, RuntimeConfig, SolveClient, SolvePlan,
    SolveRuntime, SubmitError, TicketOutcome,
};
use refloat_solvers::SolverConfig;
use refloat_telemetry::{BenchReport, TraceSink};
use reram_sim::SolverKind;

/// One entry of the tenant-visible matrix catalog.
struct CatalogEntry {
    handle: MatrixHandle,
    format: ReFloatConfig,
    solver: SolverKind,
    /// Zipf-style popularity weight (rank-skewed).
    weight: f64,
}

/// Small synthetic analogues of the Table V workload classes (full-size Table V
/// matrices take minutes to generate; the trace wants mixed *shapes*, not size).
fn catalog(seed: u64, quick: bool) -> Vec<CatalogEntry> {
    let scale = if quick { 24 } else { 48 };
    let fmt = ReFloatConfig::new;
    let raw: Vec<(&str, refloat_sparse::CooMatrix, ReFloatConfig, SolverKind)> = vec![
        // Hot grid stencil (minsurfo-like), paper-default bits.
        (
            "minsurfo-s",
            generators::laplacian_2d(scale, scale, 0.1),
            fmt(7, 3, 3, 3, 8),
            SolverKind::Cg,
        ),
        // FEM mass matrix with ~1e-12 entries (crystm-like), f = 8 (see EXPERIMENTS E10).
        (
            "crystm-s",
            generators::mass_matrix_3d(scale / 4, scale / 4, scale / 4, 1e-12, 0.8, seed ^ 0x353),
            fmt(7, 3, 8, 3, 8),
            SolverKind::Cg,
        ),
        // Wathen FEM matrix: random per-element densities spread exponents well beyond
        // the e = 3 window at this small scale, so this tenant buys wider offsets and
        // the fv = 16 vector fraction (the Table VII wide-vector class).
        (
            "wathen-s",
            generators::wathen(scale / 3, scale / 3, seed ^ 0x1288),
            fmt(7, 5, 8, 5, 16),
            SolverKind::Cg,
        ),
        // Sphere ring with huge physical constants (shallow_water-like).
        (
            "shallow-s",
            generators::sphere_ring_3regular(64 * scale, 1e12, 0.18),
            fmt(7, 3, 3, 3, 8),
            SolverKind::Cg,
        ),
        // Anisotropic stencil (gridgena-like), smaller blocks.
        (
            "gridgena-s",
            generators::anisotropic_9pt(scale, scale, 1.0, 0.05, 1e-3),
            fmt(6, 3, 3, 3, 16),
            SolverKind::Cg,
        ),
        // Scattered graph, O(1) entries (thermomech_TC-like).
        (
            "thermomech-s",
            generators::random_spd_graph(60 * scale, 6, 1.4, 1.0, seed ^ 0x2257),
            fmt(7, 3, 3, 3, 8),
            SolverKind::Cg,
        ),
        // Scattered graph with tiny entries (thermomech_dM-like).
        (
            "thermomech-dm-s",
            generators::random_spd_graph(60 * scale, 6, 1.4, 1e-10, seed ^ 0x2259),
            fmt(6, 3, 3, 3, 8),
            SolverKind::Cg,
        ),
        // Non-symmetric convection–diffusion: the BiCGSTAB lane.  BiCGSTAB amplifies
        // saturation error on this operator, so this tenant runs near-double bits.
        (
            "convdiff-s",
            generators::convection_diffusion_2d(scale, scale, 8.0),
            fmt(7, 5, 16, 5, 16),
            SolverKind::BiCgStab,
        ),
    ];
    raw.into_iter()
        .enumerate()
        .map(|(rank, (name, coo, format, solver))| CatalogEntry {
            handle: MatrixHandle::new(name, coo.to_csr()),
            format,
            solver,
            // Zipf-like skew: rank 0 is ~9x more popular than rank 7.
            weight: 1.0 / (rank as f64 + 1.0),
        })
        .collect()
}

/// Draws a catalog index with probability proportional to the entries' weights.
fn pick(weights: &[f64], rng: &mut ChaCha8Rng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut ticket = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        ticket -= w;
        if ticket <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[derive(Serialize)]
struct TraceRecord {
    job_id: u64,
    tenant: String,
    matrix: String,
    solver: String,
    cache: String,
    node: u64,
    iterations: u64,
    converged: bool,
    queue_wait_ms: f64,
    encode_ms: f64,
    solve_ms: f64,
    latency_ms: f64,
    simulated_cycles: u64,
    simulated_s: f64,
}

/// Everything the flags resolved to.
struct Options {
    quick: bool,
    jobs: usize,
    workers: usize,
    seed: u64,
    cache_capacity: usize,
    /// `Some(n)` = serve through an n-node cluster.
    nodes: Option<usize>,
    admission: AdmissionConfig,
    /// `Some` = open-loop traffic instead of the closed-loop replay.
    open_loop: Option<OpenLoopOptions>,
}

struct OpenLoopOptions {
    arrivals: ArrivalProcess,
    tenants: usize,
    skew: f64,
}

fn parse_options(args: &[String]) -> Result<Options, UsageError> {
    let quick = has_flag(args, "--quick");
    let jobs = parse_u64(args, "--jobs")?.unwrap_or(240) as usize;
    let workers = parse_positive_usize(args, "--workers")?.unwrap_or(4);
    let seed = parse_u64(args, "--seed")?.unwrap_or(2023);
    let cache_capacity = parse_positive_usize(args, "--cache")?.unwrap_or(32);
    let nodes = parse_positive_usize(args, "--nodes")?;

    // Admission bounds only exist at the cluster layer.
    require_with(args, "--max-in-system", nodes.is_some(), "--nodes")?;
    require_with(args, "--quota", nodes.is_some(), "--nodes")?;
    let admission = AdmissionConfig {
        max_in_system: parse_positive_usize(args, "--max-in-system")?,
        per_tenant_quota: parse_positive_usize(args, "--quota")?,
    };

    // Traffic-shape flags only exist in open-loop mode.
    let arrivals_kind = raw_value(args, "--arrivals")?;
    let open = arrivals_kind.is_some();
    require_with(args, "--rate", open, "--arrivals")?;
    require_with(args, "--tenants", open, "--arrivals")?;
    require_with(args, "--skew", open, "--arrivals")?;
    let open_loop = match arrivals_kind.as_deref() {
        None => None,
        Some(kind) => {
            let rate_per_s = parse_positive_f64(args, "--rate")?.unwrap_or(25.0);
            let arrivals = match kind {
                "poisson" => ArrivalProcess::Poisson { rate_per_s },
                "bursty" => ArrivalProcess::Bursty {
                    rate_per_s,
                    mean_burst: 6.0,
                    within_burst_gap_s: 1e-4,
                },
                other => {
                    return Err(UsageError::UnknownValue {
                        flag: "--arrivals".to_string(),
                        value: other.to_string(),
                        allowed: "poisson, bursty",
                    })
                }
            };
            Some(OpenLoopOptions {
                arrivals,
                tenants: parse_positive_usize(args, "--tenants")?.unwrap_or(16),
                skew: parse_nonneg_f64(args, "--skew")?.unwrap_or(1.1),
            })
        }
    };
    Ok(Options {
        quick,
        jobs,
        workers,
        seed,
        cache_capacity,
        nodes,
        admission,
        open_loop,
    })
}

/// Builds one trace plan (closed- and open-loop share the construction, so the
/// numerics of job `i` on catalog entry `which` are mode-independent).
fn build_plan(tenant: String, entry: &CatalogEntry, solver_config: &SolverConfig) -> SolvePlan {
    SolvePlan::new(tenant, entry.handle.clone(), entry.format)
        .solver(entry.solver)
        .solver_config(solver_config.clone())
        .build()
        .expect("valid trace plan")
}

/// What a serving pass hands back to the shared reporting tail.
struct ServeResult {
    jobs: Vec<JobOutcome>,
    report: refloat_runtime::RuntimeReport,
    shed: u64,
    /// Closed-loop runs compute the determinism digest; open-loop runs don't (the
    /// completed set depends on real-time shedding).
    digest: Option<u64>,
}

/// Closed-loop replay through an already-running client (single-node semantics
/// come from `SolveRuntime::run_with`; this path serves the `--nodes` cluster).
fn serve_closed_loop_cluster(
    client: SolveClient,
    picks: &[usize],
    catalog: &[CatalogEntry],
    solver_config: &SolverConfig,
) -> ServeResult {
    let tickets: Vec<_> = picks
        .iter()
        .enumerate()
        .map(|(i, &which)| {
            client
                .submit(build_plan(
                    format!("tenant-{}", i % 16),
                    &catalog[which],
                    solver_config,
                ))
                .expect("an unbounded cluster admits the whole closed-loop trace")
        })
        .collect();
    let jobs: Vec<JobOutcome> = tickets
        .into_iter()
        .filter_map(|t| match t.wait() {
            TicketOutcome::Completed(outcome) => Some(*outcome),
            TicketOutcome::Cancelled => None,
            TicketOutcome::Failed(message) => panic!("trace job panicked: {message}"),
            // No fault policy and no kills in this binary: a degraded job would
            // mean the clean path regressed, and it must never leave the digest.
            TicketOutcome::Degraded(job) => panic!(
                "trace job {} degraded ({:?}) on a fault-free run",
                job.job_id, job.reason
            ),
        })
        .collect();
    let report = client.shutdown();
    ServeResult {
        digest: Some(digest_of(&jobs)),
        jobs,
        report,
        shed: 0,
    }
}

/// Open-loop traffic: arrivals are paced by the trace, not by completions, so the
/// service sees the configured offered load whether or not it keeps up.
fn serve_open_loop(
    client: SolveClient,
    open: &OpenLoopOptions,
    options: &Options,
    catalog: &[CatalogEntry],
    solver_config: &SolverConfig,
) -> ServeResult {
    let weights: Vec<f64> = catalog.iter().map(|e| e.weight).collect();
    let spec = TrafficSpec {
        jobs: options.jobs,
        tenants: open.tenants,
        tenant_skew: open.skew,
        arrivals: open.arrivals,
        seed: options.seed,
    };
    let trace = generate(&spec, &weights);
    println!(
        "open-loop: {} arrivals over {:.2}s offered ({:.1} jobs/s, {} tenants, skew {})",
        trace.len(),
        trace.last().map(|a| a.at_s).unwrap_or(0.0),
        open.arrivals.rate_per_s(),
        open.tenants,
        open.skew,
    );
    // refloat-analysis: allow(wall-clock-in-deterministic-path) — open-loop pacing
    // is *defined* by host time: arrivals must land at their trace offsets in real
    // time whether or not the service keeps up.  The digest is not computed here.
    let started = std::time::Instant::now();
    let mut tickets = Vec::with_capacity(trace.len());
    let mut shed = 0u64;
    for arrival in &trace {
        // Pace to the trace: sleep until this arrival's offset has elapsed.
        // refloat-analysis: allow(wall-clock-in-deterministic-path) — see above.
        let elapsed = started.elapsed().as_secs_f64();
        if arrival.at_s > elapsed {
            std::thread::sleep(std::time::Duration::from_secs_f64(arrival.at_s - elapsed));
        }
        let plan = build_plan(
            format!("tenant-{}", arrival.tenant),
            &catalog[arrival.item],
            solver_config,
        );
        match client.submit(plan) {
            Ok(ticket) => tickets.push(ticket),
            Err(SubmitError::Overloaded { .. }) | Err(SubmitError::QuotaExceeded { .. }) => {
                shed += 1;
            }
            Err(SubmitError::Closed(_)) => panic!("client closed mid-trace"),
        }
    }
    let jobs: Vec<JobOutcome> = tickets
        .into_iter()
        .filter_map(|t| match t.wait() {
            TicketOutcome::Completed(outcome) => Some(*outcome),
            TicketOutcome::Cancelled => None,
            TicketOutcome::Failed(message) => panic!("trace job panicked: {message}"),
            // No fault policy and no kills in this binary: a degraded job would
            // mean the clean path regressed, and it must never leave the digest.
            TicketOutcome::Degraded(job) => panic!(
                "trace job {} degraded ({:?}) on a fault-free run",
                job.job_id, job.reason
            ),
        })
        .collect();
    let report = client.shutdown();
    ServeResult {
        jobs,
        report,
        shed,
        digest: None,
    }
}

/// The determinism digest: numeric results only (iterations + solution
/// checksums), independent of scheduling, wall-clock, worker and node counts.
fn digest_of(jobs: &[JobOutcome]) -> u64 {
    let mut digest = refloat_runtime::fingerprint::FNV_OFFSET;
    for job in jobs {
        digest = fnv1a_u64(digest, job.job_id);
        digest = fnv1a_u64(digest, job.result.iterations as u64);
        let checksum: f64 = job.result.x.iter().sum();
        digest = fnv1a_u64(digest, checksum.to_bits());
    }
    digest
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(options) => options,
        Err(usage) => {
            eprintln!("serve_traffic: {usage}");
            std::process::exit(2);
        }
    };
    run(&args, &options);
}

fn run(args: &[String], options: &Options) {
    let (quick, jobs, workers) = (options.quick, options.jobs, options.workers);
    let (seed, cache_capacity, nodes) = (options.seed, options.cache_capacity, options.nodes);
    println!("serve_traffic: {jobs} jobs, {workers} workers, seed {seed}, cache {cache_capacity}");
    if let Some(n) = nodes {
        println!(
            "cluster: {n} nodes, admission max_in_system={:?} quota={:?}",
            options.admission.max_in_system, options.admission.per_tenant_quota
        );
    }
    let catalog = catalog(seed, quick);
    let weights: Vec<f64> = catalog.iter().map(|e| e.weight).collect();
    println!("catalog: {} matrices", catalog.len());
    for entry in &catalog {
        println!(
            "  {:<16} {:>7} rows {:>9} nnz  {}  {:?}",
            entry.handle.name(),
            entry.handle.csr().nrows(),
            entry.handle.csr().nnz(),
            entry.format,
            entry.solver,
        );
    }

    // Build the trace up front (deterministic in the seed), then stream it through the
    // runtime with backpressure.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let picks: Vec<usize> = (0..jobs).map(|_| pick(&weights, &mut rng)).collect();
    let solver_config = SolverConfig::relative(1e-8)
        .with_max_iterations(if quick { 2_000 } else { 5_000 })
        .with_trace(false);

    // A wall-clock trace sink when asked for; span timestamps are host-dependent but
    // the event *stream* (kinds, details, per-job order) is part of the determinism
    // contract checked below.
    let trace_path = flag_value(args, "--trace");
    let trace_sink = trace_path.as_ref().map(|_| Arc::new(TraceSink::wall()));

    let node_config = RuntimeConfig {
        workers,
        queue_capacity: 2 * workers.max(1),
        cache_capacity,
        trace: trace_sink.clone(),
        ..RuntimeConfig::default()
    };
    let outcome = match (nodes, &options.open_loop) {
        (None, None) => {
            // The original closed-loop single-pool replay, untouched: this path's
            // digest is the cross-PR determinism anchor.
            let runtime = SolveRuntime::new(node_config);
            let result = runtime.run_with(|submitter| {
                for (i, &which) in picks.iter().enumerate() {
                    submitter
                        .submit(build_plan(
                            format!("tenant-{}", i % 16),
                            &catalog[which],
                            &solver_config,
                        ))
                        .expect("the batch client admits until the producer returns");
                }
            });
            ServeResult {
                digest: Some(digest_of(&result.jobs)),
                jobs: result.jobs,
                report: result.report,
                shed: 0,
            }
        }
        (maybe_nodes, open_loop) => {
            let client = match maybe_nodes {
                Some(n) => ClusterRuntime::start(ClusterConfig {
                    nodes: n,
                    node: node_config,
                    chips_per_node: Vec::new(),
                    admission: options.admission,
                    router: Default::default(),
                }),
                None => SolveRuntime::start(node_config),
            };
            match open_loop {
                Some(open) => serve_open_loop(client, open, options, &catalog, &solver_config),
                None => serve_closed_loop_cluster(client, &picks, &catalog, &solver_config),
            }
        }
    };

    // Per-matrix traffic summary (closed-loop replays only; open-loop prints its
    // own offered-load line above and the report's tenant totals below).
    if options.open_loop.is_none() {
        let mut counts = vec![0usize; catalog.len()];
        for &which in &picks {
            counts[which] += 1;
        }
        println!("\ntraffic (skewed popularity):");
        for (entry, count) in catalog.iter().zip(counts.iter()) {
            println!("  {:<16} {:>5} jobs", entry.handle.name(), count);
        }
    }

    println!("\n{}", outcome.report.render());
    if outcome.shed > 0 {
        println!(
            "shed {} of {} offered jobs (typed rejections; completed {})",
            outcome.shed,
            jobs,
            outcome.jobs.len()
        );
    }

    if let Some(digest) = outcome.digest {
        println!("determinism digest: {digest:016x}");
    }

    if let (Some(path), Some(sink)) = (&trace_path, &trace_sink) {
        std::fs::write(path, sink.export_jsonl()).expect("write --trace output");
        println!("wrote {path} ({} trace events)", sink.len());
    }

    // Refresh the tracked perf-trajectory point for the runtime area.
    let report = &outcome.report;
    let bench = BenchReport::new("runtime", "serve_traffic")
        .config_num("jobs", jobs as f64)
        .config_num("workers", workers as f64)
        .config_num("nodes", nodes.unwrap_or(1) as f64)
        .config_num("seed", seed as f64)
        .config_num("cache", cache_capacity as f64)
        .config_str("mode", if quick { "quick" } else { "full" })
        .config_str(
            "loop",
            if options.open_loop.is_some() {
                "open"
            } else {
                "closed"
            },
        )
        .config_str("traced", if trace_sink.is_some() { "yes" } else { "no" })
        .metric("jobs_per_s", report.throughput_jobs_per_s)
        .metric("queue_wait_p50_ms", report.queue_wait_p50_s * 1e3)
        .metric("queue_wait_p99_ms", report.queue_wait_p99_s * 1e3)
        .metric("latency_p50_ms", report.latency_p50_s * 1e3)
        .metric("latency_p99_ms", report.latency_p99_s * 1e3)
        .metric("cache_hit_rate", report.hit_rate())
        .metric("model_cycles", report.simulated_cycles as f64)
        .metric("cancelled_jobs", report.cancelled_jobs as f64)
        .metric("unattributed_jobs", report.unattributed_jobs as f64);
    emit(&bench, &default_bench_dir(args));

    if let Some(path) = json_path_from_args(args) {
        let records: Vec<TraceRecord> = outcome
            .jobs
            .iter()
            .map(|job| TraceRecord {
                job_id: job.job_id,
                tenant: job.telemetry.tenant.clone(),
                matrix: job.telemetry.matrix.clone(),
                solver: match job.telemetry.solver {
                    SolverKind::Cg => "CG".to_string(),
                    SolverKind::BiCgStab => "BiCGSTAB".to_string(),
                },
                cache: match job.telemetry.cache {
                    CacheOutcomeKind::Hit => "hit".to_string(),
                    CacheOutcomeKind::Miss => "miss".to_string(),
                    CacheOutcomeKind::Coalesced => "coalesced".to_string(),
                },
                node: job.telemetry.node as u64,
                iterations: job.telemetry.iterations as u64,
                converged: job.telemetry.converged,
                queue_wait_ms: job.telemetry.queue_wait_s * 1e3,
                encode_ms: job.telemetry.encode_s * 1e3,
                solve_ms: job.telemetry.solve_s * 1e3,
                latency_ms: job.telemetry.latency_s * 1e3,
                simulated_cycles: job.telemetry.simulated.cycles,
                simulated_s: job.telemetry.simulated.total_s,
            })
            .collect();
        write_json(&path, &records).expect("write --json output");
        println!("wrote {path}");
    }

    // The acceptance bar for the skewed trace; fail loudly if the service regresses.
    // Only meaningful when there is traffic and the cache can hold the working set —
    // deliberately starving the cache (--cache 1) is a legitimate experiment, not a
    // regression.  Multi-node runs split the working set over per-node caches, so
    // the bar applies to the single-pool paths where it was calibrated.
    let hit_rate = outcome.report.hit_rate();
    if !outcome.jobs.is_empty() && cache_capacity >= catalog.len() && nodes.unwrap_or(1) == 1 {
        assert!(
            hit_rate > 0.5,
            "skewed trace should be cache-friendly: hit rate {:.1}% <= 50%",
            hit_rate * 100.0
        );
    }
    let unconverged = outcome
        .jobs
        .iter()
        .filter(|j| !j.result.converged())
        .count();
    assert_eq!(unconverged, 0, "{unconverged} jobs failed to converge");
}
