//! `serve_traffic` — replays a synthetic multi-tenant trace through the
//! `refloat-runtime` solve service: mixed Table V-style workloads, mixed ReFloat
//! formats, skewed matrix popularity (a few hot matrices take most of the traffic),
//! CG and BiCGSTAB jobs interleaved across a pool of simulated accelerators.
//!
//! Prints the runtime report (throughput, p50/p99 latency, cache hit rate, simulated
//! chip time) plus a determinism digest over the numeric results: at a fixed `--seed`
//! the digest is identical across runs and worker counts, because every job's numerics
//! are independent of scheduling.
//!
//! ```text
//! serve_traffic [--jobs N] [--workers N] [--seed S] [--cache N] [--quick]
//!               [--json PATH] [--trace PATH] [--bench-dir DIR]
//! ```
//!
//! `--trace PATH` attaches a span/event [`TraceSink`] to the runtime and writes the
//! JSONL export to `PATH` after the drain.  Every run also refreshes the tracked
//! `BENCH_runtime.json` perf-trajectory file (in `--bench-dir`, default the current
//! directory).

use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use refloat_bench::bench_emit::{default_bench_dir, emit};
use refloat_bench::json::{flag_value, has_flag, json_path_from_args, write_json};
use refloat_core::ReFloatConfig;
use refloat_matgen::generators;
use refloat_runtime::fingerprint::fnv1a_u64;
use refloat_runtime::{CacheOutcomeKind, MatrixHandle, RuntimeConfig, SolvePlan, SolveRuntime};
use refloat_solvers::SolverConfig;
use refloat_telemetry::{BenchReport, TraceSink};
use reram_sim::SolverKind;

/// One entry of the tenant-visible matrix catalog.
struct CatalogEntry {
    handle: MatrixHandle,
    format: ReFloatConfig,
    solver: SolverKind,
    /// Zipf-style popularity weight (rank-skewed).
    weight: f64,
}

/// Small synthetic analogues of the Table V workload classes (full-size Table V
/// matrices take minutes to generate; the trace wants mixed *shapes*, not size).
fn catalog(seed: u64, quick: bool) -> Vec<CatalogEntry> {
    let scale = if quick { 24 } else { 48 };
    let fmt = ReFloatConfig::new;
    let raw: Vec<(&str, refloat_sparse::CooMatrix, ReFloatConfig, SolverKind)> = vec![
        // Hot grid stencil (minsurfo-like), paper-default bits.
        (
            "minsurfo-s",
            generators::laplacian_2d(scale, scale, 0.1),
            fmt(7, 3, 3, 3, 8),
            SolverKind::Cg,
        ),
        // FEM mass matrix with ~1e-12 entries (crystm-like), f = 8 (see EXPERIMENTS E10).
        (
            "crystm-s",
            generators::mass_matrix_3d(scale / 4, scale / 4, scale / 4, 1e-12, 0.8, seed ^ 0x353),
            fmt(7, 3, 8, 3, 8),
            SolverKind::Cg,
        ),
        // Wathen FEM matrix: random per-element densities spread exponents well beyond
        // the e = 3 window at this small scale, so this tenant buys wider offsets and
        // the fv = 16 vector fraction (the Table VII wide-vector class).
        (
            "wathen-s",
            generators::wathen(scale / 3, scale / 3, seed ^ 0x1288),
            fmt(7, 5, 8, 5, 16),
            SolverKind::Cg,
        ),
        // Sphere ring with huge physical constants (shallow_water-like).
        (
            "shallow-s",
            generators::sphere_ring_3regular(64 * scale, 1e12, 0.18),
            fmt(7, 3, 3, 3, 8),
            SolverKind::Cg,
        ),
        // Anisotropic stencil (gridgena-like), smaller blocks.
        (
            "gridgena-s",
            generators::anisotropic_9pt(scale, scale, 1.0, 0.05, 1e-3),
            fmt(6, 3, 3, 3, 16),
            SolverKind::Cg,
        ),
        // Scattered graph, O(1) entries (thermomech_TC-like).
        (
            "thermomech-s",
            generators::random_spd_graph(60 * scale, 6, 1.4, 1.0, seed ^ 0x2257),
            fmt(7, 3, 3, 3, 8),
            SolverKind::Cg,
        ),
        // Scattered graph with tiny entries (thermomech_dM-like).
        (
            "thermomech-dm-s",
            generators::random_spd_graph(60 * scale, 6, 1.4, 1e-10, seed ^ 0x2259),
            fmt(6, 3, 3, 3, 8),
            SolverKind::Cg,
        ),
        // Non-symmetric convection–diffusion: the BiCGSTAB lane.  BiCGSTAB amplifies
        // saturation error on this operator, so this tenant runs near-double bits.
        (
            "convdiff-s",
            generators::convection_diffusion_2d(scale, scale, 8.0),
            fmt(7, 5, 16, 5, 16),
            SolverKind::BiCgStab,
        ),
    ];
    raw.into_iter()
        .enumerate()
        .map(|(rank, (name, coo, format, solver))| CatalogEntry {
            handle: MatrixHandle::new(name, coo.to_csr()),
            format,
            solver,
            // Zipf-like skew: rank 0 is ~9x more popular than rank 7.
            weight: 1.0 / (rank as f64 + 1.0),
        })
        .collect()
}

/// Draws a catalog index with probability proportional to the entries' weights.
fn pick(weights: &[f64], rng: &mut ChaCha8Rng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut ticket = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        ticket -= w;
        if ticket <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[derive(Serialize)]
struct TraceRecord {
    job_id: u64,
    tenant: String,
    matrix: String,
    solver: String,
    cache: String,
    iterations: u64,
    converged: bool,
    queue_wait_ms: f64,
    encode_ms: f64,
    solve_ms: f64,
    latency_ms: f64,
    simulated_cycles: u64,
    simulated_s: f64,
}

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let jobs = arg_value(&args, "--jobs").unwrap_or(240) as usize;
    let workers = arg_value(&args, "--workers").unwrap_or(4) as usize;
    let seed = arg_value(&args, "--seed").unwrap_or(2023);
    let cache_capacity = arg_value(&args, "--cache").unwrap_or(32) as usize;

    println!("serve_traffic: {jobs} jobs, {workers} workers, seed {seed}, cache {cache_capacity}");
    let catalog = catalog(seed, quick);
    let weights: Vec<f64> = catalog.iter().map(|e| e.weight).collect();
    println!("catalog: {} matrices", catalog.len());
    for entry in &catalog {
        println!(
            "  {:<16} {:>7} rows {:>9} nnz  {}  {:?}",
            entry.handle.name(),
            entry.handle.csr().nrows(),
            entry.handle.csr().nnz(),
            entry.format,
            entry.solver,
        );
    }

    // Build the trace up front (deterministic in the seed), then stream it through the
    // runtime with backpressure.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let picks: Vec<usize> = (0..jobs).map(|_| pick(&weights, &mut rng)).collect();
    let solver_config = SolverConfig::relative(1e-8)
        .with_max_iterations(if quick { 2_000 } else { 5_000 })
        .with_trace(false);

    // A wall-clock trace sink when asked for; span timestamps are host-dependent but
    // the event *stream* (kinds, details, per-job order) is part of the determinism
    // contract checked below.
    let trace_path = flag_value(&args, "--trace");
    let trace_sink = trace_path.as_ref().map(|_| Arc::new(TraceSink::wall()));

    let runtime = SolveRuntime::new(RuntimeConfig {
        workers,
        queue_capacity: 2 * workers.max(1),
        cache_capacity,
        trace: trace_sink.clone(),
        ..RuntimeConfig::default()
    });
    let outcome = runtime.run_with(|submitter| {
        for (i, &which) in picks.iter().enumerate() {
            let entry = &catalog[which];
            let plan = SolvePlan::new(
                format!("tenant-{}", i % 16),
                entry.handle.clone(),
                entry.format,
            )
            .solver(entry.solver)
            .solver_config(solver_config.clone())
            .build()
            .expect("valid trace plan");
            submitter
                .submit(plan)
                .expect("the batch client admits until the producer returns");
        }
    });

    // Per-matrix traffic summary.
    let mut counts = vec![0usize; catalog.len()];
    for &which in &picks {
        counts[which] += 1;
    }
    println!("\ntraffic (skewed popularity):");
    for (entry, count) in catalog.iter().zip(counts.iter()) {
        println!("  {:<16} {:>5} jobs", entry.handle.name(), count);
    }

    println!("\n{}", outcome.report.render());

    // Determinism digest: numeric results only (iterations + solution checksums),
    // independent of scheduling and wall-clock.
    let mut digest = refloat_runtime::fingerprint::FNV_OFFSET;
    for job in &outcome.jobs {
        digest = fnv1a_u64(digest, job.job_id);
        digest = fnv1a_u64(digest, job.result.iterations as u64);
        let checksum: f64 = job.result.x.iter().sum();
        digest = fnv1a_u64(digest, checksum.to_bits());
    }
    println!("determinism digest: {digest:016x}");

    if let (Some(path), Some(sink)) = (&trace_path, &trace_sink) {
        std::fs::write(path, sink.export_jsonl()).expect("write --trace output");
        println!("wrote {path} ({} trace events)", sink.len());
    }

    // Refresh the tracked perf-trajectory point for the runtime area.
    let report = &outcome.report;
    let bench = BenchReport::new("runtime", "serve_traffic")
        .config_num("jobs", jobs as f64)
        .config_num("workers", workers as f64)
        .config_num("seed", seed as f64)
        .config_num("cache", cache_capacity as f64)
        .config_str("mode", if quick { "quick" } else { "full" })
        .config_str("traced", if trace_sink.is_some() { "yes" } else { "no" })
        .metric("jobs_per_s", report.throughput_jobs_per_s)
        .metric("queue_wait_p50_ms", report.queue_wait_p50_s * 1e3)
        .metric("queue_wait_p99_ms", report.queue_wait_p99_s * 1e3)
        .metric("latency_p50_ms", report.latency_p50_s * 1e3)
        .metric("latency_p99_ms", report.latency_p99_s * 1e3)
        .metric("cache_hit_rate", report.hit_rate())
        .metric("model_cycles", report.simulated_cycles as f64)
        .metric("cancelled_jobs", report.cancelled_jobs as f64)
        .metric("unattributed_jobs", report.unattributed_jobs as f64);
    emit(&bench, &default_bench_dir(&args));

    if let Some(path) = json_path_from_args(&args) {
        let records: Vec<TraceRecord> = outcome
            .jobs
            .iter()
            .map(|job| TraceRecord {
                job_id: job.job_id,
                tenant: job.telemetry.tenant.clone(),
                matrix: job.telemetry.matrix.clone(),
                solver: match job.telemetry.solver {
                    SolverKind::Cg => "CG".to_string(),
                    SolverKind::BiCgStab => "BiCGSTAB".to_string(),
                },
                cache: match job.telemetry.cache {
                    CacheOutcomeKind::Hit => "hit".to_string(),
                    CacheOutcomeKind::Miss => "miss".to_string(),
                    CacheOutcomeKind::Coalesced => "coalesced".to_string(),
                },
                iterations: job.telemetry.iterations as u64,
                converged: job.telemetry.converged,
                queue_wait_ms: job.telemetry.queue_wait_s * 1e3,
                encode_ms: job.telemetry.encode_s * 1e3,
                solve_ms: job.telemetry.solve_s * 1e3,
                latency_ms: job.telemetry.latency_s * 1e3,
                simulated_cycles: job.telemetry.simulated.cycles,
                simulated_s: job.telemetry.simulated.total_s,
            })
            .collect();
        write_json(&path, &records).expect("write --json output");
        println!("wrote {path}");
    }

    // The acceptance bar for the skewed trace; fail loudly if the service regresses.
    // Only meaningful when there is traffic and the cache can hold the working set —
    // deliberately starving the cache (--cache 1) is a legitimate experiment, not a
    // regression.
    let hit_rate = outcome.report.hit_rate();
    if !outcome.jobs.is_empty() && cache_capacity >= catalog.len() {
        assert!(
            hit_rate > 0.5,
            "skewed trace should be cache-friendly: hit rate {:.1}% <= 50%",
            hit_rate * 100.0
        );
    }
    let unconverged = outcome
        .jobs
        .iter()
        .filter(|j| !j.result.converged())
        .count();
    assert_eq!(unconverged, 0, "{unconverged} jobs failed to converge");
}
