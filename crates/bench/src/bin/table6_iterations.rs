//! Experiment E12 — Table VI: absolute iteration counts to convergence, `double` vs
//! `refloat`, for CG and BiCGSTAB on all 12 workloads (plus the Feinberg column that
//! motivates §VI.B's non-convergence discussion).

use refloat_bench::experiment::{solve_all_platforms, ExperimentConfig, PreparedWorkload};
use refloat_bench::json::{has_flag, json_path_from_args, write_json};
use refloat_bench::table::TextTable;
use refloat_matgen::Workload;
use reram_sim::SolverKind;
use serde::Serialize;

#[derive(Serialize)]
struct IterationRecord {
    id: u32,
    name: String,
    cg_double: Option<usize>,
    cg_refloat: Option<usize>,
    cg_feinberg: Option<usize>,
    bicgstab_double: Option<usize>,
    bicgstab_refloat: Option<usize>,
    bicgstab_feinberg: Option<usize>,
    paper_cg_double: usize,
    paper_cg_refloat: usize,
    paper_bicgstab_double: usize,
    paper_bicgstab_refloat: usize,
}

fn label(it: Option<usize>) -> String {
    it.map_or("NC".to_string(), |v| v.to_string())
}

fn delta(double: Option<usize>, refloat: Option<usize>) -> String {
    match (double, refloat) {
        (Some(d), Some(r)) => format!("{:+}", r as i64 - d as i64),
        _ => "-".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };

    let workloads: Vec<Workload> = Workload::ALL
        .into_iter()
        .filter(|w| !quick || w.spec().nnz <= 600_000)
        .collect();

    println!("== Table VI: iterations to convergence (measured | paper in brackets) ==\n");
    let mut t = TextTable::new([
        "id",
        "matrix",
        "CG double",
        "CG refloat",
        "CG +/-",
        "CG feinberg",
        "BiCG double",
        "BiCG refloat",
        "BiCG +/-",
        "BiCG feinberg",
    ]);
    let mut records = Vec::new();
    for &workload in &workloads {
        let spec = workload.spec();
        let prepared = PreparedWorkload::prepare(workload, &config);
        let (cg_d, cg_r, cg_f) = solve_all_platforms(&prepared, SolverKind::Cg, &config);
        let (bi_d, bi_r, bi_f) = solve_all_platforms(&prepared, SolverKind::BiCgStab, &config);
        let (p_cg_d, p_cg_r, p_bi_d, p_bi_r) = workload.paper_iterations();

        t.row([
            spec.id.to_string(),
            spec.name.to_string(),
            format!("{} [{}]", label(cg_d.iterations()), p_cg_d),
            format!("{} [{}]", label(cg_r.iterations()), p_cg_r),
            delta(cg_d.iterations(), cg_r.iterations()),
            label(cg_f.iterations()),
            format!("{} [{}]", label(bi_d.iterations()), p_bi_d),
            format!("{} [{}]", label(bi_r.iterations()), p_bi_r),
            delta(bi_d.iterations(), bi_r.iterations()),
            label(bi_f.iterations()),
        ]);
        records.push(IterationRecord {
            id: spec.id,
            name: spec.name.to_string(),
            cg_double: cg_d.iterations(),
            cg_refloat: cg_r.iterations(),
            cg_feinberg: cg_f.iterations(),
            bicgstab_double: bi_d.iterations(),
            bicgstab_refloat: bi_r.iterations(),
            bicgstab_feinberg: bi_f.iterations(),
            paper_cg_double: p_cg_d,
            paper_cg_refloat: p_cg_r,
            paper_bicgstab_double: p_bi_d,
            paper_bicgstab_refloat: p_bi_r,
        });
    }
    println!("{}", t.render());
    println!(
        "paper reference: refloat needs a modest number of extra iterations for CG (sometimes fewer\n\
         for BiCGSTAB), and Feinberg fails to converge on ids 353, 354, 2261, 355, 2259, 845."
    );

    if let Some(path) = json_path_from_args(&args) {
        write_json(&path, &records).expect("write JSON results");
        println!("\nwrote {path}");
    }
}
