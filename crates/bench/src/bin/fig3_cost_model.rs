//! Experiments E2/E3 — Fig. 3(a)–(c): the closed-form cost model (Eq. 2 and Eq. 3).
//!
//! Prints the cycle-count surfaces over exponent bits (a) and fraction bits (b) and the
//! crossbar-count surface over matrix exponent/fraction bits (c), plus the headline
//! FP64 / Feinberg / ReFloat corner values quoted in §III.B and §VI.B.

use refloat_bench::table::TextTable;
use reram_sim::cost;

fn main() {
    println!("== Fig. 3(a): cycles vs exponent bit counts (f_M = f_v = 52) ==\n");
    let mut t = TextTable::new(["e_v \\ e_M", "0", "2", "4", "6", "8", "10"]);
    for e_v in [0u32, 2, 4, 6, 8, 10] {
        let mut row = vec![e_v.to_string()];
        for e_m in [0u32, 2, 4, 6, 8, 10] {
            row.push(cost::cycle_count_eq3(e_m, 52, e_v, 52).to_string());
        }
        t.row(row);
    }
    println!("{}", t.render());

    println!("== Fig. 3(b): cycles vs fraction bit counts (e_M = e_v = 6) ==\n");
    let mut t = TextTable::new(["f_v \\ f_M", "0", "10", "20", "30", "40", "50"]);
    for f_v in [0u32, 10, 20, 30, 40, 50] {
        let mut row = vec![f_v.to_string()];
        for f_m in [0u32, 10, 20, 30, 40, 50] {
            row.push(cost::cycle_count_eq3(6, f_m, 6, f_v).to_string());
        }
        t.row(row);
    }
    println!("{}", t.render());

    println!("== Fig. 3(c): crossbars vs matrix exponent / fraction bits (Eq. 2) ==\n");
    let mut t = TextTable::new(["e_M \\ f_M", "0", "10", "20", "30", "40", "50"]);
    for e_m in [0u32, 2, 4, 6, 8, 10] {
        let mut row = vec![e_m.to_string()];
        for f_m in [0u32, 10, 20, 30, 40, 50] {
            row.push(cost::crossbar_count_eq2(e_m, f_m).to_string());
        }
        t.row(row);
    }
    println!("{}", t.render());

    println!("== Headline corner values ==\n");
    let mut t = TextTable::new(["configuration", "crossbars (Eq.2)", "cycles (Eq.3)"]);
    t.row([
        "FP64 (e=11, f=52)".to_string(),
        cost::crossbar_count_eq2(11, 52).to_string(),
        cost::cycle_count_eq3(11, 52, 11, 52).to_string(),
    ]);
    t.row([
        "Feinberg (e=6, f=52)".to_string(),
        cost::crossbar_count_eq2(6, 52).to_string(),
        cost::cycle_count_eq3(6, 52, 6, 52).to_string(),
    ]);
    t.row([
        "ReFloat (e=3, f=3 | ev=3, fv=8)".to_string(),
        cost::crossbar_count_eq2(3, 3).to_string(),
        cost::cycle_count_eq3(3, 3, 3, 8).to_string(),
    ]);
    println!("{}", t.render());
    println!("paper reference: FP64 = 8404 crossbars / 4201 cycles; Feinberg = 233 cycles; ReFloat = 28 cycles");
}
