//! Experiment E15 — Table VIII: memory footprint of the matrix in `refloat` format
//! normalized to the `double` (COO, 32+32+64-bit) storage the Feinberg design uses.

use refloat_bench::json::{has_flag, json_path_from_args, write_json};
use refloat_bench::table::TextTable;
use refloat_core::memory;
use refloat_core::ReFloatConfig;
use refloat_matgen::Workload;
use refloat_sparse::BlockedMatrix;
use serde::Serialize;

#[derive(Serialize)]
struct MemoryRecord {
    id: u32,
    name: String,
    nnz: usize,
    blocks: usize,
    refloat_bits: u64,
    double_bits: u64,
    ratio: f64,
    paper_ratio: f64,
}

fn paper_ratio(id: u32) -> f64 {
    match id {
        353 => 0.173,
        1313 => 0.176,
        354 => 0.173,
        2261 => 0.176,
        1288 => 0.173,
        1311 => 0.174,
        1289 => 0.173,
        355 => 0.173,
        2257 => 0.312,
        1848 => 0.179,
        2259 => 0.300,
        845 => 0.173,
        _ => f64::NAN,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let seed = 2023;
    let config = ReFloatConfig::paper_default();

    println!("== Table VIII: matrix memory overhead, refloat vs double ==\n");
    let mut t = TextTable::new([
        "id",
        "matrix",
        "nnz",
        "blocks",
        "ratio (measured)",
        "ratio (paper)",
    ]);
    let mut records = Vec::new();
    let mut sum = 0.0;
    let mut count = 0usize;
    for workload in Workload::ALL {
        let spec = workload.spec();
        if quick && spec.nnz > 600_000 {
            continue;
        }
        let csr = workload.generate_csr(seed);
        let blocked = BlockedMatrix::from_csr(&csr, config.b).expect("b = 7 is valid");
        let ratio = memory::memory_overhead_ratio(&blocked, &config);
        let refloat_bits = memory::refloat_storage_bits(&blocked, &config);
        let double_bits = memory::double_storage_bits(blocked.nnz());
        sum += ratio;
        count += 1;
        t.row([
            spec.id.to_string(),
            spec.name.to_string(),
            blocked.nnz().to_string(),
            blocked.num_blocks().to_string(),
            format!("{ratio:.3}"),
            format!("{:.3}", paper_ratio(spec.id)),
        ]);
        records.push(MemoryRecord {
            id: spec.id,
            name: spec.name.to_string(),
            nnz: blocked.nnz(),
            blocks: blocked.num_blocks(),
            refloat_bits,
            double_bits,
            ratio,
            paper_ratio: paper_ratio(spec.id),
        });
    }
    println!("{}", t.render());
    println!(
        "mean measured ratio: {:.3} (paper average: 0.192); scattered matrices (thermomech_TC/dM)\n\
         pay more block-index and exponent-base overhead, exactly as in the paper.",
        sum / count.max(1) as f64
    );

    if let Some(path) = json_path_from_args(&args) {
        write_json(&path, &records).expect("write JSON results");
        println!("\nwrote {path}");
    }
}
