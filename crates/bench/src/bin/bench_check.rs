//! `bench_check` — CI validator for the tracked `BENCH_*.json` perf trajectory.
//!
//! Scans a directory for `BENCH_<area>.json` files and validates each against the
//! schema in `refloat-telemetry` (schema version, identity fields) and the per-area
//! required-metric vocabulary in `refloat_bench::bench_emit`.  The always-emitted
//! areas (`runtime`, `encode`, `spmv`) must be present; any parse failure, missing
//! metric, unknown area, or schema-version drift is reported and fails the run.
//!
//! ```text
//! bench_check [--dir DIR]      # default: current directory
//! ```

use std::path::Path;
use std::process::ExitCode;

use refloat_bench::bench_emit::{required_metrics, TRACKED_AREAS};
use refloat_bench::json::flag_value;
use refloat_telemetry::validate;
use serde::Value;

/// Validates one file; returns the problems found (empty = valid).
fn check_file(path: &Path, area: &str) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return vec![format!("unreadable: {e}")],
    };
    let value: Value = match serde_json::from_str(&text) {
        Ok(value) => value,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    let Some(required) = required_metrics(area) else {
        return vec![format!(
            "unknown bench area '{area}' (no required-metric vocabulary; \
             register it in refloat_bench::bench_emit)"
        )];
    };
    let mut problems = validate(&value, required);
    match value.field("area") {
        Ok(Value::Str(s)) if s == area => {}
        Ok(Value::Str(s)) => problems.push(format!(
            "file is named for area '{area}' but records area '{s}'"
        )),
        _ => {} // already reported by validate()
    }
    problems
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = flag_value(&args, "--dir").unwrap_or_else(|| ".".to_string());
    let dir = Path::new(&dir);

    // Every BENCH_*.json present gets validated; the tracked areas must be present.
    let mut areas: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read bench dir {}: {e}", dir.display()))
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            let area = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
            Some(area.to_string())
        })
        .collect();
    for required in TRACKED_AREAS {
        if !areas.iter().any(|a| a == required) {
            areas.push(required.to_string());
        }
    }
    areas.sort();

    let mut failures = 0usize;
    for area in &areas {
        let path = dir.join(refloat_telemetry::bench::file_name(area));
        let problems = if path.exists() {
            check_file(&path, area)
        } else {
            vec!["missing (tracked area must be emitted)".to_string()]
        };
        if problems.is_empty() {
            println!("ok   {}", path.display());
        } else {
            failures += 1;
            println!("FAIL {}", path.display());
            for problem in problems {
                println!("     - {problem}");
            }
        }
    }

    if failures > 0 {
        println!(
            "\n{failures}/{} bench files failed schema validation",
            areas.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "\nall {} bench files match schema v{}",
            areas.len(),
            refloat_telemetry::BENCH_SCHEMA_VERSION
        );
        ExitCode::SUCCESS
    }
}
