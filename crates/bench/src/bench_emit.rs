//! The tracked `BENCH_*.json` perf trajectory: which areas exist, which metrics each
//! area must report, and the emit helper the bench binaries share.
//!
//! Three binaries always emit (so every run from the repo root refreshes the tracked
//! baseline): `serve_traffic` → `BENCH_runtime.json`, `bench_encode` →
//! `BENCH_encode.json`, `bench_spmv` → `BENCH_spmv.json`.  The figure binaries
//! (`fig_scheduling`, `fig_sharding`, `fig_cluster` → `BENCH_cluster.json`) emit
//! only when `--bench-dir` is passed, since their default runs are acceptance
//! checks rather than measurements.
//!
//! `bench_check` validates every `BENCH_*.json` in a directory against the
//! [`required_metrics`] vocabulary below and the schema in
//! [`refloat_telemetry::bench`]; CI fails on any drift.

use std::path::{Path, PathBuf};

use refloat_telemetry::BenchReport;

use crate::json::flag_value;

/// Areas whose `BENCH_<area>.json` file must exist in a trajectory directory
/// (`bench_check` fails when one is missing).
pub const TRACKED_AREAS: [&str; 6] = [
    "runtime",
    "encode",
    "spmv",
    "cluster",
    "faults",
    "transient",
];

/// The metrics each area's report must carry, as finite numbers.  Renaming or
/// dropping one of these is schema drift and fails `bench_check`.
pub fn required_metrics(area: &str) -> Option<&'static [&'static str]> {
    match area {
        "runtime" => Some(&[
            "jobs_per_s",
            "queue_wait_p50_ms",
            "queue_wait_p99_ms",
            "latency_p50_ms",
            "latency_p99_ms",
            "cache_hit_rate",
            "model_cycles",
            "cancelled_jobs",
            "unattributed_jobs",
        ]),
        "encode" => Some(&["rows_per_s", "nnz_per_s", "encode_s_total"]),
        "spmv" => Some(&[
            "csr_nnz_per_s",
            "quantized_nnz_per_s",
            "model_cycles_per_spmv",
        ]),
        "cluster" => Some(&[
            "speedup_4_nodes",
            "throughput_1_jobs_per_s",
            "throughput_4_jobs_per_s",
            "shed_rate_overload",
            "interactive_p99_wait_ms_overload",
            "affinity_hit_rate",
        ]),
        "faults" => Some(&[
            "extra_iteration_ratio",
            "detections",
            "re_encodes",
            "degraded_jobs",
            "rerouted_jobs",
        ]),
        "transient" => Some(&[
            "model_cycle_reduction_x",
            "jobs_per_s_speedup_x",
            "blocks_reused_fraction",
            "warm_start_hits",
            "steps",
        ]),
        "scheduling" => Some(&["interactive_p99_improvement_x", "throughput_ratio"]),
        "sharding" => Some(&["speedup_4_chips", "reduction_share_8_chips"]),
        _ => None,
    }
}

/// Parses `--bench-dir <dir>` from the argument list.
pub fn bench_dir_from_args(args: &[String]) -> Option<PathBuf> {
    flag_value(args, "--bench-dir").map(PathBuf::from)
}

/// The trajectory directory for binaries that always emit: `--bench-dir` when given,
/// otherwise the current directory (so runs from the repo root refresh the tracked
/// files in place).
pub fn default_bench_dir(args: &[String]) -> PathBuf {
    bench_dir_from_args(args).unwrap_or_else(|| PathBuf::from("."))
}

/// Writes the report into `dir` (created if needed) and prints the path, panicking on
/// I/O errors — a bench run that cannot record its trajectory should fail loudly.
pub fn emit(report: &BenchReport, dir: &Path) {
    std::fs::create_dir_all(dir).expect("create bench dir");
    let path = report.write(dir).expect("write bench report");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tracked_area_has_a_vocabulary() {
        for area in TRACKED_AREAS {
            let metrics = required_metrics(area).expect("tracked area has metrics");
            assert!(!metrics.is_empty());
        }
        assert!(required_metrics("nonsense").is_none());
    }

    #[test]
    fn bench_dir_defaults_to_cwd() {
        let args: Vec<String> = vec!["--quick".into()];
        assert_eq!(bench_dir_from_args(&args), None);
        assert_eq!(default_bench_dir(&args), PathBuf::from("."));
        let args: Vec<String> = vec!["--bench-dir".into(), "/tmp/b".into()];
        assert_eq!(default_bench_dir(&args), PathBuf::from("/tmp/b"));
    }

    #[test]
    fn emit_writes_a_validating_file() {
        let dir = std::env::temp_dir().join("refloat_bench_emit_test");
        let report = BenchReport::new("encode", "test")
            .metric("rows_per_s", 1.0)
            .metric("nnz_per_s", 2.0)
            .metric("encode_s_total", 0.5);
        emit(&report, &dir);
        let text = std::fs::read_to_string(dir.join("BENCH_encode.json")).expect("reads");
        let value: serde::Value = serde_json::from_str(&text).expect("parses");
        let problems = refloat_telemetry::validate(&value, required_metrics("encode").unwrap());
        assert_eq!(problems, Vec::<String>::new());
        std::fs::remove_dir_all(&dir).ok();
    }
}
