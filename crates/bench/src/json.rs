//! Serialisable experiment records.
//!
//! Every experiment binary can dump its results as JSON (via `--json <path>`), so the
//! numbers quoted in `EXPERIMENTS.md` can be regenerated and diffed mechanically.

use serde::{Deserialize, Serialize};
use std::path::Path;

use crate::experiment::PerformanceRow;
use reram_sim::SolverKind;

/// A serialisable snapshot of one Fig. 8 row.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PerformanceRecord {
    /// Workload id (paper figure label).
    pub id: u32,
    /// Workload name.
    pub name: String,
    /// `"CG"` or `"BiCGSTAB"`.
    pub solver: String,
    /// Clusters required per SpMV (non-empty 128×128 blocks).
    pub clusters_required: u64,
    /// Iteration counts (None = NC).
    pub iterations_double: Option<usize>,
    /// Iterations of the ReFloat run.
    pub iterations_refloat: Option<usize>,
    /// Iterations of the Feinberg run.
    pub iterations_feinberg: Option<usize>,
    /// Modelled solver times in seconds.
    pub gpu_s: f64,
    /// Feinberg with its own convergence (None = NC).
    pub feinberg_s: Option<f64>,
    /// Feinberg-fc (FP64 iterations on Feinberg hardware).
    pub feinberg_fc_s: f64,
    /// ReFloat.
    pub refloat_s: f64,
    /// Speedup of ReFloat over the GPU.
    pub speedup_refloat_vs_gpu: f64,
    /// Speedup of ReFloat over Feinberg-fc.
    pub speedup_refloat_vs_feinberg_fc: f64,
}

impl From<&PerformanceRow> for PerformanceRecord {
    fn from(row: &PerformanceRow) -> Self {
        PerformanceRecord {
            id: row.id,
            name: row.name.to_string(),
            solver: match row.solver {
                SolverKind::Cg => "CG".to_string(),
                SolverKind::BiCgStab => "BiCGSTAB".to_string(),
            },
            clusters_required: row.clusters_required,
            iterations_double: row.iterations_double,
            iterations_refloat: row.iterations_refloat,
            iterations_feinberg: row.iterations_feinberg,
            gpu_s: row.gpu_s,
            feinberg_s: row.feinberg_s,
            feinberg_fc_s: row.feinberg_fc_s,
            refloat_s: row.refloat_s,
            speedup_refloat_vs_gpu: row.speedup_refloat(),
            speedup_refloat_vs_feinberg_fc: row.speedup_refloat_over_feinberg_fc(),
        }
    }
}

/// Writes any serialisable record set as pretty-printed JSON.
pub fn write_json<T: Serialize, P: AsRef<Path>>(path: P, records: &T) -> std::io::Result<()> {
    let text = serde_json::to_string_pretty(records)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, text)
}

/// Returns the value following a `--flag value` pair, if present.  (The binaries keep
/// argument handling deliberately dependency-free.)
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses `--json <path>` style arguments from a raw argument list; returns the path if
/// present.
pub fn json_path_from_args(args: &[String]) -> Option<String> {
    flag_value(args, "--json")
}

/// Returns true when the argument list contains a flag (e.g. `--quick`).
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_through_json() {
        let record = PerformanceRecord {
            id: 355,
            name: "crystm03".into(),
            solver: "CG".into(),
            clusters_required: 2500,
            iterations_double: Some(80),
            iterations_refloat: Some(95),
            iterations_feinberg: None,
            gpu_s: 5.0e-3,
            feinberg_s: None,
            feinberg_fc_s: 2.2e-3,
            refloat_s: 3.1e-4,
            speedup_refloat_vs_gpu: 16.1,
            speedup_refloat_vs_feinberg_fc: 7.1,
        };
        let text = serde_json::to_string(&record).unwrap();
        let back: PerformanceRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn argument_helpers_extract_flags_and_paths() {
        let args: Vec<String> = ["--quick", "--json", "/tmp/out.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(has_flag(&args, "--quick"));
        assert!(!has_flag(&args, "--details"));
        assert_eq!(json_path_from_args(&args).as_deref(), Some("/tmp/out.json"));
        assert_eq!(json_path_from_args(&args[..1]), None);
    }

    #[test]
    fn write_json_creates_a_readable_file() {
        let dir = std::env::temp_dir().join("refloat_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains('1') && text.contains('3'));
    }
}
