//! Experiment harness for the ReFloat reproduction.
//!
//! Every table and figure of the paper's evaluation section has a dedicated binary in
//! `src/bin/` (see `DESIGN.md` §5 for the index); this library holds the shared pieces:
//!
//! * [`experiment`] — workload preparation, the solver runs for each platform
//!   (FP64 / ReFloat / Feinberg), and the Fig. 8 performance-row computation,
//! * [`table`] — plain-text table rendering for the binaries' stdout reports,
//! * [`json`] — serialisable result records so `EXPERIMENTS.md` numbers can be
//!   regenerated and diffed,
//! * [`bench_emit`] — the tracked `BENCH_*.json` perf trajectory: where the files go,
//!   which metrics each area must report, and the emit helper the binaries share,
//! * [`args`] — typed flag parsing for the service-facing binaries
//!   (`serve_traffic`, `fig_cluster`): bad input is a printed [`args::UsageError`]
//!   and exit code 2, never a panic or a silent default.
//!
//! The Criterion micro-benchmarks live in `benches/` and cover the wall-clock cost of
//! the building blocks themselves (SpMV, block conversion, quantized SpMV, the bit-exact
//! crossbar pipeline and whole solver iterations).

#![forbid(unsafe_code)]

pub mod args;
pub mod bench_emit;
pub mod experiment;
pub mod json;
pub mod table;

pub use experiment::{
    solve_all_platforms, ExperimentConfig, PerformanceRow, PlatformSolve, PreparedWorkload,
};
