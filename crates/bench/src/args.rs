//! Typed command-line parsing for the experiment binaries.
//!
//! The original binaries parsed flags with `parse().ok()` — a typo like
//! `--jobs ten` silently fell back to the default, and an impossible combination
//! like `--rate` without an open-loop mode was silently ignored.  Service-facing
//! binaries (`serve_traffic`, `fig_cluster`) instead surface a typed
//! [`UsageError`]: `main` prints it and exits with status 2, never panicking on
//! user input.

use std::fmt;

/// A command-line problem the user can fix, with enough context to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UsageError {
    /// A flag's value failed to parse (`--jobs ten`).
    InvalidValue {
        /// The flag as typed.
        flag: String,
        /// The offending value.
        value: String,
        /// What would have parsed (`"a positive integer"`).
        expected: &'static str,
    },
    /// A flag that takes a value appeared last (`serve_traffic --jobs`).
    MissingValue {
        /// The flag as typed.
        flag: String,
    },
    /// A flag's value is outside its enumerated set (`--arrivals sometimes`).
    UnknownValue {
        /// The flag as typed.
        flag: String,
        /// The offending value.
        value: String,
        /// The accepted values, for the message.
        allowed: &'static str,
    },
    /// A flag only means something in combination with another that is absent
    /// (`--rate` without `--arrivals`).
    ConflictingFlags {
        /// The flag as typed.
        flag: String,
        /// What it needs.
        requires: &'static str,
    },
}

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UsageError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "{flag} {value:?}: expected {expected}"),
            UsageError::MissingValue { flag } => write!(f, "{flag} requires a value"),
            UsageError::UnknownValue {
                flag,
                value,
                allowed,
            } => write!(f, "{flag} {value:?}: must be one of {allowed}"),
            UsageError::ConflictingFlags { flag, requires } => {
                write!(f, "{flag} only makes sense with {requires}")
            }
        }
    }
}

impl std::error::Error for UsageError {}

/// The raw string value of `flag`, or a typed error when the flag is present but
/// dangling.  `Ok(None)` means the flag was not given.
pub fn raw_value(args: &[String], flag: &str) -> Result<Option<String>, UsageError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(UsageError::MissingValue {
                flag: flag.to_string(),
            }),
        },
    }
}

/// Parses `--flag N` as a `u64`, with a typed error instead of a silent default.
pub fn parse_u64(args: &[String], flag: &str) -> Result<Option<u64>, UsageError> {
    match raw_value(args, flag)? {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| UsageError::InvalidValue {
            flag: flag.to_string(),
            value: v,
            expected: "a non-negative integer",
        }),
    }
}

/// Parses `--flag N` as a `usize` that must be at least 1.
pub fn parse_positive_usize(args: &[String], flag: &str) -> Result<Option<usize>, UsageError> {
    match parse_u64(args, flag)? {
        None => Ok(None),
        Some(0) => Err(UsageError::InvalidValue {
            flag: flag.to_string(),
            value: "0".to_string(),
            expected: "a positive integer",
        }),
        Some(v) => Ok(Some(v as usize)),
    }
}

/// Parses `--flag X` as a finite, strictly positive `f64`.
pub fn parse_positive_f64(args: &[String], flag: &str) -> Result<Option<f64>, UsageError> {
    match raw_value(args, flag)? {
        None => Ok(None),
        Some(v) => match v.parse::<f64>() {
            Ok(x) if x.is_finite() && x > 0.0 => Ok(Some(x)),
            _ => Err(UsageError::InvalidValue {
                flag: flag.to_string(),
                value: v,
                expected: "a positive number",
            }),
        },
    }
}

/// Parses `--flag X` as a finite, non-negative `f64` (0 allowed — e.g. a skew).
pub fn parse_nonneg_f64(args: &[String], flag: &str) -> Result<Option<f64>, UsageError> {
    match raw_value(args, flag)? {
        None => Ok(None),
        Some(v) => match v.parse::<f64>() {
            Ok(x) if x.is_finite() && x >= 0.0 => Ok(Some(x)),
            _ => Err(UsageError::InvalidValue {
                flag: flag.to_string(),
                value: v,
                expected: "a non-negative number",
            }),
        },
    }
}

/// Errors when `flag` is present but `requirement_met` is false — for flags that
/// only mean something in combination with another (`--rate` without
/// `--arrivals`).
pub fn require_with(
    args: &[String],
    flag: &str,
    requirement_met: bool,
    requires: &'static str,
) -> Result<(), UsageError> {
    if !requirement_met && args.iter().any(|a| a == flag) {
        return Err(UsageError::ConflictingFlags {
            flag: flag.to_string(),
            requires,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn absent_flags_parse_to_none() {
        let a = args(&["--jobs", "10"]);
        assert_eq!(parse_u64(&a, "--workers"), Ok(None));
        assert_eq!(parse_positive_f64(&a, "--rate"), Ok(None));
    }

    #[test]
    fn present_flags_parse_their_values() {
        let a = args(&["--jobs", "240", "--rate", "12.5", "--skew", "0"]);
        assert_eq!(parse_u64(&a, "--jobs"), Ok(Some(240)));
        assert_eq!(parse_positive_f64(&a, "--rate"), Ok(Some(12.5)));
        assert_eq!(parse_nonneg_f64(&a, "--skew"), Ok(Some(0.0)));
    }

    #[test]
    fn garbage_values_are_typed_errors_not_silent_defaults() {
        let a = args(&["--jobs", "ten"]);
        assert_eq!(
            parse_u64(&a, "--jobs"),
            Err(UsageError::InvalidValue {
                flag: "--jobs".to_string(),
                value: "ten".to_string(),
                expected: "a non-negative integer",
            })
        );
    }

    #[test]
    fn dangling_flags_are_missing_value_errors() {
        for tail in [args(&["--jobs"]), args(&["--jobs", "--quick"])] {
            assert_eq!(
                parse_u64(&tail, "--jobs"),
                Err(UsageError::MissingValue {
                    flag: "--jobs".to_string()
                })
            );
        }
    }

    #[test]
    fn zero_is_rejected_where_a_positive_count_is_required() {
        let a = args(&["--nodes", "0"]);
        assert!(matches!(
            parse_positive_usize(&a, "--nodes"),
            Err(UsageError::InvalidValue { .. })
        ));
    }

    #[test]
    fn nonpositive_and_nonfinite_rates_are_rejected() {
        for bad in ["0", "-3", "inf", "nan", "fast"] {
            let a = args(&["--rate", bad]);
            assert!(
                matches!(
                    parse_positive_f64(&a, "--rate"),
                    Err(UsageError::InvalidValue { .. })
                ),
                "--rate {bad} must be rejected"
            );
        }
    }

    #[test]
    fn dependent_flags_error_when_their_anchor_is_absent() {
        let a = args(&["--rate", "50"]);
        let err = require_with(&a, "--rate", false, "--arrivals").unwrap_err();
        assert_eq!(
            err,
            UsageError::ConflictingFlags {
                flag: "--rate".to_string(),
                requires: "--arrivals",
            }
        );
        assert!(require_with(&a, "--rate", true, "--arrivals").is_ok());
        assert!(require_with(&a, "--skew", false, "--arrivals").is_ok());
    }

    #[test]
    fn errors_render_actionable_messages() {
        let message = UsageError::UnknownValue {
            flag: "--arrivals".to_string(),
            value: "sometimes".to_string(),
            allowed: "poisson, bursty",
        }
        .to_string();
        assert!(message.contains("--arrivals"));
        assert!(message.contains("poisson"));
    }
}
