//! Shared experiment orchestration: prepare a workload, solve it under every platform's
//! numerics, and convert iteration counts into the paper's performance metric.

use refloat_core::feinberg::FeinbergOperator;
use refloat_core::{ReFloatConfig, ReFloatMatrix};
use refloat_matgen::{rhs, Workload};
use refloat_solvers::{bicgstab, cg, LinearOperator, SolveResult, SolverConfig};
use refloat_sparse::{BlockedMatrix, CsrMatrix};
use reram_sim::{AcceleratorConfig, GpuModel, SolverKind};

/// Global experiment knobs shared by all binaries.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Random seed for the synthetic workload generators.
    pub seed: u64,
    /// Relative residual tolerance (the paper's `‖r‖₂ < 1e-8`, taken relative to `‖b‖`
    /// because the synthetic right-hand side is the all-ones vector).
    pub tolerance: f64,
    /// Iteration cap for the FP64 and ReFloat runs.
    pub max_iterations: usize,
    /// Iteration cap for Feinberg runs (which may never converge); kept lower so NC
    /// workloads do not dominate wall-clock time.
    pub feinberg_max_iterations: usize,
    /// Crossbar block-size exponent (7 = 128×128 crossbars, Table IV).
    pub block_exponent: u32,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 2023,
            tolerance: 1e-8,
            max_iterations: 20_000,
            feinberg_max_iterations: 2_000,
            block_exponent: 7,
        }
    }
}

impl ExperimentConfig {
    /// A reduced-cost configuration for smoke tests and `--quick` runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            max_iterations: 3_000,
            feinberg_max_iterations: 500,
            ..Self::default()
        }
    }

    /// The solver configuration used for FP64 / ReFloat runs.
    pub fn solver_config(&self) -> SolverConfig {
        SolverConfig::relative(self.tolerance).with_max_iterations(self.max_iterations)
    }

    /// The solver configuration used for Feinberg runs.
    pub fn feinberg_solver_config(&self) -> SolverConfig {
        SolverConfig::relative(self.tolerance).with_max_iterations(self.feinberg_max_iterations)
    }

    /// The ReFloat format used for a given workload: the Table VII bit budget
    /// (`e = ev = 3`, `f = 3`, `fv = 8`, with `fv = 16` for `wathen100` and `Dubcova2`),
    /// except that the matrix fraction follows `WorkloadSpec::refloat_f` — the synthetic
    /// mass-matrix analogues need `f = 8` to keep the quantized operator positive
    /// definite (see EXPERIMENTS.md, E10).
    pub fn refloat_config_for(&self, workload: Workload) -> ReFloatConfig {
        let spec = workload.spec();
        ReFloatConfig::new(self.block_exponent, 3, spec.refloat_f, 3, spec.refloat_fv)
    }
}

/// A generated workload together with its blocked form and right-hand side.
pub struct PreparedWorkload {
    /// Which Table V matrix this stands in for.
    pub workload: Workload,
    /// The synthetic matrix.
    pub csr: CsrMatrix,
    /// The matrix partitioned into `2^b × 2^b` blocks.
    pub blocked: BlockedMatrix,
    /// The right-hand side (all ones, following common solver-benchmark practice).
    pub b: Vec<f64>,
}

impl PreparedWorkload {
    /// Generates and blocks a workload.
    pub fn prepare(workload: Workload, config: &ExperimentConfig) -> Self {
        let csr = workload.generate_csr(config.seed);
        let blocked =
            BlockedMatrix::from_csr(&csr, config.block_exponent).expect("valid block exponent");
        let b = rhs::ones(csr.nrows());
        PreparedWorkload {
            workload,
            csr,
            blocked,
            b,
        }
    }

    /// Number of non-empty blocks = crossbar clusters one SpMV needs.
    pub fn num_blocks(&self) -> u64 {
        self.blocked.num_blocks() as u64
    }
}

/// The solve outcome of one platform on one workload.
#[derive(Debug, Clone)]
pub struct PlatformSolve {
    /// Platform label.
    pub platform: &'static str,
    /// The raw solver result (trace included).
    pub result: SolveResult,
}

impl PlatformSolve {
    /// Iterations if converged, `None` otherwise.
    pub fn iterations(&self) -> Option<usize> {
        self.result.converged().then_some(self.result.iterations)
    }
}

/// Runs one solver (CG or BiCGSTAB) under FP64, ReFloat and Feinberg numerics.
pub fn solve_all_platforms(
    prepared: &PreparedWorkload,
    solver: SolverKind,
    config: &ExperimentConfig,
) -> (PlatformSolve, PlatformSolve, PlatformSolve) {
    let solver_cfg = config.solver_config();
    let feinberg_cfg = config.feinberg_solver_config();
    let refloat_format = config.refloat_config_for(prepared.workload);

    let run = |op: &mut dyn LinearOperator, cfg: &SolverConfig| match solver {
        SolverKind::Cg => cg(op, &prepared.b, cfg),
        SolverKind::BiCgStab => bicgstab(op, &prepared.b, cfg),
    };

    let mut fp64 = prepared.csr.clone();
    let double = PlatformSolve {
        platform: "double",
        result: run(&mut fp64, &solver_cfg),
    };

    let mut rf = ReFloatMatrix::from_blocked(&prepared.blocked, refloat_format);
    let refloat = PlatformSolve {
        platform: "refloat",
        result: run(&mut rf, &solver_cfg),
    };

    let mut fb = FeinbergOperator::new(prepared.csr.clone());
    let feinberg = PlatformSolve {
        platform: "feinberg",
        result: run(&mut fb, &feinberg_cfg),
    };

    (double, refloat, feinberg)
}

/// One row of the Fig. 8 performance comparison: solver times and speedups of the three
/// accelerated platforms against the GPU baseline.
#[derive(Debug, Clone)]
pub struct PerformanceRow {
    /// Workload id (the numeric label used in the paper's figures).
    pub id: u32,
    /// Workload name.
    pub name: &'static str,
    /// Which solver the row is for.
    pub solver: SolverKind,
    /// Non-empty blocks (clusters required per SpMV).
    pub clusters_required: u64,
    /// Iterations of the FP64 / GPU / Feinberg-fc run.
    pub iterations_double: Option<usize>,
    /// Iterations of the ReFloat run.
    pub iterations_refloat: Option<usize>,
    /// Iterations of the Feinberg run (None = did not converge).
    pub iterations_feinberg: Option<usize>,
    /// Modelled GPU solver time, seconds.
    pub gpu_s: f64,
    /// Modelled Feinberg solver time (its own, possibly non-converging, iterations).
    pub feinberg_s: Option<f64>,
    /// Modelled Feinberg-fc solver time (FP64 iteration count on Feinberg hardware).
    pub feinberg_fc_s: f64,
    /// Modelled ReFloat solver time, seconds.
    pub refloat_s: f64,
}

impl PerformanceRow {
    /// Builds the row from the three platform solves and the hardware models.
    pub fn build(
        prepared: &PreparedWorkload,
        solver: SolverKind,
        double: &PlatformSolve,
        refloat: &PlatformSolve,
        feinberg: &PlatformSolve,
        config: &ExperimentConfig,
    ) -> Self {
        let spec = prepared.workload.spec();
        let gpu = GpuModel::v100();
        let feinberg_hw = AcceleratorConfig::feinberg();
        let refloat_hw = AcceleratorConfig::refloat(&config.refloat_config_for(prepared.workload));
        let blocks = prepared.num_blocks();
        let nnz = prepared.csr.nnz() as u64;
        let nrows = prepared.csr.nrows() as u64;

        let iters_double = double.iterations();
        let iters_refloat = refloat.iterations();
        let iters_feinberg = feinberg.iterations();

        // The GPU and Feinberg-fc rows assume the FP64 iteration count (Feinberg-fc is
        // defined in §VI.B as "function-correct": same convergence as double).
        let d_iters = iters_double.unwrap_or(config.max_iterations) as u64;
        let r_iters = iters_refloat.unwrap_or(config.max_iterations) as u64;

        PerformanceRow {
            id: spec.id,
            name: spec.name,
            solver,
            clusters_required: blocks,
            iterations_double: iters_double,
            iterations_refloat: iters_refloat,
            iterations_feinberg: iters_feinberg,
            gpu_s: gpu.solver_time_s(nnz, nrows, d_iters, solver),
            feinberg_s: iters_feinberg.map(|it| {
                feinberg_hw
                    .solver_time(blocks, it as u64, solver)
                    .solver_total_s
            }),
            feinberg_fc_s: feinberg_hw
                .solver_time(blocks, d_iters, solver)
                .solver_total_s,
            refloat_s: refloat_hw
                .solver_time(blocks, r_iters, solver)
                .solver_total_s,
        }
    }

    /// Speedup of ReFloat over the GPU (`p = t_GPU / t_ReFloat`, the Fig. 8 metric).
    pub fn speedup_refloat(&self) -> f64 {
        self.gpu_s / self.refloat_s
    }

    /// Speedup of Feinberg-fc over the GPU.
    pub fn speedup_feinberg_fc(&self) -> f64 {
        self.gpu_s / self.feinberg_fc_s
    }

    /// Speedup of Feinberg (its own convergence behaviour) over the GPU, when it
    /// converged at all.
    pub fn speedup_feinberg(&self) -> Option<f64> {
        self.feinberg_s.map(|t| self.gpu_s / t)
    }

    /// Speedup of ReFloat over Feinberg-fc — the paper's headline 5.02×–84.28× range.
    pub fn speedup_refloat_over_feinberg_fc(&self) -> f64 {
        self.feinberg_fc_s / self.refloat_s
    }
}

/// Geometric mean of a set of positive values (the paper's GMN summary of Fig. 8).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload() -> (PreparedWorkload, ExperimentConfig) {
        // crystm01 is the smallest Table V matrix; use a quick config for tests.
        let config = ExperimentConfig {
            block_exponent: 7,
            ..ExperimentConfig::quick()
        };
        (
            PreparedWorkload::prepare(Workload::Crystm01, &config),
            config,
        )
    }

    #[test]
    fn prepared_workload_matches_generator_output() {
        let (w, _) = small_workload();
        assert_eq!(w.csr.nrows(), w.blocked.nrows());
        assert_eq!(w.csr.nnz(), w.blocked.nnz());
        assert_eq!(w.b.len(), w.csr.nrows());
        assert!(w.num_blocks() > 0);
    }

    #[test]
    fn all_platforms_behave_as_the_paper_describes_on_crystm01() {
        let (w, config) = small_workload();
        let (double, refloat, feinberg) = solve_all_platforms(&w, SolverKind::Cg, &config);
        // FP64 and ReFloat converge; Feinberg does not (crystm01 is in the paper's
        // failing set because its entries are ~1e-12).
        assert!(
            double.result.converged(),
            "double: {:?}",
            double.result.stop
        );
        assert!(
            refloat.result.converged(),
            "refloat: {:?}",
            refloat.result.stop
        );
        assert!(
            !feinberg.result.converged(),
            "feinberg should fail on crystm01"
        );
        // ReFloat costs at most a modest iteration overhead (Table VI shows +17 on 68).
        let d = double.result.iterations as f64;
        let r = refloat.result.iterations as f64;
        assert!(r >= d * 0.8 && r <= d * 2.5, "double {d}, refloat {r}");
    }

    #[test]
    fn performance_row_reproduces_the_papers_ordering() {
        let (w, config) = small_workload();
        let (double, refloat, feinberg) = solve_all_platforms(&w, SolverKind::Cg, &config);
        let row = PerformanceRow::build(&w, SolverKind::Cg, &double, &refloat, &feinberg, &config);
        // ReFloat beats the GPU by an order of magnitude on this small matrix, and
        // beats Feinberg-fc by the 5–85x range the abstract quotes.
        assert!(
            row.speedup_refloat() > 3.0,
            "refloat vs gpu: {}",
            row.speedup_refloat()
        );
        assert!(
            row.speedup_refloat_over_feinberg_fc() > 3.0,
            "refloat vs feinberg-fc: {}",
            row.speedup_refloat_over_feinberg_fc()
        );
        assert!(row.iterations_feinberg.is_none());
        assert!(row.feinberg_s.is_none());
        assert_eq!(row.id, 353);
    }

    #[test]
    fn geometric_mean_matches_hand_computation() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
