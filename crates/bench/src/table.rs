//! Minimal plain-text table rendering for the experiment binaries.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must have the same arity as the header).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "table row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = w));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a floating-point number the way the paper's figures label speedups
/// (two decimals, e.g. `12.59x`).
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats seconds with an adaptive unit (ns / µs / ms / s).
pub fn duration(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "22"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Every line has the same width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn formats_speedup_and_durations() {
        assert_eq!(speedup(12.594), "12.59x");
        assert_eq!(duration(5.0e-9), "5.0 ns");
        assert_eq!(duration(3.2e-6), "3.20 us");
        assert_eq!(duration(1.5e-3), "1.50 ms");
        assert_eq!(duration(2.0), "2.000 s");
    }
}
