//! Overhead of the runtime's serving layer itself: encoded-matrix cache lookups
//! (hit path), bounded-queue transfer, matrix fingerprinting, and the full per-job
//! overhead of a batch whose solves are trivial (1-iteration cap on a hot cached
//! matrix) — everything except the solver is runtime tax.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use refloat_core::ReFloatConfig;
use refloat_matgen::generators;
use refloat_runtime::{
    fingerprint_csr, BoundedQueue, EncodedMatrixCache, MatrixHandle, RuntimeConfig, SolvePlan,
    SolveRuntime,
};
use refloat_solvers::SolverConfig;

fn bench_runtime_overhead(c: &mut Criterion) {
    let a = generators::laplacian_2d(16, 16, 0.3).to_csr();
    let handle = MatrixHandle::new("poisson-16", a.clone());
    let format = ReFloatConfig::new(4, 3, 8, 3, 8);

    let mut group = c.benchmark_group("runtime");

    // Cache hot path: every lookup after the first is a hit.
    let cache = EncodedMatrixCache::new(8);
    let key = refloat_runtime::CacheKey::whole(handle.fingerprint(), format);
    let clock = refloat_telemetry::WallClock::new();
    cache.get_or_encode(key, &clock, || {
        refloat_core::ReFloatMatrix::from_csr(&a, format)
    });
    group.bench_function("cache_hit_lookup", |b| {
        b.iter(|| cache.get_or_encode(key, &clock, || unreachable!("entry is cached")))
    });

    // Queue transfer (uncontended single-thread push + pop).
    let queue: BoundedQueue<u64> = BoundedQueue::new(64);
    group.bench_function("queue_push_pop", |b| {
        b.iter(|| {
            queue.push(1).unwrap();
            queue.pop()
        })
    });

    // Content fingerprinting, the per-handle one-time cost.
    group.throughput(Throughput::Elements(a.nnz() as u64));
    group.bench_function("fingerprint_poisson_16x16", |b| {
        b.iter(|| fingerprint_csr(&a))
    });
    group.finish();

    // Whole-service overhead per job: 16 jobs, hot cache, 1-iteration solves.
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 4,
        queue_capacity: 16,
        cache_capacity: 8,
        ..RuntimeConfig::default()
    });
    let one_iter = SolverConfig::relative(1e-8)
        .with_max_iterations(1)
        .with_trace(false);
    // Warm the cache so the measured batches never encode.
    runtime.run_batch(vec![SolvePlan::new("warm", handle.clone(), format)
        .solver_config(one_iter.clone())
        .build()
        .expect("valid plan")]);
    let mut group = c.benchmark_group("runtime_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(16));
    group.bench_function("overhead_16_trivial_jobs_4_workers", |b| {
        b.iter(|| {
            let plans: Vec<SolvePlan> = (0..16)
                .map(|i| {
                    SolvePlan::new(format!("t{i}"), handle.clone(), format)
                        .solver_config(one_iter.clone())
                        .build()
                        .expect("valid plan")
                })
                .collect();
            runtime.run_batch(plans)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_runtime_overhead
}
criterion_main!(benches);
