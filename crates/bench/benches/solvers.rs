//! Whole-solve cost of CG and BiCGSTAB under FP64 and ReFloat numerics on a small
//! Poisson problem — the end-to-end functional-simulation cost per solve.

use criterion::{criterion_group, criterion_main, Criterion};
use refloat_core::{ReFloatConfig, ReFloatMatrix};
use refloat_matgen::generators;
use refloat_solvers::{bicgstab, cg, SolverConfig};

fn bench_solvers(c: &mut Criterion) {
    let a = generators::laplacian_2d(64, 64, 0.2).to_csr();
    let b: Vec<f64> = vec![1.0; a.nrows()];
    let cfg = SolverConfig::relative(1e-8).with_trace(false);

    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    group.bench_function("cg_fp64_poisson_64x64", |bench| {
        bench.iter(|| {
            let mut op = a.clone();
            cg(&mut op, &b, &cfg)
        });
    });
    group.bench_function("cg_refloat_poisson_64x64", |bench| {
        bench.iter(|| {
            let mut op = ReFloatMatrix::from_csr(&a, ReFloatConfig::paper_default());
            cg(&mut op, &b, &cfg)
        });
    });
    group.bench_function("bicgstab_fp64_poisson_64x64", |bench| {
        bench.iter(|| {
            let mut op = a.clone();
            bicgstab(&mut op, &b, &cfg)
        });
    });
    group.bench_function("bicgstab_refloat_poisson_64x64", |bench| {
        bench.iter(|| {
            let mut op = ReFloatMatrix::from_csr(&a, ReFloatConfig::paper_default());
            bicgstab(&mut op, &b, &cfg)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solvers
}
criterion_main!(benches);
