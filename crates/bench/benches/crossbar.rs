//! Cost of the bit-exact crossbar pipeline (the validation path of the simulator): the
//! bit-sliced integer MVM of Fig. 2 and one full processing-engine block MVM (Fig. 6).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use refloat_core::block::ReFloatBlock;
use refloat_core::ReFloatConfig;
use refloat_sparse::blocked::Block;
use reram_sim::engine::ProcessingEngine;
use reram_sim::xbar::FixedPointMvm;

fn bench_crossbar(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let size = 128;
    let matrix: Vec<u64> = (0..size * size).map(|_| rng.gen_range(0..16)).collect();
    let x: Vec<u64> = (0..size).map(|_| rng.gen_range(0..512)).collect();
    let engine = FixedPointMvm::new(&matrix, size, 4);

    let mut group = c.benchmark_group("crossbar");
    group.bench_function("bit_sliced_mvm_128x128_4bit", |b| {
        b.iter(|| engine.multiply(&x, 9));
    });

    // Processing-engine block MVM with the paper's default bits on a 32x32 block.
    let config = ReFloatConfig::new(5, 3, 3, 3, 8);
    let block = Block {
        block_row: 0,
        block_col: 0,
        rows: (0..32u16).flat_map(|r| std::iter::repeat_n(r, 8)).collect(),
        cols: (0..32u16).flat_map(|_| (0..8u16).map(|k| k * 4)).collect(),
        vals: (0..256)
            .map(|i| ((i % 17) as f64 - 8.0) * 1e-3 + 0.5)
            .collect(),
    };
    let encoded = ReFloatBlock::encode(&block, &config);
    let pe = ProcessingEngine::new(config);
    let segment: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2).sin() + 1.0).collect();
    group.bench_function("processing_engine_block_mvm_32x32", |b| {
        b.iter(|| pe.block_mvm(&encoded, &segment));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_crossbar
}
criterion_main!(benches);
