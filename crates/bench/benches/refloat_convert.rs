//! Conversion throughput: encoding a blocked matrix into ReFloat format (the one-time
//! cost paid before a solve) and re-encoding a solver vector (paid every iteration).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use refloat_core::vector::VectorConverter;
use refloat_core::{ReFloatConfig, ReFloatMatrix};
use refloat_matgen::generators;
use refloat_sparse::BlockedMatrix;

fn bench_convert(c: &mut Criterion) {
    let a = generators::mass_matrix_3d(24, 24, 24, 1e-12, 0.8, 3).to_csr();
    let blocked = BlockedMatrix::from_csr(&a, 7).unwrap();
    let config = ReFloatConfig::paper_default();

    let mut group = c.benchmark_group("refloat_convert");
    group.throughput(Throughput::Elements(a.nnz() as u64));
    group.bench_function("encode_matrix_blocks", |b| {
        b.iter(|| ReFloatMatrix::from_blocked(&blocked, config));
    });
    group.finish();

    let x: Vec<f64> = (0..a.ncols())
        .map(|i| ((i % 97) as f64 - 48.0) * 1e-3 + 1.0)
        .collect();
    let mut converter = VectorConverter::new(config);
    let mut out = vec![0.0; x.len()];
    let mut group = c.benchmark_group("vector_converter");
    group.throughput(Throughput::Elements(x.len() as u64));
    group.bench_function("convert_vector", |b| {
        b.iter(|| converter.convert_into(&x, &mut out));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_convert
}
criterion_main!(benches);
