//! SpMV throughput: CSR (serial and parallel) versus the blocked layout, on a
//! Table V-sized workload.  These numbers back the "functional simulation cost" notes in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use refloat_matgen::generators;
use refloat_sparse::BlockedMatrix;

fn bench_spmv(c: &mut Criterion) {
    let a = generators::wathen(40, 40, 7).to_csr();
    let blocked = BlockedMatrix::from_csr(&a, 7).unwrap();
    let x: Vec<f64> = (0..a.ncols())
        .map(|i| (i as f64 * 0.013).sin() + 1.0)
        .collect();
    let mut y = vec![0.0; a.nrows()];

    let mut group = c.benchmark_group("spmv");
    group.throughput(Throughput::Elements(a.nnz() as u64));
    group.bench_function(BenchmarkId::new("csr_serial", a.nnz()), |b| {
        b.iter(|| a.spmv_into(&x, &mut y));
    });
    group.bench_function(BenchmarkId::new("csr_parallel_4t", a.nnz()), |b| {
        b.iter(|| a.par_spmv_into(&x, &mut y, 4));
    });
    group.bench_function(BenchmarkId::new("blocked_serial", a.nnz()), |b| {
        b.iter(|| blocked.spmv_into(&x, &mut y));
    });
    group.bench_function(BenchmarkId::new("blocked_parallel_4t", a.nnz()), |b| {
        b.iter(|| blocked.par_spmv_into(&x, &mut y, 4));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spmv
}
criterion_main!(benches);
