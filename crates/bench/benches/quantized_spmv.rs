//! Per-application cost of the quantized operators relative to plain FP64 CSR SpMV —
//! the functional-simulation overhead of the ReFloat and Feinberg models.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use refloat_core::feinberg::FeinbergOperator;
use refloat_core::{ReFloatConfig, ReFloatMatrix};
use refloat_matgen::generators;
use refloat_solvers::LinearOperator;

fn bench_quantized_spmv(c: &mut Criterion) {
    let a = generators::laplacian_2d(256, 256, 0.2).to_csr();
    let x: Vec<f64> = (0..a.ncols())
        .map(|i| (i as f64 * 0.001).cos() + 1.5)
        .collect();
    let mut y = vec![0.0; a.nrows()];

    let mut csr = a.clone();
    let mut refloat = ReFloatMatrix::from_csr(&a, ReFloatConfig::paper_default());
    let mut feinberg = FeinbergOperator::new(a.clone());

    let mut group = c.benchmark_group("quantized_spmv");
    group.throughput(Throughput::Elements(a.nnz() as u64));
    group.bench_function("fp64_csr", |b| {
        b.iter(|| LinearOperator::apply(&mut csr, &x, &mut y))
    });
    group.bench_function("refloat", |b| b.iter(|| refloat.apply(&x, &mut y)));
    group.bench_function("feinberg", |b| b.iter(|| feinberg.apply(&x, &mut y)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_quantized_spmv
}
criterion_main!(benches);
