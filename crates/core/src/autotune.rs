//! Cost-model-driven per-matrix format auto-tuning.
//!
//! Every ReFloat result in the paper hinges on picking the per-matrix format
//! `(e, f)(ev, fv)`: Table VII hand-picks it per workload, and Fig. 3 / Eq. 2–3 give
//! the exact crossbar and cycle cost of each choice.  This module closes that loop
//! automatically, in the spirit of the workload-dependent precision selection of
//! *Mixed-Precision In-Memory Computing* (Le Gallo et al.): given a matrix and a
//! target tolerance, it returns the **cheapest format predicted — and then measured —
//! to converge**.
//!
//! The pipeline has three stages:
//!
//! 1. **Accuracy model** — the per-block exponent statistics (the Fig. 3d locality
//!    observation, [`crate::locality`]) bound the element-wise quantization error of a
//!    candidate.  Crucially the histogram used here is computed around the **actual
//!    Eq. 5 base** (the rounded *mean* element exponent, [`required_offset_histogram`]),
//!    not the optimally centred window of the locality report: a block whose exponent
//!    mass sits below its peak needs more one-sided reach than half its range, and
//!    mispredicting that is exactly the failure mode that makes a seemingly-covering
//!    window saturate.  Blocks inside the window only lose fraction bits (relative
//!    error `2^−f`); blocks that overflow it contribute an `O(1)` relative
//!    perturbation.  The vector side adds a graded window penalty
//!    ([`vector_window_penalty`]) for the solver iterates, whose exponent spread is
//!    unknowable at plan time.  Scaled by the condition number (estimated by
//!    `refloat_solvers::eigs`) and a safety margin, this yields a conservative bound
//!    on the achievable *true* relative residual — the classical `κ·‖δA‖/‖A‖`
//!    perturbation argument.
//! 2. **Cost model** — Eq. 2/3: `2^e + f + 1` crossbars per cluster and
//!    `(2^{ev} + fv + 1) + (2^e + f + 1) − 1` pipeline cycles per block MVM, together
//!    with the chip's crossbar capacity, which turns a cluster count into streaming
//!    rounds per SpMV.  The closed forms here deliberately mirror `reram_sim::cost`
//!    (the canonical implementation; `reram-sim` sits *above* this crate in the
//!    dependency graph, so the formulas are restated and pinned equal by the
//!    cross-crate consistency test in the workspace test suite).
//! 3. **Verification trials** — the model proposes, measurement disposes: the
//!    predicted-convergent candidates are tried cheapest-first with an actual
//!    quantized CG solve (all-ones right-hand side, the harness convention) until one
//!    reaches the tolerance in *true* residual against the exact matrix.  A format is
//!    only ever "chosen" after it has demonstrably converged on this matrix, and the
//!    measured iteration count becomes the prediction consumers compare their achieved
//!    counts against.
//!
//! A plan is deterministic and non-trivial to compute (eigen estimation plus up to
//! [`AutotuneConfig::max_trials`] quantized solves), so consumers that see a matrix
//! repeatedly should memoize the [`FormatDecision`] under the matrix fingerprint —
//! which is what `refloat-runtime` does for `SolveJob::with_auto_format`.  When *no*
//! candidate survives (κ unbounded, degraded eigen confidence, or a brutal tolerance)
//! the plan [falls back](FormatPlan::fallback) to the most accurate candidate and
//! consumers are expected to pair it with the
//! [`EscalationPolicy`](crate::escalation::EscalationPolicy) / mixed-precision
//! refinement ladder.

use std::collections::BTreeSet;

use crate::block::optimal_exponent_base;
use crate::format::{max_offset_for_bits, ReFloatConfig};
use crate::locality::{exponent_locality, LocalityReport};
use crate::matrix::ReFloatMatrix;
use refloat_solvers::eigs::{self, EigenConfidence, EigenEstimate};
use refloat_solvers::{LinearOperator, SolverConfig, SolverKind};
use refloat_sparse::stats::exponent_of;
use refloat_sparse::{BlockedMatrix, CsrMatrix};

/// The Table IV chip: `2^18` compute crossbars.
pub const TABLE_IV_CROSSBARS: u64 = 1 << 18;

/// What the auto-tuner is asked to optimize for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotuneConfig {
    /// Target *true* relative residual `‖b − A·x‖₂ / ‖b‖₂` the chosen format must
    /// reach.
    pub tolerance: f64,
    /// Block-size exponent `b` of every candidate (blocks and crossbars are
    /// `2^b × 2^b`); fixing `b` keeps all candidates on the same blocking, so cached
    /// shard partitions and encodings keyed by `b` stay geometry-compatible.
    pub b: u32,
    /// Crossbars per chip; candidates needing more clusters than fit pay streaming
    /// rounds per SpMV (§VI.B).
    pub chip_crossbars: u64,
    /// Multiplier on the predicted error floor before comparing against `tolerance`
    /// (the floor is a worst-case bound; the margin also guards the κ estimate).
    pub safety: f64,
    /// Seed of the deterministic eigen estimation.
    pub eigen_seed: u64,
    /// Verification solves attempted (cheapest predicted-convergent candidates first)
    /// before giving up and falling back.  0 disables trials: the plan then trusts the
    /// model alone and `chosen` carries no measurement.
    pub max_trials: usize,
    /// The Krylov solver the verification trials run (and whose iteration counts the
    /// measured predictions therefore describe).  Plan with the solver the real jobs
    /// will use: CG and BiCGSTAB converge differently on the same quantized operator.
    pub solver: SolverKind,
}

impl AutotuneConfig {
    /// A plan request for the given tolerance and blocking, on the Table IV chip with
    /// the default safety margin of 2 and up to 4 verification trials.
    pub fn new(tolerance: f64, b: u32) -> Self {
        assert!(
            tolerance > 0.0 && tolerance.is_finite(),
            "autotune: tolerance must be positive and finite, got {tolerance}"
        );
        assert!(
            (1..=15).contains(&b),
            "autotune: block exponent b must be in 1..=15, got {b}"
        );
        AutotuneConfig {
            tolerance,
            b,
            chip_crossbars: TABLE_IV_CROSSBARS,
            safety: 2.0,
            eigen_seed: 2023,
            max_trials: 4,
            solver: SolverKind::Cg,
        }
    }

    /// Builder: plan for a chip with a different crossbar pool.
    pub fn with_chip_crossbars(mut self, crossbars: u64) -> Self {
        assert!(crossbars >= 1, "autotune: chip needs at least one crossbar");
        self.chip_crossbars = crossbars;
        self
    }

    /// Builder: override the safety margin on the predicted error floor.
    pub fn with_safety(mut self, safety: f64) -> Self {
        assert!(safety >= 1.0, "autotune: safety margin must be ≥ 1");
        self.safety = safety;
        self
    }

    /// Builder: override the eigen-estimation seed.
    pub fn with_eigen_seed(mut self, seed: u64) -> Self {
        self.eigen_seed = seed;
        self
    }

    /// Builder: override the verification-trial budget (0 = model only).
    pub fn with_max_trials(mut self, max_trials: usize) -> Self {
        self.max_trials = max_trials;
        self
    }

    /// Builder: verify with a different Krylov solver (default CG).
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }
}

/// One scored candidate format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormatCandidate {
    /// The candidate `(b, e, f)(ev, fv)` configuration.
    pub config: ReFloatConfig,
    /// Predicted element-wise relative quantization error (matrix + vector side).
    pub predicted_error: f64,
    /// Predicted achievable true relative residual: `safety · κ · predicted_error`.
    pub predicted_floor: f64,
    /// Whether the floor is predicted to undercut the requested tolerance (always
    /// `false` when the eigen estimate is degraded — an untrusted κ must not
    /// green-light a cheap format).
    pub predicted_convergent: bool,
    /// Eq. 2 accounting: crossbars one cluster (block) of this format occupies.
    pub crossbars_per_cluster: u32,
    /// Eq. 3: pipeline cycles of one block MVM.
    pub cycles_per_block_mvm: u64,
    /// Streaming rounds per SpMV on the configured chip (1 = the matrix fits).
    pub rounds_per_spmv: u64,
    /// The ranking metric: `rounds_per_spmv · cycles_per_block_mvm`.
    pub cycles_per_spmv: u64,
    /// True relative residual a verification solve measured (`None` = not tried).
    pub measured_residual: Option<f64>,
    /// Iterations the verification solve took (`None` = not tried).
    pub measured_iterations: Option<u64>,
}

impl FormatCandidate {
    /// Whether a verification solve confirmed this candidate at the plan's tolerance.
    pub fn measured_convergent(&self, tolerance: f64) -> bool {
        self.measured_residual.is_some_and(|r| r <= tolerance)
    }
}

/// The auto-tuner's compact verdict — what the runtime memoizes per matrix
/// fingerprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormatDecision {
    /// The chosen format.
    pub format: ReFloatConfig,
    /// Estimated condition number the prediction used.
    pub kappa: f64,
    /// `true` when the eigen estimation reported degraded confidence.
    pub degraded_confidence: bool,
    /// `false` when no candidate survived prediction + verification (consumers should
    /// arm a refinement/escalation fallback).
    pub predicted_convergent: bool,
    /// Expected solver iterations to the tolerance: the verification solve's measured
    /// count when a trial ran, otherwise the `½·√κ·ln(2/τ)` Chebyshev bound for CG.
    pub predicted_iterations: u64,
    /// Predicted model cycles per SpMV of the chosen format.
    pub predicted_cycles_per_spmv: u64,
}

/// The full ranked plan for one matrix.
#[derive(Debug, Clone)]
pub struct FormatPlan {
    /// The winning candidate: the cheapest one that is predicted convergent *and*
    /// passed its verification solve — or, when nothing survives, the most accurate
    /// candidate (see [`fallback`](Self::fallback)).
    pub chosen: FormatCandidate,
    /// `true` when no candidate survived and `chosen` is merely the lowest-floor
    /// candidate; pair it with an escalation/refinement ladder.
    pub fallback: bool,
    /// Every candidate, ranked: predicted-convergent ones cheapest-first, then the
    /// rest by ascending predicted floor.
    pub candidates: Vec<FormatCandidate>,
    /// The per-block exponent-locality report (Fig. 3d view, for context).
    pub locality: LocalityReport,
    /// Histogram of per-block one-sided offset reach under the Eq. 5 base — the
    /// statistic the error model actually scores against.
    pub required_offset_histogram: Vec<usize>,
    /// The extreme-eigenvalue estimate behind κ.
    pub eigen: EigenEstimate,
    /// Condition-number estimate (`+∞` when unreliable).
    pub kappa: f64,
    /// Expected solver iterations (measured when a trial ran, κ-bound otherwise).
    pub predicted_iterations: u64,
    /// Verification solves performed.
    pub trials: usize,
    /// Non-empty blocks of the matrix at this blocking (= clusters per SpMV).
    pub num_blocks: u64,
    /// The tolerance the plan was computed for.
    pub tolerance: f64,
}

impl FormatPlan {
    /// The compact decision for memoization and telemetry.
    pub fn decision(&self) -> FormatDecision {
        FormatDecision {
            format: self.chosen.config,
            kappa: self.kappa,
            degraded_confidence: self.eigen.confidence == EigenConfidence::Degraded,
            predicted_convergent: !self.fallback,
            predicted_iterations: self.predicted_iterations,
            predicted_cycles_per_spmv: self.chosen.cycles_per_spmv,
        }
    }
}

// ---- Eq. 2/3 closed forms (mirrors of `reram_sim::cost`, pinned by the cross-crate
// consistency test; see the module docs for why they are restated here). ----

/// Crossbars per cluster for an `(e, f)` matrix format: `2^e + f + 1`.
pub fn crossbars_per_cluster(e: u32, f: u32) -> u32 {
    (1u32 << e) + f + 1
}

/// Eq. 3 pipeline cycles of one block MVM for matrix bits `(e, f)` and vector bits
/// `(ev, fv)`.
pub fn cycles_per_block_mvm(e: u32, f: u32, ev: u32, fv: u32) -> u64 {
    ((1u64 << ev) + fv as u64 + 1) + ((1u64 << e) + f as u64 + 1) - 1
}

/// The candidate grid at blocking `b`: a sweep of offset bits × fraction bits with the
/// paper's `fv = f + 5` vector margin (Table VII uses `(3, 3)(3, 8)`) and widened
/// vector-window variants (`ev ∈ {e, 5, 6}` — iterate segments routinely need more
/// offset reach than the matrix blocks), plus every Table III classical format
/// re-based onto the same blocking, so whenever the model predicts a classical format
/// suffices the tuner can pick exactly it.
pub fn candidate_grid(b: u32) -> Vec<ReFloatConfig> {
    let mut seen: BTreeSet<(u32, u32, u32, u32)> = BTreeSet::new();
    let mut out = Vec::new();
    let mut push = |e: u32, f: u32, ev: u32, fv: u32| {
        if seen.insert((e, f, ev, fv)) {
            out.push(ReFloatConfig::new(b, e, f, ev, fv));
        }
    };
    for &e in &[0u32, 2, 3, 4, 5, 6, 8] {
        for &f in &[3u32, 6, 8, 11, 16, 20, 24, 28, 32, 40, 52] {
            let fv = (f + 5).min(52);
            for ev in [e, 5, 6] {
                push(e, f, ev, fv);
            }
        }
    }
    for named in crate::formats::table_iii() {
        let c = named.config;
        push(c.e, c.f, c.ev, c.fv);
    }
    out
}

/// Histogram of the per-block **one-sided offset reach** required under the actual
/// Eq. 5 base (the rounded mean element exponent): index `k` counts blocks whose
/// extreme exponents sit `k` binades from their base, i.e. blocks representable
/// without saturation by any format with `max_offset ≥ k`.
///
/// This differs from [`crate::locality`]'s optimally-centred bit count: a block whose
/// exponent mass clusters below its peak gets a mean base near the cluster, pushing
/// the peak further from the base than half the range — precisely the blocks an
/// optimally-centred analysis mispredicts as "covered".
pub fn required_offset_histogram(blocked: &BlockedMatrix) -> Vec<usize> {
    let mut hist: Vec<usize> = Vec::new();
    for blk in blocked.blocks() {
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        let mut any = false;
        for &v in &blk.vals {
            if v == 0.0 {
                continue;
            }
            let e = exponent_of(v);
            lo = lo.min(e);
            hi = hi.max(e);
            any = true;
        }
        if !any {
            continue; // block of explicit zeros
        }
        let eb = optimal_exponent_base(blk.vals.iter());
        let required = (hi - eb).max(eb - lo).max(0) as usize;
        if hist.len() <= required {
            hist.resize(required + 1, 0);
        }
        hist[required] += 1;
    }
    hist
}

/// Fraction of non-empty blocks whose required offset reach (see
/// [`required_offset_histogram`]) exceeds the `e`-bit window `±(2^{e−1} − 1)`.
pub fn uncovered_block_fraction(histogram: &[usize], e: u32) -> f64 {
    let total: usize = histogram.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let reach = max_offset_for_bits(e).max(0) as usize;
    let uncovered: usize = histogram
        .iter()
        .enumerate()
        .filter(|(required, _)| *required > reach)
        .map(|(_, count)| count)
        .sum();
    uncovered as f64 / total as f64
}

/// Predicted element-wise relative quantization error of an `(e, f)` matrix encoding:
/// fraction truncation (`2^−f`) on covered blocks plus an `O(1)` contribution from
/// each window-overflowing (saturating) block.
pub fn predicted_element_error(histogram: &[usize], e: u32, f: u32) -> f64 {
    (2.0f64.powi(-(f as i32)) + uncovered_block_fraction(histogram, e)).min(1.0)
}

/// Graded penalty for the *vector* window: `2^{−2·max_offset(ev)}` (and 1.0 when the
/// window has no reach at all).
///
/// Solver iterates — residuals and search directions — develop a far wider per-segment
/// exponent spread than the matrix blocks, and their spread at plan time is unknowable
/// (it grows as the solve converges).  The penalty models the saturation error of a
/// segment whose elements stray past the window: every extra offset bit doubles the
/// reach and squares the penalty, which empirically tracks the achievable floors of
/// the functional simulator.  Since the model is heuristic here, predicted-convergent
/// candidates are confirmed by a verification solve before being chosen.
pub fn vector_window_penalty(ev: u32) -> f64 {
    let reach = max_offset_for_bits(ev);
    if reach <= 0 {
        1.0
    } else {
        2.0f64.powi(-2 * reach)
    }
}

/// The Chebyshev iteration bound for CG: `⌈½·√κ·ln(2/τ)⌉ + 1`, capped at 10⁷ (and at
/// the cap for unbounded κ).
pub fn predicted_cg_iterations(kappa: f64, tolerance: f64) -> u64 {
    const CAP: u64 = 10_000_000;
    if !kappa.is_finite() || kappa <= 0.0 {
        return CAP;
    }
    let bound = 0.5 * kappa.sqrt() * (2.0 / tolerance).ln();
    if !bound.is_finite() || bound >= CAP as f64 {
        CAP
    } else {
        bound.ceil() as u64 + 1
    }
}

/// A shared-reference adapter so the eigen estimation (which takes `&mut impl
/// LinearOperator` for operators with scratch state) can run over a borrowed CSR
/// matrix without cloning its arrays.
struct CsrRef<'a>(&'a CsrMatrix);

impl LinearOperator for CsrRef<'_> {
    fn nrows(&self) -> usize {
        self.0.nrows()
    }

    fn ncols(&self) -> usize {
        self.0.ncols()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.0.spmv_into(x, y);
    }

    fn name(&self) -> String {
        "fp64 (exact)".to_string()
    }
}

/// Runs one verification solve of `candidate` on `a` (all-ones right-hand side, the
/// plan's solver kind) and returns `(true relative residual, iterations)`.
fn verification_solve(
    a: &CsrMatrix,
    config: ReFloatConfig,
    solver: SolverKind,
    tolerance: f64,
    max_iterations: usize,
) -> (f64, u64) {
    let b = vec![1.0; a.nrows()];
    let mut op = ReFloatMatrix::from_csr(a, config);
    let result = solver.solve(
        &mut op,
        &b,
        &SolverConfig::relative(tolerance)
            .with_max_iterations(max_iterations)
            .with_trace(false),
    );
    (a.relative_residual(&b, &result.x), result.iterations as u64)
}

/// Scores every candidate of [`candidate_grid`] for `a`, verifies the cheapest
/// predicted-convergent ones by actually solving, and returns the ranked plan.
///
/// Deterministic in `(a, cfg)`.  The expensive parts are one blocking pass (O(nnz)),
/// the eigen estimation (a few CG solves) and up to [`AutotuneConfig::max_trials`]
/// quantized verification solves — memoize the [`FormatDecision`] per matrix
/// fingerprint when the same matrix recurs.
pub fn plan_format(a: &CsrMatrix, cfg: &AutotuneConfig) -> FormatPlan {
    let blocked =
        BlockedMatrix::from_csr(a, cfg.b).expect("valid block exponent enforced by AutotuneConfig");
    let locality = exponent_locality(&blocked);
    let hist = required_offset_histogram(&blocked);
    let num_blocks = blocked.num_blocks() as u64;

    let eigen = eigs::estimate_extremes(&mut CsrRef(a), cfg.eigen_seed);
    let kappa = eigen.condition_number();
    let trusted = eigen.confidence == EigenConfidence::Converged && kappa.is_finite();
    let kappa_bound_iterations = predicted_cg_iterations(kappa, cfg.tolerance);

    let mut candidates: Vec<FormatCandidate> = candidate_grid(cfg.b)
        .into_iter()
        .map(|config| {
            let err_m = predicted_element_error(&hist, config.e, config.f);
            let err_v =
                (2.0f64.powi(-(config.fv as i32)) + vector_window_penalty(config.ev)).min(1.0);
            let predicted_error = err_m + err_v;
            let predicted_floor = cfg.safety * kappa * predicted_error;
            let predicted_convergent = trusted && predicted_floor <= cfg.tolerance;
            let crossbars = crossbars_per_cluster(config.e, config.f);
            let cycles = cycles_per_block_mvm(config.e, config.f, config.ev, config.fv);
            let clusters_available = (cfg.chip_crossbars / crossbars as u64).max(1);
            let rounds_per_spmv = num_blocks.div_ceil(clusters_available).max(1);
            FormatCandidate {
                config,
                predicted_error,
                predicted_floor,
                predicted_convergent,
                crossbars_per_cluster: crossbars,
                cycles_per_block_mvm: cycles,
                rounds_per_spmv,
                cycles_per_spmv: rounds_per_spmv * cycles,
                measured_residual: None,
                measured_iterations: None,
            }
        })
        .collect();

    // Rank: predicted-convergent candidates cheapest-first (ties → fewer crossbars,
    // then fewer total value bits), then the rest most-accurate-first.
    candidates.sort_by(|a, b| {
        b.predicted_convergent
            .cmp(&a.predicted_convergent)
            .then_with(|| {
                if a.predicted_convergent {
                    a.cycles_per_spmv
                        .cmp(&b.cycles_per_spmv)
                        .then(a.crossbars_per_cluster.cmp(&b.crossbars_per_cluster))
                        .then(
                            (a.config.matrix_value_bits() + a.config.vector_value_bits()).cmp(
                                &(b.config.matrix_value_bits() + b.config.vector_value_bits()),
                            ),
                        )
                } else {
                    a.predicted_floor
                        .partial_cmp(&b.predicted_floor)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cycles_per_spmv.cmp(&b.cycles_per_spmv))
                }
            })
    });

    // Verification: walk the predicted-convergent prefix cheapest-first and keep the
    // first candidate whose *measured* true residual meets the tolerance.
    let trial_cap = (4 * kappa_bound_iterations as usize + 100).min(3_000);
    let mut trials = 0usize;
    let mut chosen_index: Option<usize> = None;
    for (i, candidate) in candidates.iter_mut().enumerate() {
        if !candidate.predicted_convergent || trials >= cfg.max_trials {
            break;
        }
        let (residual, iterations) =
            verification_solve(a, candidate.config, cfg.solver, cfg.tolerance, trial_cap);
        candidate.measured_residual = Some(residual);
        candidate.measured_iterations = Some(iterations);
        trials += 1;
        if residual <= cfg.tolerance {
            chosen_index = Some(i);
            break;
        }
    }
    // With trials disabled, trust the model's front-runner outright.
    if cfg.max_trials == 0 && candidates[0].predicted_convergent {
        chosen_index = Some(0);
    }

    let (chosen, fallback) = match chosen_index {
        Some(i) => (candidates[i], false),
        // Nothing survived: hand back the most accurate candidate (the non-convergent
        // ranking is floor-ascending; if *everything* was predicted convergent but
        // failed its trial, the front-runner is still the least-bad answer).
        None => {
            let best = candidates
                .iter()
                .min_by(|a, b| {
                    a.predicted_floor
                        .partial_cmp(&b.predicted_floor)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .copied()
                .expect("candidate grid is never empty");
            (best, true)
        }
    };
    let predicted_iterations = chosen
        .measured_iterations
        .filter(|_| !fallback)
        .unwrap_or(kappa_bound_iterations);

    FormatPlan {
        chosen,
        fallback,
        candidates,
        locality,
        required_offset_histogram: hist,
        eigen,
        kappa,
        predicted_iterations,
        trials,
        num_blocks,
        tolerance: cfg.tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::generators;

    #[test]
    fn candidate_grid_is_deduplicated_and_includes_table_iii_points() {
        let grid = candidate_grid(4);
        let mut keys: Vec<(u32, u32, u32, u32)> =
            grid.iter().map(|c| (c.e, c.f, c.ev, c.fv)).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "grid must not contain duplicates");
        assert!(grid.iter().all(|c| c.b == 4));
        // The rebased FP64 and Int8 classical points are present, as are the widened
        // vector-window variants.
        assert!(grid.iter().any(|c| (c.e, c.f) == (11, 52)));
        assert!(grid.iter().any(|c| (c.e, c.f, c.fv) == (0, 7, 7)));
        assert!(grid.iter().any(|c| (c.e, c.ev) == (3, 5)));
    }

    #[test]
    fn required_offset_histogram_uses_the_mean_base_not_the_centred_window() {
        // 15 entries at exponent 0 and one at exponent 4: the range is 4 (a ±2 window
        // centred at 2 would cover it), but the Eq. 5 mean base is 0, so the outlier
        // needs reach 4 — only max_offset ≥ 4 (e ≥ 4) truly avoids saturation.
        let mut coo = refloat_sparse::CooMatrix::new(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                coo.push(i, j, if (i, j) == (0, 0) { 16.0 } else { 1.0 });
            }
        }
        let blocked = BlockedMatrix::from_csr(&coo.to_csr(), 2).unwrap();
        let hist = required_offset_histogram(&blocked);
        assert_eq!(hist.iter().sum::<usize>(), 1);
        assert_eq!(hist.len(), 5, "reach-4 block → histogram up to index 4");
        assert_eq!(hist[4], 1);
        assert_eq!(uncovered_block_fraction(&hist, 4), 0.0); // max_offset(4) = 7 ≥ 4
        assert_eq!(uncovered_block_fraction(&hist, 3), 1.0); // max_offset(3) = 3 < 4
    }

    #[test]
    fn uncovered_fraction_follows_the_histogram() {
        // 3 blocks needing reach 1, 1 block needing reach 5.
        let hist = vec![0usize, 3, 0, 0, 0, 1];
        assert_eq!(uncovered_block_fraction(&hist, 4), 0.0); // reach 7 covers all
        assert_eq!(uncovered_block_fraction(&hist, 3), 0.25); // reach 3 misses the 5
        assert_eq!(uncovered_block_fraction(&hist, 2), 0.25); // reach 1 covers the 3s
        assert_eq!(uncovered_block_fraction(&hist, 0), 1.0); // no reach at all
        assert_eq!(uncovered_block_fraction(&[], 3), 0.0);
        // Covered blocks only pay fraction truncation.
        assert!((predicted_element_error(&hist, 4, 8) - 2.0f64.powi(-8)).abs() < 1e-15);
        // Saturating blocks dominate the error.
        assert!(predicted_element_error(&hist, 2, 52) >= 0.25);
    }

    #[test]
    fn vector_penalty_decays_with_window_reach() {
        assert_eq!(vector_window_penalty(0), 1.0);
        assert_eq!(vector_window_penalty(1), 1.0); // max_offset(1) = 0: no reach
        assert_eq!(vector_window_penalty(2), 0.25);
        assert!(vector_window_penalty(5) < vector_window_penalty(4));
        assert_eq!(vector_window_penalty(5), 2.0f64.powi(-30));
    }

    #[test]
    fn iteration_bound_tracks_kappa_and_handles_unbounded() {
        let easy = predicted_cg_iterations(4.0, 1e-8);
        let hard = predicted_cg_iterations(1e4, 1e-8);
        assert!(easy < hard);
        assert_eq!(predicted_cg_iterations(f64::INFINITY, 1e-8), 10_000_000);
        assert_eq!(predicted_cg_iterations(-1.0, 1e-8), 10_000_000);
    }

    #[test]
    fn plan_picks_a_cheap_verified_format_on_a_well_behaved_matrix() {
        let a = generators::laplacian_2d(24, 24, 0.3).to_csr();
        let cfg = AutotuneConfig::new(1e-6, 4);
        let plan = plan_format(&a, &cfg);
        assert!(!plan.fallback, "laplacian must have a surviving candidate");
        assert!(plan.chosen.predicted_convergent);
        // The chosen format demonstrably reached the tolerance in true residual.
        assert!(
            plan.chosen.measured_convergent(1e-6),
            "chosen {} measured residual {:?}",
            plan.chosen.config,
            plan.chosen.measured_residual
        );
        assert!(plan.trials >= 1);
        // It undercuts the classical FP32/FP64 points in model cycles.
        let fp32_cycles = cycles_per_block_mvm(8, 23, 8, 23);
        let fp64_cycles = cycles_per_block_mvm(11, 52, 11, 52);
        assert!(plan.chosen.cycles_per_spmv < fp32_cycles);
        assert!(plan.chosen.cycles_per_spmv < fp64_cycles);
        // Ranking invariant: only verification failures sit between the pick and the
        // front of the predicted-convergent prefix.
        for c in &plan.candidates {
            if c.predicted_convergent && c.cycles_per_spmv < plan.chosen.cycles_per_spmv {
                assert!(
                    c.measured_residual.is_some_and(|r| r > 1e-6),
                    "cheaper candidate {} skipped without a failed trial",
                    c.config
                );
            }
        }
        // The iteration prediction comes from the verification solve.
        assert_eq!(
            Some(plan.predicted_iterations),
            plan.chosen.measured_iterations
        );
    }

    #[test]
    fn badly_scaled_matrix_still_gets_a_covering_window() {
        // The crystm-like mass matrix has tiny (≈1e-12) entries with several binades
        // of per-block spread: e = 0 candidates (Int8/Int16/BFP64 points) must be
        // ruled out, and the chosen matrix window must cover the reach histogram.
        let a = generators::mass_matrix_3d(6, 6, 6, 1e-12, 0.8, 5).to_csr();
        let plan = plan_format(&a, &AutotuneConfig::new(1e-6, 4));
        assert!(!plan.fallback);
        assert!(plan.chosen.config.e >= 2, "chosen {}", plan.chosen.config);
        assert!(plan.chosen.measured_convergent(1e-6));
        assert_eq!(
            uncovered_block_fraction(&plan.required_offset_histogram, plan.chosen.config.e),
            0.0
        );
    }

    #[test]
    fn numerically_singular_matrix_falls_back_with_degraded_confidence() {
        // κ ≈ 1e30: the inner CG of the inverse iteration cannot converge, eigen
        // confidence degrades, and no candidate may be predicted convergent off an
        // untrusted κ — so no verification solves are even attempted.
        let a = generators::logspace_diagonal(3000, 1e-30, 1.0).to_csr();
        let plan = plan_format(&a, &AutotuneConfig::new(1e-8, 4));
        assert!(plan.fallback);
        assert_eq!(plan.eigen.confidence, EigenConfidence::Degraded);
        assert!(plan.candidates.iter().all(|c| !c.predicted_convergent));
        assert_eq!(plan.trials, 0);
        let decision = plan.decision();
        assert!(decision.degraded_confidence);
        assert!(!decision.predicted_convergent);
        assert_eq!(decision.predicted_iterations, 10_000_000);
    }

    #[test]
    fn smaller_chips_charge_streaming_rounds_in_the_ranking() {
        let a = generators::laplacian_2d(32, 32, 0.3).to_csr();
        // A chip so small that wide formats need several streaming rounds.
        let cfg = AutotuneConfig::new(1e-6, 4)
            .with_chip_crossbars(1 << 12)
            .with_max_trials(0);
        let plan = plan_format(&a, &cfg);
        let fp64 = plan
            .candidates
            .iter()
            .find(|c| (c.config.e, c.config.f) == (11, 52))
            .expect("FP64 point in the grid");
        assert!(
            fp64.rounds_per_spmv > 1,
            "FP64 must overflow a 4096-crossbar chip"
        );
        assert_eq!(
            fp64.cycles_per_spmv,
            fp64.rounds_per_spmv * fp64.cycles_per_block_mvm
        );
        assert!(plan.chosen.cycles_per_spmv < fp64.cycles_per_spmv);
    }

    #[test]
    fn zero_trials_trusts_the_model_and_records_no_measurements() {
        let a = generators::laplacian_2d(16, 16, 0.4).to_csr();
        let plan = plan_format(&a, &AutotuneConfig::new(1e-4, 4).with_max_trials(0));
        assert!(!plan.fallback);
        assert_eq!(plan.trials, 0);
        assert!(plan.chosen.measured_residual.is_none());
        assert_eq!(
            plan.predicted_iterations,
            predicted_cg_iterations(plan.kappa, 1e-4)
        );
    }
}
