//! The vector converter (Fig. 6d): per-segment re-encoding of the solver vectors.
//!
//! Before every SpMV the input vector is split into segments of length `2^b`; each
//! segment gets its own exponent base `ebv` (the rounded mean of its element exponents,
//! the same Eq. 5 optimum used for matrix blocks), and each element is re-encoded with
//! `ev` offset bits and `fv` fraction bits.  Because the base is recomputed *every
//! iteration*, the representable window tracks the solver vectors as they shrink toward
//! convergence — this is exactly the property the Feinberg baseline lacks (§III.C).

use crate::block::optimal_exponent_base;
use crate::format::ReFloatConfig;
use crate::scalar::{decompose, pow2, quantize_fraction};

/// Statistics of one vector conversion, useful for instrumentation and tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConversionStats {
    /// Number of elements whose exponent offset saturated (above or below the window).
    pub saturated: usize,
    /// Number of elements flushed to zero (only in `FlushToZero` mode).
    pub flushed: usize,
    /// Number of nonzero elements converted.
    pub nonzero: usize,
}

/// Converts solver vectors into ReFloat segment encoding.
///
/// The converter owns its scratch statistics; one instance per operator is enough.
#[derive(Debug, Clone)]
pub struct VectorConverter {
    config: ReFloatConfig,
    /// Per-segment exponent bases of the most recent conversion.
    last_bases: Vec<i32>,
    /// Statistics of the most recent conversion.
    last_stats: ConversionStats,
}

impl VectorConverter {
    /// Creates a converter for the given format configuration.
    pub fn new(config: ReFloatConfig) -> Self {
        VectorConverter {
            config,
            last_bases: Vec::new(),
            last_stats: ConversionStats::default(),
        }
    }

    /// The format configuration in use.
    pub fn config(&self) -> &ReFloatConfig {
        &self.config
    }

    /// The per-segment exponent bases `ebv` chosen by the most recent conversion.
    pub fn last_bases(&self) -> &[i32] {
        &self.last_bases
    }

    /// Statistics of the most recent conversion.
    pub fn last_stats(&self) -> &ConversionStats {
        &self.last_stats
    }

    /// Quantizes `x` segment-by-segment into `out` (both length `n`), returning nothing;
    /// bases and statistics are retrievable afterwards.
    ///
    /// # Panics
    /// Panics if `out.len() != x.len()`.
    pub fn convert_into(&mut self, x: &[f64], out: &mut [f64]) {
        assert_eq!(
            x.len(),
            out.len(),
            "vector converter: output length mismatch"
        );
        let seg = self.config.block_size();
        let nseg = x.len().div_ceil(seg);
        self.last_bases.clear();
        self.last_bases.reserve(nseg);
        let mut stats = ConversionStats::default();

        let max_off = self.config.max_offset_vector();
        let frac_bits = self.config.fv;
        let rounding = self.config.rounding;
        let underflow = self.config.underflow;

        for s in 0..nseg {
            let lo = s * seg;
            let hi = (lo + seg).min(x.len());
            let segment = &x[lo..hi];
            let ebv = optimal_exponent_base(segment.iter());
            self.last_bases.push(ebv);
            for (xi, oi) in segment.iter().zip(out[lo..hi].iter_mut()) {
                match decompose(*xi) {
                    None => *oi = 0.0,
                    Some(d) => {
                        stats.nonzero += 1;
                        let offset = d.exponent - ebv;
                        let clamped = if offset > max_off {
                            stats.saturated += 1;
                            max_off
                        } else if offset < -max_off {
                            match underflow {
                                crate::format::UnderflowMode::Saturate => {
                                    stats.saturated += 1;
                                    -max_off
                                }
                                crate::format::UnderflowMode::FlushToZero => {
                                    stats.flushed += 1;
                                    *oi = 0.0;
                                    continue;
                                }
                            }
                        } else {
                            offset
                        };
                        let mut frac = quantize_fraction(d.fraction, frac_bits, rounding);
                        let mut exp = ebv + clamped;
                        if frac >= 2.0 {
                            frac /= 2.0;
                            if clamped < max_off {
                                exp += 1;
                            }
                        }
                        let mag = frac * pow2(exp);
                        *oi = if d.negative { -mag } else { mag };
                    }
                }
            }
        }
        self.last_stats = stats;
    }

    /// Allocating convenience wrapper around [`convert_into`](Self::convert_into).
    pub fn convert(&mut self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        self.convert_into(x, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::UnderflowMode;
    use proptest::prelude::*;
    use refloat_sparse::vecops;

    #[test]
    fn conversion_error_is_small_for_well_scaled_segments() {
        let config = ReFloatConfig::new(3, 3, 8, 3, 8);
        let mut conv = VectorConverter::new(config);
        let x: Vec<f64> = (0..64).map(|i| ((i as f64) * 0.37).sin() + 1.5).collect();
        let q = conv.convert(&x);
        assert!(vecops::rel_err(&q, &x) < 2.0 * 2.0f64.powi(-8));
        assert_eq!(conv.last_bases().len(), 8);
        assert_eq!(conv.last_stats().flushed, 0);
    }

    #[test]
    fn bases_adapt_per_segment_and_per_call() {
        // Two segments with wildly different scales get different bases; scaling the
        // vector between calls moves the bases — the adaptivity the paper relies on.
        let config = ReFloatConfig::new(2, 3, 8, 3, 8);
        let mut conv = VectorConverter::new(config);
        let mut x = vec![1.0e-9; 4];
        x.extend_from_slice(&[1.0e9; 4]);
        let q1 = conv.convert(&x);
        let bases1 = conv.last_bases().to_vec();
        assert!(bases1[0] < -25 && bases1[1] > 25, "bases {bases1:?}");
        assert!(vecops::rel_err(&q1, &x) < 1e-2);

        let scaled: Vec<f64> = x.iter().map(|v| v * 2.0f64.powi(-40)).collect();
        let q2 = conv.convert(&scaled);
        let bases2 = conv.last_bases().to_vec();
        assert_eq!(bases2[0], bases1[0] - 40);
        assert!(vecops::rel_err(&q2, &scaled) < 1e-2);
    }

    #[test]
    fn zeros_and_short_tail_segments_are_handled() {
        let config = ReFloatConfig::new(3, 3, 8, 3, 8);
        let mut conv = VectorConverter::new(config);
        let x = vec![0.0; 11]; // not a multiple of the segment length
        let q = conv.convert(&x);
        assert_eq!(q, x);
        assert_eq!(conv.last_bases().len(), 2);
        assert_eq!(conv.last_stats().nonzero, 0);
    }

    #[test]
    fn saturation_vs_flush_statistics() {
        let config = ReFloatConfig::new(2, 2, 8, 2, 8); // offsets only span ±1
        let x = vec![1.0, 2.0f64.powi(-30), 4.0, 1.0];
        let mut sat = VectorConverter::new(config);
        let _ = sat.convert(&x);
        assert!(sat.last_stats().saturated >= 1);
        assert_eq!(sat.last_stats().flushed, 0);

        let mut ftz = VectorConverter::new(config.with_underflow(UnderflowMode::FlushToZero));
        let q = ftz.convert(&x);
        assert_eq!(ftz.last_stats().flushed, 1);
        assert_eq!(q[1], 0.0);
    }

    proptest! {
        #[test]
        fn conversion_preserves_signs_and_zero_pattern(
            x in proptest::collection::vec(-1e6f64..1e6, 1..200),
        ) {
            let mut conv = VectorConverter::new(ReFloatConfig::paper_default());
            let q = conv.convert(&x);
            prop_assert_eq!(q.len(), x.len());
            for (&orig, &quant) in x.iter().zip(q.iter()) {
                if orig == 0.0 {
                    prop_assert_eq!(quant, 0.0);
                } else if quant != 0.0 {
                    prop_assert_eq!(orig.is_sign_negative(), quant.is_sign_negative());
                }
            }
        }

        #[test]
        fn segment_error_is_bounded_relative_to_segment_max(
            x in proptest::collection::vec(0.5f64..2.0e3, 128),
        ) {
            // For positive segments spanning ≤ 12 binades, ev = 3 covers offsets ±3 from
            // the mean; elements further away saturate but the error stays bounded by
            // the segment maximum times 2^-fv plus the saturation window error.
            let config = ReFloatConfig::paper_default();
            let mut conv = VectorConverter::new(config);
            let q = conv.convert(&x);
            let max = x.iter().cloned().fold(0.0f64, f64::max);
            for (&orig, &quant) in x.iter().zip(q.iter()) {
                prop_assert!((quant - orig).abs() <= max, "orig {orig} quant {quant}");
            }
        }
    }
}
