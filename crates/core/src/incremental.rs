//! Incremental re-encoding for sequences of closely-related matrices.
//!
//! Transient workloads submit a chain of matrices where step *N* differs from step
//! *N−1* in a small fraction of entries (time-step drift, coefficient jitter).  A
//! from-scratch [`ReFloatMatrix::from_csr`] re-quantizes — and, on the accelerator,
//! re-programs — every crossbar cluster on every step, even though most blocks are
//! bitwise unchanged.  [`reencode_incremental`] instead diffs the new matrix against
//! the previous step block by block:
//!
//! * **clean** blocks (identical structure and bitwise-identical values) reuse the
//!   previous encoding outright — zero quantization work, zero reprogramming;
//! * **dirty** blocks are re-encoded; when the fresh Eq. 5 exponent base equals the
//!   previous one, the changed values stayed inside the block's offset window and only
//!   the *changed* crossbar cells need reprogramming (a partial write);
//! * blocks whose base moved — or that are new — shift every element's offset/code,
//!   so the whole cluster is rewritten.
//!
//! Because [`ReFloatBlock::encode`] is a pure function of the block's values and the
//! format, reusing a clean block's encoding is *bitwise identical* to re-encoding it;
//! the incremental result therefore equals a from-scratch encode of the new matrix,
//! block for block, bit for bit.  Tests enforce this across perturbation magnitudes
//! up to the all-blocks-dirty worst case.

use crate::block::ReFloatBlock;
use crate::matrix::ReFloatMatrix;
use refloat_sparse::{blocked::Block, BlockedMatrix, CsrMatrix};

/// What the delta re-encode touched, in blocks and crossbar cells.
///
/// "Cells" are encoded non-zeros — the crossbar devices that hold a value.  The
/// reprogramming charge is what a chip would actually rewrite: nothing for reused
/// blocks, the changed cells for in-window partial writes, the whole block for
/// base-shifted or new blocks, plus clearing writes for blocks that vanished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Non-empty blocks in the new matrix.
    pub blocks_total: usize,
    /// Blocks bitwise-unchanged from the previous step (encoding cloned, no write).
    pub blocks_reused: usize,
    /// Dirty blocks whose exponent base survived: only changed cells rewritten.
    pub blocks_partial: usize,
    /// Dirty blocks whose base moved, plus blocks new in this step: full rewrite.
    pub blocks_full: usize,
    /// Blocks present in the previous step but absent from the new matrix (their
    /// cells are cleared and charged to [`cells_reprogrammed`](Self::cells_reprogrammed)).
    pub blocks_vanished: usize,
    /// Encoded non-zeros in the new matrix.
    pub cells_total: u64,
    /// Crossbar cells actually rewritten (changed + fully-rewritten + cleared).
    pub cells_reprogrammed: u64,
}

impl IncrementalStats {
    /// Blocks that went through the quantizer again (partial + full).
    pub fn blocks_reencoded(&self) -> usize {
        self.blocks_partial + self.blocks_full
    }

    /// Fraction of the new matrix's cells that were rewritten.  Can exceed 1 only in
    /// the degenerate case where clearing vanished blocks dominates a shrinking matrix.
    pub fn reprogram_fraction(&self) -> f64 {
        if self.cells_total == 0 {
            0.0
        } else {
            self.cells_reprogrammed as f64 / self.cells_total as f64
        }
    }

    /// Fraction of blocks reused verbatim.
    pub fn reuse_fraction(&self) -> f64 {
        if self.blocks_total == 0 {
            0.0
        } else {
            self.blocks_reused as f64 / self.blocks_total as f64
        }
    }
}

/// Result of [`reencode_incremental`]: the encoded matrix plus the delta accounting.
#[derive(Debug, Clone)]
pub struct IncrementalEncode {
    /// The new encoded matrix — bitwise identical to `ReFloatMatrix::from_csr(a, …)`.
    pub matrix: ReFloatMatrix,
    /// What the delta touched.
    pub stats: IncrementalStats,
}

/// `true` when two raw blocks hold the same entries at the same positions with
/// bitwise-identical values (`f64::to_bits`, so `-0.0 ≠ 0.0` and NaNs never match —
/// strictly conservative: a mismatch only ever costs a redundant re-encode).
fn blocks_bitwise_equal(a: &Block, b: &Block) -> bool {
    a.rows == b.rows
        && a.cols == b.cols
        && a.vals.len() == b.vals.len()
        && a.vals
            .iter()
            .zip(b.vals.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Counts entries that differ between two sorted blocks (changed values, plus entries
/// present in only one of them).  Both blocks come from `BlockedMatrix::from_csr`, so
/// their entries are sorted by `(ii, jj)`.
fn changed_cells(prev: &Block, next: &Block) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut changed = 0u64;
    while i < prev.vals.len() && j < next.vals.len() {
        let pk = (prev.rows[i], prev.cols[i]);
        let nk = (next.rows[j], next.cols[j]);
        match pk.cmp(&nk) {
            std::cmp::Ordering::Less => {
                changed += 1; // cleared cell
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                changed += 1; // newly written cell
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if prev.vals[i].to_bits() != next.vals[j].to_bits() {
                    changed += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    changed + (prev.vals.len() - i) as u64 + (next.vals.len() - j) as u64
}

/// Re-encodes `a` by diffing against the previous step's encoding.
///
/// `previous` is the encoded matrix of the previous step and `previous_source` the raw
/// CSR it was encoded from (the encoding stores only quantized values, so the raw
/// predecessor is needed to detect bitwise-clean blocks).  The result is **bitwise
/// identical** to `ReFloatMatrix::from_csr(a, *previous.config())`; the stats report
/// how little work that took.
///
/// # Panics
/// Panics if the three matrices disagree on dimensions, or if `previous_source` does
/// not re-encode to `previous`'s block set (i.e. it is not actually the predecessor's
/// source).
pub fn reencode_incremental(
    previous: &ReFloatMatrix,
    previous_source: &CsrMatrix,
    a: &CsrMatrix,
) -> IncrementalEncode {
    let config = *previous.config();
    assert_eq!(
        (previous_source.nrows(), previous_source.ncols()),
        (a.nrows(), a.ncols()),
        "reencode_incremental: matrix dimensions changed between steps"
    );

    let prev_blocked = BlockedMatrix::from_csr(previous_source, config.b)
        .expect("valid block exponent from a validated ReFloatConfig");
    let next_blocked = BlockedMatrix::from_csr(a, config.b)
        .expect("valid block exponent from a validated ReFloatConfig");
    let prev_encoded = previous.blocks();
    assert_eq!(
        prev_blocked.num_blocks(),
        prev_encoded.len(),
        "reencode_incremental: previous_source is not the source of the previous encoding"
    );

    let prev_blocks = prev_blocked.blocks();
    let next_blocks = next_blocked.blocks();
    let mut stats = IncrementalStats {
        blocks_total: next_blocks.len(),
        ..IncrementalStats::default()
    };
    let mut encoded = Vec::with_capacity(next_blocks.len());

    // Both block lists are sorted by (block_row, block_col): merge-walk them.
    let mut p = 0;
    for next in next_blocks {
        let key = (next.block_row, next.block_col);
        while p < prev_blocks.len() && (prev_blocks[p].block_row, prev_blocks[p].block_col) < key {
            // A block that existed last step has no entries any more: clear its cells.
            stats.blocks_vanished += 1;
            stats.cells_reprogrammed += prev_blocks[p].nnz() as u64;
            p += 1;
        }
        stats.cells_total += next.nnz() as u64;
        let prev_match = (p < prev_blocks.len()
            && (prev_blocks[p].block_row, prev_blocks[p].block_col) == key)
            .then(|| {
                let m = (&prev_blocks[p], &prev_encoded[p]);
                p += 1;
                m
            });
        match prev_match {
            Some((prev_raw, prev_enc)) if blocks_bitwise_equal(prev_raw, next) => {
                // Clean: the encoding is a pure function of (values, config), so the
                // previous block *is* the from-scratch encoding of this block.
                stats.blocks_reused += 1;
                encoded.push(prev_enc.clone());
            }
            Some((prev_raw, prev_enc)) => {
                let fresh = ReFloatBlock::encode(next, &config);
                if fresh.eb == prev_enc.eb {
                    // Values moved but stayed inside the block's offset window: only
                    // the changed cells need new device writes.
                    stats.blocks_partial += 1;
                    stats.cells_reprogrammed += changed_cells(prev_raw, next);
                } else {
                    stats.blocks_full += 1;
                    stats.cells_reprogrammed += fresh.nnz() as u64;
                }
                encoded.push(fresh);
            }
            None => {
                let fresh = ReFloatBlock::encode(next, &config);
                stats.blocks_full += 1;
                stats.cells_reprogrammed += fresh.nnz() as u64;
                encoded.push(fresh);
            }
        }
    }
    while p < prev_blocks.len() {
        stats.blocks_vanished += 1;
        stats.cells_reprogrammed += prev_blocks[p].nnz() as u64;
        p += 1;
    }

    IncrementalEncode {
        matrix: ReFloatMatrix::from_parts(a.nrows(), a.ncols(), config, encoded),
        stats,
    }
}

/// Asserts that two encoded matrices are bitwise identical, block for block — the
/// incremental-encode guarantee, exposed so benches and integration tests can check it
/// on live runtime objects.
///
/// # Panics
/// Panics with a descriptive message on the first differing block.
pub fn assert_bitwise_identical(incremental: &ReFloatMatrix, scratch: &ReFloatMatrix) {
    assert_eq!(
        incremental.num_blocks(),
        scratch.num_blocks(),
        "encodings disagree on block count"
    );
    for (inc, full) in incremental.blocks().iter().zip(scratch.blocks().iter()) {
        assert_eq!(
            (inc.block_row, inc.block_col),
            (full.block_row, full.block_col),
            "encodings disagree on block placement"
        );
        let same = inc.eb == full.eb
            && inc.rows == full.rows
            && inc.cols == full.cols
            && inc.signs == full.signs
            && inc.offsets == full.offsets
            && inc.fraction_codes == full.fraction_codes
            && inc.decoded.len() == full.decoded.len()
            && inc
                .decoded
                .iter()
                .zip(full.decoded.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(
            same,
            "block ({}, {}) differs between incremental and from-scratch encode",
            inc.block_row, inc.block_col
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ReFloatConfig;
    use refloat_matgen::fem::poisson_2d;
    use refloat_matgen::transient::{perturb_symmetric_pairs, TransientChain, TransientSpec};

    fn config() -> ReFloatConfig {
        // Small blocks so the test matrices span many blocks; a wide fraction keeps
        // the quantized operators close to the raw values.
        ReFloatConfig::new(3, 3, 13, 3, 13)
    }

    #[test]
    fn identical_matrix_reuses_every_block_and_reprograms_nothing() {
        let a = poisson_2d(12, 10, 0.2, 3).to_csr();
        let previous = ReFloatMatrix::from_csr(&a, config());
        let inc = reencode_incremental(&previous, &a, &a);
        assert_eq!(inc.stats.blocks_reused, inc.stats.blocks_total);
        assert_eq!(inc.stats.blocks_reencoded(), 0);
        assert_eq!(inc.stats.cells_reprogrammed, 0);
        assert_eq!(inc.stats.reprogram_fraction(), 0.0);
        assert_bitwise_identical(&inc.matrix, &ReFloatMatrix::from_csr(&a, config()));
    }

    #[test]
    fn incremental_encode_is_bitwise_identical_across_perturbation_magnitudes() {
        // Property sweep: from barely-touched to all-blocks-dirty, the incremental
        // encode must equal the from-scratch encode bit for bit.
        let base = poisson_2d(14, 12, 0.3, 9).to_csr();
        let previous = ReFloatMatrix::from_csr(&base, config());
        for (sigma, fraction, seed) in [
            (1e-6, 0.01, 1u64),
            (0.01, 0.1, 2),
            (0.1, 0.5, 3),
            (0.5, 1.0, 4), // every entry perturbed: the all-dirty worst case
            (4.0, 1.0, 5), // violent magnitude swings force base changes
        ] {
            let next = perturb_symmetric_pairs(&base, sigma, fraction, seed);
            let inc = reencode_incremental(&previous, &base, &next);
            let scratch = ReFloatMatrix::from_csr(&next, config());
            assert_bitwise_identical(&inc.matrix, &scratch);
            assert_eq!(
                inc.stats.blocks_total,
                inc.stats.blocks_reused + inc.stats.blocks_reencoded()
            );
            assert_eq!(inc.stats.cells_total, scratch.nnz() as u64);
            assert!(inc.stats.cells_reprogrammed <= inc.stats.cells_total);
        }
    }

    #[test]
    fn all_dirty_worst_case_reuses_nothing() {
        let base = poisson_2d(10, 10, 0.2, 5).to_csr();
        let previous = ReFloatMatrix::from_csr(&base, config());
        let next = perturb_symmetric_pairs(&base, 0.3, 1.0, 7);
        let inc = reencode_incremental(&previous, &base, &next);
        assert_eq!(inc.stats.blocks_reused, 0);
        assert_eq!(inc.stats.blocks_reencoded(), inc.stats.blocks_total);
        assert_bitwise_identical(&inc.matrix, &ReFloatMatrix::from_csr(&next, config()));
    }

    #[test]
    fn local_drift_reuses_most_blocks_and_charges_only_touched_cells() {
        let base = poisson_2d(16, 14, 0.2, 11);
        let spec = TransientSpec::default()
            .with_steps(3)
            .with_seed(13)
            .with_drift(0.05, 0.15);
        let mut chain = TransientChain::new(base, spec);
        let step0 = chain.next().unwrap();
        let step1 = chain.next().unwrap();
        let previous = ReFloatMatrix::from_csr(&step0.matrix, config());
        let inc = reencode_incremental(&previous, &step0.matrix, &step1.matrix);
        assert_bitwise_identical(
            &inc.matrix,
            &ReFloatMatrix::from_csr(&step1.matrix, config()),
        );
        assert!(
            inc.stats.reuse_fraction() > 0.5,
            "local drift should leave most blocks clean: {:?}",
            inc.stats
        );
        assert!(
            inc.stats.reprogram_fraction() < 0.5,
            "local drift should rewrite a minority of cells: {:?}",
            inc.stats
        );
    }

    #[test]
    fn chained_incremental_encodes_stay_identical_over_a_transient_run() {
        let base = poisson_2d(12, 12, 0.2, 21);
        let spec = TransientSpec::default()
            .with_steps(6)
            .with_seed(31)
            .with_drift(0.04, 0.2)
            .with_mass(0.5, 0.1);
        let mut previous: Option<(CsrMatrix, ReFloatMatrix)> = None;
        for step in TransientChain::new(base, spec) {
            let scratch = ReFloatMatrix::from_csr(&step.matrix, config());
            if let Some((prev_src, prev_enc)) = previous.take() {
                let inc = reencode_incremental(&prev_enc, &prev_src, &step.matrix);
                assert_bitwise_identical(&inc.matrix, &scratch);
                previous = Some((step.matrix.clone(), inc.matrix));
            } else {
                previous = Some((step.matrix.clone(), scratch));
            }
        }
    }
}
