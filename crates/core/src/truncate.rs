//! Plain fraction/exponent truncation — the formats of the Table I study.
//!
//! Table I of the paper sweeps two axes on `crystm03`:
//!
//! 1. keep the full 11-bit exponent and truncate the *fraction* to `k` bits — the
//!    iteration count degrades gracefully until a threshold, below which the solver no
//!    longer converges;
//! 2. keep the full 52-bit fraction and truncate the *exponent* to `k` bits (the
//!    Feinberg-style window) — convergence survives only while the window still covers
//!    the vector values that arise during the solve.
//!
//! [`TruncatedOperator`] implements both knobs at once: the matrix is truncated to
//! `fraction_bits` once (its exponent stays exact, mirroring the FPU fall-back of
//! Feinberg et al.), and each input vector is truncated to `fraction_bits` and passed
//! through a fixed window of `2^exponent_bits` binades anchored at the matrix's mean
//! exponent.

use refloat_solvers::LinearOperator;
use refloat_sparse::CsrMatrix;

use crate::block::optimal_exponent_base;
use crate::format::{RoundingMode, UnderflowMode};
use crate::scalar::{decompose, pow2, requantize};

/// A truncation configuration for the Table I study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncationConfig {
    /// Exponent bits for the vector window (11 = the full IEEE range, no truncation).
    pub exponent_bits: u32,
    /// Fraction bits kept for matrix and vector values (52 = exact).
    pub fraction_bits: u32,
}

impl TruncationConfig {
    /// Full double precision — the reference configuration of Table I.
    pub fn full() -> Self {
        TruncationConfig {
            exponent_bits: 11,
            fraction_bits: 52,
        }
    }

    /// Truncate only the fraction (the first row block of Table I).
    pub fn fraction_only(fraction_bits: u32) -> Self {
        TruncationConfig {
            exponent_bits: 11,
            fraction_bits,
        }
    }

    /// Truncate only the exponent (the second row block of Table I).
    pub fn exponent_only(exponent_bits: u32) -> Self {
        TruncationConfig {
            exponent_bits,
            fraction_bits: 52,
        }
    }
}

/// An operator that applies plain truncation to the matrix (once) and to every input
/// vector (per apply).
#[derive(Debug, Clone)]
pub struct TruncatedOperator {
    truncated: CsrMatrix,
    config: TruncationConfig,
    window_lo: i32,
    window_hi: i32,
    scratch: Vec<f64>,
}

impl TruncatedOperator {
    /// Builds the truncated operator from an exact matrix.
    pub fn new(a: &CsrMatrix, config: TruncationConfig) -> Self {
        // Truncate the stored matrix fractions; exponents stay exact (FPU assistance).
        let mut truncated = a.clone();
        if config.fraction_bits < 52 {
            for v in truncated.values_mut() {
                if let Some(d) = decompose(*v) {
                    *v = requantize(
                        *v,
                        d.exponent,
                        11,
                        config.fraction_bits,
                        RoundingMode::Truncate,
                        UnderflowMode::Saturate,
                    );
                }
            }
        }
        let center = optimal_exponent_base(a.values().iter());
        let half = 1i32 << (config.exponent_bits.saturating_sub(1));
        let (window_lo, window_hi) = if config.exponent_bits >= 11 {
            (i32::MIN / 2, i32::MAX / 2)
        } else {
            (center - half, center + half - 1)
        };
        let scratch = vec![0.0; a.ncols()];
        TruncatedOperator {
            truncated,
            config,
            window_lo,
            window_hi,
            scratch,
        }
    }

    /// The truncation configuration.
    pub fn config(&self) -> &TruncationConfig {
        &self.config
    }

    /// The quantized matrix actually multiplied by.
    pub fn truncated_matrix(&self) -> &CsrMatrix {
        &self.truncated
    }

    fn convert_value(&self, v: f64) -> f64 {
        let Some(d) = decompose(v) else {
            return 0.0;
        };
        // Exponent window first (wrap above, flush below), then fraction truncation.
        let (exp, frac) = if d.exponent > self.window_hi {
            let width = 1i32 << self.config.exponent_bits;
            (
                self.window_lo + (d.exponent - self.window_lo).rem_euclid(width),
                d.fraction,
            )
        } else if d.exponent < self.window_lo {
            return 0.0;
        } else {
            (d.exponent, d.fraction)
        };
        let q = if self.config.fraction_bits < 52 {
            crate::scalar::quantize_fraction(
                frac,
                self.config.fraction_bits,
                RoundingMode::Truncate,
            )
        } else {
            frac
        };
        let mag = q * pow2(exp);
        if d.negative {
            -mag
        } else {
            mag
        }
    }
}

impl LinearOperator for TruncatedOperator {
    fn nrows(&self) -> usize {
        self.truncated.nrows()
    }

    fn ncols(&self) -> usize {
        self.truncated.ncols()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        let mut buf = std::mem::take(&mut self.scratch);
        for (bi, &xi) in buf.iter_mut().zip(x.iter()) {
            *bi = self.convert_value(xi);
        }
        self.truncated.spmv_into(&buf, y);
        self.scratch = buf;
    }

    fn name(&self) -> String {
        format!(
            "truncated (exp {} bits, frac {} bits)",
            self.config.exponent_bits, self.config.fraction_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::{generators, rhs};
    use refloat_solvers::{cg, SolverConfig};
    use refloat_sparse::vecops;

    fn crystm_like() -> CsrMatrix {
        generators::mass_matrix_3d(7, 7, 7, 1e-12, 0.8, 355).to_csr()
    }

    #[test]
    fn full_config_is_numerically_identical_to_fp64() {
        let a = crystm_like();
        let x: Vec<f64> = (0..a.ncols())
            .map(|i| (i as f64 * 0.1).sin() + 1.2)
            .collect();
        let mut op = TruncatedOperator::new(&a, TruncationConfig::full());
        let mut y = vec![0.0; a.nrows()];
        op.apply(&x, &mut y);
        assert_eq!(y, a.spmv(&x));
    }

    #[test]
    fn fraction_truncation_perturbs_matrix_within_bound() {
        let a = crystm_like();
        let op = TruncatedOperator::new(&a, TruncationConfig::fraction_only(20));
        let t = op.truncated_matrix();
        for (orig, trunc) in a.values().iter().zip(t.values().iter()) {
            let rel = ((orig - trunc) / orig).abs();
            assert!(rel <= 2.0f64.powi(-20) + 1e-15);
        }
    }

    #[test]
    fn moderate_fraction_truncation_still_converges_with_modest_penalty() {
        // Table I: going from 52 to ~26 fraction bits costs only a handful of extra
        // iterations.
        let a = crystm_like();
        let b = rhs::ones(a.nrows());
        let cfg = SolverConfig::relative(1e-8).with_max_iterations(3000);

        let mut exact = a.clone();
        let full = cg(&mut exact, &b, &cfg);
        let mut t26 = TruncatedOperator::new(&a, TruncationConfig::fraction_only(26));
        let r26 = cg(&mut t26, &b, &cfg);

        assert!(full.converged() && r26.converged());
        assert!(r26.iterations >= full.iterations);
        assert!(r26.iterations <= full.iterations * 2 + 10);
    }

    #[test]
    fn severe_fraction_truncation_degrades_or_diverges() {
        // The other end of the Table I sweep: very few fraction bits either blow the
        // iteration count up substantially or fail to converge at all.
        let a = crystm_like();
        let b = rhs::ones(a.nrows());
        let cfg = SolverConfig::relative(1e-8).with_max_iterations(2000);
        let mut exact = a.clone();
        let full = cg(&mut exact, &b, &cfg);
        let mut t2 = TruncatedOperator::new(&a, TruncationConfig::fraction_only(2));
        let r2 = cg(&mut t2, &b, &cfg);
        assert!(
            !r2.converged() || r2.iterations > full.iterations,
            "2-bit fractions should cost extra iterations: {} vs {}",
            r2.iterations,
            full.iterations
        );
    }

    #[test]
    fn small_exponent_window_fails_on_crystm_like_matrices() {
        // Table I: with the 52-bit fraction intact, a 6-bit exponent is not enough on
        // crystm03 — the O(1) right-hand side falls outside the window anchored at the
        // tiny matrix exponents.
        let a = crystm_like();
        let b = rhs::ones(a.nrows());
        let cfg = SolverConfig::relative(1e-8).with_max_iterations(1000);
        let mut t6 = TruncatedOperator::new(&a, TruncationConfig::exponent_only(6));
        let r6 = cg(&mut t6, &b, &cfg);
        assert!(!r6.converged());

        // A 10-bit window covers everything and converges exactly like FP64.
        let mut t10 = TruncatedOperator::new(&a, TruncationConfig::exponent_only(10));
        let r10 = cg(&mut t10, &b, &cfg);
        assert!(r10.converged());
        let mut exact = a.clone();
        let full = cg(&mut exact, &b, &cfg);
        assert_eq!(r10.iterations, full.iterations);
    }

    #[test]
    fn vector_conversion_respects_window_and_fraction() {
        let a = crystm_like();
        let op = TruncatedOperator::new(
            &a,
            TruncationConfig {
                exponent_bits: 6,
                fraction_bits: 8,
            },
        );
        // Within-window value: only fraction truncation.
        let center = optimal_exponent_base(a.values().iter());
        let v = 1.375 * pow2(center);
        let out = op.convert_value(v);
        assert!(vecops::rel_err(&[out], &[v]) <= 2.0f64.powi(-8) + 1e-12);
        // Far-below value flushes to zero.
        assert_eq!(op.convert_value(pow2(center - 200)), 0.0);
    }
}
