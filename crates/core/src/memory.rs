//! Storage model: Fig. 4 (per-block bits) and Table VIII (whole-matrix memory overhead).

use crate::format::ReFloatConfig;
use refloat_sparse::BlockedMatrix;

/// Bits used by the baseline double-precision COO-style storage the paper assumes in
/// Fig. 4: a 32-bit row index, a 32-bit column index and a 64-bit value per non-zero.
pub const DOUBLE_BITS_PER_NONZERO: u64 = 32 + 32 + 64;

/// Total bits of the baseline double-precision storage for `nnz` non-zeros.
pub fn double_storage_bits(nnz: usize) -> u64 {
    nnz as u64 * DOUBLE_BITS_PER_NONZERO
}

/// Total bits of the ReFloat block storage for a blocked matrix under the Fig. 4
/// accounting: per element `2b` local-index bits plus `1 + e + f` value bits, plus per
/// block two `(32 − b)`-bit block coordinates and an 11-bit exponent base.
pub fn refloat_storage_bits(blocked: &BlockedMatrix, config: &ReFloatConfig) -> u64 {
    let per_element = (config.local_index_bits() + config.matrix_value_bits()) as u64;
    let per_block = config.block_metadata_bits() as u64;
    blocked
        .blocks()
        .iter()
        .map(|blk| per_element * blk.nnz() as u64 + per_block)
        .sum()
}

/// The Table VIII metric: ReFloat matrix storage normalized to the double-precision
/// storage of the same matrix (≈ 0.17–0.31 for the paper's workloads).
pub fn memory_overhead_ratio(blocked: &BlockedMatrix, config: &ReFloatConfig) -> f64 {
    let double = double_storage_bits(blocked.nnz());
    if double == 0 {
        return 0.0;
    }
    refloat_storage_bits(blocked, config) as f64 / double as f64
}

/// Break-down of the storage for reporting: `(value_bits, index_bits, metadata_bits)`.
pub fn storage_breakdown(blocked: &BlockedMatrix, config: &ReFloatConfig) -> (u64, u64, u64) {
    let nnz = blocked.nnz() as u64;
    let value_bits = nnz * config.matrix_value_bits() as u64;
    let index_bits = nnz * config.local_index_bits() as u64;
    let metadata_bits = blocked.num_blocks() as u64 * config.block_metadata_bits() as u64;
    (value_bits, index_bits, metadata_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::generators;
    use refloat_sparse::BlockedMatrix;

    #[test]
    fn double_storage_matches_fig4_example() {
        // Fig. 4: eight scalars at (32 + 32 + 64) bits = 1024 bits.
        assert_eq!(double_storage_bits(8), 1024);
    }

    #[test]
    fn refloat_storage_is_much_smaller_for_dense_blocks() {
        // A banded matrix has well-filled blocks, so the per-block metadata is amortized
        // and the ratio approaches (2b + 1 + e + f) / 128 ≈ 0.16 for the default format.
        let a = generators::laplacian_2d(64, 64, 0.1).to_csr();
        let blocked = BlockedMatrix::from_csr(&a, 7).unwrap();
        let config = ReFloatConfig::paper_default();
        let ratio = memory_overhead_ratio(&blocked, &config);
        assert!(ratio > 0.1 && ratio < 0.35, "ratio = {ratio}");
        // Consistency between the two accounting paths.
        let (v, i, m) = storage_breakdown(&blocked, &config);
        assert_eq!(v + i + m, refloat_storage_bits(&blocked, &config));
    }

    #[test]
    fn scattered_matrices_pay_more_block_metadata_like_table_viii() {
        // Table VIII: thermomech_TC/dM (scattered, few nnz per block) have a higher
        // ratio (≈0.3) than the banded matrices (≈0.17).
        let banded =
            BlockedMatrix::from_csr(&generators::laplacian_2d(64, 64, 0.1).to_csr(), 7).unwrap();
        let scattered = BlockedMatrix::from_csr(
            &generators::random_spd_graph(4096, 6, 1.4, 1.0, 3).to_csr(),
            7,
        )
        .unwrap();
        let config = ReFloatConfig::paper_default();
        let r_banded = memory_overhead_ratio(&banded, &config);
        let r_scattered = memory_overhead_ratio(&scattered, &config);
        assert!(
            r_scattered > r_banded,
            "scattered {r_scattered} should exceed banded {r_banded}"
        );
        assert!(
            r_scattered < 1.0,
            "ReFloat must still be smaller than double"
        );
    }

    #[test]
    fn ratio_grows_with_fraction_bits() {
        let a = generators::laplacian_2d(48, 48, 0.1).to_csr();
        let blocked = BlockedMatrix::from_csr(&a, 7).unwrap();
        let narrow = memory_overhead_ratio(&blocked, &ReFloatConfig::new(7, 3, 3, 3, 8));
        let wide = memory_overhead_ratio(&blocked, &ReFloatConfig::new(7, 3, 16, 3, 8));
        assert!(wide > narrow);
    }

    #[test]
    fn empty_matrix_ratio_is_zero() {
        let a = refloat_sparse::CooMatrix::new(256, 256).to_csr();
        let blocked = BlockedMatrix::from_csr(&a, 7).unwrap();
        assert_eq!(
            memory_overhead_ratio(&blocked, &ReFloatConfig::paper_default()),
            0.0
        );
    }
}
