//! The Feinberg et al. [ISCA'18] baseline as described in §III.C of the ReFloat paper.
//!
//! That design maps double-precision matrices onto crossbars by truncating the exponent
//! to its low 6 bits (the "64 paddings") while keeping all 52 fraction bits.  Matrix
//! values whose exponents fall outside the 6-bit range are handled by FPUs, so the
//! *matrix* is effectively exact.  The *vector*, however, changes every iteration and
//! the design provides no mechanism to re-align it: vector elements whose exponents fall
//! outside the fixed 64-binade window are misrepresented, which is what makes the
//! solvers diverge on the matrices whose values sit far from 1.0 (§VI.B).
//!
//! [`FeinbergOperator`] models exactly that: an exact FP64 SpMV whose *input vector*
//! first passes through a fixed exponent window anchored at the matrix's mean exponent.
//! Elements above the window wrap modulo the window width (the catastrophic "mod 64"
//! failure); elements below it are too small for the fixed-point grid and flush to zero.

use refloat_solvers::LinearOperator;
use refloat_sparse::stats::exponent_of;
use refloat_sparse::CsrMatrix;

use crate::block::optimal_exponent_base;
use crate::scalar::{decompose, pow2};

/// Hardware-format parameters of the Feinberg baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeinbergConfig {
    /// Exponent bits kept for the crossbar mapping (6 in the original design — 64
    /// paddings).
    pub exponent_bits: u32,
    /// Fraction bits kept (52 in the original design, i.e. the fraction is exact).
    pub fraction_bits: u32,
}

impl Default for FeinbergConfig {
    fn default() -> Self {
        FeinbergConfig {
            exponent_bits: 6,
            fraction_bits: 52,
        }
    }
}

impl FeinbergConfig {
    /// Width of the representable exponent window, `2^exponent_bits` binades.
    pub fn window_width(&self) -> i32 {
        1i32 << self.exponent_bits
    }
}

/// Statistics of the vector misrepresentation during a solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeinbergStats {
    /// Vector elements whose exponent exceeded the window and wrapped (garbage values).
    pub wrapped: usize,
    /// Vector elements below the window that were flushed to zero.
    pub flushed: usize,
    /// Total nonzero vector elements processed.
    pub nonzero: usize,
}

/// The Feinberg baseline operator: exact matrix, fixed-window vector conversion.
#[derive(Debug, Clone)]
pub struct FeinbergOperator {
    a: CsrMatrix,
    config: FeinbergConfig,
    /// Bottom of the fixed exponent window (anchored at construction time).
    window_lo: i32,
    /// Top of the fixed exponent window (inclusive).
    window_hi: i32,
    stats: FeinbergStats,
    scratch: Vec<f64>,
}

impl FeinbergOperator {
    /// Wraps a matrix with the default 6-bit-exponent Feinberg behaviour.
    pub fn new(a: CsrMatrix) -> Self {
        Self::with_config(a, FeinbergConfig::default())
    }

    /// Wraps a matrix with an explicit configuration.
    ///
    /// The exponent window is anchored at the matrix's mean element exponent (the same
    /// quantity ReFloat would pick as a base, but chosen *once* for the whole matrix and
    /// never adapted), centred so the window covers
    /// `[center − 2^(e−1), center + 2^(e−1) − 1]`.
    pub fn with_config(a: CsrMatrix, config: FeinbergConfig) -> Self {
        let center = optimal_exponent_base(a.values().iter());
        let half = config.window_width() / 2;
        let scratch = vec![0.0; a.ncols()];
        FeinbergOperator {
            a,
            config,
            window_lo: center - half,
            window_hi: center + half - 1,
            stats: FeinbergStats::default(),
            scratch,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FeinbergConfig {
        &self.config
    }

    /// The fixed exponent window `[lo, hi]` (inclusive) applied to vector elements.
    pub fn window(&self) -> (i32, i32) {
        (self.window_lo, self.window_hi)
    }

    /// Conversion statistics accumulated over all applies so far.
    pub fn stats(&self) -> &FeinbergStats {
        &self.stats
    }

    /// Applies the fixed-window conversion to a single value (exposed for tests and for
    /// the Table I truncation study).
    pub fn convert_value(&mut self, v: f64) -> f64 {
        let Some(d) = decompose(v) else {
            return 0.0;
        };
        self.stats.nonzero += 1;
        if d.exponent > self.window_hi {
            // Overflow: the exponent wraps modulo the window width — the "mod 64"
            // behaviour that corrupts the value.
            self.stats.wrapped += 1;
            let width = self.config.window_width();
            let wrapped = self.window_lo + (d.exponent - self.window_lo).rem_euclid(width);
            let mag = d.fraction * pow2(wrapped);
            if d.negative {
                -mag
            } else {
                mag
            }
        } else if d.exponent < self.window_lo {
            // Underflow: below the fixed-point grid, the value vanishes.
            self.stats.flushed += 1;
            0.0
        } else {
            // In range: 52 fraction bits means the value is carried exactly.
            v
        }
    }
}

impl LinearOperator for FeinbergOperator {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }

    fn ncols(&self) -> usize {
        self.a.ncols()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.a.ncols(), "Feinberg apply: x length mismatch");
        let mut buf = std::mem::take(&mut self.scratch);
        for (bi, &xi) in buf.iter_mut().zip(x.iter()) {
            *bi = xi;
        }
        for bi in buf.iter_mut() {
            *bi = self.convert_value(*bi);
        }
        self.a.spmv_into(&buf, y);
        self.scratch = buf;
    }

    fn name(&self) -> String {
        format!(
            "feinberg (e = {}, window [{}, {}])",
            self.config.exponent_bits, self.window_lo, self.window_hi
        )
    }
}

/// Convenience: the exponent of the matrix element with the largest magnitude, used by
/// experiment reports to show how far a workload's values sit from 1.0.
pub fn dominant_exponent(a: &CsrMatrix) -> i32 {
    exponent_of(a.max_abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::{generators, rhs};
    use refloat_solvers::{cg, SolverConfig, StopReason};

    #[test]
    fn window_is_centred_on_the_matrix_exponents() {
        let a = generators::mass_matrix_3d(5, 5, 5, 1e-12, 0.3, 1).to_csr();
        let op = FeinbergOperator::new(a.clone());
        let (lo, hi) = op.window();
        assert_eq!(hi - lo + 1, 64);
        let center = optimal_exponent_base(a.values().iter());
        assert!(lo <= center && center <= hi);
        assert!(
            center < -30,
            "crystm-like matrices have tiny entries, center = {center}"
        );
    }

    #[test]
    fn in_window_values_pass_through_exactly() {
        let a = generators::laplacian_2d(8, 8, 0.2).to_csr();
        let mut op = FeinbergOperator::new(a.clone());
        let x: Vec<f64> = (0..64).map(|i| 0.5 + (i as f64) * 0.01).collect();
        let mut y = vec![0.0; 64];
        op.apply(&x, &mut y);
        let exact = a.spmv(&x);
        assert_eq!(y, exact);
        assert_eq!(op.stats().wrapped, 0);
        assert_eq!(op.stats().flushed, 0);
    }

    #[test]
    fn out_of_window_values_wrap_or_flush() {
        let a = generators::mass_matrix_3d(4, 4, 4, 1e-12, 0.3, 1).to_csr();
        let mut op = FeinbergOperator::new(a);
        let (lo, hi) = op.window();
        // A value far above the window wraps to garbage inside the window.
        let big = 2.0f64.powi(hi + 40) * 1.5;
        let wrapped = op.convert_value(big);
        assert_ne!(wrapped, big);
        assert!(exponent_of(wrapped) >= lo && exponent_of(wrapped) <= hi);
        // A value below the window flushes to zero.
        let tiny = 2.0f64.powi(lo - 10);
        assert_eq!(op.convert_value(tiny), 0.0);
        assert_eq!(op.stats().wrapped, 1);
        assert_eq!(op.stats().flushed, 1);
    }

    #[test]
    fn converges_on_unit_scale_matrices_like_the_paper() {
        // minsurfo-like workload: values O(1), so the all-ones RHS and the shrinking
        // residual all stay inside the 64-binade window -> Feinberg converges.
        let a = generators::laplacian_2d(20, 20, 0.2).to_csr();
        let b = rhs::ones(a.nrows());
        let cfg = SolverConfig::relative(1e-8);
        let mut op = FeinbergOperator::new(a.clone());
        let r = cg(&mut op, &b, &cfg);
        assert!(r.converged(), "stop = {:?}", r.stop);

        let mut exact = a.clone();
        let r_exact = cg(&mut exact, &b, &cfg);
        assert_eq!(r.iterations, r_exact.iterations);
    }

    #[test]
    fn diverges_on_tiny_value_matrices_like_the_paper() {
        // crystm-like workload: entries ≈1e-12 anchor the window around exponent -40,
        // so the O(1) right-hand side wraps and CG cannot converge (paper §VI.B).
        let a = generators::mass_matrix_3d(6, 6, 6, 1e-12, 0.5, 2).to_csr();
        let b = rhs::ones(a.nrows());
        let cfg = SolverConfig::relative(1e-8).with_max_iterations(500);
        let mut op = FeinbergOperator::new(a.clone());
        let r = cg(&mut op, &b, &cfg);
        assert!(!r.converged(), "Feinberg should not converge here");

        // The same system is solvable in exact arithmetic.
        let mut exact = a;
        let r_exact = cg(&mut exact, &b, &cfg);
        assert!(r_exact.converged());
    }

    #[test]
    fn breaks_down_on_huge_value_matrices() {
        // shallow_water-like workload: entries ≈1e12 anchor the window high above 1.0,
        // so the all-ones RHS flushes to zero and CG breaks down immediately.
        let a = generators::sphere_ring_3regular(256, 1e12, 0.18).to_csr();
        let b = rhs::ones(a.nrows());
        let cfg = SolverConfig::relative(1e-8).with_max_iterations(100);
        let mut op = FeinbergOperator::new(a);
        let r = cg(&mut op, &b, &cfg);
        assert!(!r.converged());
        assert!(matches!(
            r.stop,
            StopReason::Breakdown(_) | StopReason::MaxIterations
        ));
    }

    #[test]
    fn wider_exponent_window_restores_convergence() {
        // With enough exponent bits the window covers everything and the operator is
        // exact — the "11-bit exponent" column of Table I.
        let a = generators::mass_matrix_3d(5, 5, 5, 1e-12, 0.5, 2).to_csr();
        let b = rhs::ones(a.nrows());
        let cfg = SolverConfig::relative(1e-8).with_max_iterations(2000);
        let mut op = FeinbergOperator::with_config(
            a,
            FeinbergConfig {
                exponent_bits: 11,
                fraction_bits: 52,
            },
        );
        let r = cg(&mut op, &b, &cfg);
        assert!(r.converged());
    }
}
