//! Precision-escalation policies: how a stalled refinement solve widens its format.
//!
//! The mixed-precision refinement loop (`refloat_solvers::refinement`) escalates to
//! the next rung of a precision ladder when an inner format stops contracting the
//! outer residual.  This module builds that ladder *of formats*: starting from a base
//! [`ReFloatConfig`], each step widens the fraction and/or exponent-offset bits
//! (capped at the IEEE-754 double widths the format supports), optionally ending in a
//! full-fp64 fallback rung that consumers realize with the exact operator.
//!
//! Widening only grows `f`/`fv` and `e`/`ev`; the block exponent `b` and the
//! rounding/underflow modes are preserved, so every rung of a ladder maps onto the
//! same crossbar geometry and shares blocking with the base format.

use crate::format::ReFloatConfig;

/// How a stalled solve widens its ReFloat format, rung by rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EscalationPolicy {
    /// Widened rungs generated after the base format (0 = no quantized escalation).
    pub max_steps: u32,
    /// Fraction bits added to `f` and `fv` per step.
    pub f_step: u32,
    /// Exponent-offset bits added to `e` and `ev` per step.
    pub e_step: u32,
    /// Whether the ladder ends in a full-fp64 rung (the exact operator).
    pub fp64_fallback: bool,
}

impl EscalationPolicy {
    /// The default policy: two widening steps of `+8` fraction bits and `+1`
    /// exponent-offset bit each, then fp64.  From the paper default
    /// `ReFloat(b, 3, 3)(3, 8)` this yields `(4, 11)(4, 16)`, `(5, 19)(5, 24)`, fp64.
    pub fn widen_then_fp64() -> Self {
        EscalationPolicy {
            max_steps: 2,
            f_step: 8,
            e_step: 1,
            fp64_fallback: true,
        }
    }

    /// No quantized escalation at all: retry once at fp64 when the base format stalls.
    pub fn fp64_only() -> Self {
        EscalationPolicy {
            max_steps: 0,
            f_step: 0,
            e_step: 0,
            fp64_fallback: true,
        }
    }

    /// Pure widening without an fp64 rung (the solve stays on simulated hardware; a
    /// stall at the widest format is reported instead of being papered over).
    pub fn widen_only(max_steps: u32, f_step: u32, e_step: u32) -> Self {
        EscalationPolicy {
            max_steps,
            f_step,
            e_step,
            fp64_fallback: false,
        }
    }

    /// The quantized rungs of the ladder: the base format followed by up to
    /// `max_steps` widened formats.  Steps that no longer change the format (all
    /// fields at their caps) are dropped, so the ladder never contains duplicate
    /// rungs; the fp64 fallback (if any) is *not* included — consumers append the
    /// exact operator themselves.
    pub fn ladder(&self, base: ReFloatConfig) -> Vec<ReFloatConfig> {
        let mut rungs = vec![base];
        let mut current = base;
        for _ in 0..self.max_steps {
            let widened = ReFloatConfig {
                e: (current.e + self.e_step).min(11),
                ev: (current.ev + self.e_step).min(11),
                f: (current.f + self.f_step).min(52),
                fv: (current.fv + self.f_step).min(52),
                ..current
            };
            if widened == current {
                break;
            }
            rungs.push(widened);
            current = widened;
        }
        rungs
    }

    /// Total rungs a consumer will realize: quantized rungs plus the fp64 fallback.
    pub fn total_levels(&self, base: ReFloatConfig) -> usize {
        self.ladder(base).len() + usize::from(self.fp64_fallback)
    }
}

impl Default for EscalationPolicy {
    fn default() -> Self {
        EscalationPolicy::widen_then_fp64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_widens_twice_from_the_paper_format() {
        let policy = EscalationPolicy::widen_then_fp64();
        let rungs = policy.ladder(ReFloatConfig::paper_default());
        assert_eq!(rungs.len(), 3);
        assert_eq!(
            (rungs[0].e, rungs[0].f, rungs[0].ev, rungs[0].fv),
            (3, 3, 3, 8)
        );
        assert_eq!(
            (rungs[1].e, rungs[1].f, rungs[1].ev, rungs[1].fv),
            (4, 11, 4, 16)
        );
        assert_eq!(
            (rungs[2].e, rungs[2].f, rungs[2].ev, rungs[2].fv),
            (5, 19, 5, 24)
        );
        assert_eq!(policy.total_levels(ReFloatConfig::paper_default()), 4);
        // Blocking and conversion modes are preserved on every rung.
        for rung in &rungs {
            assert_eq!(rung.b, 7);
            assert_eq!(rung.rounding, rungs[0].rounding);
            assert_eq!(rung.underflow, rungs[0].underflow);
        }
    }

    #[test]
    fn capped_steps_do_not_produce_duplicate_rungs() {
        let policy = EscalationPolicy {
            max_steps: 10,
            f_step: 30,
            e_step: 6,
            fp64_fallback: true,
        };
        let rungs = policy.ladder(ReFloatConfig::new(5, 3, 3, 3, 8));
        // 3+30 = 33, then 52 (capped); e: 3+6 = 9, then 11 (capped); further steps
        // change nothing and are dropped.
        assert_eq!(rungs.len(), 3);
        assert_eq!((rungs[2].e, rungs[2].f), (11, 52));
        let unique: std::collections::HashSet<_> = rungs.iter().collect();
        assert_eq!(unique.len(), rungs.len());
    }

    #[test]
    fn fp64_only_keeps_just_the_base_rung() {
        let policy = EscalationPolicy::fp64_only();
        let base = ReFloatConfig::new(4, 3, 3, 3, 8);
        assert_eq!(policy.ladder(base), vec![base]);
        assert_eq!(policy.total_levels(base), 2);
        assert_eq!(EscalationPolicy::widen_only(1, 4, 0).total_levels(base), 2);
    }
}
