//! Per-block encoding: exponent-base selection (Eq. 4–5) and block conversion.

use crate::format::ReFloatConfig;
use crate::scalar::{decompose, pow2, quantize_fraction};
use refloat_sparse::blocked::Block;

/// Chooses the exponent base `eb` for a set of values.
///
/// Eq. 4 defines the conversion loss `L = Σ ((a)_e − eb)²` and Eq. 5 gives the closed
/// form optimum `eb = [ (1/|A_c|) Σ (a)_e ]` — the element-exponent mean, rounded to the
/// nearest integer.  Zero values carry no exponent and are excluded; an all-zero set
/// returns 0.
pub fn optimal_exponent_base<'a, I>(values: I) -> i32
where
    I: IntoIterator<Item = &'a f64>,
{
    let mut sum = 0i64;
    let mut count = 0i64;
    for &v in values {
        if let Some(d) = decompose(v) {
            sum += d.exponent as i64;
            count += 1;
        }
    }
    if count == 0 {
        0
    } else {
        // Round half away from zero, matching the `[·]` nearest-integer of Eq. 5.
        let mean = sum as f64 / count as f64;
        mean.round() as i32
    }
}

/// The squared-error loss `L(eb)` of Eq. 4 for a candidate base — exposed so tests and
/// ablation benchmarks can verify that [`optimal_exponent_base`] actually minimizes it.
pub fn exponent_base_loss<'a, I>(values: I, eb: i32) -> f64
where
    I: IntoIterator<Item = &'a f64>,
{
    values
        .into_iter()
        .filter_map(|&v| decompose(v))
        .map(|d| {
            let diff = (d.exponent - eb) as f64;
            diff * diff
        })
        .sum()
}

/// One matrix block encoded in ReFloat format.
///
/// The encoded fields mirror Fig. 4(b)/Fig. 5: per-element sign, saturating `e`-bit
/// exponent offset and `f`-bit fraction code, plus the per-block base `eb`.  The decoded
/// f64 values (`2^eb · (−1)^s · 1.frac · 2^offset`) are cached because the functional
/// simulator applies blocks many times per solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ReFloatBlock {
    /// Block-row index of the block.
    pub block_row: usize,
    /// Block-column index of the block.
    pub block_col: usize,
    /// The exponent base `eb` shared by every element of the block.
    pub eb: i32,
    /// Local row index (`ii`) per element.
    pub rows: Vec<u16>,
    /// Local column index (`jj`) per element.
    pub cols: Vec<u16>,
    /// Sign bit per element (`true` = negative).
    pub signs: Vec<bool>,
    /// Saturated exponent offset per element (fits in `e` bits by construction).
    pub offsets: Vec<i8>,
    /// Fraction code per element: the retained `f` bits as an integer in `[0, 2^f)`.
    pub fraction_codes: Vec<u32>,
    /// Cached decoded values (what the crossbars effectively compute with).
    pub decoded: Vec<f64>,
}

impl ReFloatBlock {
    /// Encodes a [`Block`] of f64 values into ReFloat format.
    pub fn encode(block: &Block, config: &ReFloatConfig) -> Self {
        let eb = optimal_exponent_base(block.vals.iter());
        Self::encode_with_base(block, config, eb)
    }

    /// Encodes a block using an explicitly chosen exponent base (used by the ablation
    /// that compares the Eq. 5 optimum against naive base choices).
    pub fn encode_with_base(block: &Block, config: &ReFloatConfig, eb: i32) -> Self {
        let n = block.vals.len();
        let mut signs = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n);
        let mut fraction_codes = Vec::with_capacity(n);
        let mut decoded = Vec::with_capacity(n);
        let max_off = config.max_offset();
        let frac_scale = (1u64 << config.f) as f64;

        for &v in &block.vals {
            match decompose(v) {
                None => {
                    signs.push(false);
                    offsets.push(0);
                    fraction_codes.push(0);
                    decoded.push(0.0);
                }
                Some(d) => {
                    let offset = d.exponent - eb;
                    let (clamped, flushed) = if offset > max_off {
                        (max_off, false)
                    } else if offset < -max_off {
                        match config.underflow {
                            crate::format::UnderflowMode::Saturate => (-max_off, false),
                            crate::format::UnderflowMode::FlushToZero => (0, true),
                        }
                    } else {
                        (offset, false)
                    };
                    if flushed {
                        signs.push(d.negative);
                        offsets.push(0);
                        fraction_codes.push(0);
                        decoded.push(0.0);
                        continue;
                    }
                    let mut frac = quantize_fraction(d.fraction, config.f, config.rounding);
                    let mut exp = eb + clamped;
                    let mut stored_offset = clamped;
                    if frac >= 2.0 {
                        frac /= 2.0;
                        if stored_offset < max_off {
                            stored_offset += 1;
                            exp += 1;
                        }
                    }
                    let code = ((frac - 1.0) * frac_scale).round() as u32;
                    let magnitude = frac * pow2(exp);
                    signs.push(d.negative);
                    offsets.push(stored_offset as i8);
                    fraction_codes.push(code);
                    decoded.push(if d.negative { -magnitude } else { magnitude });
                }
            }
        }

        ReFloatBlock {
            block_row: block.block_row,
            block_col: block.block_col,
            eb,
            rows: block.rows.clone(),
            cols: block.cols.clone(),
            signs,
            offsets,
            fraction_codes,
            decoded,
        }
    }

    /// Number of encoded elements.
    pub fn nnz(&self) -> usize {
        self.decoded.len()
    }

    /// Iterates over `(ii, jj, decoded_value)`.
    pub fn iter_decoded(&self) -> impl Iterator<Item = (u16, u16, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.decoded.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Reconstructs the block as plain f64 values (the quantized matrix block `Ã_c`).
    pub fn to_block(&self) -> Block {
        Block {
            block_row: self.block_row,
            block_col: self.block_col,
            rows: self.rows.clone(),
            cols: self.cols.clone(),
            vals: self.decoded.clone(),
        }
    }

    /// Worst-case relative element error of this encoding against the original block.
    pub fn max_relative_error(&self, original: &Block) -> f64 {
        original
            .vals
            .iter()
            .zip(self.decoded.iter())
            .filter(|(&o, _)| o != 0.0)
            .map(|(&o, &d)| ((d - o) / o).abs())
            .fold(0.0, f64::max)
    }

    /// Number of storage bits for this block under the Fig. 4 accounting:
    /// per element `2b` local-index bits plus `1 + e + f` value bits, plus the per-block
    /// metadata (two `(32 − b)`-bit block coordinates and the 11-bit `eb`).
    pub fn storage_bits(&self, config: &ReFloatConfig) -> u64 {
        let per_element = (config.local_index_bits() + config.matrix_value_bits()) as u64;
        per_element * self.nnz() as u64 + config.block_metadata_bits() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::UnderflowMode;
    use proptest::prelude::*;

    fn block_from_values(vals: &[f64]) -> Block {
        Block {
            block_row: 3,
            block_col: 5,
            rows: (0..vals.len()).map(|i| i as u16).collect(),
            cols: (0..vals.len()).map(|i| (i * 2 % 4) as u16).collect(),
            vals: vals.to_vec(),
        }
    }

    #[test]
    fn optimal_base_is_the_rounded_mean_exponent() {
        // Exponents 7, 8, 9, 7 -> mean 7.75 -> eb = 8 (the paper's Eq. 6 example).
        let vals = [-248.0, 336.0, -512.0, 136.0];
        assert_eq!(optimal_exponent_base(vals.iter()), 8);
        // All zeros -> 0 by convention.
        assert_eq!(optimal_exponent_base([0.0, 0.0].iter()), 0);
        // A single value -> its own exponent.
        assert_eq!(optimal_exponent_base([6.0].iter()), 2);
    }

    #[test]
    fn optimal_base_minimizes_the_eq4_loss() {
        let vals = [1e-3, 2e-2, 5e-1, 3.0, 80.0, 0.25];
        let eb = optimal_exponent_base(vals.iter());
        let loss_opt = exponent_base_loss(vals.iter(), eb);
        for candidate in (eb - 6)..=(eb + 6) {
            assert!(
                loss_opt <= exponent_base_loss(vals.iter(), candidate) + 1e-9,
                "candidate {candidate} beats the optimum {eb}"
            );
        }
    }

    #[test]
    fn encode_matches_paper_eq7() {
        let block = block_from_values(&[-248.0, 336.0, -512.0, 136.0]);
        let config = ReFloatConfig::new(2, 2, 2, 2, 2);
        let enc = ReFloatBlock::encode(&block, &config);
        assert_eq!(enc.eb, 8);
        assert_eq!(enc.decoded, vec![-224.0, 320.0, -512.0, 128.0]);
        assert_eq!(enc.signs, vec![true, false, true, false]);
        // Offsets: exponents 7, 8, 9, 7 minus eb=8 -> -1, 0, 1, -1.
        assert_eq!(enc.offsets, vec![-1, 0, 1, -1]);
    }

    #[test]
    fn zeros_are_preserved_exactly() {
        let block = block_from_values(&[0.0, 3.0, 0.0]);
        let enc = ReFloatBlock::encode(&block, &ReFloatConfig::paper_default());
        assert_eq!(enc.decoded[0], 0.0);
        assert_eq!(enc.decoded[2], 0.0);
        assert_eq!(enc.decoded[1], 3.0);
    }

    #[test]
    fn saturation_and_flush_modes_differ_for_wide_blocks() {
        // One element 2^20 below the rest.
        let vals = [1.0, 1.5, 1.25, 1.5e-6];
        let block = block_from_values(&vals);
        let sat_cfg = ReFloatConfig::new(2, 3, 8, 3, 8);
        let ftz_cfg = sat_cfg.with_underflow(UnderflowMode::FlushToZero);
        let sat = ReFloatBlock::encode(&block, &sat_cfg);
        let ftz = ReFloatBlock::encode(&block, &ftz_cfg);
        // Saturated: the tiny element is pulled up to the bottom of the window.
        assert!(sat.decoded[3] > vals[3]);
        // Flushed: it becomes zero.
        assert_eq!(ftz.decoded[3], 0.0);
        // The in-window elements agree between the two modes.
        assert_eq!(sat.decoded[..3], ftz.decoded[..3]);
    }

    #[test]
    fn storage_bits_match_fig4() {
        // Fig. 4: 8 values in ReFloat(2,2,3) -> 151 bits.
        let vals = [8.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let block = block_from_values(&vals);
        let config = ReFloatConfig::new(2, 2, 3, 2, 3);
        let enc = ReFloatBlock::encode(&block, &config);
        assert_eq!(enc.storage_bits(&config), 151);
    }

    #[test]
    fn to_block_round_trips_decoded_values() {
        let vals = [3.0, -1.5, 0.0, 2.25];
        let block = block_from_values(&vals);
        let config = ReFloatConfig::new(2, 3, 10, 3, 10);
        let enc = ReFloatBlock::encode(&block, &config);
        let back = enc.to_block();
        assert_eq!(back.rows, block.rows);
        assert_eq!(back.cols, block.cols);
        assert_eq!(back.vals, enc.decoded);
    }

    proptest! {
        #[test]
        fn relative_error_is_bounded_when_exponent_locality_holds(
            exps in proptest::collection::vec(-1i32..=2, 1..64),
            fracs in proptest::collection::vec(1.0f64..2.0, 64),
            f_bits in 1u32..12,
        ) {
            // Values whose exponents span at most 3 binades always fit the e = 3 offset
            // window around the rounded-mean base (the base lies inside [min, max], so
            // no offset exceeds the spread), leaving only the f-bit fraction truncation:
            // relative error ≤ 2^-f.
            let vals: Vec<f64> = exps.iter().zip(fracs.iter())
                .map(|(&e, &m)| m * pow2(e))
                .collect();
            let block = block_from_values(&vals);
            let config = ReFloatConfig::new(6, 3, f_bits, 3, f_bits);
            let enc = ReFloatBlock::encode(&block, &config);
            let err = enc.max_relative_error(&block);
            prop_assert!(err <= pow2(-(f_bits as i32)) + 1e-12,
                "relative error {err} exceeds 2^-{f_bits}");
        }

        #[test]
        fn offsets_always_fit_in_e_bits(
            vals in proptest::collection::vec(
                prop_oneof![
                    (-1e30f64..1e30).prop_filter("nonzero", |v| *v != 0.0),
                    Just(0.0),
                ],
                1..128,
            ),
            e_bits in 1u32..6,
        ) {
            let block = block_from_values(&vals);
            let config = ReFloatConfig::new(7, e_bits, 4, e_bits, 4);
            let enc = ReFloatBlock::encode(&block, &config);
            let max_off = config.max_offset();
            for &o in &enc.offsets {
                prop_assert!((o as i32).abs() <= max_off);
            }
            for &code in &enc.fraction_codes {
                prop_assert!(code < (1 << config.f));
            }
            // Decoded signs match the originals (zeros excepted).
            for (&v, &d) in block.vals.iter().zip(enc.decoded.iter()) {
                if v != 0.0 && d != 0.0 {
                    prop_assert_eq!(v.is_sign_negative(), d.is_sign_negative());
                }
            }
        }
    }
}
