//! Bit-exact decomposition and re-encoding of individual f64 values.
//!
//! A double-precision value is `(−1)^s · (1.b₅₁…b₀) · 2^(E−1023)` (§II.C).  The ReFloat
//! conversion keeps the sign, re-expresses the exponent as an offset from a per-block
//! base `eb`, and keeps only the leading `f` fraction bits (Fig. 5b).  This module
//! implements that per-scalar arithmetic; block-level base selection lives in
//! [`crate::block`].

use crate::format::{max_offset_for_bits, RoundingMode, UnderflowMode};

/// The sign / exponent / fraction decomposition of a finite nonzero f64.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decomposed {
    /// `true` for negative values.
    pub negative: bool,
    /// Unbiased binary exponent `floor(log2 |v|)`.
    pub exponent: i32,
    /// Normalized significand in `[1, 2)`.
    pub fraction: f64,
}

/// Decomposes a finite value into sign, unbiased exponent and normalized fraction.
/// Returns `None` for zero (which has no exponent) and for NaN/infinities.
pub fn decompose(v: f64) -> Option<Decomposed> {
    if v == 0.0 || !v.is_finite() {
        return None;
    }
    let exponent = refloat_sparse::stats::exponent_of(v);
    let fraction = v.abs() / pow2(exponent);
    Some(Decomposed {
        negative: v < 0.0,
        exponent,
        fraction,
    })
}

/// `2^e` as an f64, valid for the full double-precision exponent range (including
/// results that are subnormal or overflow to infinity).
pub fn pow2(e: i32) -> f64 {
    // f64::powi is exact for powers of two within range; use ldexp-style construction
    // for the normal range to avoid any libm dependence on rounding mode.
    if (-1022..=1023).contains(&e) {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else {
        2.0f64.powi(e)
    }
}

/// Quantizes a normalized fraction in `[1, 2)` to `f` explicit fraction bits.
///
/// Truncation keeps the leading bits (the paper's rule); round-to-nearest may round up
/// to exactly 2.0, in which case the caller is responsible for renormalizing (the block
/// encoder folds that case into the exponent offset).
pub fn quantize_fraction(fraction: f64, f_bits: u32, mode: RoundingMode) -> f64 {
    debug_assert!(
        (1.0..2.0).contains(&fraction),
        "fraction {fraction} must be in [1, 2)"
    );
    let scale = (1u64 << f_bits) as f64;
    match mode {
        RoundingMode::Truncate => ((fraction - 1.0) * scale).floor() / scale + 1.0,
        RoundingMode::RoundNearest => ((fraction - 1.0) * scale).round() / scale + 1.0,
    }
}

/// Re-encodes a single value against an exponent base `eb` with `e_bits` of saturating
/// signed offset and `f_bits` of fraction, returning the decoded (lossy) f64.
///
/// This is the scalar kernel of the ReFloat conversion (Eq. 4–7): the result equals
/// `(−1)^s · q(fraction) · 2^(eb + clamp(exponent − eb))`.
pub fn requantize(
    v: f64,
    eb: i32,
    e_bits: u32,
    f_bits: u32,
    rounding: RoundingMode,
    underflow: UnderflowMode,
) -> f64 {
    let Some(d) = decompose(v) else {
        return 0.0;
    };
    let max_off = max_offset_for_bits(e_bits);
    let offset = d.exponent - eb;
    let clamped = if offset > max_off {
        max_off
    } else if offset < -max_off {
        match underflow {
            UnderflowMode::Saturate => -max_off,
            UnderflowMode::FlushToZero => return 0.0,
        }
    } else {
        offset
    };
    let mut frac = quantize_fraction(d.fraction, f_bits, rounding);
    let mut exp = eb + clamped;
    if frac >= 2.0 {
        // Round-to-nearest can carry into the exponent; renormalize (and re-clamp).
        if offset == clamped && clamped < max_off {
            frac /= 2.0;
            exp += 1;
        } else {
            // The exponent offset is saturated (at either end of the window), so the
            // carry cannot be absorbed: clamp to the largest representable fraction
            // at the pinned offset, `2 − 2^(−f)`.  At the top, halving the fraction
            // without incrementing the exponent would silently return ~half the true
            // magnitude; at the bottom, renormalizing *upward* would overshoot a
            // value that is already below the saturation floor.
            frac = 2.0 - pow2(-(f_bits as i32));
        }
    }
    let magnitude = frac * pow2(exp);
    if d.negative {
        -magnitude
    } else {
        magnitude
    }
}

/// The worst-case relative error of an `f`-bit truncated fraction: `2^(−f)`.
///
/// Useful for tests and for the error-model discussion in the documentation.
pub fn fraction_truncation_error_bound(f_bits: u32) -> f64 {
    pow2(-(f_bits as i32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decompose_known_values() {
        let d = decompose(6.0).unwrap();
        assert!(!d.negative);
        assert_eq!(d.exponent, 2);
        assert!((d.fraction - 1.5).abs() < 1e-15);

        let d = decompose(-0.75).unwrap();
        assert!(d.negative);
        assert_eq!(d.exponent, -1);
        assert!((d.fraction - 1.5).abs() < 1e-15);

        assert_eq!(decompose(0.0), None);
        assert_eq!(decompose(f64::NAN), None);
        assert_eq!(decompose(f64::INFINITY), None);
    }

    #[test]
    fn pow2_matches_powi_in_normal_range() {
        for e in [-1022, -300, -1, 0, 1, 52, 1023] {
            assert_eq!(pow2(e), 2.0f64.powi(e), "e = {e}");
        }
        assert_eq!(pow2(-1074), 2.0f64.powi(-1074));
    }

    #[test]
    fn quantize_fraction_truncates_and_rounds() {
        // 1.6875 = 1.1011₂; with 2 fraction bits truncation gives 1.10₂ = 1.5,
        // rounding gives 1.11₂ = 1.75.
        assert_eq!(quantize_fraction(1.6875, 2, RoundingMode::Truncate), 1.5);
        assert_eq!(
            quantize_fraction(1.6875, 2, RoundingMode::RoundNearest),
            1.75
        );
        // With 0 bits everything becomes 1.0 under truncation.
        assert_eq!(quantize_fraction(1.999, 0, RoundingMode::Truncate), 1.0);
        // Already representable values are unchanged.
        assert_eq!(quantize_fraction(1.5, 4, RoundingMode::Truncate), 1.5);
    }

    #[test]
    fn requantize_reproduces_paper_eq6_eq7_example() {
        // Eq. (6)->(7): with eb = 8 and ReFloat(·, 2, 2):
        //   -1.1111·2^7 -> -1.11·2^-1·2^8 = -224.0     336.0 -> 320.0
        //   -1.0000·2^9 -> -512.0                       136.0 -> 128.0
        let eb = 8;
        assert_eq!(
            requantize(
                -248.0,
                eb,
                2,
                2,
                RoundingMode::Truncate,
                UnderflowMode::Saturate
            ),
            -224.0
        );
        assert_eq!(
            requantize(
                336.0,
                eb,
                2,
                2,
                RoundingMode::Truncate,
                UnderflowMode::Saturate
            ),
            320.0
        );
        assert_eq!(
            requantize(
                -512.0,
                eb,
                2,
                2,
                RoundingMode::Truncate,
                UnderflowMode::Saturate
            ),
            -512.0
        );
        assert_eq!(
            requantize(
                136.0,
                eb,
                2,
                2,
                RoundingMode::Truncate,
                UnderflowMode::Saturate
            ),
            128.0
        );
    }

    #[test]
    fn requantize_saturates_and_flushes_out_of_window_values() {
        // eb = 0, 3 offset bits -> representable exponents [-3, 3].
        let huge = 1024.0; // exponent 10, above the window
        let sat = requantize(
            huge,
            0,
            3,
            4,
            RoundingMode::Truncate,
            UnderflowMode::Saturate,
        );
        assert_eq!(sat, 8.0); // clamped to 2^3 with fraction 1.0
        let tiny = 2.0f64.powi(-20) * 1.5;
        let sat_lo = requantize(
            tiny,
            0,
            3,
            4,
            RoundingMode::Truncate,
            UnderflowMode::Saturate,
        );
        assert_eq!(sat_lo, 1.5 * 2.0f64.powi(-3));
        let flushed = requantize(
            tiny,
            0,
            3,
            4,
            RoundingMode::Truncate,
            UnderflowMode::FlushToZero,
        );
        assert_eq!(flushed, 0.0);
    }

    #[test]
    fn requantize_zero_and_exact_values() {
        assert_eq!(
            requantize(
                0.0,
                5,
                3,
                3,
                RoundingMode::Truncate,
                UnderflowMode::Saturate
            ),
            0.0
        );
        // A value exactly representable in the window survives untouched.
        assert_eq!(
            requantize(
                1.5,
                0,
                3,
                4,
                RoundingMode::Truncate,
                UnderflowMode::Saturate
            ),
            1.5
        );
        assert_eq!(
            requantize(
                -3.0,
                0,
                3,
                4,
                RoundingMode::Truncate,
                UnderflowMode::Saturate
            ),
            -3.0
        );
    }

    #[test]
    fn round_nearest_carry_at_saturated_offset_clamps_to_max_fraction() {
        // Regression: with eb = 0, e = 3 (max offset 3) and f = 8, the value
        // (2 − 2^−9)·2^3 rounds its fraction up to 2.0 while the offset is already
        // saturated.  The carry cannot go into the exponent, so the result must clamp
        // to the max representable fraction (2 − 2^−8)·2^3 — not halve to 1.0·2^3.
        let v = (2.0 - pow2(-9)) * 8.0;
        let q = requantize(
            v,
            0,
            3,
            8,
            RoundingMode::RoundNearest,
            UnderflowMode::Saturate,
        );
        assert_eq!(q, (2.0 - pow2(-8)) * 8.0);
        let ratio = q / v;
        assert!(
            ratio >= 1.0 - pow2(-8),
            "saturated carry must not halve the value: ratio = {ratio}"
        );

        // Same mechanism when the value saturates from *above* the window and its
        // fraction rounds up to 2.0.
        let v = (2.0 - pow2(-9)) * 2.0f64.powi(6); // offset 6 > max_off 3
        let q = requantize(
            v,
            0,
            3,
            8,
            RoundingMode::RoundNearest,
            UnderflowMode::Saturate,
        );
        assert_eq!(q, (2.0 - pow2(-8)) * 8.0);

        // f = 0 degenerates gracefully: the only representable fraction is 1.0.
        let q0 = requantize(
            1.75 * 8.0,
            0,
            3,
            0,
            RoundingMode::RoundNearest,
            UnderflowMode::Saturate,
        );
        assert_eq!(q0, 8.0);
    }

    #[test]
    fn round_nearest_carry_below_the_window_clamps_at_the_saturation_floor() {
        // A value *below* the window whose fraction rounds up to 2.0 must not
        // renormalize out of the saturation floor: with eb = 0, e = 2 (window
        // [-1, 1]) and f = 0, the value 1.6·2^−3 saturates to offset −1 and its
        // fraction rounds to 2.0 — the result must clamp to (2 − 2^0)·2^−1 = 0.5,
        // not renormalize to 1.0·2^0 (double the floor cap).
        let q = requantize(
            1.6 * pow2(-3),
            0,
            2,
            0,
            RoundingMode::RoundNearest,
            UnderflowMode::Saturate,
        );
        assert_eq!(q, 0.5);

        // With fraction bits: 1.99·2^−12 under e = 3, f = 3 saturates to offset −3
        // and rounds its fraction to 2.0 -> clamp to (2 − 2^−3)·2^−3 = 0.234375.
        let q = requantize(
            1.99 * pow2(-12),
            0,
            3,
            3,
            RoundingMode::RoundNearest,
            UnderflowMode::Saturate,
        );
        assert_eq!(q, (2.0 - pow2(-3)) * pow2(-3));
        // The below-window result never exceeds the saturation-floor cap.
        assert!(q <= (2.0 - pow2(-3)) * pow2(-3));
    }

    #[test]
    fn saturated_requantize_is_idempotent_and_monotone_near_the_top() {
        // The clamped maximum is itself representable, so re-encoding is a fixed point.
        let top = (2.0 - pow2(-8)) * 8.0;
        let q = requantize(
            top,
            0,
            3,
            8,
            RoundingMode::RoundNearest,
            UnderflowMode::Saturate,
        );
        assert_eq!(q, top);
        // Magnitudes just below the carry threshold must not map above the clamped max.
        let below = (2.0 - pow2(-7)) * 8.0;
        let qb = requantize(
            below,
            0,
            3,
            8,
            RoundingMode::RoundNearest,
            UnderflowMode::Saturate,
        );
        assert!(qb <= q);
    }

    #[test]
    fn round_nearest_carry_renormalizes() {
        // 1.96875 with 2 round-to-nearest fraction bits rounds up to 2.0 -> 1.0·2^(e+1).
        let v = 1.96875 * 4.0; // exponent 2
        let q = requantize(
            v,
            2,
            3,
            2,
            RoundingMode::RoundNearest,
            UnderflowMode::Saturate,
        );
        assert_eq!(q, 8.0);
    }

    proptest! {
        #[test]
        fn truncation_error_is_bounded_when_offset_in_window(
            sign in proptest::bool::ANY,
            frac in 1.0f64..2.0,
            exp in -8i32..8,
            f_bits in 0u32..12,
        ) {
            // With eb = 0 and a wide-enough offset window the only loss is the fraction
            // truncation, bounded by 2^-f relative error (the bound quoted in §III.D).
            let v = if sign { -frac } else { frac } * pow2(exp);
            let q = requantize(v, 0, 5, f_bits, RoundingMode::Truncate, UnderflowMode::Saturate);
            let rel = ((q - v) / v).abs();
            prop_assert!(rel <= fraction_truncation_error_bound(f_bits) + 1e-15,
                "v = {v}, q = {q}, rel = {rel}");
            // Truncation never increases the magnitude.
            prop_assert!(q.abs() <= v.abs() + 1e-300);
            // Sign is always preserved.
            prop_assert_eq!(q.is_sign_negative(), v.is_sign_negative());
        }

        #[test]
        fn requantize_is_idempotent(
            frac in 1.0f64..2.0,
            exp in -6i32..6,
            f_bits in 0u32..10,
        ) {
            let v = frac * pow2(exp);
            let q1 = requantize(v, 0, 4, f_bits, RoundingMode::Truncate, UnderflowMode::Saturate);
            let q2 = requantize(q1, 0, 4, f_bits, RoundingMode::Truncate, UnderflowMode::Saturate);
            prop_assert_eq!(q1, q2);
        }
    }
}
