//! The ReFloat data format and its quantized operators — the primary contribution of
//! *ReFloat: Low-Cost Floating-Point Processing in ReRAM for Accelerating Iterative
//! Linear Solvers* (SC 2023).
//!
//! # The format
//!
//! A `ReFloat(b, e, f)(ev, fv)` configuration (see [`ReFloatConfig`]) partitions a sparse
//! matrix into `2^b × 2^b` blocks.  Every block stores a single *exponent base* `eb`
//! (chosen by the closed-form optimum of Eq. 5, the rounded mean of the element
//! exponents) and represents each element with
//!
//! * 1 sign bit,
//! * an `e`-bit signed exponent *offset* from `eb`, saturating at
//!   `[−2^(e−1)+1, 2^(e−1)−1]` (Eq. 4–5 and §III.D), and
//! * the leading `f` bits of the IEEE-754 fraction (§IV.B, Fig. 5).
//!
//! Vector segments of length `2^b` are re-encoded the same way before every SpMV with
//! their own base `ebv` and `(ev, fv)` bits — this is the "vector converter" of
//! Fig. 6(d) and the part the Feinberg baseline lacks, which is what makes that baseline
//! diverge on matrices whose values sit far from 1.0.
//!
//! # What lives where
//!
//! * [`scalar`] — bit-exact decomposition/encoding of a single f64 value,
//! * [`block`] — per-block base selection and encoding ([`ReFloatBlock`]),
//! * [`vector`] — the vector converter ([`vector::VectorConverter`]),
//! * [`matrix`] — [`ReFloatMatrix`], the quantized operator that plugs into the solvers,
//! * [`sharded`] — [`ShardedReFloatMatrix`], the operator partitioned into block-row
//!   shards (one per chip of a multi-chip accelerator), bitwise identical to the
//!   unsharded operator for every shard count,
//! * [`resilience`] — fault-aware encoding support: spare row/column remapping around
//!   stuck cells and per-block ABFT checksum rows for SpMV corruption detection,
//! * [`feinberg`] — the exponent-truncation baseline of Feinberg et al. [ISCA'18] as
//!   described in §III.C of the paper (correct matrix, fixed-window vectors),
//! * [`truncate`] — the plain fraction/exponent truncation formats of the Table I study,
//! * [`memory`] — the storage model behind Fig. 4 and Table VIII,
//! * [`locality`] — the exponent-locality analysis behind Fig. 3(d),
//! * [`formats`] — the classical formats of Table III expressed as ReFloat instances,
//! * [`escalation`] — precision-escalation ladders ([`EscalationPolicy`]) for the
//!   mixed-precision refinement loop of `refloat_solvers::refinement`,
//! * [`autotune`] — cost-model-driven per-matrix format selection: scores candidate
//!   `(e, f)(ev, fv)` points with the exponent-locality error model against the
//!   Eq. 2/3 hardware cost and returns the cheapest format predicted to converge
//!   ([`FormatPlan`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod autotune;
pub mod block;
pub mod escalation;
pub mod feinberg;
pub mod format;
pub mod formats;
pub mod incremental;
pub mod locality;
pub mod matrix;
pub mod memory;
pub mod resilience;
pub mod scalar;
pub mod sharded;
pub mod truncate;
pub mod vector;

pub use autotune::{AutotuneConfig, FormatCandidate, FormatDecision, FormatPlan};
pub use block::ReFloatBlock;
pub use escalation::EscalationPolicy;
pub use format::{ReFloatConfig, RoundingMode, UnderflowMode};
pub use incremental::{
    assert_bitwise_identical, reencode_incremental, IncrementalEncode, IncrementalStats,
};
pub use matrix::ReFloatMatrix;
pub use resilience::{AbftChecksum, RemapPlan, SpareBudget, StuckCell};
pub use sharded::{OperatorShard, ShardedReFloatMatrix};
