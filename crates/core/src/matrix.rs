//! The ReFloat-quantized matrix operator.
//!
//! [`ReFloatMatrix`] stores a sparse matrix as ReFloat-encoded blocks and implements the
//! paper's computation procedure (Eq. 8–9): every SpMV first re-encodes the input vector
//! segment-by-segment (the vector converter of Fig. 6d), then accumulates the per-block
//! products `2^{eb+ebv} · Ã_c · x̃_c` in double precision, exactly as the accelerator's
//! processing engines emit FP64 partial results that the MAC units accumulate.
//!
//! Numerically, this functional model is identical to the hardware pipeline: the
//! crossbars compute the fixed-point products of the encoded fractions exactly
//! (verified against [`ReFloatMatrix::apply`] by the crossbar simulator in `reram-sim`),
//! and the final scaling by `2^{eb+ebv}` is a pure exponent addition.

use crate::block::ReFloatBlock;
use crate::format::ReFloatConfig;
use crate::vector::VectorConverter;
use refloat_solvers::LinearOperator;
use refloat_sparse::{BlockedMatrix, CsrMatrix};

/// A sparse matrix encoded block-by-block in ReFloat format, usable as a solver operator.
#[derive(Debug, Clone)]
pub struct ReFloatMatrix {
    nrows: usize,
    ncols: usize,
    config: ReFloatConfig,
    blocks: Vec<ReFloatBlock>,
    converter: VectorConverter,
    /// Scratch buffer holding the quantized input vector (reused across applies).
    quantized_input: Vec<f64>,
    /// Whether the input vector is re-encoded through the vector converter on every
    /// apply (the full ReFloat pipeline) or passed through exactly (ablation).
    quantize_vectors: bool,
}

impl ReFloatMatrix {
    /// Encodes a blocked matrix into ReFloat format.
    pub fn from_blocked(blocked: &BlockedMatrix, config: ReFloatConfig) -> Self {
        assert_eq!(
            blocked.b(),
            config.b,
            "ReFloatMatrix: the blocking exponent ({}) must match the format's b ({})",
            blocked.b(),
            config.b
        );
        let blocks: Vec<ReFloatBlock> = blocked
            .blocks()
            .iter()
            .map(|blk| ReFloatBlock::encode(blk, &config))
            .collect();
        ReFloatMatrix {
            nrows: blocked.nrows(),
            ncols: blocked.ncols(),
            config,
            blocks,
            converter: VectorConverter::new(config),
            quantized_input: vec![0.0; blocked.ncols()],
            quantize_vectors: true,
        }
    }

    /// Assembles a matrix from already-encoded blocks (block-row-major order), used by
    /// [`crate::incremental`] to stitch reused and re-encoded blocks together.
    pub(crate) fn from_parts(
        nrows: usize,
        ncols: usize,
        config: ReFloatConfig,
        blocks: Vec<ReFloatBlock>,
    ) -> Self {
        ReFloatMatrix {
            nrows,
            ncols,
            config,
            blocks,
            converter: VectorConverter::new(config),
            quantized_input: vec![0.0; ncols],
            quantize_vectors: true,
        }
    }

    /// Convenience: blocks a CSR matrix with the configuration's `b` and encodes it.
    pub fn from_csr(a: &CsrMatrix, config: ReFloatConfig) -> Self {
        let blocked = BlockedMatrix::from_csr(a, config.b)
            .expect("valid block exponent from a validated ReFloatConfig");
        Self::from_blocked(&blocked, config)
    }

    /// The format configuration.
    pub fn config(&self) -> &ReFloatConfig {
        &self.config
    }

    /// The encoded blocks.
    pub fn blocks(&self) -> &[ReFloatBlock] {
        &self.blocks
    }

    /// Number of non-empty blocks (= crossbar clusters required per SpMV).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of encoded non-zeros.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(ReFloatBlock::nnz).sum()
    }

    /// Disables (or re-enables) the per-iteration vector re-encoding.  With vector
    /// quantization off, only the one-time matrix quantization error remains — an
    /// ablation that isolates the two error sources.
    pub fn set_vector_quantization(&mut self, enabled: bool) {
        self.quantize_vectors = enabled;
    }

    /// The vector converter (exposes the last bases/statistics for instrumentation).
    pub fn converter(&self) -> &VectorConverter {
        &self.converter
    }

    /// Reconstructs the quantized matrix `Ã` as a CSR matrix (what the accelerator
    /// effectively multiplies by); useful for analysis and tests.
    pub fn to_quantized_csr(&self) -> CsrMatrix {
        let mut coo = refloat_sparse::CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        let bs = self.config.block_size();
        for blk in &self.blocks {
            let row0 = blk.block_row * bs;
            let col0 = blk.block_col * bs;
            for (ii, jj, v) in blk.iter_decoded() {
                if v != 0.0 {
                    coo.push(row0 + ii as usize, col0 + jj as usize, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Total storage bits of the encoded matrix under the Fig. 4 accounting.
    pub fn storage_bits(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.storage_bits(&self.config))
            .sum()
    }

    /// The blocked SpMV of Eq. 8–9 on the already-quantized input held in
    /// `self.quantized_input`.
    fn blocked_spmv(&self, x: &[f64], y: &mut [f64]) {
        for yi in y.iter_mut() {
            *yi = 0.0;
        }
        let bs = self.config.block_size();
        for blk in &self.blocks {
            let row0 = blk.block_row * bs;
            let col0 = blk.block_col * bs;
            for (ii, jj, v) in blk.iter_decoded() {
                y[row0 + ii as usize] += v * x[col0 + jj as usize];
            }
        }
    }
}

impl LinearOperator for ReFloatMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.ncols,
            "ReFloatMatrix apply: x length mismatch"
        );
        assert_eq!(
            y.len(),
            self.nrows,
            "ReFloatMatrix apply: y length mismatch"
        );
        if self.quantize_vectors {
            // Re-encode the input vector with per-segment bases (the vector converter),
            // then multiply by the quantized blocks.
            let mut buf = std::mem::take(&mut self.quantized_input);
            self.converter.convert_into(x, &mut buf);
            self.blocked_spmv(&buf, y);
            self.quantized_input = buf;
        } else {
            self.blocked_spmv(x, y);
        }
    }

    fn name(&self) -> String {
        format!(
            "refloat {} ({} blocks, {} nnz)",
            self.config,
            self.num_blocks(),
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::generators;
    use refloat_solvers::{bicgstab, cg, SolverConfig};
    use refloat_sparse::vecops;

    fn test_config(b: u32) -> ReFloatConfig {
        ReFloatConfig::new(b, 3, 8, 3, 8)
    }

    #[test]
    fn quantized_spmv_is_close_to_exact_for_well_scaled_matrices() {
        let a = generators::laplacian_2d(20, 20, 0.3).to_csr();
        let mut rf = ReFloatMatrix::from_csr(&a, test_config(4));
        let x: Vec<f64> = (0..a.ncols())
            .map(|i| ((i * 31 % 17) as f64) / 17.0 + 0.1)
            .collect();
        let exact = a.spmv(&x);
        let mut approx = vec![0.0; a.nrows()];
        rf.apply(&x, &mut approx);
        assert!(vecops::rel_err(&approx, &exact) < 0.02, "rel err too large");
    }

    #[test]
    fn matrix_quantization_error_respects_fraction_bits() {
        let a = generators::mass_matrix_3d(6, 6, 6, 1e-12, 0.5, 3).to_csr();
        for f_bits in [3u32, 8, 16] {
            let cfg = ReFloatConfig::new(4, 3, f_bits, 3, 8);
            let rf = ReFloatMatrix::from_csr(&a, cfg);
            let quantized = rf.to_quantized_csr();
            let mut max_rel: f64 = 0.0;
            for (r, c, v) in a.iter() {
                let q = quantized.get(r, c);
                if v != 0.0 {
                    max_rel = max_rel.max(((q - v) / v).abs());
                }
            }
            // Exponent locality of the mass matrix keeps offsets in range, so the error
            // is the fraction truncation bound.
            assert!(
                max_rel <= 2.0f64.powi(-(f_bits as i32)) + 1e-12,
                "f = {f_bits}: max rel err {max_rel}"
            );
        }
    }

    #[test]
    fn cg_converges_with_refloat_operator_and_matches_fp64_solution() {
        let a = generators::laplacian_2d(24, 24, 0.5).to_csr();
        let x_star: Vec<f64> = (0..a.nrows())
            .map(|i| ((i % 13) as f64) / 13.0 + 0.2)
            .collect();
        let b = a.spmv(&x_star);
        let cfg = SolverConfig::relative(1e-8);

        let mut exact_op = a.clone();
        let exact = cg(&mut exact_op, &b, &cfg);

        let mut rf = ReFloatMatrix::from_csr(&a, ReFloatConfig::new(4, 3, 8, 3, 8));
        let quant = cg(&mut rf, &b, &cfg);

        assert!(exact.converged());
        assert!(quant.converged(), "refloat CG stop = {:?}", quant.stop);
        // The quantized solve needs a similar (slightly larger) number of iterations.
        assert!(quant.iterations >= exact.iterations);
        assert!(quant.iterations <= 3 * exact.iterations + 10);
        // And its solution solves the quantized system: check against x_star loosely.
        assert!(vecops::rel_err(&quant.x, &x_star) < 0.05);
    }

    #[test]
    fn bicgstab_converges_with_refloat_operator() {
        let a = generators::laplacian_2d(16, 16, 0.4).to_csr();
        let b = vec![1.0; a.nrows()];
        let cfg = SolverConfig::relative(1e-8);
        let mut rf = ReFloatMatrix::from_csr(&a, ReFloatConfig::new(4, 3, 8, 3, 8));
        let r = bicgstab(&mut rf, &b, &cfg);
        assert!(r.converged(), "stop = {:?}", r.stop);
    }

    #[test]
    fn paper_default_bits_converge_on_a_mass_matrix_analogue() {
        // e = f = 3 matrix bits and (ev, fv) = (3, 8) vector bits — the Table VII
        // setting — must be enough for convergence on a crystm-like block-local matrix.
        let a = generators::mass_matrix_3d(8, 8, 8, 1e-12, 0.8, 11).to_csr();
        let (b, _x_star) = refloat_matgen::rhs::default_rhs(&a);
        let cfg = SolverConfig::relative(1e-8).with_max_iterations(2000);
        let mut rf = ReFloatMatrix::from_csr(&a, ReFloatConfig::new(5, 3, 3, 3, 8));
        let r = cg(&mut rf, &b, &cfg);
        assert!(
            r.converged(),
            "stop = {:?} after {} iters",
            r.stop,
            r.iterations
        );
    }

    #[test]
    fn disabling_vector_quantization_reduces_error() {
        let a = generators::laplacian_2d(12, 12, 0.3).to_csr();
        let x: Vec<f64> = (0..a.ncols())
            .map(|i| (i as f64 * 0.05).cos() + 2.0)
            .collect();
        let exact = a.spmv(&x);

        let cfg = ReFloatConfig::new(4, 3, 20, 3, 4); // coarse vectors, fine matrix
        let mut with_vq = ReFloatMatrix::from_csr(&a, cfg);
        let mut without_vq = ReFloatMatrix::from_csr(&a, cfg);
        without_vq.set_vector_quantization(false);

        let mut y1 = vec![0.0; a.nrows()];
        let mut y2 = vec![0.0; a.nrows()];
        with_vq.apply(&x, &mut y1);
        without_vq.apply(&x, &mut y2);
        assert!(vecops::rel_err(&y2, &exact) < vecops::rel_err(&y1, &exact));
    }

    #[test]
    fn block_count_matches_blocked_matrix() {
        let a = generators::laplacian_2d(30, 30, 0.1).to_csr();
        let blocked = refloat_sparse::BlockedMatrix::from_csr(&a, 4).unwrap();
        let rf = ReFloatMatrix::from_blocked(&blocked, test_config(4));
        assert_eq!(rf.num_blocks(), blocked.num_blocks());
        assert_eq!(rf.nnz(), blocked.nnz());
        assert!(rf.storage_bits() > 0);
        assert!(LinearOperator::nrows(&rf) == 900 && LinearOperator::ncols(&rf) == 900);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_blocking_is_rejected() {
        let a = generators::laplacian_2d(8, 8, 0.1).to_csr();
        let blocked = refloat_sparse::BlockedMatrix::from_csr(&a, 3).unwrap();
        let _ = ReFloatMatrix::from_blocked(&blocked, test_config(4));
    }
}
