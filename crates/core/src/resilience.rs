//! Fault-aware encoding: spare row/column remapping around stuck cells and ABFT
//! checksum columns for quantized-SpMV error detection.
//!
//! Production ReRAM crossbars carry persistent stuck-at faults.  Two classic defenses
//! make them survivable at the *encoding* layer, before any scheduler gets involved:
//!
//! * **Spare remapping** ([`RemapPlan`]) — crossbars reserve a few spare rows/columns;
//!   at encode time the mapper retires the physical rows/columns with the most stuck
//!   cells and shifts their elements onto spares.  Cells covered by a retired line stop
//!   mattering; the (hopefully empty) remainder is reported as *uncovered* and becomes
//!   the corruption the runtime must detect.
//! * **ABFT checksums** ([`AbftChecksum`]) — following algorithm-based fault tolerance
//!   for matrix multiply (Huang & Abraham), each encoded block gets one checksum row
//!   holding its column sums.  Because the checksum row lives in the *same* crossbar as
//!   the block, common-mode conductance drift scales data and checksum identically, so
//!   the detector `Σy  ≟  Σ_blocks drift_b · (c_b · x̃_b)` fires on stuck-cell
//!   corruption but stays quiet under benign drift.  The extra row costs one crossbar
//!   row and one accumulation cycle per block-MVM (charged in `reram_sim::cost`).
//!
//! The device simulator (`reram_sim::fault`) samples the stuck cells and drives both
//! mechanisms; this module is the pure encoding math so it can be property-tested
//! without a device model.

use crate::matrix::ReFloatMatrix;
use std::collections::BTreeMap;

/// One stuck cell, located by encoded block index and local coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckCell {
    /// Index of the block (crossbar) in encoding order.
    pub block: usize,
    /// Local row inside the crossbar, `< 2^b`.
    pub row: u16,
    /// Local column inside the crossbar, `< 2^b`.
    pub col: u16,
    /// `true` = stuck-at-high (max conductance), `false` = stuck-at-low (zero).
    pub high: bool,
}

/// Spare rows/columns available per crossbar for remapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpareBudget {
    /// Spare rows per crossbar.
    pub rows: usize,
    /// Spare columns per crossbar.
    pub cols: usize,
}

impl SpareBudget {
    /// A typical provisioning: two spare rows and two spare columns per crossbar.
    pub fn default_per_crossbar() -> Self {
        SpareBudget { rows: 2, cols: 2 }
    }

    /// No spares at all — every stuck cell stays uncovered.
    pub fn none() -> Self {
        SpareBudget { rows: 0, cols: 0 }
    }
}

/// The outcome of greedy spare remapping over a set of stuck cells.
///
/// Per block, the plan retires up to `budget.rows` rows (most stuck cells first, lowest
/// index on ties) and then up to `budget.cols` columns over the remaining cells.  Cells
/// on a retired line are *covered* — their elements move to spares and read correctly.
/// The rest are *uncovered* and will corrupt reads until a re-encode onto healthier
/// resources.
#[derive(Debug, Clone, Default)]
pub struct RemapPlan {
    covered: Vec<StuckCell>,
    uncovered: Vec<StuckCell>,
    spare_rows_used: usize,
    spare_cols_used: usize,
}

impl RemapPlan {
    /// Plans remapping for `cells` (any mix of blocks) under a per-crossbar budget.
    pub fn plan(cells: &[StuckCell], budget: &SpareBudget) -> Self {
        let mut by_block: BTreeMap<usize, Vec<StuckCell>> = BTreeMap::new();
        for &c in cells {
            by_block.entry(c.block).or_default().push(c);
        }
        let mut plan = RemapPlan::default();
        for (_, block_cells) in by_block {
            let retired_rows = retire_lines(block_cells.iter().map(|c| c.row), budget.rows);
            let after_rows: Vec<StuckCell> = block_cells
                .iter()
                .copied()
                .filter(|c| !retired_rows.contains(&c.row))
                .collect();
            let retired_cols = retire_lines(after_rows.iter().map(|c| c.col), budget.cols);
            plan.spare_rows_used += retired_rows.len();
            plan.spare_cols_used += retired_cols.len();
            for c in block_cells {
                if retired_rows.contains(&c.row) || retired_cols.contains(&c.col) {
                    plan.covered.push(c);
                } else {
                    plan.uncovered.push(c);
                }
            }
        }
        plan
    }

    /// Cells remapped onto spare lines (read correctly).
    pub fn covered(&self) -> &[StuckCell] {
        &self.covered
    }

    /// Cells no spare line could absorb (still corrupt reads).
    pub fn uncovered(&self) -> &[StuckCell] {
        &self.uncovered
    }

    /// Total spare rows consumed across all blocks.
    pub fn spare_rows_used(&self) -> usize {
        self.spare_rows_used
    }

    /// Total spare columns consumed across all blocks.
    pub fn spare_cols_used(&self) -> usize {
        self.spare_cols_used
    }
}

/// Picks up to `budget` line indices to retire, ordered by stuck-cell count descending
/// (line index ascending on ties).  Lines with zero stuck cells are never retired.
fn retire_lines<I: Iterator<Item = u16>>(lines: I, budget: usize) -> Vec<u16> {
    if budget == 0 {
        return Vec::new();
    }
    let mut counts: BTreeMap<u16, usize> = BTreeMap::new();
    for line in lines {
        *counts.entry(line).or_insert(0) += 1;
    }
    let mut ranked: Vec<(usize, u16)> = counts.into_iter().map(|(l, n)| (n, l)).collect();
    // Highest count first; BTreeMap already gave ascending line order for ties.
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    ranked.into_iter().take(budget).map(|(_, l)| l).collect()
}

/// Per-column sums of one encoded block — the block's ABFT checksum row.
#[derive(Debug, Clone)]
pub struct BlockChecksum {
    /// Block-column index (locates the input-vector segment this block consumes).
    pub block_col: usize,
    /// Sorted `(local column, Σ values, Σ |values|)` triples over occupied columns.
    columns: Vec<(u16, f64, f64)>,
}

impl BlockChecksum {
    /// `c_b · x̃_b` and its magnitude bound `|c_b| · |x̃_b|`, reading the quantized
    /// input segment for this block out of the full vector.
    pub fn dot(&self, quantized_input: &[f64], block_size: usize) -> (f64, f64) {
        let col0 = self.block_col * block_size;
        let mut dot = 0.0;
        let mut bound = 0.0;
        for &(jj, sum, abs_sum) in &self.columns {
            let x = quantized_input[col0 + jj as usize];
            dot += sum * x;
            bound += abs_sum * x.abs();
        }
        (dot, bound)
    }
}

/// One ABFT checksum row per encoded block, computed from the *decoded* (quantized)
/// values so the check is exact against what the crossbars actually multiply by.
#[derive(Debug, Clone)]
pub struct AbftChecksum {
    block_size: usize,
    blocks: Vec<BlockChecksum>,
}

impl AbftChecksum {
    /// Computes checksum rows for every block of an encoded matrix.
    pub fn from_matrix(matrix: &ReFloatMatrix) -> Self {
        let block_size = matrix.config().block_size();
        let blocks = matrix
            .blocks()
            .iter()
            .map(|blk| {
                let mut sums: BTreeMap<u16, (f64, f64)> = BTreeMap::new();
                for (_, jj, v) in blk.iter_decoded() {
                    let entry = sums.entry(jj).or_insert((0.0, 0.0));
                    entry.0 += v;
                    entry.1 += v.abs();
                }
                BlockChecksum {
                    block_col: blk.block_col,
                    columns: sums.into_iter().map(|(jj, (s, a))| (jj, s, a)).collect(),
                }
            })
            .collect();
        AbftChecksum { block_size, blocks }
    }

    /// The per-block checksum rows, in block order.
    pub fn blocks(&self) -> &[BlockChecksum] {
        &self.blocks
    }

    /// The checksum residual check.
    ///
    /// `actual` is `Σ y` over the SpMV output; the expectation is
    /// `Σ_b drift[b] · (c_b · x̃_b)` with the per-block common-mode drift factors the
    /// device applied (the checksum row drifts with its block, so drift cancels).
    /// Returns the relative residual `|actual − expected| / scale`, where `scale` is a
    /// cancellation-safe magnitude bound — clean reads land around machine epsilon,
    /// stuck-cell corruption lands orders of magnitude higher.
    pub fn residual(&self, quantized_input: &[f64], drift: &[f64], actual: f64) -> f64 {
        let mut expected = 0.0;
        let mut scale = 1e-300;
        for (b, blk) in self.blocks.iter().enumerate() {
            let (dot, bound) = blk.dot(quantized_input, self.block_size);
            let d = drift.get(b).copied().unwrap_or(1.0);
            expected += d * dot;
            scale += d.abs() * bound;
        }
        (actual - expected).abs() / scale.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ReFloatConfig;
    use proptest::prelude::*;
    use refloat_matgen::generators;
    use refloat_solvers::LinearOperator;
    use refloat_sparse::vecops;

    fn cell(block: usize, row: u16, col: u16) -> StuckCell {
        StuckCell {
            block,
            row,
            col,
            high: false,
        }
    }

    #[test]
    fn remap_prefers_the_densest_row() {
        // Three cells on row 5, one stray: one spare row covers the three.
        let cells = [cell(0, 5, 1), cell(0, 5, 9), cell(0, 5, 14), cell(0, 2, 3)];
        let plan = RemapPlan::plan(&cells, &SpareBudget { rows: 1, cols: 0 });
        assert_eq!(plan.covered().len(), 3);
        assert_eq!(plan.uncovered(), &[cell(0, 2, 3)]);
        assert_eq!(plan.spare_rows_used(), 1);
    }

    #[test]
    fn remap_uses_columns_after_rows() {
        let cells = [cell(0, 5, 1), cell(0, 6, 1), cell(0, 2, 3)];
        // One spare row (covers at most one cell here), one spare column: the column
        // spare picks col 1, covering the two remaining cells on it.
        let plan = RemapPlan::plan(&cells, &SpareBudget { rows: 1, cols: 1 });
        assert!(plan.uncovered().len() <= 1);
        assert_eq!(plan.spare_cols_used(), 1);
    }

    #[test]
    fn zero_budget_covers_nothing() {
        let cells = [cell(0, 1, 1), cell(3, 2, 2)];
        let plan = RemapPlan::plan(&cells, &SpareBudget::none());
        assert!(plan.covered().is_empty());
        assert_eq!(plan.uncovered().len(), 2);
    }

    #[test]
    fn budgets_are_per_crossbar_not_global() {
        // One stuck cell in each of four blocks: a 1-row budget covers all four,
        // because each block has its own spares.
        let cells: Vec<StuckCell> = (0..4).map(|b| cell(b, 1, 1)).collect();
        let plan = RemapPlan::plan(&cells, &SpareBudget { rows: 1, cols: 0 });
        assert_eq!(plan.covered().len(), 4);
        assert_eq!(plan.spare_rows_used(), 4);
    }

    #[test]
    fn clean_spmv_passes_the_checksum_and_corruption_fails_it() {
        let a = generators::laplacian_2d(12, 12, 0.3).to_csr();
        let mut m = ReFloatMatrix::from_csr(&a, ReFloatConfig::new(4, 3, 8, 3, 8));
        let checksum = AbftChecksum::from_matrix(&m);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin() + 0.5).collect();
        let mut y = vec![0.0; n];
        m.apply(&x, &mut y);
        // The operator quantizes the input; recompute the quantized vector the same way.
        let mut xq = vec![0.0; n];
        crate::vector::VectorConverter::new(*m.config()).convert_into(&x, &mut xq);
        let drift = vec![1.0; m.num_blocks()];
        let clean = checksum.residual(&xq, &drift, vecops::sum(&y));
        assert!(clean < 1e-12, "clean residual {clean}");

        // Corrupt one output entry the way a stuck cell would.
        let mut y_bad = y.clone();
        y_bad[7] += 3.0;
        let bad = checksum.residual(&xq, &drift, vecops::sum(&y_bad));
        assert!(bad > 1e-6, "corrupted residual {bad} should be detectable");
    }

    #[test]
    fn common_mode_drift_does_not_trip_the_checksum() {
        let a = generators::laplacian_2d(10, 10, 0.3).to_csr();
        let m = ReFloatMatrix::from_csr(&a, ReFloatConfig::new(4, 3, 8, 3, 8));
        let checksum = AbftChecksum::from_matrix(&m);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
        let mut xq = vec![0.0; n];
        crate::vector::VectorConverter::new(*m.config()).convert_into(&x, &mut xq);
        // Apply per-block drift by hand, exactly as the faulty device model does.
        let bs = m.config().block_size();
        let drift: Vec<f64> = (0..m.num_blocks())
            .map(|b| 1.0 + 0.02 * ((b % 5) as f64 - 2.0))
            .collect();
        let mut y = vec![0.0; n];
        for (b, blk) in m.blocks().iter().enumerate() {
            let row0 = blk.block_row * bs;
            let col0 = blk.block_col * bs;
            for (ii, jj, v) in blk.iter_decoded() {
                y[row0 + ii as usize] += v * drift[b] * xq[col0 + jj as usize];
            }
        }
        let res = checksum.residual(&xq, &drift, vecops::sum(&y));
        assert!(res < 1e-12, "drift-only residual {res} must stay quiet");
    }

    proptest! {
        #[test]
        fn retired_lines_never_exceed_the_budget(
            coords in proptest::collection::vec((0usize..4, 0u16..16, 0u16..16), 0..64),
            rows in 0usize..20,
            cols in 0usize..4,
        ) {
            let cells: Vec<StuckCell> = coords
                .iter()
                .map(|&(b, r, c)| StuckCell { block: b, row: r, col: c, high: b % 2 == 0 })
                .collect();
            let budget = SpareBudget { rows, cols };
            let plan = RemapPlan::plan(&cells, &budget);
            // Every input cell lands in exactly one bucket.
            prop_assert_eq!(plan.covered().len() + plan.uncovered().len(), cells.len());
            // Per-crossbar budgets: at most `rows`/`cols` spares per distinct block.
            let blocks = cells.iter().map(|c| c.block).collect::<std::collections::BTreeSet<_>>();
            prop_assert!(plan.spare_rows_used() <= rows * blocks.len().max(1));
            prop_assert!(plan.spare_cols_used() <= cols * blocks.len().max(1));
            // With budget for every cell's row, everything is covered.
            if rows >= 16 {
                prop_assert!(plan.uncovered().is_empty());
            }
        }
    }
}
