//! Classical number formats expressed as ReFloat instances (Table III) and the solver
//! bit configuration of Table VII.

use crate::format::ReFloatConfig;

/// A named format from Table III with its ReFloat-equivalent parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NamedFormat {
    /// Human-readable name (as used in the paper).
    pub name: &'static str,
    /// The equivalent `ReFloat(b, e, f)` parameters (vector bits mirror the matrix bits).
    pub config: ReFloatConfig,
    /// Total bits per scalar value (sign + exponent + fraction), ignoring block sharing.
    pub bits_per_value: u32,
}

/// All Table III rows: classical formats as ReFloat instances.
pub fn table_iii() -> Vec<NamedFormat> {
    let mk = |name, b, e, f| NamedFormat {
        name,
        config: ReFloatConfig::new(b, e, f, e, f),
        bits_per_value: 1 + e + f,
    };
    vec![
        mk("Int8", 0, 0, 7),
        mk("bfloat16", 0, 8, 7),
        mk("Int16", 0, 0, 15),
        mk("ms-fp9", 0, 5, 3),
        mk("FP32 (float)", 0, 8, 23),
        mk("TensorFloat32", 0, 8, 10),
        mk("FP64 (double)", 0, 11, 52),
        mk("BFP64", 6, 0, 52),
    ]
}

/// Looks up a Table III format by (case-insensitive) name prefix.
pub fn lookup(name: &str) -> Option<NamedFormat> {
    let lower = name.to_ascii_lowercase();
    table_iii()
        .into_iter()
        .find(|f| f.name.to_ascii_lowercase().starts_with(&lower))
}

/// The Table VII solver configuration: `e = f = ev = 3`, `fv = 8` (or 16 for the two
/// matrices that need the wider vector fraction), on `2^b` crossbars.
pub fn table_vii(b: u32, wide_vector_fraction: bool) -> ReFloatConfig {
    if wide_vector_fraction {
        ReFloatConfig::new(b, 3, 3, 3, 16)
    } else {
        ReFloatConfig::new(b, 3, 3, 3, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_matches_the_paper_rows() {
        let rows = table_iii();
        assert_eq!(rows.len(), 8);
        let find = |n: &str| rows.iter().find(|f| f.name == n).unwrap();

        // Int8 = ReFloat(0, 0, 7); bfloat16 = ReFloat(0, 8, 7); ms-fp9 = ReFloat(0, 5, 3);
        // FP32 = ReFloat(0, 8, 23); TF32 = ReFloat(0, 8, 10); FP64 = ReFloat(0, 11, 52);
        // BFP64 = ReFloat(6, 0, 52).
        assert_eq!((find("Int8").config.e, find("Int8").config.f), (0, 7));
        assert_eq!(
            (find("bfloat16").config.e, find("bfloat16").config.f),
            (8, 7)
        );
        assert_eq!((find("Int16").config.e, find("Int16").config.f), (0, 15));
        assert_eq!((find("ms-fp9").config.e, find("ms-fp9").config.f), (5, 3));
        assert_eq!(
            (find("FP32 (float)").config.e, find("FP32 (float)").config.f),
            (8, 23)
        );
        assert_eq!(
            (
                find("TensorFloat32").config.e,
                find("TensorFloat32").config.f
            ),
            (8, 10)
        );
        assert_eq!(
            (
                find("FP64 (double)").config.e,
                find("FP64 (double)").config.f
            ),
            (11, 52)
        );
        let bfp = find("BFP64");
        assert_eq!((bfp.config.b, bfp.config.e, bfp.config.f), (6, 0, 52));
    }

    #[test]
    fn bits_per_value_matches_standard_widths() {
        let rows = table_iii();
        let bits = |n: &str| rows.iter().find(|f| f.name == n).unwrap().bits_per_value;
        assert_eq!(bits("Int8"), 8);
        assert_eq!(bits("bfloat16"), 16);
        assert_eq!(bits("Int16"), 16);
        assert_eq!(bits("ms-fp9"), 9);
        assert_eq!(bits("FP32 (float)"), 32);
        assert_eq!(bits("TensorFloat32"), 19);
        assert_eq!(bits("FP64 (double)"), 64);
    }

    #[test]
    fn lookup_is_case_insensitive_prefix_match() {
        assert_eq!(lookup("fp32").unwrap().bits_per_value, 32);
        assert_eq!(lookup("BFLOAT16").unwrap().bits_per_value, 16);
        assert!(lookup("unknown").is_none());
    }

    #[test]
    fn table_vii_configurations() {
        let narrow = table_vii(7, false);
        assert_eq!((narrow.e, narrow.f, narrow.ev, narrow.fv), (3, 3, 3, 8));
        let wide = table_vii(7, true);
        assert_eq!(wide.fv, 16);
        assert_eq!(wide.block_size(), 128);
    }
}
