//! The `ReFloat(b, e, f)(ev, fv)` configuration.

use std::fmt;

/// How fraction bits beyond `f` are removed.
///
/// The paper keeps "the leading `f` bits from the original fraction bits and removes the
/// rest" (§IV.B), i.e. truncation toward zero; round-to-nearest is provided as an
/// ablation knob because it halves the worst-case fraction error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum RoundingMode {
    /// Drop the trailing fraction bits (the paper's conversion; default).
    #[default]
    Truncate,
    /// Round the retained fraction to the nearest representable value.
    RoundNearest,
}

/// How values whose exponent offset falls *below* the representable window are handled.
///
/// The paper clamps to the smallest representable offset (§III.D).  Flushing to zero is
/// provided as an ablation: it trades a large *relative* error on tiny elements for a
/// much smaller *absolute* error, which can matter for extremely wide-dynamic-range
/// vector segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum UnderflowMode {
    /// Clamp the offset to the smallest representable value (the paper's rule; default).
    #[default]
    Saturate,
    /// Represent the value as exactly zero.
    FlushToZero,
}

/// The `ReFloat(b, e, f)(ev, fv)` format configuration (Table II of the paper).
///
/// * `b` — the block-size exponent; blocks (and crossbars) are `2^b × 2^b`,
/// * `e`, `f` — exponent-offset and fraction bits for **matrix** elements,
/// * `ev`, `fv` — exponent-offset and fraction bits for **vector** elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReFloatConfig {
    /// Block-size exponent `b` (blocks are `2^b × 2^b`); 7 for the 128×128 crossbars of
    /// Table IV.
    pub b: u32,
    /// Exponent-offset bits for matrix elements.
    pub e: u32,
    /// Fraction bits for matrix elements.
    pub f: u32,
    /// Exponent-offset bits for vector elements.
    pub ev: u32,
    /// Fraction bits for vector elements.
    pub fv: u32,
    /// Fraction rounding behaviour (paper: truncate).
    pub rounding: RoundingMode,
    /// Below-window exponent handling (paper: saturate).
    pub underflow: UnderflowMode,
}

impl ReFloatConfig {
    /// Creates a `ReFloat(b, e, f)(ev, fv)` configuration with the paper's conversion
    /// rules (truncated fractions, saturating offsets).
    ///
    /// # Panics
    /// Panics if `b > 15` (local block indices no longer fit in 16 bits), if `e > 11`
    /// or `ev > 11` (wider than the IEEE-754 double exponent), or if `f > 52` or
    /// `fv > 52` (wider than the double fraction).
    pub fn new(b: u32, e: u32, f: u32, ev: u32, fv: u32) -> Self {
        assert!(b <= 15, "ReFloat: block exponent b must be ≤ 15, got {b}");
        assert!(
            e <= 11 && ev <= 11,
            "ReFloat: exponent bits must be ≤ 11 (got e={e}, ev={ev})"
        );
        assert!(
            f <= 52 && fv <= 52,
            "ReFloat: fraction bits must be ≤ 52 (got f={f}, fv={fv})"
        );
        ReFloatConfig {
            b,
            e,
            f,
            ev,
            fv,
            rounding: RoundingMode::default(),
            underflow: UnderflowMode::default(),
        }
    }

    /// The default solver configuration of the paper (Table VII):
    /// `ReFloat(7, 3, 3)(3, 8)` on 128×128 crossbars.
    pub fn paper_default() -> Self {
        ReFloatConfig::new(7, 3, 3, 3, 8)
    }

    /// The Table VII variant used for `wathen100` (1288) and `Dubcova2` (1848):
    /// identical except `fv = 16`.
    pub fn paper_wide_vector() -> Self {
        ReFloatConfig::new(7, 3, 3, 3, 16)
    }

    /// Builder-style setter for the rounding mode.
    pub fn with_rounding(mut self, rounding: RoundingMode) -> Self {
        self.rounding = rounding;
        self
    }

    /// Builder-style setter for the underflow mode.
    pub fn with_underflow(mut self, underflow: UnderflowMode) -> Self {
        self.underflow = underflow;
        self
    }

    /// Block edge length `2^b`.
    pub fn block_size(&self) -> usize {
        1 << self.b
    }

    /// The largest representable exponent offset, `2^(e−1) − 1` (0 when `e == 0`).
    pub fn max_offset(&self) -> i32 {
        max_offset_for_bits(self.e)
    }

    /// The smallest representable exponent offset, `−(2^(e−1) − 1)` (0 when `e == 0`).
    pub fn min_offset(&self) -> i32 {
        -max_offset_for_bits(self.e)
    }

    /// The largest representable *vector* exponent offset.
    pub fn max_offset_vector(&self) -> i32 {
        max_offset_for_bits(self.ev)
    }

    /// The smallest representable *vector* exponent offset.
    pub fn min_offset_vector(&self) -> i32 {
        -max_offset_for_bits(self.ev)
    }

    /// Bits per encoded matrix element: sign + exponent offset + fraction.
    pub fn matrix_value_bits(&self) -> u32 {
        1 + self.e + self.f
    }

    /// Bits per encoded vector element: sign + exponent offset + fraction.
    pub fn vector_value_bits(&self) -> u32 {
        1 + self.ev + self.fv
    }

    /// Bits per element used for the *local* block index `(ii, jj)` (Fig. 4/5): two
    /// `b`-bit integers.
    pub fn local_index_bits(&self) -> u32 {
        2 * self.b
    }

    /// Bits of per-block metadata: two `(32 − b)`-bit block coordinates plus the 11-bit
    /// exponent base `eb` (Fig. 4).
    pub fn block_metadata_bits(&self) -> u32 {
        2 * (32 - self.b) + 11
    }
}

impl Default for ReFloatConfig {
    fn default() -> Self {
        ReFloatConfig::paper_default()
    }
}

impl fmt::Display for ReFloatConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ReFloat({}, {}, {})({}, {})",
            self.b, self.e, self.f, self.ev, self.fv
        )
    }
}

/// The largest representable signed offset for an `e`-bit exponent field:
/// `2^(e−1) − 1`, and 0 for `e == 0` (no offset bits at all).
pub fn max_offset_for_bits(e: u32) -> i32 {
    if e == 0 {
        0
    } else {
        (1i32 << (e - 1)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_vii() {
        let c = ReFloatConfig::paper_default();
        assert_eq!((c.b, c.e, c.f, c.ev, c.fv), (7, 3, 3, 3, 8));
        assert_eq!(c.block_size(), 128);
        assert_eq!(c.to_string(), "ReFloat(7, 3, 3)(3, 8)");
        let wide = ReFloatConfig::paper_wide_vector();
        assert_eq!(wide.fv, 16);
    }

    #[test]
    fn offset_range_matches_paper_formula() {
        // With e-bit offsets the representable exponent range is
        // [eb − 2^(e−1) + 1, eb + 2^(e−1) − 1]  (§III.D).
        let c = ReFloatConfig::new(7, 3, 3, 3, 8);
        assert_eq!(c.max_offset(), 3);
        assert_eq!(c.min_offset(), -3);
        let c2 = ReFloatConfig::new(7, 2, 3, 2, 8);
        assert_eq!(c2.max_offset(), 1);
        assert_eq!(c2.min_offset(), -1);
        let c0 = ReFloatConfig::new(7, 0, 3, 0, 8);
        assert_eq!(c0.max_offset(), 0);
        assert_eq!(c0.min_offset(), 0);
    }

    #[test]
    fn bit_accounting_matches_fig4_example() {
        // Fig. 4 uses ReFloat(2, 2, 3): each scalar needs two 2-bit local indices and a
        // 1+2+3 = 6-bit value; the block needs two 30-bit indices and an 11-bit eb.
        let c = ReFloatConfig::new(2, 2, 3, 2, 3);
        assert_eq!(c.local_index_bits(), 4);
        assert_eq!(c.matrix_value_bits(), 6);
        assert_eq!(c.block_metadata_bits(), 2 * 30 + 11);
        // Eight scalars: 8·(4 + 6) + 71 = 151 bits, versus 8·(32+32+64) = 1024 bits.
        let refloat_bits =
            8 * (c.local_index_bits() + c.matrix_value_bits()) + c.block_metadata_bits();
        assert_eq!(refloat_bits, 151);
    }

    #[test]
    fn builders_set_modes() {
        let c = ReFloatConfig::paper_default()
            .with_rounding(RoundingMode::RoundNearest)
            .with_underflow(UnderflowMode::FlushToZero);
        assert_eq!(c.rounding, RoundingMode::RoundNearest);
        assert_eq!(c.underflow, UnderflowMode::FlushToZero);
    }

    #[test]
    #[should_panic(expected = "fraction bits")]
    fn rejects_overwide_fraction() {
        let _ = ReFloatConfig::new(7, 3, 53, 3, 8);
    }

    #[test]
    #[should_panic(expected = "exponent bits")]
    fn rejects_overwide_exponent() {
        let _ = ReFloatConfig::new(7, 12, 3, 3, 8);
    }
}
