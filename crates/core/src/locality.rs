//! Exponent value locality (Fig. 3d): how many exponent bits a matrix *really* needs
//! once it is partitioned into crossbar-sized blocks.
//!
//! The paper's key observation: while the exponents of a whole matrix may span a range
//! needing up to 11 bits, the spread *inside* a `128×128` block is far smaller (a few
//! binades), so a small per-block offset plus a per-block base captures the values.

use refloat_sparse::stats::exponent_of;
use refloat_sparse::BlockedMatrix;

/// The exponent-locality report for one matrix (one group of bars in Fig. 3d).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityReport {
    /// Exponent bits of the storage format (11 for IEEE double) — the "FP64" bar.
    pub fp64_bits: u32,
    /// Bits needed to cover the exponent *range of the whole matrix* with a single
    /// shared base (a whole-matrix block-floating-point view).
    pub matrix_bits: u32,
    /// The paper's "locality": the maximum, over all non-empty blocks, of the bits
    /// needed to cover that block's exponent spread around its optimal base.
    pub max_block_bits: u32,
    /// Mean over blocks of the per-block bit requirement.
    pub mean_block_bits: f64,
    /// Histogram of per-block bit requirements (index = bits, value = #blocks).
    pub block_bits_histogram: Vec<usize>,
}

/// Bits of signed offset needed to represent an exponent spread of `range` binades
/// (max − min) around the optimal centre: the smallest `e` with
/// `2·(2^(e−1) − 1) ≥ range`, and 1 bit minimum for a non-empty block.
pub fn offset_bits_for_range(range: u32) -> u32 {
    let mut e = 1u32;
    while 2 * ((1u32 << (e - 1)) - 1) < range {
        e += 1;
    }
    e
}

/// Computes the exponent-locality report of a blocked matrix.
pub fn exponent_locality(blocked: &BlockedMatrix) -> LocalityReport {
    let mut matrix_min = i32::MAX;
    let mut matrix_max = i32::MIN;
    let mut per_block_bits = Vec::with_capacity(blocked.num_blocks());

    for blk in blocked.blocks() {
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        for &v in &blk.vals {
            if v == 0.0 {
                continue;
            }
            let e = exponent_of(v);
            lo = lo.min(e);
            hi = hi.max(e);
        }
        if lo > hi {
            continue; // block of explicit zeros
        }
        matrix_min = matrix_min.min(lo);
        matrix_max = matrix_max.max(hi);
        per_block_bits.push(offset_bits_for_range((hi - lo) as u32));
    }

    let matrix_bits = if matrix_min > matrix_max {
        0
    } else {
        offset_bits_for_range((matrix_max - matrix_min) as u32)
    };
    let max_block_bits = per_block_bits.iter().copied().max().unwrap_or(0);
    let mean_block_bits = if per_block_bits.is_empty() {
        0.0
    } else {
        // Exact integer sum (bit widths are small integers); divides once at the end.
        per_block_bits.iter().map(|&b| u64::from(b)).sum::<u64>() as f64
            / per_block_bits.len() as f64
    };
    let mut block_bits_histogram = vec![0usize; (max_block_bits + 1) as usize];
    for &b in &per_block_bits {
        block_bits_histogram[b as usize] += 1;
    }

    LocalityReport {
        fp64_bits: 11,
        matrix_bits,
        max_block_bits,
        mean_block_bits,
        block_bits_histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::generators;
    use refloat_sparse::BlockedMatrix;

    #[test]
    fn offset_bits_formula_matches_small_cases() {
        assert_eq!(offset_bits_for_range(0), 1);
        assert_eq!(offset_bits_for_range(1), 2); // ±1 needs 2 bits
        assert_eq!(offset_bits_for_range(2), 2);
        assert_eq!(offset_bits_for_range(3), 3);
        assert_eq!(offset_bits_for_range(6), 3); // ±3 covers 6
        assert_eq!(offset_bits_for_range(7), 4);
        assert_eq!(offset_bits_for_range(14), 4);
        assert_eq!(offset_bits_for_range(100), 7);
    }

    #[test]
    fn block_locality_is_much_smaller_than_matrix_range() {
        // Values vary smoothly across the matrix (scale grows with the row index) but
        // are nearly constant inside a block — the situation Fig. 3d illustrates.
        let n = 512;
        let mut coo = refloat_sparse::CooMatrix::new(n, n);
        for i in 0..n {
            let scale = 2.0f64.powi((i / 64) as i32 * 4); // jumps every block row
            coo.push(i, i, 2.0 * scale);
            if i + 1 < n {
                coo.push(i, i + 1, -0.9 * scale);
                coo.push(i + 1, i, -0.9 * scale);
            }
        }
        let blocked = BlockedMatrix::from_csr(&coo.to_csr(), 6).unwrap();
        let report = exponent_locality(&blocked);
        assert_eq!(report.fp64_bits, 11);
        assert!(
            report.matrix_bits >= 5,
            "matrix bits {}",
            report.matrix_bits
        );
        assert!(
            report.max_block_bits <= 4,
            "per-block bits should be small, got {}",
            report.max_block_bits
        );
        assert!(report.mean_block_bits <= report.max_block_bits as f64);
        assert_eq!(
            report.block_bits_histogram.iter().sum::<usize>(),
            blocked.num_blocks()
        );
    }

    #[test]
    fn default_e3_covers_the_mass_matrix_analogues() {
        // The paper's e = 3 must cover the block-level spread of the crystm-like
        // workloads — this is the claim behind Fig. 3d and Table VII.
        let a = generators::mass_matrix_3d(10, 10, 10, 1e-12, 0.8, 5).to_csr();
        let blocked = BlockedMatrix::from_csr(&a, 7).unwrap();
        let report = exponent_locality(&blocked);
        assert!(
            report.max_block_bits <= 4,
            "block bits = {}",
            report.max_block_bits
        );
    }

    #[test]
    fn empty_matrix_reports_zeroes() {
        let a = refloat_sparse::CooMatrix::new(64, 64).to_csr();
        let blocked = BlockedMatrix::from_csr(&a, 5).unwrap();
        let report = exponent_locality(&blocked);
        assert_eq!(report.matrix_bits, 0);
        assert_eq!(report.max_block_bits, 0);
        assert!(report.block_bits_histogram.len() == 1);
    }
}
